//! # clue-routing
//!
//! A production-quality Rust reproduction of **“Routing with a Clue”**
//! (Yehuda Afek, Anat Bremler-Barr, Sariel Har-Peled — ACM SIGCOMM 1999):
//! *distributed IP lookup*, where each router piggybacks a 5-bit clue —
//! the best matching prefix it found — so the next router can start its
//! longest-prefix match where the previous one stopped.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`trie`] — addresses, prefixes, binary/Patricia tries, access
//!   accounting;
//! * [`lookup`] — the five classic LPM baselines (Regular, Patricia,
//!   Binary, 6-way, Log W);
//! * [`core`] — the paper's contribution: clue encoding, clue tables,
//!   the Simple and Advance methods, multi-neighbor sharing, MPLS
//!   integration;
//! * [`tablegen`] — synthetic 1999-style tables, neighbor derivation,
//!   traffic generation;
//! * [`netsim`] — the packet-level network simulator (Figure 1,
//!   heterogeneous deployment, load shifting, label-switched paths);
//! * [`classify`] — the Section 7 extension: clue-assisted packet
//!   classification (the clue names the upstream's matching filter);
//! * [`wire`] — Section 5.3's byte-level deployment path: IPv4/IPv6
//!   headers carrying the clue in an option.
//!
//! See `examples/quickstart.rs` for a five-minute tour, and the
//! `clue-experiments` binaries for every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use clue_classify as classify;
pub use clue_wire as wire;
pub use clue_core as core;
pub use clue_lookup as lookup;
pub use clue_netsim as netsim;
pub use clue_tablegen as tablegen;
pub use clue_trie as trie;

/// The most common imports, in one place.
pub mod prelude {
    pub use clue_core::{
        classify, ClueEngine, ClueHeader, ClueTable, Classification, EncodedClue, EngineConfig,
        Method, TableKind,
    };
    pub use clue_lookup::{build_scheme, reference_bmp, Family, LookupScheme};
    pub use clue_netsim::{run_workload, Network, NetworkConfig, Topology};
    pub use clue_tablegen::{
        derive_neighbor, generate, synthesize_ipv4, NeighborConfig, PairStats, TrafficConfig,
    };
    pub use clue_trie::{Address, BinaryTrie, Cost, CostStats, Ip4, Ip6, PatriciaTrie, Prefix};
}
