//! Parser robustness and roundtrip properties for the table text format.

use clue_tablegen::{format_prefixes, parse_prefixes, synthesize_ipv4, synthesize_ipv6};
use clue_trie::{Ip4, Ip6, Prefix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary text never panics the parser.
    #[test]
    fn parser_never_panics(text in "\\PC{0,200}") {
        let _ = parse_prefixes::<Ip4>(&text);
        let _ = parse_prefixes::<Ip6>(&text);
    }

    /// format → parse is the identity on canonical prefix lists.
    #[test]
    fn roundtrip_identity(
        raw in proptest::collection::btree_set((any::<u32>(), 0u8..=32), 0..60),
    ) {
        let mut prefixes: Vec<Prefix<Ip4>> =
            raw.into_iter().map(|(b, l)| Prefix::new(Ip4(b), l)).collect();
        prefixes.sort();
        prefixes.dedup();
        let text = format_prefixes(&prefixes);
        let back = parse_prefixes::<Ip4>(&text).expect("own output parses");
        prop_assert_eq!(back, prefixes);
    }

    /// Comments, blank lines and next-hop columns are tolerated around
    /// any valid prefix.
    #[test]
    fn decorations_are_ignored(bits in any::<u32>(), len in 0u8..=32) {
        let p = Prefix::new(Ip4(bits), len);
        let text = format!(
            "# header comment\n\n  {p}   nexthop-7 # trailing\n\n# done\n"
        );
        let parsed = parse_prefixes::<Ip4>(&text).expect("parses");
        prop_assert_eq!(parsed, vec![p]);
    }
}

#[test]
fn synthetic_tables_roundtrip_both_families() {
    let v4 = synthesize_ipv4(500, 7);
    assert_eq!(parse_prefixes::<Ip4>(&format_prefixes(&v4)).unwrap(), v4);
    let v6 = synthesize_ipv6(300, 8);
    assert_eq!(parse_prefixes::<Ip6>(&format_prefixes(&v6)).unwrap(), v6);
}
