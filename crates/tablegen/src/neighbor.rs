//! Deriving the forwarding table of a *neighboring* router.
//!
//! The paper's premise (Section 3) is that neighboring routers hold very
//! similar tables: each is computed from the other's by the routing
//! algorithm, and BGP discourages re-aggregation once prefixes leave
//! their home AS. Its measurements bear this out — the ISP-B pair shares
//! 55 540 of ≈56 000 prefixes (Table 3), and only 0.05 %–7 % of clues are
//! problematic (Table 2).
//!
//! [`derive_neighbor`] turns a base table into a neighbor's table with
//! three knobs that directly control those two statistics:
//!
//! * `share` — fraction of the base kept verbatim (Table 3's
//!   intersection);
//! * `refine` — fraction of kept prefixes that the neighbor *refines*
//!   with a longer, more-specific prefix the base router lacks. These
//!   are precisely the Case 3 situations that make clues problematic
//!   (Table 2);
//! * `extra` — fraction of unrelated new prefixes (different customers /
//!   policy-hidden routes).

use std::collections::BTreeSet;

use clue_trie::{Address, Prefix};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

/// Similarity knobs for neighbor derivation.
#[derive(Debug, Clone, Copy)]
pub struct NeighborConfig {
    /// Fraction of base prefixes the neighbor also holds (paper: ≥ 0.93
    /// for route servers, ≈ 0.99 for same-ISP pairs).
    pub share: f64,
    /// Fraction of kept prefixes the neighbor refines with one extra
    /// more-specific prefix (paper's problematic-clue sources: ≲ 0.02).
    pub refine: f64,
    /// New unrelated prefixes, as a fraction of the base size.
    pub extra: f64,
    /// Extra bits a refinement adds (8 turns a /16 into a /24).
    pub refine_bits: u8,
    /// RNG seed.
    pub seed: u64,
}

impl NeighborConfig {
    /// A same-ISP pair like AT&T-1/AT&T-2: nearly identical tables with a
    /// sprinkle of refinements.
    pub fn same_isp(seed: u64) -> Self {
        NeighborConfig { share: 0.992, refine: 0.01, extra: 0.006, refine_bits: 8, seed }
    }

    /// A route-server pair like MAE-East/Paix: still similar, more
    /// divergence.
    pub fn route_servers(seed: u64) -> Self {
        NeighborConfig { share: 0.96, refine: 0.02, extra: 0.03, refine_bits: 8, seed }
    }

    /// A configurable-similarity pair for the sensitivity sweep.
    pub fn with_share(share: f64, seed: u64) -> Self {
        NeighborConfig { share, refine: 0.015, extra: (1.0 - share) * 0.5, refine_bits: 8, seed }
    }
}

/// Derives a neighbor's table from `base` per `config`. Deterministic in
/// the seed; output sorted and duplicate-free.
pub fn derive_neighbor<A: Address>(
    base: &[Prefix<A>],
    config: &NeighborConfig,
) -> Vec<Prefix<A>> {
    assert!((0.0..=1.0).contains(&config.share), "share must be a fraction");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out: BTreeSet<Prefix<A>> = BTreeSet::new();
    let mut kept: Vec<Prefix<A>> = Vec::new();

    for p in base {
        if rng.random_bool(config.share) {
            out.insert(*p);
            kept.push(*p);
        }
    }

    // Refinements: longer prefixes inside kept ones, absent from `base`
    // (they are exactly what makes the corresponding clue problematic).
    let base_set: BTreeSet<Prefix<A>> = base.iter().copied().collect();
    let refinements = (kept.len() as f64 * config.refine).round() as usize;
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < refinements && guard < refinements * 20 + 100 {
        guard += 1;
        let Some(&parent) = kept.choose(&mut rng) else { break };
        let len = parent.len().saturating_add(config.refine_bits).min(A::BITS);
        if len <= parent.len() {
            continue;
        }
        let noise: u128 = ((rng.random::<u64>() as u128) << 64) | rng.random::<u64>() as u128;
        let span = (A::BITS - parent.len()) as u32;
        let mask = if span >= 128 { u128::MAX } else { (1u128 << span) - 1 };
        let bits = A::from_u128(parent.bits().to_u128() | (noise & mask));
        let refined = Prefix::new(bits, len);
        if !base_set.contains(&refined) && out.insert(refined) {
            added += 1;
        }
    }

    // Unrelated extras: random prefixes in fresh space.
    let extras = (base.len() as f64 * config.extra).round() as usize;
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < extras && guard < extras * 20 + 100 {
        guard += 1;
        let noise: u128 = ((rng.random::<u64>() as u128) << 64) | rng.random::<u64>() as u128;
        let len = (*[16u8, 20, 24].choose(&mut rng).expect("non-empty")).clamp(1, A::BITS);
        let width_mask = if A::BITS as u32 >= 128 { u128::MAX } else { (1u128 << A::BITS) - 1 };
        let p = Prefix::new(A::from_u128(noise & width_mask), len);
        if !base_set.contains(&p) && out.insert(p) {
            added += 1;
        }
    }

    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synthesize_ipv4;
    use crate::stats::intersection_size;

    #[test]
    fn same_isp_pair_is_nearly_identical() {
        let base = synthesize_ipv4(5000, 42);
        let neighbor = derive_neighbor(&base, &NeighborConfig::same_isp(1));
        let inter = intersection_size(&base, &neighbor);
        assert!(inter as f64 > 0.98 * base.len() as f64, "intersection {inter}");
        // Size stays in the same ballpark.
        assert!(neighbor.len() as f64 > 0.95 * base.len() as f64);
        assert!((neighbor.len() as f64) < 1.05 * base.len() as f64);
    }

    #[test]
    fn refinements_create_problematic_clues() {
        use clue_core::problematic_fraction;
        use clue_trie::BinaryTrie;
        let base = synthesize_ipv4(3000, 9);
        let neighbor = derive_neighbor(&base, &NeighborConfig::same_isp(2));
        let t1: BinaryTrie<clue_trie::Ip4, ()> = base.iter().map(|p| (*p, ())).collect();
        let t2: BinaryTrie<clue_trie::Ip4, ()> = neighbor.iter().map(|p| (*p, ())).collect();
        let frac = problematic_fraction(&t1, &t2);
        assert!(frac > 0.0, "no problematic clues generated");
        assert!(frac < 0.10, "too many problematic clues: {frac}");
    }

    #[test]
    fn share_zero_keeps_nothing_from_base() {
        let base = synthesize_ipv4(500, 3);
        let cfg = NeighborConfig { share: 0.0, refine: 0.0, extra: 0.1, refine_bits: 8, seed: 4 };
        let neighbor = derive_neighbor(&base, &cfg);
        assert_eq!(intersection_size(&base, &neighbor), 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let base = synthesize_ipv4(1000, 5);
        let a = derive_neighbor(&base, &NeighborConfig::same_isp(7));
        let b = derive_neighbor(&base, &NeighborConfig::same_isp(7));
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_monotone_in_share() {
        let base = synthesize_ipv4(2000, 6);
        let lo = derive_neighbor(&base, &NeighborConfig::with_share(0.5, 1));
        let hi = derive_neighbor(&base, &NeighborConfig::with_share(0.95, 1));
        assert!(intersection_size(&base, &lo) < intersection_size(&base, &hi));
    }
}
