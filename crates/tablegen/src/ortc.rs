//! Optimal Routing Table Construction (ORTC) — the “locally equivalent
//! forwarding tables that contain a minimal number of prefixes” the
//! paper cites as software direction (5) in Section 2 (Draves, King,
//! Venkatachary, Zill).
//!
//! Given a table of `(prefix, next-hop)` pairs, ORTC produces a smallest
//! prefix set that forwards **every** address identically. We use it two
//! ways:
//!
//! * as a substrate in its own right (the paper's related-work baseline
//!   compresses tables to fit caches);
//! * as an ablation: a minimized table changes the trie `t2` that clue
//!   classification runs against, so we can measure whether table
//!   compression helps or hurts the clue scheme.
//!
//! The classic three passes over the binary trie:
//!
//! 1. **leaf-push**: percolate next-hop sets to the (explicit and
//!    implicit) leaves;
//! 2. **merge up**: an internal vertex's set is the intersection of its
//!    children's sets when non-empty, else their union;
//! 3. **select down**: walking from the root, emit a prefix only where
//!    the inherited choice is not in the vertex's set.
//!
//! One deviation from the textbook algorithm: real tables may leave
//! address space **uncovered**, and forwarding tables cannot express
//! “uncover this sub-range”. A region containing uncovered space is
//! therefore a hard constraint — no ancestor may emit a prefix covering
//! it; its covered sub-regions emit for themselves.

use std::collections::BTreeSet;

use clue_trie::{Address, BinaryTrie, NodeId, Prefix};

/// A next-hop label.
pub type NextHop = u32;

#[derive(Debug, Clone, Default)]
struct OrtcNode {
    /// Candidate real next hops after the merge pass.
    set: BTreeSet<NextHop>,
    /// The region contains address space no input prefix covers; no
    /// ancestor may cover it, so nothing can be inherited through it.
    uncovered: bool,
    /// Arena children. A child may exist without a corresponding trie
    /// vertex: the *implicit half* of a one-child trie vertex, whose
    /// whole region carries the inherited decision. Implicit leaves are
    /// still visited by the select pass — if the parent chooses a
    /// different hop, the implicit region re-emits its own prefix.
    children: [Option<usize>; 2],
    /// Marks implicit leaves (no trie vertex to recurse into).
    implicit: bool,
}

struct Ortc<'t, A: Address> {
    trie: &'t BinaryTrie<A, NextHop>,
    arena: Vec<OrtcNode>,
    out: Vec<(Prefix<A>, NextHop)>,
}

impl<A: Address> Ortc<'_, A> {
    fn leaf(&mut self, decision: Option<NextHop>, implicit: bool) -> usize {
        let idx = self.arena.len();
        self.arena.push(OrtcNode {
            set: decision.into_iter().collect(),
            uncovered: decision.is_none(),
            children: [None, None],
            implicit,
        });
        idx
    }

    /// Passes 1+2: compute per-region candidate sets and coverage.
    fn build(&mut self, node: NodeId, inherited: Option<NextHop>) -> usize {
        let decision = self.trie.route_at(node).map(|r| *self.trie.value(r)).or(inherited);
        let kids = self.trie.children(node);
        if kids[0].is_none() && kids[1].is_none() {
            return self.leaf(decision, false);
        }
        let mut children = [0usize; 2];
        for (side, slot) in children.iter_mut().enumerate() {
            *slot = match kids[side] {
                Some(c) => self.build(c, decision),
                None => self.leaf(decision, true),
            };
        }
        let (a, b) = (children[0], children[1]);
        let uncovered = self.arena[a].uncovered || self.arena[b].uncovered;
        let set = if uncovered {
            BTreeSet::new()
        } else {
            let inter: BTreeSet<NextHop> =
                self.arena[a].set.intersection(&self.arena[b].set).copied().collect();
            if inter.is_empty() {
                self.arena[a].set.union(&self.arena[b].set).copied().collect()
            } else {
                inter
            }
        };
        let idx = self.arena.len();
        self.arena.push(OrtcNode { set, uncovered, children: [Some(a), Some(b)], implicit: false });
        idx
    }

    /// Resolve one region during the select pass: given what the parent
    /// chose, decide this region's label, emitting `prefix` if needed.
    /// Returns the label the region's descendants inherit.
    fn choose(
        &mut self,
        arena_node: usize,
        prefix: Prefix<A>,
        inherited: Option<NextHop>,
    ) -> Option<NextHop> {
        let n = &self.arena[arena_node];
        if n.uncovered {
            debug_assert!(inherited.is_none(), "an ancestor covered an uncoverable region");
            return None;
        }
        match inherited {
            Some(h) if n.set.contains(&h) => inherited,
            _ => {
                let pick = n.set.iter().next().copied();
                if let Some(h) = pick {
                    self.out.push((prefix, h));
                }
                pick.or(inherited)
            }
        }
    }

    /// Pass 3: select downward.
    fn select(&mut self, trie_node: NodeId, arena_node: usize, inherited: Option<NextHop>) {
        let prefix = self.trie.node_prefix(trie_node);
        let chosen = self.choose(arena_node, prefix, inherited);
        let kids = self.trie.children(trie_node);
        for (side, &kid) in kids.iter().enumerate() {
            let Some(ac) = self.arena[arena_node].children[side] else { continue };
            match kid {
                Some(tc) => self.select(tc, ac, chosen),
                None => {
                    // Implicit leaf: re-emit if the chosen hop diverges.
                    debug_assert!(self.arena[ac].implicit);
                    let set = self.arena[ac].set.clone();
                    match chosen {
                        Some(h) if set.contains(&h) => {}
                        _ => {
                            if let Some(&h) = set.iter().next() {
                                self.out.push((prefix.child(side == 1), h));
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Minimizes `(prefix, next hop)` entries into a smallest equivalent
/// table.
///
/// Addresses not covered by any input prefix remain uncovered in the
/// output (no default route is invented). Input entries with the same
/// prefix keep the last next hop.
pub fn minimize<A: Address>(entries: &[(Prefix<A>, NextHop)]) -> Vec<(Prefix<A>, NextHop)> {
    if entries.is_empty() {
        return Vec::new();
    }
    let trie: BinaryTrie<A, NextHop> = entries.iter().copied().collect();
    let mut ortc = Ortc { trie: &trie, arena: Vec::new(), out: Vec::new() };
    let root = ortc.build(trie.root(), None);
    ortc.select(trie.root(), root, None);
    ortc.out
}

/// Convenience: minimize a prefix *set* where every prefix maps to its
/// position's next hop in `hops` (parallel slices).
pub fn minimize_with_hops<A: Address>(
    prefixes: &[Prefix<A>],
    hops: &[NextHop],
) -> Vec<(Prefix<A>, NextHop)> {
    assert_eq!(prefixes.len(), hops.len(), "parallel slices");
    let entries: Vec<(Prefix<A>, NextHop)> =
        prefixes.iter().copied().zip(hops.iter().copied()).collect();
    minimize(&entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_trie::Ip4;

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    fn forwards_identically(
        a: &[(Prefix<Ip4>, NextHop)],
        b: &[(Prefix<Ip4>, NextHop)],
        probes: impl Iterator<Item = Ip4>,
    ) -> bool {
        let ta: BinaryTrie<Ip4, NextHop> = a.iter().copied().collect();
        let tb: BinaryTrie<Ip4, NextHop> = b.iter().copied().collect();
        for addr in probes {
            let va = ta.lookup(addr).map(|r| *ta.value(r));
            let vb = tb.lookup(addr).map(|r| *tb.value(r));
            if va != vb {
                eprintln!("divergence at {addr}: {va:?} vs {vb:?}");
                return false;
            }
        }
        true
    }

    #[test]
    fn redundant_child_is_absorbed() {
        // 10.1/16 -> 1 is redundant under 10/8 -> 1.
        let table = vec![(p("10.0.0.0/8"), 1), (p("10.1.0.0/16"), 1)];
        let min = minimize(&table);
        assert_eq!(min, vec![(p("10.0.0.0/8"), 1)]);
    }

    #[test]
    fn distinct_child_survives() {
        let table = vec![(p("10.0.0.0/8"), 1), (p("10.1.0.0/16"), 2)];
        let min = minimize(&table);
        assert_eq!(min.len(), 2);
        let probes = ["10.1.2.3", "10.2.0.1"].iter().map(|s| s.parse().unwrap());
        assert!(forwards_identically(&table, &min, probes));
    }

    #[test]
    fn sibling_merge_hoists_the_common_hop() {
        // Both halves of 10/8's child space use hop 7 via two /9s: ORTC
        // replaces them with a single /8.
        let table = vec![(p("10.0.0.0/9"), 7), (p("10.128.0.0/9"), 7)];
        let min = minimize(&table);
        assert_eq!(min, vec![(p("10.0.0.0/8"), 7)]);
    }

    #[test]
    fn uncovered_space_stays_uncovered() {
        let table = vec![(p("10.0.0.0/9"), 7), (p("10.128.0.0/9"), 7)];
        let min = minimize(&table);
        let t: BinaryTrie<Ip4, NextHop> = min.iter().copied().collect();
        assert!(t.lookup("11.0.0.1".parse().unwrap()).is_none());
        assert!(t.lookup("10.5.5.5".parse().unwrap()).is_some());
    }

    #[test]
    fn uncovered_gap_between_covered_quarters() {
        // 128/4 -> 2, 160/4 -> 3, 176/4 -> 2; 144/4 is uncovered, so
        // nothing may aggregate across it.
        let table =
            vec![(p("128.0.0.0/4"), 2), (p("160.0.0.0/4"), 3), (p("176.0.0.0/4"), 2)];
        let min = minimize(&table);
        let t: BinaryTrie<Ip4, NextHop> = min.iter().copied().collect();
        assert!(t.lookup("144.0.0.1".parse().unwrap()).is_none(), "{min:?}");
        assert!(forwards_identically(
            &table,
            &min,
            ["128.0.0.1", "152.215.230.96", "160.0.0.1", "176.0.0.1", "191.255.255.255"]
                .iter()
                .map(|s| s.parse().unwrap())
        ));
        assert!(min.len() <= table.len());
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(minimize::<Ip4>(&[]).is_empty());
    }

    #[test]
    fn randomized_equivalence_and_no_growth() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for round in 0..40 {
            let table: Vec<(Prefix<Ip4>, NextHop)> = (0..rng.random_range(5..60))
                .map(|_| {
                    let len = *[4u8, 8, 12, 16, 20].get(rng.random_range(0..5usize)).unwrap();
                    (
                        Prefix::new(
                            Ip4(rng.random_range(0u32..16) << 28 | rng.random::<u32>() >> 8),
                            len,
                        ),
                        rng.random_range(1..4),
                    )
                })
                .collect();
            // Deduplicate prefixes (last wins) the way minimize() does.
            let trie: BinaryTrie<Ip4, NextHop> = table.iter().copied().collect();
            let canonical: Vec<(Prefix<Ip4>, NextHop)> =
                trie.iter().map(|(_, q, v)| (q, *v)).collect();
            let min = minimize(&canonical);
            assert!(
                min.len() <= canonical.len(),
                "round {round}: grew from {} to {}",
                canonical.len(),
                min.len()
            );
            let probes = (0..400).map(|_| Ip4(rng.random()));
            assert!(forwards_identically(&canonical, &min, probes), "round {round}");
            // Also probe each prefix's first/last address (boundaries).
            let edges = canonical
                .iter()
                .flat_map(|(q, _)| [q.first_address(), q.last_address()]);
            assert!(forwards_identically(&canonical, &min, edges), "round {round} edges");
        }
    }

    #[test]
    fn full_coverage_table_compresses_hard() {
        // With a default route the textbook behaviour returns: two /9s
        // plus a default collapse completely.
        let table = vec![
            (p("0.0.0.0/0"), 9),
            (p("10.0.0.0/9"), 9),
            (p("10.128.0.0/9"), 9),
            (p("20.0.0.0/8"), 5),
        ];
        let min = minimize(&table);
        assert_eq!(min.len(), 2, "{min:?}");
        assert!(forwards_identically(
            &table,
            &min,
            ["10.1.1.1", "10.200.0.1", "20.5.5.5", "99.0.0.1"].iter().map(|s| s.parse().unwrap())
        ));
    }

    #[test]
    fn paper_cited_use_case_shrinks_real_shaped_tables() {
        // A synthetic table plus default route: nested same-hop
        // structure compresses.
        let base = crate::synth::synthesize_ipv4(3000, 41);
        let mut entries: Vec<(Prefix<Ip4>, NextHop)> =
            base.iter().map(|q| (*q, (q.bits().0 >> 24) % 3)).collect();
        entries.push((p("0.0.0.0/0"), 9));
        let min = minimize(&entries);
        assert!(min.len() < entries.len(), "{} !< {}", min.len(), entries.len());
    }
}
