//! Synthetic forwarding tables with the shape of 1999-era BGP tables.
//!
//! The paper's evaluation uses snapshots of MAE-East, MAE-West, Paix and
//! two ISP router pairs (5 974 – 60 475 prefixes). Those snapshots are
//! unobtainable; what the clue algorithms actually depend on is the
//! *structure* of the prefix set — the length histogram (1999 tables are
//! dominated by /24s with a /16 secondary mode) and the nesting relations
//! (aggregates refined by longer, more specific prefixes). This generator
//! reproduces exactly those structural properties, with seeds for
//! determinism, and the statistics of the generated pairs are checked
//! against the paper's Tables 1–3 in `clue-experiments`.

use std::collections::BTreeSet;

use clue_trie::{Address, Ip4, Ip6, Prefix};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

/// Parameters of the synthetic table generator.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of prefixes to generate.
    pub target: usize,
    /// Probability that a new prefix is nested under an already-generated
    /// shorter prefix (producing the aggregate/refinement structure that
    /// drives the clue dynamics).
    pub nesting: f64,
    /// Weighted prefix-length histogram `(length, weight)`.
    pub histogram: Vec<(u8, f64)>,
    /// Number of distinct top-level blocks addresses cluster into
    /// (models the bounded allocated space of the era).
    pub top_blocks: u32,
    /// Bit length of a top-level block (8 for IPv4 /8s).
    pub top_block_len: u8,
    /// RNG seed.
    pub seed: u64,
    /// Redirect draws away from saturated prefix lengths.
    ///
    /// At 1M–10M prefixes the short end of the histogram runs out of
    /// distinct prefixes (there are at most `top_blocks` /8s), and a
    /// capacity-blind generator burns its attempt budget re-drawing
    /// duplicates. With this set, a draw for a saturated length is
    /// deterministically redirected to the nearest longer length with
    /// spare capacity — no extra RNG draws, so the stream (and hence
    /// every unsaturated table) is untouched. The historical
    /// [`SynthConfig::ipv4`] / [`SynthConfig::ipv6`] presets leave it
    /// off to keep their seeded outputs byte-identical.
    pub capacity_aware: bool,
}

impl SynthConfig {
    /// IPv4 defaults: the length mix of a late-1990s default-free table —
    /// /24 dominant, /16 secondary, a CIDR band at /17–/23, a few /8s.
    pub fn ipv4(target: usize, seed: u64) -> Self {
        SynthConfig {
            target,
            nesting: 0.45,
            histogram: vec![
                (8, 0.006),
                (12, 0.008),
                (13, 0.010),
                (14, 0.015),
                (15, 0.018),
                (16, 0.130),
                (17, 0.020),
                (18, 0.030),
                (19, 0.055),
                (20, 0.045),
                (21, 0.045),
                (22, 0.060),
                (23, 0.070),
                (24, 0.470),
                (25, 0.006),
                (26, 0.006),
                (27, 0.003),
                (28, 0.002),
                (30, 0.001),
            ],
            top_blocks: 64,
            top_block_len: 8,
            seed,
            capacity_aware: false,
        }
    }

    /// IPv4 defaults at modern default-free-zone scale (1M–10M
    /// prefixes): the contemporary length mix — a dominant /24 mode
    /// (deaggregation and hijack-defence announcements), a heavy
    /// /19–/23 CIDR shoulder, and a thin short tail — over the full
    /// allocated unicast space (224 /8 blocks rather than the 1999
    /// preset's 64). Capacity-aware: short lengths saturate quickly at
    /// this scale and redirect into the hump instead of spinning on
    /// duplicates.
    pub fn ipv4_modern(target: usize, seed: u64) -> Self {
        SynthConfig {
            target,
            nesting: 0.45,
            histogram: vec![
                (8, 0.003),
                (12, 0.004),
                (13, 0.006),
                (14, 0.008),
                (15, 0.010),
                (16, 0.027),
                (17, 0.016),
                (18, 0.030),
                (19, 0.052),
                (20, 0.046),
                (21, 0.042),
                (22, 0.090),
                (23, 0.071),
                (24, 0.595),
            ],
            top_blocks: 224,
            top_block_len: 8,
            seed,
            capacity_aware: true,
        }
    }

    /// Number of distinct prefixes of length `len` this configuration
    /// can ever emit: fresh prefixes shorter than a top-level block are
    /// unconstrained (`2^len`), everything else lives inside one of the
    /// `top_blocks` blocks.
    pub fn length_capacity(&self, len: u8) -> u128 {
        if len < self.top_block_len {
            1u128 << len
        } else {
            (self.top_blocks as u128) << (len - self.top_block_len).min(127)
        }
    }

    /// IPv6 defaults: the aggregation structure the paper assumes
    /// (“assuming IPv6 uses aggregation in a way similar to IPv4”) —
    /// /32 allocations, /48 sites, /64 subnets.
    pub fn ipv6(target: usize, seed: u64) -> Self {
        SynthConfig {
            target,
            nesting: 0.45,
            histogram: vec![
                (20, 0.01),
                (24, 0.02),
                (28, 0.03),
                (32, 0.18),
                (36, 0.05),
                (40, 0.07),
                (44, 0.08),
                (48, 0.40),
                (52, 0.03),
                (56, 0.05),
                (60, 0.03),
                (64, 0.05),
            ],
            top_blocks: 64,
            top_block_len: 16,
            seed,
            capacity_aware: false,
        }
    }
}

/// Generates a synthetic forwarding table per `config`.
///
/// Deterministic in the seed; output is sorted and duplicate-free.
pub fn synthesize<A: Address>(config: &SynthConfig) -> Vec<Prefix<A>> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let weights: f64 = config.histogram.iter().map(|(_, w)| w).sum();
    assert!(weights > 0.0, "histogram must have positive total weight");
    assert!(
        config.histogram.iter().all(|&(l, _)| l <= A::BITS),
        "histogram length exceeds the address width"
    );

    let sample_len = |rng: &mut StdRng| -> u8 {
        let mut x = rng.random_range(0.0..weights);
        for &(len, w) in &config.histogram {
            if x < w {
                return len;
            }
            x -= w;
        }
        config.histogram.last().map(|&(l, _)| l).unwrap_or(A::BITS)
    };

    // Pre-pick the active top-level blocks. Capacity-aware configs
    // draw them without replacement so `length_capacity` is honest
    // (duplicated blocks would silently shrink the short-length space);
    // the legacy path keeps its with-replacement stream byte-for-byte.
    let blocks: Vec<u128> = if config.capacity_aware {
        assert!(
            (config.top_blocks as u128) <= 1u128 << config.top_block_len,
            "more top-level blocks than the block length can name"
        );
        let mut seen = BTreeSet::new();
        let mut blocks = Vec::with_capacity(config.top_blocks as usize);
        while blocks.len() < config.top_blocks as usize {
            let b = rng.random_range(0u128..(1u128 << config.top_block_len));
            if seen.insert(b) {
                blocks.push(b);
            }
        }
        blocks
    } else {
        (0..config.top_blocks)
            .map(|_| rng.random_range(0u128..(1u128 << config.top_block_len)))
            .collect()
    };

    // Histogram lengths in ascending order, for capacity redirection.
    let mut lengths: Vec<u8> = config.histogram.iter().map(|&(l, _)| l).collect();
    lengths.sort_unstable();
    lengths.dedup();
    let mut filled = vec![0u128; A::BITS as usize + 1];
    // Deterministically redirects a draw for a saturated length to the
    // nearest longer histogram length with spare capacity (falling back
    // to shorter ones, then to the draw itself). Consumes no RNG, so
    // capacity-blind configs see an identical stream.
    let redirect = |len: u8, filled: &[u128]| -> u8 {
        let spare = |l: u8| filled[l as usize] < config.length_capacity(l);
        if spare(len) {
            return len;
        }
        lengths
            .iter()
            .copied()
            .filter(|&l| l > len && spare(l))
            .min()
            .or_else(|| lengths.iter().copied().filter(|&l| l < len && spare(l)).max())
            .unwrap_or(len)
    };

    let mut set: BTreeSet<Prefix<A>> = BTreeSet::new();
    let mut pool: Vec<Prefix<A>> = Vec::new(); // for nesting draws
    let mut attempts = 0usize;
    let max_attempts = config.target * 50 + 1000;
    while set.len() < config.target && attempts < max_attempts {
        attempts += 1;
        let len = sample_len(&mut rng);
        let len = if config.capacity_aware { redirect(len, &filled) } else { len };
        let prefix = if config.nesting > 0.0
            && !pool.is_empty()
            && rng.random_bool(config.nesting)
        {
            // Nest under a random existing shorter prefix.
            let base = *pool.choose(&mut rng).expect("pool is non-empty");
            if base.len() >= len {
                continue;
            }
            let noise = random_bits::<A>(&mut rng);
            let merged = base.bits().to_u128()
                | (noise & low_mask(A::BITS - base.len()));
            Prefix::new(A::from_u128(merged), len)
        } else {
            // Fresh prefix inside a random top-level block.
            if len < config.top_block_len {
                Prefix::new(A::from_u128(random_bits::<A>(&mut rng)), len)
            } else {
                let block = *blocks.choose(&mut rng).expect("at least one block");
                let hi = block << (A::BITS - config.top_block_len);
                let noise = random_bits::<A>(&mut rng)
                    & low_mask(A::BITS - config.top_block_len);
                Prefix::new(A::from_u128(hi | noise), len)
            }
        };
        if set.insert(prefix) {
            filled[prefix.len() as usize] += 1;
            pool.push(prefix);
        }
    }
    set.into_iter().collect()
}

/// Shorthand: a seeded modern-scale IPv4 table of `n` prefixes (see
/// [`SynthConfig::ipv4_modern`]).
pub fn synthesize_ipv4_modern(n: usize, seed: u64) -> Vec<Prefix<Ip4>> {
    synthesize(&SynthConfig::ipv4_modern(n, seed))
}

/// Shorthand: a seeded IPv4 table of `n` prefixes.
pub fn synthesize_ipv4(n: usize, seed: u64) -> Vec<Prefix<Ip4>> {
    synthesize(&SynthConfig::ipv4(n, seed))
}

/// Rebases a synthesized table into one origin's disjoint address
/// block: the top `block_len` bits of every prefix are overwritten
/// with `block` (the origin's block index) and the prefix length is
/// clamped into `[min_len, max_len]`, preserving the generator's
/// realistic length spread while guaranteeing the result lies wholly
/// inside the block — which is what lets a fleet of origins advertise
/// structurally-realistic specifics without any cross-origin overlap.
/// Output is sorted and duplicate-free (clamping can merge prefixes,
/// so it may be shorter than the input).
///
/// # Panics
/// Panics unless `block_len < min_len <= max_len <= A::BITS` and
/// `block < 2^block_len`.
pub fn rebase_into_block<A: Address>(
    table: &[Prefix<A>],
    block: u128,
    block_len: u8,
    min_len: u8,
    max_len: u8,
) -> Vec<Prefix<A>> {
    assert!(block_len < min_len && min_len <= max_len && max_len <= A::BITS);
    assert!(block_len == 0 || block >> block_len.min(127) == 0, "block index out of range");
    let hi = block << (A::BITS - block_len) as u32;
    let keep = low_mask(A::BITS - block_len);
    let set: BTreeSet<Prefix<A>> = table
        .iter()
        .map(|p| {
            let len = p.len().clamp(min_len, max_len);
            Prefix::new(A::from_u128(hi | (p.bits().to_u128() & keep)), len)
        })
        .collect();
    set.into_iter().collect()
}

/// Shorthand: a seeded IPv6 table of `n` prefixes.
pub fn synthesize_ipv6(n: usize, seed: u64) -> Vec<Prefix<Ip6>> {
    synthesize(&SynthConfig::ipv6(n, seed))
}

fn random_bits<A: Address>(rng: &mut StdRng) -> u128 {
    let raw: u128 = ((rng.random::<u64>() as u128) << 64) | rng.random::<u64>() as u128;
    raw & low_mask(A::BITS)
}

fn low_mask(bits: u8) -> u128 {
    if bits == 0 {
        0
    } else if bits as u32 >= 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        let t = synthesize_ipv4(2000, 1);
        assert_eq!(t.len(), 2000);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(synthesize_ipv4(500, 7), synthesize_ipv4(500, 7));
        assert_ne!(synthesize_ipv4(500, 7), synthesize_ipv4(500, 8));
    }

    #[test]
    fn sorted_and_unique() {
        let t = synthesize_ipv4(1000, 3);
        let mut s = t.clone();
        s.sort();
        s.dedup();
        assert_eq!(t, s);
    }

    #[test]
    fn histogram_shape_dominated_by_24s() {
        let t = synthesize_ipv4(5000, 11);
        let n24 = t.iter().filter(|p| p.len() == 24).count();
        let n16 = t.iter().filter(|p| p.len() == 16).count();
        assert!(n24 as f64 > 0.35 * t.len() as f64, "/24 share too low: {n24}");
        assert!(n16 as f64 > 0.06 * t.len() as f64, "/16 share too low: {n16}");
        assert!(t.iter().all(|p| p.len() >= 8 && p.len() <= 30));
    }

    #[test]
    fn nesting_produces_refinements() {
        let t = synthesize_ipv4(3000, 5);
        let nested = t
            .iter()
            .filter(|p| t.iter().any(|q| q.is_strict_prefix_of(p)))
            .count();
        assert!(
            nested as f64 > 0.15 * t.len() as f64,
            "expected substantial nesting, got {nested}/{}",
            t.len()
        );
    }

    #[test]
    fn ipv6_generation_works() {
        let t = synthesize_ipv6(800, 2);
        assert_eq!(t.len(), 800);
        assert!(t.iter().all(|p| p.len() <= 64));
        let n48 = t.iter().filter(|p| p.len() == 48).count();
        assert!(n48 as f64 > 0.25 * t.len() as f64);
    }

    #[test]
    fn zero_target_is_empty() {
        assert!(synthesize_ipv4(0, 1).is_empty());
    }

    #[test]
    fn legacy_presets_are_untouched_by_capacity_logic() {
        // The capacity-aware machinery must be invisible to the
        // historical presets: flag off, and the seeded stream pinned to
        // the pre-trait-era output (golden sampled before the flag
        // existed — any drift here silently invalidates every
        // committed benchmark baseline).
        assert!(!SynthConfig::ipv4(10, 9).capacity_aware);
        assert!(!SynthConfig::ipv6(10, 9).capacity_aware);
        let legacy = synthesize_ipv4(100, 9);
        let golden: Vec<Prefix<Ip4>> = [
            "11.4.132.0/24",
            "11.21.115.0/24",
            "11.78.186.0/23",
            "11.78.186.0/24",
            "11.182.0.0/16",
            "12.121.14.0/24",
            "12.132.16.0/20",
            "21.44.192.0/21",
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
        assert_eq!(&legacy[..golden.len()], &golden[..]);
    }

    #[test]
    fn modern_histogram_matches_configuration_within_tolerance() {
        let cfg = SynthConfig::ipv4_modern(100_000, 17);
        let t = synthesize::<Ip4>(&cfg);
        assert_eq!(t.len(), 100_000);
        let total: f64 = cfg.histogram.iter().map(|(_, w)| w).sum();
        let n = t.len() as f64;
        for &(len, w) in &cfg.histogram {
            let want = w / total;
            let got = t.iter().filter(|p| p.len() == len).count() as f64 / n;
            let capacity = cfg.length_capacity(len) as f64 / n;
            if want <= capacity {
                // Unsaturated lengths track the configured weight.
                assert!(
                    (got - want).abs() <= 0.35 * want + 0.002,
                    "/{len}: wanted {want:.4}, got {got:.4}"
                );
            } else {
                // Saturated lengths never exceed capacity.
                assert!(got <= capacity + 1e-9, "/{len}: capacity {capacity:.6}, got {got:.6}");
            }
        }
        // The /24 hump dominates, as in a modern default-free table.
        let n24 = t.iter().filter(|p| p.len() == 24).count() as f64 / n;
        assert!(n24 > 0.5, "/24 share {n24:.3}");
    }

    #[test]
    fn saturated_lengths_redirect_instead_of_spinning() {
        // 100k prefixes want 300 /8s but only 224 exist; the generator
        // must still hit the full target without burning its attempt
        // budget, and the /8 count must respect the capacity bound.
        let cfg = SynthConfig::ipv4_modern(100_000, 23);
        let t = synthesize::<Ip4>(&cfg);
        assert_eq!(t.len(), 100_000);
        let n8 = t.iter().filter(|p| p.len() == 8).count() as u128;
        assert!(n8 <= cfg.length_capacity(8));
        assert!(n8 > 0);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn million_prefix_table_is_generated_and_shaped() {
        // At 1M the /8 band is drawn ~3000 times against 224 distinct
        // blocks: it must saturate exactly, and the overall shape must
        // stay close to the (capacity-clamped) configured histogram.
        let cfg = SynthConfig::ipv4_modern(1_000_000, 404);
        let t = synthesize::<Ip4>(&cfg);
        assert_eq!(t.len(), 1_000_000);
        let n8 = t.iter().filter(|p| p.len() == 8).count() as u128;
        assert_eq!(n8, cfg.length_capacity(8));
        let n24 = t.iter().filter(|p| p.len() == 24).count() as f64;
        assert!(n24 > 0.5 * t.len() as f64);
        let d = crate::stats::length_l1_distance(&t, &cfg);
        assert!(d < 0.15, "L1 distance from configured histogram: {d:.4}");
    }
}
