//! # clue-tablegen
//!
//! Workloads for the *Routing with a Clue* reproduction: synthetic
//! forwarding tables shaped like the paper's 1999 snapshots, neighbor
//! derivation with controlled similarity, the Section 6 traffic
//! methodology, a plain-text loader for real tables, and the pair
//! statistics of Tables 1–3.
//!
//! The paper measured real router pairs (MAE-East, MAE-West, Paix,
//! AT&T-1/2, ISP-B-1/2); those snapshots are unobtainable, so this crate
//! regenerates their *structural* properties — table sizes, prefix-length
//! histogram, intersection fractions and problematic-clue rates — which
//! are the only inputs the clue algorithms are sensitive to (see
//! DESIGN.md, “Substitutions”).
//!
//! ```
//! use clue_tablegen::{derive_neighbor, synthesize_ipv4, NeighborConfig, PairStats};
//!
//! let r1 = synthesize_ipv4(2_000, 42);
//! let r2 = derive_neighbor(&r1, &NeighborConfig::same_isp(43));
//! let stats = PairStats::compute(&r1, &r2);
//! assert!(stats.similarity() > 0.97);           // Table 3's regime
//! assert!(stats.problematic_fraction() < 0.05); // Table 2's regime
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod neighbor;
mod ortc;
mod parse;
mod stats;
mod synth;
mod traffic;

pub use churn::{end_state, generate_churn, ChurnConfig, RouteUpdate, UpdateKind};
pub use neighbor::{derive_neighbor, NeighborConfig};
pub use ortc::{minimize, minimize_with_hops, NextHop};
pub use parse::{format_prefixes, parse_prefixes, parse_table, ParseTableError, TableLine};
pub use stats::{
    export_length_histogram, intersection_size, length_histogram, length_l1_distance,
    problematic_clues, PairStats,
};
pub use synth::{
    rebase_into_block, synthesize, synthesize_ipv4, synthesize_ipv4_modern, synthesize_ipv6,
    SynthConfig,
};
pub use traffic::{generate, TrafficConfig, TrafficModel, ZipfSampler};
