//! Destination-address generation following the paper's Section 6
//! methodology.
//!
//! For each simulated packet the paper picks a random destination,
//! computes its BMP at the sending router R1, and keeps the destination
//! only if that BMP is a vertex of the receiving router R2's trie — a
//! proxy for “R2 is a plausible next hop for this packet”. (The paper
//! notes the discarded destinations would only *improve* the results:
//! when the clue is not even a vertex at R2, the clue table answers in
//! the minimum one access.) Both the filtered and unfiltered populations
//! are available here; the experiments report the filtered one like the
//! paper and cite the unfiltered one as a robustness check.

use clue_trie::{Address, BinaryTrie, Prefix};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

/// How raw destinations are drawn before filtering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficModel {
    /// Uniform over the whole address space (mostly misses small
    /// tables; kept for completeness).
    Uniform,
    /// Pick a random sender prefix, then a uniform host inside it — the
    /// paper's implicit model (“a random destination is chosen, and its
    /// BMP in R1 is computed”: a destination with a BMP).
    CoveredBySender,
    /// Like [`TrafficModel::CoveredBySender`] but prefix popularity
    /// follows a Zipf law with the given exponent — the skew real
    /// traffic exhibits and the regime in which the Section 3.5 clue
    /// cache reaches the ≈90 % hit rates the paper cites for lookup
    /// caches.
    ZipfCovered(f64),
}

/// Traffic-generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrafficConfig {
    /// Number of destinations to produce (after filtering).
    pub count: usize,
    /// Raw draw model.
    pub model: TrafficModel,
    /// Apply the paper's vertex-at-receiver filter.
    pub filter_vertex_at_receiver: bool,
    /// RNG seed.
    pub seed: u64,
}

impl TrafficConfig {
    /// The paper's setup: 10 000 covered destinations, vertex-filtered.
    pub fn paper(seed: u64) -> Self {
        TrafficConfig {
            count: 10_000,
            model: TrafficModel::CoveredBySender,
            filter_vertex_at_receiver: true,
            seed,
        }
    }
}

/// A seeded Zipf rank sampler over `n` items: popularity rank is
/// assigned by a deterministic shuffle (so it does not correlate with
/// item order) and draws follow `1/rank^s`. This is the locality
/// model behind [`TrafficModel::ZipfCovered`], shared with the fleet
/// simulator's destination-locality draw.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    order: Vec<usize>,
}

impl ZipfSampler {
    /// Builds the sampler, consuming `n - 1` shuffle draws from `rng`.
    pub fn new(n: usize, exponent: f64, rng: &mut StdRng) -> Self {
        let mut order: Vec<usize> = (0..n).collect();
        // Deterministic shuffle: popularity should not correlate with
        // item value.
        for i in (1..order.len()).rev() {
            order.swap(i, rng.random_range(0..=i));
        }
        let mut acc = 0.0;
        let cdf: Vec<f64> = (1..=n)
            .map(|rank| {
                acc += 1.0 / (rank as f64).powf(exponent);
                acc
            })
            .collect();
        ZipfSampler { cdf, order }
    }

    /// Number of items the sampler draws over.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` iff the sampler has no items (every draw returns `None`).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Draws one item index (one `rng` draw), `None` if empty.
    pub fn sample(&self, rng: &mut StdRng) -> Option<usize> {
        let &total = self.cdf.last()?;
        let x = rng.random_range(0.0..total);
        let i = self.cdf.partition_point(|&c| c < x).min(self.cdf.len() - 1);
        Some(self.order[i])
    }
}

/// Generates destinations for a sender/receiver pair per `config`.
///
/// Returns up to `config.count` addresses (fewer only if the acceptance
/// rate is pathologically low, bounded by an attempt cap).
pub fn generate<A: Address>(
    sender: &[Prefix<A>],
    receiver: &[Prefix<A>],
    config: &TrafficConfig,
) -> Vec<A> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let t1: BinaryTrie<A, ()> = sender.iter().map(|p| (*p, ())).collect();
    let t2: BinaryTrie<A, ()> = receiver.iter().map(|p| (*p, ())).collect();
    let width_mask: u128 =
        if A::BITS as u32 >= 128 { u128::MAX } else { (1u128 << A::BITS) - 1 };

    // For Zipf draws: rank popularity over a random permutation of
    // sender prefixes (rank 1 = most popular).
    let zipf: Option<ZipfSampler> = match config.model {
        TrafficModel::ZipfCovered(s) => Some(ZipfSampler::new(sender.len(), s, &mut rng)),
        _ => None,
    };

    let mut out = Vec::with_capacity(config.count);
    let mut attempts = 0usize;
    let cap = config.count.saturating_mul(200) + 1000;
    while out.len() < config.count && attempts < cap {
        attempts += 1;
        let raw: u128 = ((rng.random::<u64>() as u128) << 64) | rng.random::<u64>() as u128;
        let dest = match config.model {
            TrafficModel::Uniform => A::from_u128(raw & width_mask),
            TrafficModel::CoveredBySender | TrafficModel::ZipfCovered(_) => {
                let p = match &zipf {
                    None => match sender.choose(&mut rng) {
                        Some(&p) => p,
                        None => break,
                    },
                    Some(sampler) => match sampler.sample(&mut rng) {
                        Some(i) => sender[i],
                        None => break,
                    },
                };
                let span = (A::BITS - p.len()) as u32;
                let host = if span == 0 {
                    0
                } else if span >= 128 {
                    raw
                } else {
                    raw & ((1u128 << span) - 1)
                };
                A::from_u128(p.bits().to_u128() | host)
            }
        };
        if config.filter_vertex_at_receiver {
            // The paper's acceptance test: the sender's BMP for this
            // destination must be a vertex of the receiver's trie.
            let Some(bmp) = t1.lookup(dest).map(|r| t1.prefix(r)) else {
                continue;
            };
            if t2.node_of_prefix(&bmp).is_none() {
                continue;
            }
        }
        out.push(dest);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbor::{derive_neighbor, NeighborConfig};
    use crate::synth::synthesize_ipv4;
    use clue_trie::Ip4;

    #[test]
    fn generates_requested_count_for_similar_pair() {
        let sender = synthesize_ipv4(2000, 1);
        let receiver = derive_neighbor(&sender, &NeighborConfig::same_isp(2));
        let cfg = TrafficConfig { count: 500, ..TrafficConfig::paper(3) };
        let dests = generate(&sender, &receiver, &cfg);
        assert_eq!(dests.len(), 500);
    }

    #[test]
    fn filtered_destinations_satisfy_the_paper_invariant() {
        let sender = synthesize_ipv4(1000, 4);
        let receiver = derive_neighbor(&sender, &NeighborConfig::route_servers(5));
        let cfg = TrafficConfig { count: 300, ..TrafficConfig::paper(6) };
        let t1: clue_trie::BinaryTrie<Ip4, ()> = sender.iter().map(|p| (*p, ())).collect();
        let t2: clue_trie::BinaryTrie<Ip4, ()> = receiver.iter().map(|p| (*p, ())).collect();
        for d in generate(&sender, &receiver, &cfg) {
            let bmp = t1.lookup(d).expect("covered destination");
            assert!(t2.node_of_prefix(&t1.prefix(bmp)).is_some());
        }
    }

    #[test]
    fn covered_model_destinations_match_some_sender_prefix() {
        let sender = synthesize_ipv4(500, 7);
        let cfg = TrafficConfig {
            count: 200,
            model: TrafficModel::CoveredBySender,
            filter_vertex_at_receiver: false,
            seed: 8,
        };
        let t1: clue_trie::BinaryTrie<Ip4, ()> = sender.iter().map(|p| (*p, ())).collect();
        for d in generate(&sender, &sender, &cfg) {
            assert!(t1.lookup(d).is_some());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let sender = synthesize_ipv4(300, 9);
        let cfg = TrafficConfig { count: 100, ..TrafficConfig::paper(10) };
        assert_eq!(generate(&sender, &sender, &cfg), generate(&sender, &sender, &cfg));
    }

    #[test]
    fn zipf_traffic_is_skewed() {
        let sender = synthesize_ipv4(2000, 20);
        let cfg = TrafficConfig {
            count: 3000,
            model: TrafficModel::ZipfCovered(1.1),
            filter_vertex_at_receiver: false,
            seed: 21,
        };
        let t1: clue_trie::BinaryTrie<Ip4, ()> = sender.iter().map(|p| (*p, ())).collect();
        let mut counts = std::collections::HashMap::new();
        for d in generate(&sender, &sender, &cfg) {
            let bmp = t1.lookup(d).map(|r| t1.prefix(r)).unwrap();
            *counts.entry(bmp).or_insert(0usize) += 1;
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // The top 10% of prefixes should carry well over half the traffic.
        let top: usize = freqs.iter().take(freqs.len() / 10 + 1).sum();
        let total: usize = freqs.iter().sum();
        assert!(
            top * 2 > total,
            "Zipf skew too weak: top decile {top} of {total}"
        );
    }

    #[test]
    fn uniform_model_mostly_misses_small_tables() {
        let sender = synthesize_ipv4(100, 11);
        let cfg = TrafficConfig {
            count: 100,
            model: TrafficModel::Uniform,
            filter_vertex_at_receiver: false,
            seed: 12,
        };
        let t1: clue_trie::BinaryTrie<Ip4, ()> = sender.iter().map(|p| (*p, ())).collect();
        let dests = generate(&sender, &sender, &cfg);
        let hits = dests.iter().filter(|&&d| t1.lookup(d).is_some()).count();
        assert!(hits < dests.len() / 2);
    }
}
