//! Table and pair statistics — the quantities of the paper's Tables 1–3.

use std::collections::BTreeSet;

use clue_core::classify_all;
use clue_telemetry::{Registry, PREFIX_LENGTH_BOUNDS};
use clue_trie::{Address, BinaryTrie, Prefix};

/// Number of prefixes two tables share (Table 3, “the intersection
/// size”).
pub fn intersection_size<A: Address>(a: &[Prefix<A>], b: &[Prefix<A>]) -> usize {
    let sa: BTreeSet<_> = a.iter().collect();
    b.iter().filter(|p| sa.contains(p)).count()
}

/// Number of clues from `sender` for which Claim 1 does **not** hold at
/// `receiver` — the paper's Table 2 (“problematic clues”).
pub fn problematic_clues<A: Address>(sender: &[Prefix<A>], receiver: &[Prefix<A>]) -> usize {
    let t1: BinaryTrie<A, ()> = sender.iter().map(|p| (*p, ())).collect();
    let t2: BinaryTrie<A, ()> = receiver.iter().map(|p| (*p, ())).collect();
    classify_all(&t1, &t2).iter().filter(|(_, c)| c.is_problematic()).count()
}

/// Prefix-length histogram, indexed by length.
pub fn length_histogram<A: Address>(prefixes: &[Prefix<A>]) -> Vec<usize> {
    let mut h = vec![0usize; A::BITS as usize + 1];
    for p in prefixes {
        h[p.len() as usize] += 1;
    }
    h
}

/// L1 distance between a table's empirical prefix-length distribution
/// and the distribution a [`SynthConfig`](crate::SynthConfig) asked
/// for, after clamping each configured weight to the config's length
/// capacity (a saturated length *cannot* reach its raw weight, and the
/// clamped mass is renormalized over the rest — so a perfectly-behaved
/// generator scores near 0 even when short lengths are full). Range
/// `[0, 2]`; `0` is a perfect match.
pub fn length_l1_distance<A: Address>(
    prefixes: &[Prefix<A>],
    config: &crate::SynthConfig,
) -> f64 {
    if prefixes.is_empty() {
        return 0.0;
    }
    let n = prefixes.len() as f64;
    let total: f64 = config.histogram.iter().map(|(_, w)| w).sum();
    // Clamp each weight to its capacity share, then renormalize.
    let clamped: Vec<(u8, f64)> = config
        .histogram
        .iter()
        .map(|&(l, w)| (l, (w / total).min(config.length_capacity(l) as f64 / n)))
        .collect();
    let clamped_total: f64 = clamped.iter().map(|(_, w)| w).sum();
    let h = length_histogram(prefixes);
    let mut dist = 0.0;
    for (len, count) in h.iter().enumerate() {
        let want = clamped
            .iter()
            .find(|&&(l, _)| l as usize == len)
            .map(|&(_, w)| w / clamped_total)
            .unwrap_or(0.0);
        dist += (*count as f64 / n - want).abs();
    }
    dist
}

/// Summary of a sender→receiver pair, printable like the paper's tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairStats {
    /// Prefixes in the sender's table (Table 1).
    pub sender_size: usize,
    /// Prefixes in the receiver's table (Table 1).
    pub receiver_size: usize,
    /// Shared prefixes (Table 3).
    pub intersection: usize,
    /// Clues violating Claim 1 at the receiver (Table 2).
    pub problematic: usize,
}

impl PairStats {
    /// Computes all pair statistics.
    pub fn compute<A: Address>(sender: &[Prefix<A>], receiver: &[Prefix<A>]) -> Self {
        PairStats {
            sender_size: sender.len(),
            receiver_size: receiver.len(),
            intersection: intersection_size(sender, receiver),
            problematic: problematic_clues(sender, receiver),
        }
    }

    /// Problematic clues as a fraction of the sender's clue set.
    pub fn problematic_fraction(&self) -> f64 {
        if self.sender_size == 0 {
            0.0
        } else {
            self.problematic as f64 / self.sender_size as f64
        }
    }

    /// Intersection as a fraction of the smaller table.
    pub fn similarity(&self) -> f64 {
        let m = self.sender_size.min(self.receiver_size);
        if m == 0 {
            0.0
        } else {
            self.intersection as f64 / m as f64
        }
    }

    /// Mirrors the pair summary into `registry` as
    /// `clue_tablegen_*` gauges — the registry view of a table build.
    pub fn export_into(&self, registry: &Registry) {
        registry
            .gauge("clue_tablegen_sender_size", "Prefixes in the sender's table")
            .set(self.sender_size as f64);
        registry
            .gauge("clue_tablegen_receiver_size", "Prefixes in the receiver's table")
            .set(self.receiver_size as f64);
        registry
            .gauge("clue_tablegen_intersection", "Prefixes shared by the pair")
            .set(self.intersection as f64);
        registry
            .gauge("clue_tablegen_problematic", "Clues violating Claim 1 at the receiver")
            .set(self.problematic as f64);
        registry
            .gauge("clue_tablegen_similarity", "Intersection over the smaller table")
            .set(self.similarity());
        registry
            .gauge(
                "clue_tablegen_problematic_fraction",
                "Problematic clues over the sender's clue set",
            )
            .set(self.problematic_fraction());
    }
}

/// Records every prefix length of `prefixes` into a registry histogram
/// named `{name}` (bounded by [`PREFIX_LENGTH_BOUNDS`]), so exporters can
/// publish the table's length distribution alongside the pair gauges.
pub fn export_length_histogram<A: Address>(
    registry: &Registry,
    name: &str,
    prefixes: &[Prefix<A>],
) {
    let h = registry.histogram(name, "Prefix length distribution", PREFIX_LENGTH_BOUNDS);
    for p in prefixes {
        h.observe(p.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbor::{derive_neighbor, NeighborConfig};
    use crate::synth::synthesize_ipv4;
    use clue_trie::Ip4;

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    #[test]
    fn intersection_counts_shared() {
        let a = vec![p("10.0.0.0/8"), p("20.0.0.0/8")];
        let b = vec![p("20.0.0.0/8"), p("30.0.0.0/8")];
        assert_eq!(intersection_size(&a, &b), 1);
        assert_eq!(intersection_size(&a, &a), 2);
        assert_eq!(intersection_size(&a, &[]), 0);
    }

    #[test]
    fn problematic_clue_count_matches_classifier() {
        let sender = vec![p("10.0.0.0/8"), p("20.0.0.0/8")];
        let receiver = vec![p("10.0.0.0/8"), p("10.5.0.0/16"), p("20.0.0.0/8")];
        assert_eq!(problematic_clues(&sender, &receiver), 1);
    }

    #[test]
    fn histogram_sums_to_len() {
        let t = synthesize_ipv4(700, 1);
        let h = length_histogram(&t);
        assert_eq!(h.iter().sum::<usize>(), 700);
        assert_eq!(h.len(), 33);
    }

    #[test]
    fn pair_stats_export_into_registry() {
        let sender = vec![p("10.0.0.0/8"), p("20.0.0.0/8")];
        let receiver = vec![p("10.0.0.0/8"), p("10.5.0.0/16"), p("20.0.0.0/8")];
        let s = PairStats::compute(&sender, &receiver);
        let registry = Registry::new();
        s.export_into(&registry);
        assert_eq!(registry.gauge("clue_tablegen_sender_size", "").get(), 2.0);
        assert_eq!(registry.gauge("clue_tablegen_receiver_size", "").get(), 3.0);
        assert_eq!(registry.gauge("clue_tablegen_problematic", "").get(), 1.0);
        export_length_histogram(&registry, "clue_tablegen_sender_length", &sender);
        let h = registry
            .histogram("clue_tablegen_sender_length", "", PREFIX_LENGTH_BOUNDS)
            .snapshot();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 16);
    }

    #[test]
    fn length_l1_distance_scores_shape_fidelity() {
        use crate::synth::{synthesize, SynthConfig};
        let cfg = SynthConfig::ipv4_modern(50_000, 31);
        let t = synthesize::<Ip4>(&cfg);
        let own = length_l1_distance(&t, &cfg);
        assert!(own < 0.2, "own-config distance {own:.4}");
        // A 1999-shaped table is visibly far from the modern histogram.
        let legacy = synthesize_ipv4(50_000, 31);
        let cross = length_l1_distance(&legacy, &cfg);
        assert!(cross > own + 0.1, "cross {cross:.4} vs own {own:.4}");
        assert!(length_l1_distance::<Ip4>(&[], &cfg) == 0.0);
    }

    #[test]
    fn pair_stats_land_in_paper_bands_for_isp_pair() {
        // Calibration check: a same-ISP pair must land in the bands the
        // paper reports (similarity ≥ 0.98, problematic ≤ 3 %).
        let sender = synthesize_ipv4(6000, 21);
        let receiver = derive_neighbor(&sender, &NeighborConfig::same_isp(22));
        let s = PairStats::compute(&sender, &receiver);
        assert!(s.similarity() > 0.98, "similarity {}", s.similarity());
        assert!(s.problematic_fraction() < 0.03, "problematic {}", s.problematic_fraction());
        assert!(s.problematic > 0);
    }
}
