//! Plain-text forwarding-table format: load real tables when available.
//!
//! One prefix per line, `A.B.C.D/len` optionally followed by whitespace
//! and a next-hop token (kept as an opaque string); `#` starts a comment.
//! This replaces the paper's `sh ip route` snapshots with a format any
//! real table can be converted to.

use core::fmt;
use core::str::FromStr;

use clue_trie::{Address, ParseAddressError, Prefix};

/// A parsed table line: the prefix and its (optional) next-hop token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableLine<A: Address> {
    /// The route prefix.
    pub prefix: Prefix<A>,
    /// Opaque next-hop token, if present.
    pub next_hop: Option<String>,
}

/// Error from [`parse_table`], carrying the offending line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTableError {
    /// 1-based line number.
    pub line: usize,
    /// The underlying address error.
    pub source: ParseAddressError,
}

impl fmt::Display for ParseTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.source)
    }
}

impl std::error::Error for ParseTableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Parses a whole table file.
pub fn parse_table<A>(text: &str) -> Result<Vec<TableLine<A>>, ParseTableError>
where
    A: Address + FromStr<Err = ParseAddressError>,
{
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let prefix_txt = fields.next().expect("non-empty line has a first field");
        let prefix = prefix_txt
            .parse::<Prefix<A>>()
            .map_err(|source| ParseTableError { line: i + 1, source })?;
        let next_hop = fields.next().map(str::to_owned);
        out.push(TableLine { prefix, next_hop });
    }
    Ok(out)
}

/// Parses just the prefixes (next hops discarded, duplicates removed,
/// sorted) — the form the generators and engines consume.
pub fn parse_prefixes<A>(text: &str) -> Result<Vec<Prefix<A>>, ParseTableError>
where
    A: Address + FromStr<Err = ParseAddressError>,
{
    let mut v: Vec<Prefix<A>> = parse_table(text)?.into_iter().map(|l| l.prefix).collect();
    v.sort();
    v.dedup();
    Ok(v)
}

/// Serializes prefixes back to the text format.
pub fn format_prefixes<A: Address>(prefixes: &[Prefix<A>]) -> String {
    let mut s = String::new();
    for p in prefixes {
        s.push_str(&p.to_string());
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_trie::Ip4;

    #[test]
    fn parses_prefixes_comments_and_next_hops() {
        let text = "\
# a snapshot
10.0.0.0/8 192.0.2.1
10.1.0.0/16\t192.0.2.2   # inline comment

192.168.0.0/16
";
        let lines = parse_table::<Ip4>(text).unwrap();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].prefix.to_string(), "10.0.0.0/8");
        assert_eq!(lines[0].next_hop.as_deref(), Some("192.0.2.1"));
        assert_eq!(lines[2].next_hop, None);
    }

    #[test]
    fn reports_line_numbers_on_error() {
        let text = "10.0.0.0/8\nnot-a-prefix\n";
        let err = parse_table::<Ip4>(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn roundtrip_through_format() {
        let prefixes = crate::synth::synthesize_ipv4(200, 1);
        let text = format_prefixes(&prefixes);
        let back = parse_prefixes::<Ip4>(&text).unwrap();
        assert_eq!(back, prefixes);
    }

    #[test]
    fn dedups_and_sorts() {
        let text = "20.0.0.0/8\n10.0.0.0/8\n20.0.0.0/8\n";
        let v = parse_prefixes::<Ip4>(text).unwrap();
        assert_eq!(v.len(), 2);
        assert!(v[0] < v[1]);
    }
}
