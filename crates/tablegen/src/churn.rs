//! BGP-style route-update streams for the live-churn workload.
//!
//! A deployed router's table is never still: prefixes are announced,
//! withdrawn and re-announced with changed attributes, in *bursts*
//! (session resets, policy pushes) and with strong *prefix locality*
//! (an unstable AS flaps the same neighborhood of prefixes over and
//! over). This module generates such a stream against a base table,
//! deterministically in a seed, batched the way a real feed is
//! processed — one snapshot republish per batch.
//!
//! The stream maintains the invariants a consumer needs to apply it
//! blindly: an [`UpdateKind::Announce`] names a prefix that is not in
//! the table at that point, a [`UpdateKind::Withdraw`] or
//! [`UpdateKind::Modify`] names one that is. [`end_state`] folds a
//! stream over the base table, giving the reference answer for
//! from-scratch rebuild checks (`clue churn --check`).

use std::collections::BTreeSet;

use clue_trie::{Address, Prefix};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

/// What one route update does to the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// A new prefix enters the table.
    Announce,
    /// A present prefix leaves the table.
    Withdraw,
    /// A present prefix changes attributes (next hop, path) without
    /// changing the prefix set — the dominant update type in real
    /// feeds, and the one that forces a reclassify without an insert
    /// or delete.
    Modify,
}

/// One route update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteUpdate<A: Address> {
    /// What happens.
    pub kind: UpdateKind,
    /// To which prefix.
    pub prefix: Prefix<A>,
}

/// Parameters of the update-stream generator.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Total updates across the whole stream.
    pub updates: usize,
    /// Mean updates per batch (one batch = one snapshot republish).
    pub mean_batch: usize,
    /// Burstiness in `[0, 1]`: 0 draws every batch size uniformly
    /// around the mean; higher values mix in rare batches an order of
    /// magnitude larger (session resets).
    pub burstiness: f64,
    /// Prefix locality in `[0, 1]`: the probability that an update
    /// targets the neighborhood of a recently-touched prefix (flap
    /// clusters) instead of a uniformly random victim.
    pub locality: f64,
    /// Fraction of updates that withdraw a live prefix.
    pub withdraw_fraction: f64,
    /// Fraction of updates that modify a live prefix in place.
    pub modify_fraction: f64,
    /// The table never shrinks below this many prefixes (withdraws
    /// redraw as announces at the floor).
    pub min_table: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ChurnConfig {
    /// BGP-feed defaults: modify-dominated (~40 %), bursty, with
    /// strong flap locality, keeping at least half the base table.
    pub fn bgp(updates: usize, seed: u64) -> Self {
        ChurnConfig {
            updates,
            mean_batch: 8,
            burstiness: 0.3,
            locality: 0.6,
            withdraw_fraction: 0.25,
            modify_fraction: 0.40,
            min_table: 0, // resolved against the base table at generation
            seed,
        }
    }
}

/// How many recently-touched prefixes the locality model remembers.
const RECENT_WINDOW: usize = 32;
/// Announced prefixes stay within the paper's IPv4 operating band.
const MIN_LEN: u8 = 8;
const MAX_LEN: u8 = 28;

/// Generates a batched update stream against `base`.
///
/// Deterministic in `config.seed`. Every batch is non-empty, batch
/// sizes follow the burstiness model, and the stream totals exactly
/// `config.updates` updates. See the module docs for the apply-order
/// invariants the stream guarantees.
pub fn generate_churn<A: Address>(
    base: &[Prefix<A>],
    config: &ChurnConfig,
) -> Vec<Vec<RouteUpdate<A>>> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut live: Vec<Prefix<A>> = base.to_vec();
    let mut member: BTreeSet<Prefix<A>> = live.iter().copied().collect();
    let mut recent: Vec<Prefix<A>> = Vec::with_capacity(RECENT_WINDOW);
    let min_table = if config.min_table > 0 { config.min_table } else { base.len() / 2 };

    let mut batches = Vec::new();
    let mut emitted = 0usize;
    while emitted < config.updates {
        let size = batch_size(&mut rng, config).min(config.updates - emitted);
        let mut batch = Vec::with_capacity(size);
        for _ in 0..size {
            let update = next_update(
                &mut rng,
                config,
                &mut live,
                &mut member,
                &mut recent,
                min_table,
            );
            batch.push(update);
        }
        emitted += batch.len();
        batches.push(batch);
    }
    batches
}

/// Folds a stream over `base`: announces insert, withdraws remove,
/// modifies leave the set unchanged. Returns the sorted end-state
/// table — what a from-scratch rebuild should be built from.
pub fn end_state<A: Address>(
    base: &[Prefix<A>],
    batches: &[Vec<RouteUpdate<A>>],
) -> Vec<Prefix<A>> {
    let mut set: BTreeSet<Prefix<A>> = base.iter().copied().collect();
    for update in batches.iter().flatten() {
        match update.kind {
            UpdateKind::Announce => {
                set.insert(update.prefix);
            }
            UpdateKind::Withdraw => {
                set.remove(&update.prefix);
            }
            UpdateKind::Modify => {}
        }
    }
    set.into_iter().collect()
}

fn batch_size(rng: &mut StdRng, config: &ChurnConfig) -> usize {
    let mean = config.mean_batch.max(1);
    if config.burstiness > 0.0 && rng.random_bool((config.burstiness * 0.25).min(1.0)) {
        mean * rng.random_range(4..=12usize)
    } else {
        rng.random_range(1..=2 * mean)
    }
}

fn next_update<A: Address>(
    rng: &mut StdRng,
    config: &ChurnConfig,
    live: &mut Vec<Prefix<A>>,
    member: &mut BTreeSet<Prefix<A>>,
    recent: &mut Vec<Prefix<A>>,
    min_table: usize,
) -> RouteUpdate<A> {
    let roll: f64 = rng.random_range(0.0..1.0);
    let can_shrink = live.len() > min_table && !live.is_empty();
    let can_touch = !live.is_empty();

    let kind = if roll < config.withdraw_fraction && can_shrink {
        UpdateKind::Withdraw
    } else if roll < config.withdraw_fraction + config.modify_fraction && can_touch {
        UpdateKind::Modify
    } else {
        UpdateKind::Announce
    };

    let prefix = match kind {
        UpdateKind::Withdraw | UpdateKind::Modify => {
            let victim = pick_live(rng, config, live, member, recent);
            if kind == UpdateKind::Withdraw {
                member.remove(&victim);
                let at = live.iter().position(|p| *p == victim).expect("victim is live");
                live.swap_remove(at);
            }
            victim
        }
        UpdateKind::Announce => {
            let fresh = pick_fresh(rng, config, member, recent);
            member.insert(fresh);
            live.push(fresh);
            fresh
        }
    };

    touch(recent, prefix);
    RouteUpdate { kind, prefix }
}

/// A live victim: with probability `locality` a recently-touched
/// prefix that is still live, otherwise uniform over the table.
fn pick_live<A: Address>(
    rng: &mut StdRng,
    config: &ChurnConfig,
    live: &[Prefix<A>],
    member: &BTreeSet<Prefix<A>>,
    recent: &[Prefix<A>],
) -> Prefix<A> {
    if !recent.is_empty() && rng.random_bool(config.locality) {
        for _ in 0..4 {
            let candidate = *recent.choose(rng).expect("recent is non-empty");
            if member.contains(&candidate) {
                return candidate;
            }
        }
    }
    *live.choose(rng).expect("live is non-empty")
}

/// A prefix not currently in the table: with probability `locality` a
/// mutation of a recently-touched prefix (sibling, refinement or
/// aggregate — flap clusters share structure), otherwise uniformly
/// random in the operating band.
fn pick_fresh<A: Address>(
    rng: &mut StdRng,
    config: &ChurnConfig,
    member: &BTreeSet<Prefix<A>>,
    recent: &[Prefix<A>],
) -> Prefix<A> {
    if !recent.is_empty() && rng.random_bool(config.locality) {
        for _ in 0..8 {
            let seed = *recent.choose(rng).expect("recent is non-empty");
            let candidate = mutate(rng, seed);
            if !member.contains(&candidate) {
                return candidate;
            }
        }
    }
    loop {
        let candidate = random_prefix(rng);
        if !member.contains(&candidate) {
            return candidate;
        }
    }
}

/// A nearby variation of `seed`: its sibling, a refinement below it,
/// or an aggregate above it, clamped to the operating band.
fn mutate<A: Address>(rng: &mut StdRng, seed: Prefix<A>) -> Prefix<A> {
    let len = seed.len().clamp(MIN_LEN, MAX_LEN);
    let seed = if seed.len() == len { seed } else { seed.truncate(len.min(seed.len())) };
    match rng.random_range(0u32..3) {
        // Sibling: same parent, last bit flipped.
        0 if seed.len() > MIN_LEN => {
            let last = seed.bit(seed.len() - 1);
            seed.parent().expect("len > 0").child(!last)
        }
        // Refinement: extend by 1–4 random bits.
        1 if seed.len() < MAX_LEN => {
            let extra = rng.random_range(1..=4u8).min(MAX_LEN - seed.len());
            let mut p = seed;
            for _ in 0..extra {
                p = p.child(rng.random_bool(0.5));
            }
            p
        }
        // Aggregate: drop 1–4 trailing bits.
        _ => {
            let drop = rng.random_range(1..=4u8).min(seed.len().saturating_sub(MIN_LEN));
            seed.truncate(seed.len() - drop)
        }
    }
}

/// A uniformly random prefix in the operating band, weighted toward
/// the /16–/24 mass of a real table.
fn random_prefix<A: Address>(rng: &mut StdRng) -> Prefix<A> {
    const LENGTHS: [u8; 8] = [12, 16, 18, 20, 22, 24, 24, 24];
    let len = *LENGTHS.choose(rng).expect("non-empty");
    let len = len.min(A::BITS);
    let mut bits = 0u128;
    for _ in 0..len {
        bits = (bits << 1) | u128::from(rng.random_bool(0.5));
    }
    bits <<= u32::from(A::BITS - len);
    Prefix::new(A::from_u128(bits), len)
}

fn touch<A: Address>(recent: &mut Vec<Prefix<A>>, prefix: Prefix<A>) {
    if recent.len() == RECENT_WINDOW {
        recent.remove(0);
    }
    recent.push(prefix);
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_trie::Ip4;

    fn base() -> Vec<Prefix<Ip4>> {
        crate::synthesize_ipv4(400, 7)
    }

    #[test]
    fn streams_are_deterministic_in_the_seed() {
        let base = base();
        let cfg = ChurnConfig::bgp(500, 99);
        let a = generate_churn(&base, &cfg);
        let b = generate_churn(&base, &cfg);
        assert_eq!(a, b);
        let c = generate_churn(&base, &ChurnConfig::bgp(500, 100));
        assert_ne!(a, c, "a different seed must give a different stream");
    }

    #[test]
    fn streams_apply_blindly() {
        // Replaying the stream against a set never sees an announce of
        // a present prefix or a withdraw/modify of an absent one.
        let base = base();
        let cfg = ChurnConfig::bgp(1_000, 3);
        let batches = generate_churn(&base, &cfg);
        let total: usize = batches.iter().map(Vec::len).sum();
        assert_eq!(total, cfg.updates);
        assert!(batches.iter().all(|b| !b.is_empty()));

        let mut set: BTreeSet<Prefix<Ip4>> = base.iter().copied().collect();
        for u in batches.iter().flatten() {
            assert!(!u.prefix.is_empty(), "no root announcements");
            match u.kind {
                UpdateKind::Announce => assert!(set.insert(u.prefix), "{} already live", u.prefix),
                UpdateKind::Withdraw => assert!(set.remove(&u.prefix), "{} not live", u.prefix),
                UpdateKind::Modify => assert!(set.contains(&u.prefix), "{} not live", u.prefix),
            }
            assert!(set.len() >= base.len() / 2, "table floor respected");
        }
        let end = end_state(&base, &batches);
        assert_eq!(end, set.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn the_mix_contains_every_update_kind() {
        let base = base();
        let batches = generate_churn(&base, &ChurnConfig::bgp(1_000, 11));
        let count = |k: UpdateKind| {
            batches.iter().flatten().filter(|u| u.kind == k).count()
        };
        assert!(count(UpdateKind::Announce) > 100);
        assert!(count(UpdateKind::Withdraw) > 100);
        assert!(count(UpdateKind::Modify) > 100);
    }

    #[test]
    fn burstiness_produces_outsized_batches() {
        let base = base();
        let mut smooth = ChurnConfig::bgp(2_000, 5);
        smooth.burstiness = 0.0;
        let mut bursty = smooth.clone();
        bursty.burstiness = 1.0;
        let max_batch = |cfg: &ChurnConfig| {
            generate_churn(&base, cfg).iter().map(Vec::len).max().unwrap()
        };
        let (smooth_max, bursty_max) = (max_batch(&smooth), max_batch(&bursty));
        assert!(smooth_max <= 2 * smooth.mean_batch);
        assert!(bursty_max >= 4 * bursty.mean_batch, "bursts reach several means");
    }

    #[test]
    fn locality_clusters_updates() {
        // With full locality, consecutive updates overwhelmingly share
        // a /12 neighborhood with an earlier touched prefix; with zero
        // locality they rarely do (fresh draws are uniform).
        let base = base();
        let near_share = |locality: f64| {
            let mut cfg = ChurnConfig::bgp(800, 21);
            cfg.locality = locality;
            cfg.withdraw_fraction = 0.25;
            cfg.modify_fraction = 0.0; // announces + withdraws only
            let batches = generate_churn(&base, &cfg);
            let mut touched: Vec<Prefix<Ip4>> = Vec::new();
            let mut near = 0usize;
            let mut announces = 0usize;
            for u in batches.iter().flatten() {
                if u.kind == UpdateKind::Announce {
                    announces += 1;
                    let stem = u.prefix.truncate(12.min(u.prefix.len()));
                    if touched.iter().any(|t| {
                        t.len() >= 12 && t.truncate(12) == stem
                    }) {
                        near += 1;
                    }
                }
                touched.push(u.prefix);
            }
            near as f64 / announces as f64
        };
        let clustered = near_share(1.0);
        let scattered = near_share(0.0);
        assert!(clustered > 0.5, "full locality clusters announces ({clustered})");
        assert!(clustered > scattered + 0.2, "{clustered} vs {scattered}");
    }
}
