//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` API it actually
//! uses: a seedable generator ([`rngs::StdRng`]), the [`RngExt`]
//! convenience methods (`random`, `random_range`, `random_bool`) and
//! slice selection ([`seq::IndexedRandom`]).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! well distributed, and fully deterministic for a given seed, which is
//! all the simulations and tests here need. It makes no cryptographic
//! claims whatsoever.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of raw random 64-bit words. Every higher-level method is a
/// blanket extension over this.
pub trait RngCore {
    /// The next raw 64-bit word from the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Types producible by [`RngExt::random`] (the `Standard` distribution
/// of the real crate).
pub trait Random {
    /// Draws one uniformly distributed value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_uint {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for i128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::random(rng) as i128
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`RngExt::random_range`].
///
/// `T` is a trait *parameter* (not an associated type) to match the
/// real crate's inference behavior: `rng.random_range(0..n)` lets the
/// literal's type flow in from the call site (e.g. a `usize` index).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u128;
                let draw = u128::random(rng) % span;
                (self.start as $u).wrapping_add(draw as $u) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u128 + 1;
                if span == 0 {
                    // Full-width inclusive range of a 128-bit type.
                    return u128::random(rng) as $u as $t;
                }
                let draw = u128::random(rng) % span;
                (start as $u).wrapping_add(draw as $u) as $t
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

/// The convenience methods everything in the workspace calls
/// (`rand`'s `Rng` extension trait).
pub trait RngExt: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniformly random value from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Random selection from indexable sequences.
    pub trait IndexedRandom<T> {
        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T>;
    }

    impl<T> IndexedRandom<T> for [T] {
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.random::<u64>() == b.random::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(8u8..=24);
            assert!((8..=24).contains(&w));
            let f = rng.random_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let i = rng.random_range(0..3);
            assert!((0..3).contains(&i));
            let big = rng.random_range(0u128..(1u128 << 90));
            assert!(big < 1u128 << 90);
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_probability_is_roughly_honored() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!((0..10).all(|_| !rng.random_bool(0.0)));
        assert!((0..10).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn choose_covers_the_slice_and_handles_empty() {
        let mut rng = StdRng::seed_from_u64(17);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(19);
        for _ in 0..1000 {
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
