//! The clue as an IP option — Section 5.3: “it is quite possible that
//! the 5 bits find their place in the current IP header, e.g., in the
//! options field”.
//!
//! Layout (an RFC 4727-style experimental option, kind 94):
//!
//! ```text
//! +--------+--------+--------+ - - - - - - - - -+
//! |  kind  | length |  clue  |  index (16 bits) |
//! |  0x5E  | 3 or 5 | 5 bits |  optional        |
//! +--------+--------+--------+ - - - - - - - - -+
//! ```
//!
//! * `clue` — the encoded prefix length (`len − 1`, 5 bits for IPv4,
//!   7 for IPv6); the upper bit 7 flags the presence of the index;
//! * `index` — the paper's 16-bit indexing-technique slot, big-endian.

use clue_core::{ClueHeader, EncodedClue};
use clue_trie::Address;

use crate::error::WireError;

/// The experimental option kind used for clues (RFC 4727 value).
pub const CLUE_OPTION_KIND: u8 = 0x5E;

/// Flag bit marking that a 16-bit index follows the clue byte.
const INDEX_FLAG: u8 = 0x80;

/// The largest encoded clue option: kind + length + clue byte + 16-bit
/// index. A stack buffer of this size always fits the `_into` encoders.
pub const MAX_CLUE_OPTION_LEN: usize = 5;

/// Length in bytes the encoded option for `header` will occupy (zero
/// when no clue is attached).
pub fn clue_option_len(header: &ClueHeader) -> usize {
    match (header.clue, header.index) {
        (None, _) => 0,
        (Some(_), None) => 3,
        (Some(_), Some(_)) => 5,
    }
}

/// Serializes a clue header into IPv4 option bytes, where the length
/// byte covers the whole option (kind + length + data). Empty when no
/// clue is attached — an absent clue is simply no option.
pub fn encode_clue_option(header: &ClueHeader) -> Vec<u8> {
    let mut buf = [0u8; MAX_CLUE_OPTION_LEN];
    let n = encode_clue_option_into(header, &mut buf).expect("buffer fits the largest option");
    buf[..n].to_vec()
}

/// Serializes a clue header into IPv6 option bytes, where the length
/// byte covers the data only (the IPv6 options convention).
pub fn encode_clue_option_v6(header: &ClueHeader) -> Vec<u8> {
    let mut buf = [0u8; MAX_CLUE_OPTION_LEN];
    let n = encode_clue_option_v6_into(header, &mut buf).expect("buffer fits the largest option");
    buf[..n].to_vec()
}

/// Writes the IPv4-convention clue option into a caller-provided buffer
/// and returns the number of bytes written (zero when no clue is
/// attached). Fails with [`WireError::Truncated`] when `buf` is shorter
/// than the encoded option; nothing is written in that case.
pub fn encode_clue_option_into(header: &ClueHeader, buf: &mut [u8]) -> Result<usize, WireError> {
    write_option(header, buf, true)
}

/// [`encode_clue_option_into`] with the IPv6 length convention (the
/// length byte covers the data only).
pub fn encode_clue_option_v6_into(
    header: &ClueHeader,
    buf: &mut [u8],
) -> Result<usize, WireError> {
    write_option(header, buf, false)
}

/// Shared encoder: kind, length (whole-option or data-only convention),
/// clue byte, optional big-endian index.
fn write_option(
    header: &ClueHeader,
    buf: &mut [u8],
    length_covers_option: bool,
) -> Result<usize, WireError> {
    let Some(clue) = header.clue else {
        return Ok(0);
    };
    let needed = clue_option_len(header);
    if buf.len() < needed {
        return Err(WireError::Truncated { needed, got: buf.len() });
    }
    let body_len = needed - 2;
    buf[0] = CLUE_OPTION_KIND;
    buf[1] = if length_covers_option { needed as u8 } else { body_len as u8 };
    match header.index {
        None => buf[2] = clue.raw(),
        Some(ix) => {
            buf[2] = clue.raw() | INDEX_FLAG;
            buf[3..5].copy_from_slice(&ix.to_be_bytes());
        }
    }
    Ok(needed)
}

/// Parses a clue option body (the bytes after kind+length have been
/// located by the header parser). `body` excludes kind and length.
pub fn decode_clue_option<A: Address>(body: &[u8]) -> Result<ClueHeader, WireError> {
    let &first = body.first().ok_or(WireError::BadOption)?;
    let has_index = first & INDEX_FLAG != 0;
    let raw = first & !INDEX_FLAG;
    let clue = EncodedClue::from_raw::<A>(raw).ok_or(WireError::BadClue)?;
    let index = if has_index {
        let hi = *body.get(1).ok_or(WireError::BadOption)?;
        let lo = *body.get(2).ok_or(WireError::BadOption)?;
        Some(u16::from_be_bytes([hi, lo]))
    } else {
        if body.len() != 1 {
            return Err(WireError::BadOption);
        }
        None
    };
    Ok(ClueHeader { clue: Some(clue), index })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_trie::{Ip4, Ip6, Prefix};

    fn p4(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    #[test]
    fn roundtrip_without_index() {
        let h = ClueHeader::with_clue(&p4("10.1.0.0/16"));
        let bytes = encode_clue_option(&h);
        assert_eq!(bytes, vec![CLUE_OPTION_KIND, 3, 15]);
        let back = decode_clue_option::<Ip4>(&bytes[2..]).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn roundtrip_with_index() {
        let h = ClueHeader::with_indexed_clue(&p4("10.1.2.0/24"), 0xBEEF);
        let bytes = encode_clue_option(&h);
        assert_eq!(bytes.len(), 5);
        assert_eq!(bytes[1], 5);
        let back = decode_clue_option::<Ip4>(&bytes[2..]).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn no_clue_is_no_option() {
        assert!(encode_clue_option(&ClueHeader::none()).is_empty());
    }

    #[test]
    fn out_of_range_clue_rejected_for_ipv4() {
        // raw 32 means length 33: invalid for IPv4…
        assert_eq!(decode_clue_option::<Ip4>(&[32]), Err(WireError::BadClue));
        // …but fine for IPv6.
        assert!(decode_clue_option::<Ip6>(&[32]).is_ok());
    }

    #[test]
    fn truncated_and_oversized_bodies_rejected() {
        assert_eq!(decode_clue_option::<Ip4>(&[]), Err(WireError::BadOption));
        assert_eq!(decode_clue_option::<Ip4>(&[INDEX_FLAG | 3, 0]), Err(WireError::BadOption));
        assert_eq!(decode_clue_option::<Ip4>(&[3, 0]), Err(WireError::BadOption));
    }

    #[test]
    fn write_into_matches_the_vec_encoders() {
        for h in [
            ClueHeader::none(),
            ClueHeader::with_clue(&p4("10.1.0.0/16")),
            ClueHeader::with_indexed_clue(&p4("10.1.2.0/24"), 0xBEEF),
        ] {
            let mut buf = [0xAAu8; MAX_CLUE_OPTION_LEN + 2];
            let n = encode_clue_option_into(&h, &mut buf).unwrap();
            assert_eq!(n, clue_option_len(&h));
            assert_eq!(buf[..n], encode_clue_option(&h)[..]);
            assert!(buf[n..].iter().all(|&b| b == 0xAA), "wrote past the option");
            if n > 0 {
                let back = decode_clue_option::<Ip4>(&buf[2..n]).unwrap();
                assert_eq!(back, h);
            }

            let n6 = encode_clue_option_v6_into(&h, &mut buf).unwrap();
            assert_eq!(buf[..n6], encode_clue_option_v6(&h)[..]);
        }
    }

    #[test]
    fn write_into_reports_the_needed_size_on_short_buffers() {
        let h = ClueHeader::with_indexed_clue(&p4("10.1.2.0/24"), 7);
        let mut buf = [0u8; MAX_CLUE_OPTION_LEN];
        for short in 0..clue_option_len(&h) {
            let err = encode_clue_option_into(&h, &mut buf[..short]).unwrap_err();
            assert_eq!(err, WireError::Truncated { needed: 5, got: short });
            let err = encode_clue_option_v6_into(&h, &mut buf[..short]).unwrap_err();
            assert_eq!(err, WireError::Truncated { needed: 5, got: short });
        }
        // An absent clue writes nothing and needs no space at all.
        assert_eq!(encode_clue_option_into(&ClueHeader::none(), &mut []), Ok(0));
    }

    #[test]
    fn every_ipv4_length_roundtrips() {
        for len in 1..=32u8 {
            let h = ClueHeader::with_clue(&Prefix::new(Ip4(0), len));
            let bytes = encode_clue_option(&h);
            let back = decode_clue_option::<Ip4>(&bytes[2..]).unwrap();
            assert_eq!(back.decode(Ip4(0)), Some(Prefix::new(Ip4(0), len)));
        }
    }
}
