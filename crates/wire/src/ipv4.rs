//! IPv4 header serialization with the clue carried as an option.

use clue_core::ClueHeader;
use clue_trie::Ip4;

use crate::error::WireError;
use crate::option::{
    clue_option_len, decode_clue_option, encode_clue_option_into, CLUE_OPTION_KIND,
};

/// A parsed (or to-be-serialized) IPv4 header.
///
/// Only header fields are modelled; the payload travels separately. The
/// clue rides in the options area as an experimental option, exactly the
/// deployment path Section 5.3 sketches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet {
    /// Differentiated services + ECN byte.
    pub dscp_ecn: u8,
    /// Total length (header + payload) in bytes.
    pub total_length: u16,
    /// Identification field.
    pub identification: u16,
    /// Flags (3 bits) and fragment offset (13 bits).
    pub flags_fragment: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub protocol: u8,
    /// Source address.
    pub src: Ip4,
    /// Destination address.
    pub dst: Ip4,
    /// The clue, if one is attached.
    pub clue: ClueHeader,
}

impl Ipv4Packet {
    /// A minimal header for `src → dst` carrying `protocol`.
    pub fn new(src: Ip4, dst: Ip4, protocol: u8) -> Self {
        Ipv4Packet {
            dscp_ecn: 0,
            total_length: 20,
            identification: 0,
            flags_fragment: 0,
            ttl: 64,
            protocol,
            src,
            dst,
            clue: ClueHeader::none(),
        }
    }

    /// Attaches (or replaces) the clue option.
    pub fn with_clue(mut self, clue: ClueHeader) -> Self {
        self.clue = clue;
        self
    }

    /// Header length in bytes, including options and padding.
    pub fn header_len(&self) -> usize {
        20 + clue_option_len(&self.clue).div_ceil(4) * 4
    }

    /// Serializes the header, computing the checksum.
    pub fn to_bytes(&self) -> Vec<u8> {
        let opt_len = clue_option_len(&self.clue);
        let padded_opt_len = opt_len.div_ceil(4) * 4;
        let ihl = 5 + padded_opt_len / 4;
        let header_len = ihl * 4;
        let total = self.total_length.max(header_len as u16);

        let mut out = vec![0u8; header_len];
        out[0] = 0x40 | ihl as u8;
        out[1] = self.dscp_ecn;
        out[2..4].copy_from_slice(&total.to_be_bytes());
        out[4..6].copy_from_slice(&self.identification.to_be_bytes());
        out[6..8].copy_from_slice(&self.flags_fragment.to_be_bytes());
        out[8] = self.ttl;
        out[9] = self.protocol;
        // checksum at [10..12] stays zero for the computation
        out[12..16].copy_from_slice(&self.src.0.to_be_bytes());
        out[16..20].copy_from_slice(&self.dst.0.to_be_bytes());
        encode_clue_option_into(&self.clue, &mut out[20..])
            .expect("options area sized from clue_option_len");
        // Padding bytes (already zero) act as End-of-Options-List.

        let sum = checksum(&out);
        out[10..12].copy_from_slice(&sum.to_be_bytes());
        out
    }

    /// Parses and verifies a header, extracting the clue option if
    /// present. Unknown options are skipped (as a router must).
    pub fn parse(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() < 20 {
            return Err(WireError::Truncated { needed: 20, got: bytes.len() });
        }
        let version = bytes[0] >> 4;
        if version != 4 {
            return Err(WireError::BadVersion(version));
        }
        let ihl = bytes[0] & 0x0F;
        let header_len = ihl as usize * 4;
        if !(5..=15).contains(&ihl) {
            return Err(WireError::BadHeaderLength(ihl));
        }
        if bytes.len() < header_len {
            return Err(WireError::Truncated { needed: header_len, got: bytes.len() });
        }
        let header = &bytes[..header_len];
        let computed = checksum_skipping(header, 10);
        let found = u16::from_be_bytes([header[10], header[11]]);
        if computed != found {
            return Err(WireError::BadChecksum { found, computed });
        }

        let mut clue = ClueHeader::none();
        let mut i = 20usize;
        while i < header_len {
            match header[i] {
                0 => break, // End of Options List
                1 => i += 1, // No-Operation
                kind => {
                    let len = *header.get(i + 1).ok_or(WireError::BadOption)? as usize;
                    if len < 2 || i + len > header_len {
                        return Err(WireError::BadOption);
                    }
                    if kind == CLUE_OPTION_KIND {
                        clue = decode_clue_option::<Ip4>(&header[i + 2..i + len])?;
                    }
                    i += len;
                }
            }
        }

        Ok(Ipv4Packet {
            dscp_ecn: header[1],
            total_length: u16::from_be_bytes([header[2], header[3]]),
            identification: u16::from_be_bytes([header[4], header[5]]),
            flags_fragment: u16::from_be_bytes([header[6], header[7]]),
            ttl: header[8],
            protocol: header[9],
            src: Ip4(u32::from_be_bytes([header[12], header[13], header[14], header[15]])),
            dst: Ip4(u32::from_be_bytes([header[16], header[17], header[18], header[19]])),
            clue,
        })
    }
}

/// The Internet checksum over `data` (checksum field assumed zero).
pub fn checksum(data: &[u8]) -> u16 {
    checksum_skipping(data, usize::MAX)
}

/// Internet checksum treating the 2 bytes at `skip` as zero.
fn checksum_skipping(data: &[u8], skip: usize) -> u16 {
    let mut sum = 0u32;
    let mut i = 0;
    while i < data.len() {
        let word = if i == skip {
            0
        } else {
            let hi = data[i] as u32;
            let lo = if i + 1 < data.len() && i + 1 != skip { data[i + 1] as u32 } else { 0 };
            (hi << 8) | lo
        };
        sum += word;
        i += 2;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_trie::Prefix;

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    fn packet() -> Ipv4Packet {
        Ipv4Packet::new("1.2.3.4".parse().unwrap(), "10.1.2.3".parse().unwrap(), 6)
    }

    #[test]
    fn clueless_header_is_20_bytes_and_roundtrips() {
        let pkt = packet();
        let bytes = pkt.to_bytes();
        assert_eq!(bytes.len(), 20);
        assert_eq!(bytes[0], 0x45);
        let back = Ipv4Packet::parse(&bytes).unwrap();
        assert_eq!(back.src, pkt.src);
        assert_eq!(back.dst, pkt.dst);
        assert_eq!(back.clue, ClueHeader::none());
    }

    #[test]
    fn clued_header_roundtrips_with_padding() {
        let pkt = packet().with_clue(ClueHeader::with_clue(&p("10.1.0.0/16")));
        let bytes = pkt.to_bytes();
        assert_eq!(bytes.len(), 24, "3-byte option pads to one 4-byte word");
        let back = Ipv4Packet::parse(&bytes).unwrap();
        assert_eq!(back.clue.decode(pkt.dst), Some(p("10.1.0.0/16")));
        assert_eq!(back.clue.index, None);
    }

    #[test]
    fn indexed_clue_roundtrips() {
        let pkt = packet().with_clue(ClueHeader::with_indexed_clue(&p("10.1.2.0/24"), 777));
        let bytes = pkt.to_bytes();
        assert_eq!(bytes.len(), 28, "5-byte option pads to two words");
        let back = Ipv4Packet::parse(&bytes).unwrap();
        assert_eq!(back.clue.index, Some(777));
        assert_eq!(back.clue.decode(pkt.dst), Some(p("10.1.2.0/24")));
    }

    #[test]
    fn checksum_is_verified() {
        let mut bytes = packet().to_bytes();
        bytes[8] = bytes[8].wrapping_add(1); // corrupt the TTL
        assert!(matches!(Ipv4Packet::parse(&bytes), Err(WireError::BadChecksum { .. })));
    }

    #[test]
    fn header_rewrite_mid_path_keeps_checksum_valid() {
        // A router replaces the clue and decrements the TTL, then
        // re-serializes: the next hop must still verify.
        let pkt = packet().with_clue(ClueHeader::with_clue(&p("10.0.0.0/8")));
        let hop1 = pkt.to_bytes();
        let mut at_router = Ipv4Packet::parse(&hop1).unwrap();
        at_router.ttl -= 1;
        at_router.clue = ClueHeader::with_clue(&p("10.1.2.0/24"));
        let hop2 = at_router.to_bytes();
        let at_next = Ipv4Packet::parse(&hop2).unwrap();
        assert_eq!(at_next.ttl, 63);
        assert_eq!(at_next.clue.decode(pkt.dst), Some(p("10.1.2.0/24")));
    }

    #[test]
    fn unknown_options_are_skipped() {
        // Hand-build a header with a NOP, an unknown option, then a clue.
        let pkt = packet().with_clue(ClueHeader::with_clue(&p("10.1.0.0/16")));
        let bytes = pkt.to_bytes();
        // Rebuild with a NOP + unknown option (kind 7, len 2) before the
        // clue option.
        let mut raw = bytes[..20].to_vec();
        raw[0] = 0x40 | 7; // ihl 7 = 28 bytes
        raw.extend_from_slice(&[1, 7, 2, CLUE_OPTION_KIND, 3, 15, 0, 0]);
        raw[10] = 0;
        raw[11] = 0;
        let sum = checksum(&raw);
        raw[10..12].copy_from_slice(&sum.to_be_bytes());
        let parsed = Ipv4Packet::parse(&raw).unwrap();
        assert_eq!(parsed.clue.decode(pkt.dst), Some(p("10.1.0.0/16")));
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        assert!(Ipv4Packet::parse(&[]).is_err());
        assert!(Ipv4Packet::parse(&[0x45; 10]).is_err());
        assert!(Ipv4Packet::parse(&[0x60; 20]).is_err()); // version 6
        assert!(Ipv4Packet::parse(&[0x42; 20]).is_err()); // ihl 2
    }

    #[test]
    fn rfc1071_checksum_example() {
        // From RFC 1071: 00 01 f2 03 f4 f5 f6 f7 → sum 0xddf2 → !0xddf2.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), !0xddf2);
    }
}
