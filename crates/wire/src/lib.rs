//! # clue-wire
//!
//! On-the-wire encoding for distributed IP lookup, following Section 5.3
//! of *Routing with a Clue*: “it is quite possible that the 5 bits find
//! their place in the current IP header, e.g., in the options field.”
//!
//! * [`Ipv4Packet`] — a full IPv4 header codec (checksum included) with
//!   the clue carried as an experimental option
//!   ([`option::CLUE_OPTION_KIND`]); 3 bytes for the plain 5-bit clue, 5
//!   bytes with the 16-bit indexing-technique slot;
//! * [`Ipv6Packet`] — the IPv6 variant: a hop-by-hop extension header
//!   (routers on the path may read and rewrite it), carrying the same
//!   option with the 7-bit clue;
//! * parsers never panic on arbitrary input (property-tested) and skip
//!   unknown options, so clue-carrying packets interoperate with
//!   clue-less routers — the paper's heterogeneity requirement down at
//!   the byte level.
//!
//! ```
//! use clue_core::ClueHeader;
//! use clue_trie::{Ip4, Prefix};
//! use clue_wire::Ipv4Packet;
//!
//! let bmp: Prefix<Ip4> = "10.1.0.0/16".parse().unwrap();
//! let pkt = Ipv4Packet::new(
//!     "192.0.2.1".parse().unwrap(),
//!     "10.1.2.3".parse().unwrap(),
//!     17,
//! )
//! .with_clue(ClueHeader::with_clue(&bmp));
//!
//! let bytes = pkt.to_bytes();               // 24 bytes: 20 + padded option
//! let back = Ipv4Packet::parse(&bytes).unwrap();
//! assert_eq!(back.clue.decode(back.dst), Some(bmp));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod ipv4;
mod ipv6;
pub mod option;

pub use error::WireError;
pub use ipv4::{checksum, Ipv4Packet};
pub use ipv6::{Ipv6Packet, HOP_BY_HOP};
