//! Parse errors.

use core::fmt;

/// Why a buffer failed to parse as a header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the fixed header needs.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The version nibble is not 4 (or 6 for the IPv6 parser).
    BadVersion(u8),
    /// The IHL field is smaller than 5 or runs past the buffer.
    BadHeaderLength(u8),
    /// The header checksum does not verify.
    BadChecksum {
        /// Checksum found in the header.
        found: u16,
        /// Checksum computed over the header.
        computed: u16,
    },
    /// An option's length byte is zero or runs past the header.
    BadOption,
    /// A clue option carries an out-of-range value.
    BadClue,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated: need {needed} bytes, got {got}")
            }
            WireError::BadVersion(v) => write!(f, "bad IP version {v}"),
            WireError::BadHeaderLength(ihl) => write!(f, "bad IHL {ihl}"),
            WireError::BadChecksum { found, computed } => {
                write!(f, "checksum mismatch: header {found:#06x}, computed {computed:#06x}")
            }
            WireError::BadOption => write!(f, "malformed option"),
            WireError::BadClue => write!(f, "clue option value out of range"),
        }
    }
}

impl std::error::Error for WireError {}
