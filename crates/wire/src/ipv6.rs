//! IPv6: the clue as a hop-by-hop option (7 bits of clue fit the same
//! option body; every router on the path may read and rewrite it).

use clue_core::ClueHeader;
use clue_trie::Ip6;

use crate::error::WireError;
use crate::option::{decode_clue_option, encode_clue_option_v6, CLUE_OPTION_KIND};

/// Protocol number of the hop-by-hop extension header.
pub const HOP_BY_HOP: u8 = 0;

/// A parsed (or to-be-serialized) IPv6 header, with an optional
/// hop-by-hop extension carrying the clue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv6Packet {
    /// Traffic class.
    pub traffic_class: u8,
    /// Flow label (20 bits).
    pub flow_label: u32,
    /// Payload length (everything after the fixed header).
    pub payload_length: u16,
    /// Next header after the clue extension (the transport protocol).
    pub next_header: u8,
    /// Hop limit.
    pub hop_limit: u8,
    /// Source address.
    pub src: Ip6,
    /// Destination address.
    pub dst: Ip6,
    /// The clue, if one is attached.
    pub clue: ClueHeader,
}

impl Ipv6Packet {
    /// A minimal header for `src → dst` carrying `next_header`.
    pub fn new(src: Ip6, dst: Ip6, next_header: u8) -> Self {
        Ipv6Packet {
            traffic_class: 0,
            flow_label: 0,
            payload_length: 0,
            next_header,
            hop_limit: 64,
            src,
            dst,
            clue: ClueHeader::none(),
        }
    }

    /// Attaches (or replaces) the clue.
    pub fn with_clue(mut self, clue: ClueHeader) -> Self {
        self.clue = clue;
        self
    }

    /// Serializes the fixed header plus, when a clue is attached, a
    /// hop-by-hop extension holding the clue option (padded to the
    /// 8-byte granularity the extension requires).
    pub fn to_bytes(&self) -> Vec<u8> {
        let option = encode_clue_option_v6(&self.clue);
        let ext_len = if option.is_empty() { 0 } else { (2 + option.len()).div_ceil(8) * 8 };

        let mut out = vec![0u8; 40 + ext_len];
        out[0] = 0x60 | (self.traffic_class >> 4);
        out[1] = (self.traffic_class << 4) | ((self.flow_label >> 16) as u8 & 0x0F);
        out[2] = (self.flow_label >> 8) as u8;
        out[3] = self.flow_label as u8;
        let payload = self.payload_length.max(ext_len as u16);
        out[4..6].copy_from_slice(&payload.to_be_bytes());
        out[6] = if ext_len > 0 { HOP_BY_HOP } else { self.next_header };
        out[7] = self.hop_limit;
        out[8..24].copy_from_slice(&self.src.0.to_be_bytes());
        out[24..40].copy_from_slice(&self.dst.0.to_be_bytes());

        if ext_len > 0 {
            out[40] = self.next_header;
            out[41] = (ext_len / 8 - 1) as u8;
            out[42..42 + option.len()].copy_from_slice(&option);
            // Remaining bytes: PadN where needed. A run of zeros is Pad1
            // options, which is legal but wasteful; emit PadN properly.
            let pad = ext_len - 2 - option.len();
            if pad == 1 {
                out[42 + option.len()] = 0; // Pad1
            } else if pad >= 2 {
                out[42 + option.len()] = 1; // PadN
                out[43 + option.len()] = (pad - 2) as u8;
            }
        }
        out
    }

    /// Parses the fixed header and a leading hop-by-hop extension (if
    /// any), extracting the clue option.
    pub fn parse(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() < 40 {
            return Err(WireError::Truncated { needed: 40, got: bytes.len() });
        }
        let version = bytes[0] >> 4;
        if version != 6 {
            return Err(WireError::BadVersion(version));
        }
        let mut src = [0u8; 16];
        src.copy_from_slice(&bytes[8..24]);
        let mut dst = [0u8; 16];
        dst.copy_from_slice(&bytes[24..40]);

        let mut pkt = Ipv6Packet {
            traffic_class: (bytes[0] << 4) | (bytes[1] >> 4),
            flow_label: ((bytes[1] as u32 & 0x0F) << 16)
                | ((bytes[2] as u32) << 8)
                | bytes[3] as u32,
            payload_length: u16::from_be_bytes([bytes[4], bytes[5]]),
            next_header: bytes[6],
            hop_limit: bytes[7],
            src: Ip6(u128::from_be_bytes(src)),
            dst: Ip6(u128::from_be_bytes(dst)),
            clue: ClueHeader::none(),
        };

        if pkt.next_header == HOP_BY_HOP {
            let ext = bytes.get(40..).ok_or(WireError::Truncated { needed: 42, got: bytes.len() })?;
            if ext.len() < 2 {
                return Err(WireError::Truncated { needed: 42, got: bytes.len() });
            }
            let ext_len = (ext[1] as usize + 1) * 8;
            if ext.len() < ext_len {
                return Err(WireError::Truncated { needed: 40 + ext_len, got: bytes.len() });
            }
            pkt.next_header = ext[0];
            let mut i = 2usize;
            while i < ext_len {
                match ext[i] {
                    0 => i += 1, // Pad1
                    1 => {
                        // PadN
                        let n = *ext.get(i + 1).ok_or(WireError::BadOption)? as usize;
                        i += 2 + n;
                    }
                    kind => {
                        let len = *ext.get(i + 1).ok_or(WireError::BadOption)? as usize;
                        if i + 2 + len > ext_len {
                            return Err(WireError::BadOption);
                        }
                        if kind == CLUE_OPTION_KIND {
                            pkt.clue = decode_clue_option::<Ip6>(&ext[i + 2..i + 2 + len])?;
                        }
                        i += 2 + len;
                    }
                }
            }
        }
        Ok(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_trie::Prefix;

    fn p6(s: &str) -> Prefix<Ip6> {
        s.parse().unwrap()
    }

    fn packet() -> Ipv6Packet {
        Ipv6Packet::new("2001:db8::1".parse().unwrap(), "2001:db8:1::42".parse().unwrap(), 6)
    }

    #[test]
    fn clueless_fixed_header_roundtrips() {
        let pkt = packet();
        let bytes = pkt.to_bytes();
        assert_eq!(bytes.len(), 40);
        let back = Ipv6Packet::parse(&bytes).unwrap();
        assert_eq!(back, pkt);
    }

    #[test]
    fn clue_rides_a_hop_by_hop_extension() {
        let pkt = packet().with_clue(ClueHeader::with_clue(&p6("2001:db8:1::/48")));
        let bytes = pkt.to_bytes();
        assert_eq!(bytes.len(), 48, "one 8-byte extension unit");
        assert_eq!(bytes[6], HOP_BY_HOP);
        let back = Ipv6Packet::parse(&bytes).unwrap();
        assert_eq!(back.next_header, 6, "transport protocol restored");
        assert_eq!(back.clue.decode(pkt.dst), Some(p6("2001:db8:1::/48")));
    }

    #[test]
    fn seven_bit_clue_lengths_roundtrip() {
        for len in [1u8, 32, 48, 64, 127, 128] {
            let clue = Prefix::new(Ip6(0x2001_0db8 << 96), len.min(128));
            let pkt = packet().with_clue(ClueHeader::with_clue(&clue));
            let back = Ipv6Packet::parse(&pkt.to_bytes()).unwrap();
            assert_eq!(
                back.clue.clue.map(|c| c.prefix_len::<Ip6>()),
                Some(len),
                "length {len}"
            );
        }
    }

    #[test]
    fn indexed_clue_roundtrips() {
        let pkt = packet().with_clue(ClueHeader::with_indexed_clue(&p6("2001:db8::/32"), 4242));
        let back = Ipv6Packet::parse(&pkt.to_bytes()).unwrap();
        assert_eq!(back.clue.index, Some(4242));
    }

    #[test]
    fn flow_label_and_traffic_class_roundtrip() {
        let mut pkt = packet();
        pkt.traffic_class = 0xAB;
        pkt.flow_label = 0xF_1234;
        let back = Ipv6Packet::parse(&pkt.to_bytes()).unwrap();
        assert_eq!(back.traffic_class, 0xAB);
        assert_eq!(back.flow_label, 0xF_1234);
    }

    #[test]
    fn garbage_rejected_without_panic() {
        assert!(Ipv6Packet::parse(&[]).is_err());
        assert!(Ipv6Packet::parse(&[0x45; 40]).is_err()); // version 4
        let mut bytes = packet().with_clue(ClueHeader::with_clue(&p6("::/1"))).to_bytes();
        bytes.truncate(44); // cut inside the extension
        assert!(Ipv6Packet::parse(&bytes).is_err());
    }
}
