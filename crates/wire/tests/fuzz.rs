//! Parser robustness: arbitrary bytes never panic, and encode→parse is
//! the identity for every valid header.

use clue_core::ClueHeader;
use clue_trie::{Ip4, Ip6, Prefix};
use clue_wire::{option::decode_clue_option, Ipv4Packet, Ipv6Packet, WireError};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ipv4_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Ipv4Packet::parse(&bytes);
    }

    #[test]
    fn ipv6_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let _ = Ipv6Packet::parse(&bytes);
    }

    #[test]
    fn ipv4_roundtrip_is_identity(
        src in any::<u32>(),
        dst in any::<u32>(),
        ttl in any::<u8>(),
        proto in any::<u8>(),
        ident in any::<u16>(),
        clue_len in 0u8..=32,
        index in proptest::option::of(any::<u16>()),
    ) {
        let mut pkt = Ipv4Packet::new(Ip4(src), Ip4(dst), proto);
        pkt.ttl = ttl;
        pkt.identification = ident;
        if clue_len > 0 {
            let bmp = Prefix::new(Ip4(dst), clue_len);
            pkt.clue = match index {
                Some(i) => ClueHeader::with_indexed_clue(&bmp, i),
                None => ClueHeader::with_clue(&bmp),
            };
        }
        let bytes = pkt.to_bytes();
        let back = Ipv4Packet::parse(&bytes).expect("own output parses");
        prop_assert_eq!(back.src, pkt.src);
        prop_assert_eq!(back.dst, pkt.dst);
        prop_assert_eq!(back.ttl, ttl);
        prop_assert_eq!(back.protocol, proto);
        prop_assert_eq!(back.identification, ident);
        prop_assert_eq!(back.clue, pkt.clue);
    }

    #[test]
    fn ipv6_roundtrip_is_identity(
        src in any::<u128>(),
        dst in any::<u128>(),
        hops in any::<u8>(),
        nh in any::<u8>(),
        tc in any::<u8>(),
        flow in 0u32..(1 << 20),
        clue_len in 0u8..=128,
    ) {
        // The hop-by-hop protocol number itself would be ambiguous as a
        // transport next-header; skip that corner.
        prop_assume!(nh != clue_wire::HOP_BY_HOP);
        let mut pkt = Ipv6Packet::new(Ip6(src), Ip6(dst), nh);
        pkt.hop_limit = hops;
        pkt.traffic_class = tc;
        pkt.flow_label = flow;
        if clue_len > 0 {
            pkt.clue = ClueHeader::with_clue(&Prefix::new(Ip6(dst), clue_len));
        }
        let bytes = pkt.to_bytes();
        let back = Ipv6Packet::parse(&bytes).expect("own output parses");
        prop_assert_eq!(back.src, pkt.src);
        prop_assert_eq!(back.dst, pkt.dst);
        prop_assert_eq!(back.hop_limit, hops);
        prop_assert_eq!(back.next_header, nh);
        prop_assert_eq!(back.traffic_class, tc);
        prop_assert_eq!(back.flow_label, flow);
        prop_assert_eq!(back.clue, pkt.clue);
    }

    #[test]
    fn clue_option_decode_never_panics_and_errors_are_typed(
        body in proptest::collection::vec(any::<u8>(), 0..8),
    ) {
        // The option decoder sees raw attacker-controlled bytes; the
        // only acceptable outcomes are a decoded header or one of the
        // two typed option errors — never a panic, never a clue the
        // decoder could not have encoded.
        for res in [decode_clue_option::<Ip4>(&body), decode_clue_option::<Ip6>(&body)] {
            match res {
                Ok(header) => prop_assert!(header.clue.is_some()),
                Err(WireError::BadOption) | Err(WireError::BadClue) => {}
                Err(other) => prop_assert!(false, "unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn ipv4_truncation_reports_the_exact_cut(
        clue_len in 1u8..=32,
        index in proptest::option::of(any::<u16>()),
        cut_seed in any::<u16>(),
    ) {
        // Every strict prefix of a valid clued packet fails to parse,
        // and when the failure is `Truncated` it names the cut point
        // exactly — degradation diagnostics the chaos harness trusts.
        let dst = Ip4(0x0A01_0203);
        let bmp = Prefix::new(dst, clue_len);
        let header = match index {
            Some(i) => ClueHeader::with_indexed_clue(&bmp, i),
            None => ClueHeader::with_clue(&bmp),
        };
        let bytes = Ipv4Packet::new(Ip4(0xC000_0201), dst, 6).with_clue(header).to_bytes();
        let cut = cut_seed as usize % bytes.len();
        match Ipv4Packet::parse(&bytes[..cut]) {
            Ok(_) => prop_assert!(false, "a {cut}-byte prefix of {} parsed", bytes.len()),
            Err(WireError::Truncated { needed, got }) => {
                prop_assert_eq!(got, cut);
                prop_assert!(needed > got);
            }
            Err(_) => {} // another typed error (checksum, IHL) is fine
        }
    }

    #[test]
    fn ipv6_truncation_reports_the_exact_cut(
        clue_len in 1u8..=128,
        cut_seed in any::<u16>(),
    ) {
        let dst = Ip6(0x2001_0db8_0000_0000_0000_0000_0000_0001);
        let bytes = Ipv6Packet::new(Ip6(0x2001_0db8_ffff_0000_0000_0000_0000_0002), dst, 6)
            .with_clue(ClueHeader::with_clue(&Prefix::new(dst, clue_len)))
            .to_bytes();
        let cut = cut_seed as usize % bytes.len();
        match Ipv6Packet::parse(&bytes[..cut]) {
            Ok(_) => prop_assert!(false, "a {cut}-byte prefix of {} parsed", bytes.len()),
            Err(WireError::Truncated { needed, got }) => {
                prop_assert_eq!(got, cut);
                prop_assert!(needed > got);
            }
            Err(_) => {}
        }
    }

    #[test]
    fn ipv4_bitflips_never_verify_or_panic(
        flip_byte in 0usize..24,
        flip_bit in 0u8..8,
        clue_len in 1u8..=32,
    ) {
        let dst = Ip4(0x0A01_0203);
        let pkt = Ipv4Packet::new(Ip4(0xC000_0201), dst, 6)
            .with_clue(ClueHeader::with_clue(&Prefix::new(dst, clue_len)));
        let mut bytes = pkt.to_bytes();
        if flip_byte < bytes.len() {
            bytes[flip_byte] ^= 1 << flip_bit;
            // Either the checksum catches it, or parsing still succeeds
            // (the flip hit a checksum-neutral combination is impossible
            // for a single bit) — the key property: no panic.
            let _ = Ipv4Packet::parse(&bytes);
        }
    }
}
