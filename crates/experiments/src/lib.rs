//! Shared plumbing for the experiment binaries (one per table/figure of
//! the paper — see DESIGN.md's experiment index and EXPERIMENTS.md for
//! paper-vs-measured numbers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use clue_core::{ClueEngine, EngineConfig, Method};
use clue_lookup::Family;
use clue_tablegen::{derive_neighbor, generate, synthesize_ipv4, NeighborConfig, TrafficConfig};
use clue_trie::{BinaryTrie, Cost, CostStats, Ip4, Prefix};

/// The synthetic stand-ins for the paper's seven routers, with the sizes
/// its Table 1 reports. Each entry is `(name, prefix count, seed)`;
/// paired routers (AT&T, ISP-B) derive the second table from the first.
pub const ROUTERS: &[(&str, usize, u64)] = &[
    ("MAE-East", 42_123, 101),
    ("MAE-West", 23_382, 102),
    ("Paix", 5_974, 103),
    ("AT&T-1", 23_414, 104),
    ("ISP-B-1", 56_034, 106),
];

/// Scale factor applied to table sizes (set `CLUE_SCALE=small` for a
/// quick run at 1/10 size; results keep their shape).
pub fn scale() -> usize {
    match std::env::var("CLUE_SCALE").as_deref() {
        Ok("small") => 10,
        _ => 1,
    }
}

/// Builds the named router's synthetic table.
pub fn router_table(name: &str) -> Vec<Prefix<Ip4>> {
    let (_, size, seed) =
        ROUTERS.iter().find(|(n, _, _)| *n == name).expect("unknown router name");
    synthesize_ipv4(size / scale(), *seed)
}

/// Builds the same-ISP partner of a base router (AT&T-2 from AT&T-1,
/// ISP-B-2 from ISP-B-1).
pub fn partner_table(base: &[Prefix<Ip4>], seed: u64) -> Vec<Prefix<Ip4>> {
    derive_neighbor(base, &NeighborConfig::same_isp(seed))
}

/// A route-server “neighbor” view of another route server: same
/// generator, moderate similarity — models MAE-East vs MAE-West vs Paix,
/// which share most routes through the same exchanges.
///
/// When trimming to a smaller table (the Paix case) the sample prefers
/// *leaf* prefixes — real small tables mostly hold routes that larger
/// tables do not refine, which is what keeps the paper's Table 2
/// problematic fraction bounded (~7 % for Paix → MAE-East).
pub fn exchange_view(base: &[Prefix<Ip4>], target_size: usize, seed: u64) -> Vec<Prefix<Ip4>> {
    let t = derive_neighbor(base, &NeighborConfig::route_servers(seed));
    if t.len() <= target_size {
        return t;
    }
    // Partition into leaves (no refinement in the derived table) and
    // aggregates; `t` is sorted, so an aggregate's refinements follow it.
    let mut leaves = Vec::new();
    let mut aggregates = Vec::new();
    for (i, p) in t.iter().enumerate() {
        let refined = t.get(i + 1).is_some_and(|q| p.is_strict_prefix_of(q));
        if refined {
            aggregates.push(*p);
        } else {
            leaves.push(*p);
        }
    }
    let sample = |v: &[Prefix<Ip4>], k: usize| -> Vec<Prefix<Ip4>> {
        if v.len() <= k || k == 0 {
            return v.iter().copied().take(k.max(if k == 0 { 0 } else { v.len() })).collect();
        }
        let step = v.len() as f64 / k as f64;
        let mut out = Vec::with_capacity(k);
        let mut x = 0.0;
        while (x as usize) < v.len() && out.len() < k {
            out.push(v[x as usize]);
            x += step;
        }
        out
    };
    // ~8 % aggregates, the rest leaves: the regime of real small tables.
    let agg_quota = (target_size / 12).min(aggregates.len());
    let mut out = sample(&aggregates, agg_quota);
    out.extend(sample(&leaves, target_size - out.len()));
    out.sort();
    out.dedup();
    out
}

/// A prepared workload: destinations with their precomputed sender-side
/// clues and receiver-side reference BMPs (computed once per pair, not
/// once per scheme).
pub struct PairWorkload {
    /// Destination addresses.
    pub dests: Vec<Ip4>,
    /// The clue R1 would stamp for each destination.
    pub clues: Vec<Option<Prefix<Ip4>>>,
    /// The correct BMP at R2 for each destination.
    pub expected: Vec<Option<Prefix<Ip4>>>,
}

/// Builds the paper's 10 000-packet workload for a sender→receiver pair,
/// with per-packet clues and expected results precomputed.
pub fn workload(sender: &[Prefix<Ip4>], receiver: &[Prefix<Ip4>], seed: u64) -> PairWorkload {
    let dests = generate(
        sender,
        receiver,
        &TrafficConfig { count: 10_000 / scale(), ..TrafficConfig::paper(seed) },
    );
    let t1: BinaryTrie<Ip4, ()> = sender.iter().map(|p| (*p, ())).collect();
    let t2: BinaryTrie<Ip4, ()> = receiver.iter().map(|p| (*p, ())).collect();
    let clues = dests
        .iter()
        .map(|&d| t1.lookup(d).map(|r| t1.prefix(r)).filter(|c| !c.is_empty()))
        .collect();
    let expected = dests.iter().map(|&d| t2.lookup(d).map(|r| t2.prefix(r))).collect();
    PairWorkload { dests, clues, expected }
}

/// Average memory accesses of one (family, method) engine over a
/// prepared workload, verifying every result against the reference.
pub fn mean_accesses(
    sender: &[Prefix<Ip4>],
    receiver: &[Prefix<Ip4>],
    wl: &PairWorkload,
    family: Family,
    method: Method,
) -> f64 {
    let mut engine = ClueEngine::precomputed(sender, receiver, EngineConfig::new(family, method));
    let mut acc = CostStats::new();
    for ((&dest, &clue), &expected) in
        wl.dests.iter().zip(&wl.clues).zip(&wl.expected)
    {
        let mut cost = Cost::new();
        let got = engine.lookup(dest, clue, None, &mut cost);
        assert_eq!(got, expected, "{family}/{method} diverged on {dest}");
        acc.record(cost);
    }
    acc.mean()
}

/// Prints one of the paper's Tables 4–9: a 5×3 matrix of mean accesses.
pub fn print_scheme_matrix(
    title: &str,
    sender: &[Prefix<Ip4>],
    receiver: &[Prefix<Ip4>],
    wl: &PairWorkload,
) {
    println!("\n=== {title} ({} packets) ===", wl.dests.len());
    println!("{:<10} {:>10} {:>10} {:>10}", "family", "common", "Simple", "Advance");
    for family in Family::all() {
        print!("{:<10}", family.label());
        for method in Method::all() {
            print!(" {:>10.2}", mean_accesses(sender, receiver, wl, family, method));
        }
        println!();
    }
}

/// Thousands separator for table output.
pub fn fmt_count(n: usize) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_count_groups_digits() {
        assert_eq!(fmt_count(5), "5");
        assert_eq!(fmt_count(5974), "5,974");
        assert_eq!(fmt_count(60475), "60,475");
        assert_eq!(fmt_count(1234567), "1,234,567");
    }

    #[test]
    fn router_tables_have_requested_sizes() {
        std::env::set_var("CLUE_SCALE", "small");
        let paix = router_table("Paix");
        assert_eq!(paix.len(), 5_974 / 10);
        std::env::remove_var("CLUE_SCALE");
    }
}
