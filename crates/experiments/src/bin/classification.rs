//! Section 7's classification extension, quantified: filters examined
//! per packet with and without a clue-filter.
//!
//! ```sh
//! cargo run --release -p clue-experiments --bin classification
//! ```

use clue_classify::{Action, ClueClassifier, Filter, FlowKey, GroupedClassifier, RuleSet};
use clue_trie::{Cost, Ip4, Prefix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn random_filter(rng: &mut StdRng, priority: u32) -> Filter<Ip4> {
    let len = *[8u8, 16, 16, 24].get(rng.random_range(0..4usize)).unwrap();
    let dst = Prefix::new(Ip4(rng.random_range(1u32..32) << 24 | rng.random::<u32>() & 0xFF_FF00), len);
    let src_len = *[0u8, 8, 16].get(rng.random_range(0..3usize)).unwrap();
    let lo = rng.random_range(0u16..2000);
    Filter {
        src: Prefix::new(Ip4(rng.random()), src_len),
        dst,
        src_ports: 0..=u16::MAX,
        dst_ports: lo..=lo.saturating_add(rng.random_range(0..500)),
        proto: [None, Some(6), Some(17)][rng.random_range(0..3usize)],
        priority,
        action: if rng.random_bool(0.5) { Action::Permit } else { Action::Deny },
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1234);
    // A shared firewall policy plus a handful of local refinements on
    // the receiving router.
    let mut shared: Vec<Filter<Ip4>> = (1..=400).map(|i| random_filter(&mut rng, i)).collect();
    shared.push(Filter::default_rule(Action::Deny));
    let mut local = shared.clone();
    for i in 0..20 {
        local.push(random_filter(&mut rng, 500 + i));
    }
    let upstream = RuleSet::new(shared);
    let cc = ClueClassifier::new(RuleSet::new(local), upstream.clone());

    println!("=== Section 7: clue-assisted packet classification ===");
    println!(
        "{} upstream rules, {} local rules, mean candidate-list length {:.1}\n",
        cc.upstream().len(),
        cc.local().len(),
        cc.mean_candidates()
    );

    let grouped = GroupedClassifier::new(RuleSet::new(cc.local().rules().to_vec()));
    let (mut with, mut without, mut mid, mut n) = (0u64, 0u64, 0u64, 0u64);
    for _ in 0..20_000 {
        let key = FlowKey::<Ip4> {
            src: Ip4(rng.random()),
            dst: Ip4(rng.random_range(1u32..32) << 24 | rng.random::<u32>() & 0xFFFFFF),
            src_port: rng.random(),
            dst_port: rng.random_range(0..4000),
            proto: [6u8, 17][rng.random_range(0..2usize)],
        };
        let clue = upstream.classify_uncounted(&key).and_then(|f| upstream.position_of(f));
        let mut cw = Cost::new();
        let got = cc.classify(&key, clue, &mut cw);
        let mut co = Cost::new();
        let want = cc.local().classify(&key, &mut co);
        let mut cg = Cost::new();
        let gg = grouped.classify(&key, &mut cg);
        assert_eq!(got, want, "clue changed the classification");
        assert_eq!(gg, want, "grouping changed the classification");
        with += cw.total();
        without += co.total();
        mid += cg.total();
        n += 1;
    }
    println!("{:<28} {:>12}", "scheme", "accesses/pkt");
    println!("{:<28} {:>12.2}", "full linear scan", without as f64 / n as f64);
    println!("{:<28} {:>12.2}", "dst-trie grouped scan", mid as f64 / n as f64);
    println!("{:<28} {:>12.2}", "clue-filter restricted", with as f64 / n as f64);
    println!(
        "\nclue speedup over the naive scan: {:.1}x — the Claim 1 analogue discards\n\
         every shared higher-priority rule before the scan.",
        without as f64 / with as f64
    );
    println!(
        "note: the dst-trie grouping is competitive here because most random flows\n\
         carry the *default-rule* clue, whose candidate list holds all {} local-only\n\
         refinements. The two techniques compose: grouping the candidate lists by\n\
         destination would combine both cuts.",
        cc.local().len() - cc.upstream().len()
    );
}
