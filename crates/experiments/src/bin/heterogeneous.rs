//! Section 5.3: heterogeneous deployment — what fraction of routers must
//! participate before clue routing pays off?
//!
//! ```sh
//! cargo run --release -p clue-experiments --bin heterogeneous
//! ```
//!
//! Non-participating routers perform a full lookup and *relay* the
//! incoming clue unchanged; a participating router several hops
//! downstream can still use it (“even if the packet has traveled several
//! hops since a clue was last added, the clue it carries is still a
//! prefix of the packet destination”).

use clue_core::{EngineConfig, Method};
use clue_lookup::Family;
use clue_netsim::{run_workload, Network, NetworkConfig, Topology};
use clue_trie::Ip4;

fn main() {
    println!("=== Section 5.3: participation sweep (random 40-router graph) ===\n");
    println!(
        "{:>14} {:>14} {:>14} {:>12} {:>10}",
        "participation", "total access", "mean per hop", "clue hops", "saving"
    );

    let mut baseline = 0u64;
    for percent in [0u32, 10, 25, 50, 75, 90, 100] {
        // A larger random topology with 8 edge origins.
        let topo = Topology::random_connected(40, 15, 81);
        let origins: Vec<usize> = (32..40).collect();
        let mut cfg = NetworkConfig::new(
            origins.clone(),
            EngineConfig::new(Family::Patricia, Method::Advance),
        );
        cfg.specifics_per_origin = 25;
        cfg.participation = percent as f64 / 100.0;
        cfg.seed = 82;
        let mut net: Network<Ip4> = Network::build(topo, cfg);
        let stats = run_workload(&mut net, &origins, 2_000, 83);
        if percent == 0 {
            baseline = stats.total_accesses;
        }
        let saving = 100.0 * (1.0 - stats.total_accesses as f64 / baseline as f64);
        println!(
            "{:>13}% {:>14} {:>14.2} {:>11.0}% {:>9.0}%",
            percent,
            stats.total_accesses,
            stats.mean_per_hop(),
            100.0 * stats.clue_hops as f64 / stats.total_hops.max(1) as f64,
            saving
        );
    }

    println!("\nthe curve is convex: sparse deployment already saves (participating");
    println!("pairs and relayed clues), and the full deployment approaches one access");
    println!("per backbone hop — no flag day required.");
}
