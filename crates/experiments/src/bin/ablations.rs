//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **vertex bits** (Section 4's per-vertex Claim 1 Booleans) — how
//!    much do they shave off the trie continuations?
//! 2. **line capacity** (how many candidates ride in the clue entry's
//!    cache line) — the binary/B-way continuation's free-scan knob;
//! 3. **table kind** — hashed vs the 16-bit indexing technique;
//! 4. **family extension** — the Stride multibit trie vs the paper's
//!    five, with and without clues.
//!
//! ```sh
//! cargo run --release -p clue-experiments --bin ablations
//! ```

use clue_core::{ClueEngine, ClueIndexer, EngineConfig, Method};
use clue_lookup::Family;
use clue_tablegen::{derive_neighbor, generate, synthesize_ipv4, NeighborConfig, TrafficConfig};
use clue_trie::{BinaryTrie, Cost, CostStats, Ip4, Prefix};

fn main() {
    let sender = synthesize_ipv4(12_000, 71);
    // A pair with noticeably more refinements than the default, so the
    // continuation paths actually run.
    let receiver = derive_neighbor(
        &sender,
        &NeighborConfig { share: 0.97, refine: 0.05, extra: 0.02, refine_bits: 8, seed: 72 },
    );
    let dests = generate(
        &sender,
        &receiver,
        &TrafficConfig { count: 8_000, ..TrafficConfig::paper(73) },
    );
    let t1: BinaryTrie<Ip4, ()> = sender.iter().map(|p| (*p, ())).collect();
    let clues: Vec<Option<Prefix<Ip4>>> = dests
        .iter()
        .map(|&d| t1.lookup(d).map(|r| t1.prefix(r)).filter(|c| !c.is_empty()))
        .collect();

    let run = |config: EngineConfig, indexed: bool| -> f64 {
        let mut engine = ClueEngine::precomputed(&sender, &receiver, config);
        // The indexing technique with a *precomputed* table requires the
        // sender to enumerate its clue set in the same order the table
        // was built from (Section 5.3's "the most coordination that may
        // be required"); the learning variant needs no coordination.
        let mut indexer = ClueIndexer::new();
        if indexed {
            for p in &sender {
                indexer.index_of(p);
            }
        }
        let mut acc = CostStats::new();
        for (&dest, &clue) in dests.iter().zip(&clues) {
            let idx = match (indexed, clue) {
                (true, Some(c)) => Some(indexer.index_of(&c)),
                _ => None,
            };
            let mut cost = Cost::new();
            engine.lookup(dest, clue, idx, &mut cost);
            acc.record(cost);
        }
        acc.mean()
    };

    println!("=== ablations ({} prefixes, {} packets, refine-heavy pair) ===", sender.len(), dests.len());

    println!("\n1. Section 4 per-vertex Claim 1 Booleans (trie families, Advance):");
    println!("{:<10} {:>12} {:>12}", "family", "with bits", "without");
    for family in [Family::Regular, Family::Patricia] {
        let mut with = EngineConfig::new(family, Method::Advance);
        with.vertex_bits = true;
        let mut without = with;
        without.vertex_bits = false;
        println!(
            "{:<10} {:>12.3} {:>12.3}",
            family.label(),
            run(with, false),
            run(without, false)
        );
    }

    println!("\n2. cache-line candidate capacity (Binary family, Advance):");
    println!("{:>10} {:>14}", "capacity", "mean accesses");
    for cap in [0usize, 1, 3, 8, 32] {
        let mut cfg = EngineConfig::new(Family::Binary, Method::Advance);
        cfg.line_capacity = cap;
        println!("{:>10} {:>14.3}", cap, run(cfg, false));
    }

    println!("\n3. clue-table addressing (Patricia, Advance):");
    let hashed = EngineConfig::new(Family::Patricia, Method::Advance);
    println!("{:<28} {:>10.3}", "hashed (5 header bits)", run(hashed, false));
    let mut indexed = hashed;
    indexed.table_kind = clue_core::TableKind::Indexed;
    println!("{:<28} {:>10.3}", "indexed (21 header bits)", run(indexed, true));

    println!("\n4. extension family: Stride (multibit 16-8-8) vs the paper's five:");
    println!("{:<10} {:>10} {:>10} {:>10}", "family", "common", "Simple", "Advance");
    for family in Family::all_extended() {
        print!("{:<10}", family.label());
        for method in Method::all() {
            print!(" {:>10.2}", run(EngineConfig::new(family, method), false));
        }
        println!();
    }
    println!("\nStride starts near 3 accesses even clue-less; the clue still buys the");
    println!("last factor — every family converges to ≈1 under Advance.");
}
