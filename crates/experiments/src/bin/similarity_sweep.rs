//! Ablation (ours): how sensitive are Simple and Advance to the paper's
//! core premise — that neighboring forwarding tables are similar?
//!
//! ```sh
//! cargo run --release -p clue-experiments --bin similarity_sweep
//! ```
//!
//! The paper measures pairs that are 93–99 % similar and reports ≈ 1
//! access; it never shows the degradation curve. We sweep the shared
//! fraction from 0.30 to 1.00 and measure the Patricia-family methods.
//! The interesting finding: even quite dissimilar neighbors still
//! benefit, because a clue that *is* known is usually final, and one
//! that is not costs only one extra probe on top of the common lookup.

use clue_core::Method;
use clue_experiments::{mean_accesses, PairWorkload};
use clue_lookup::Family;
use clue_tablegen::{
    derive_neighbor, generate, synthesize_ipv4, NeighborConfig, PairStats, TrafficConfig,
};
use clue_trie::BinaryTrie;

fn main() {
    let base = synthesize_ipv4(8_000, 601);
    let traffic = TrafficConfig { count: 4_000, ..TrafficConfig::paper(602) };

    println!("=== Sensitivity to neighbor-table similarity (Patricia family) ===\n");
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "share", "intersect%", "problematic%", "common", "Simple", "Advance"
    );
    for share in [0.30, 0.50, 0.70, 0.85, 0.95, 0.99, 1.00] {
        let receiver = derive_neighbor(&base, &NeighborConfig::with_share(share, 603));
        let stats = PairStats::compute(&base, &receiver);
        let dests = generate(&base, &receiver, &traffic);
        let t1: BinaryTrie<clue_trie::Ip4, ()> = base.iter().map(|p| (*p, ())).collect();
        let t2: BinaryTrie<clue_trie::Ip4, ()> = receiver.iter().map(|p| (*p, ())).collect();
        let wl = PairWorkload {
            clues: dests
                .iter()
                .map(|&d| t1.lookup(d).map(|r| t1.prefix(r)).filter(|c| !c.is_empty()))
                .collect(),
            expected: dests.iter().map(|&d| t2.lookup(d).map(|r| t2.prefix(r))).collect(),
            dests,
        };
        let common = mean_accesses(&base, &receiver, &wl, Family::Patricia, Method::Common);
        let simple = mean_accesses(&base, &receiver, &wl, Family::Patricia, Method::Simple);
        let advance = mean_accesses(&base, &receiver, &wl, Family::Patricia, Method::Advance);
        println!(
            "{:>6.2} {:>11.1}% {:>11.2}% {:>10.2} {:>10.2} {:>10.2}",
            share,
            stats.similarity() * 100.0,
            stats.problematic_fraction() * 100.0,
            common,
            simple,
            advance
        );
    }
    println!("\nthe paper's regime is the bottom rows (≥ 95% similar); the sweep shows");
    println!("the clue advantage decays gracefully rather than collapsing.");
}
