//! Section 3.5: clue-table space accounting.
//!
//! ```sh
//! cargo run --release -p clue-experiments --bin table_size
//! ```
//!
//! The paper's arithmetic: a large router's clue table has about as many
//! entries as its forwarding table (~60,000), each averaging ~9 bytes
//! (clue + FD always; Ptr only for the <10 % problematic entries), for a
//! total of ≈ 540 KB. This binary reproduces that accounting on the
//! synthetic ISP-B pair, and also reports the Section 3.4 multi-neighbor
//! sharing strategies.

use clue_core::neighbors::{MultiNeighborTable, Strategy};
use clue_core::{ClueEngine, EngineConfig, Method};
use clue_experiments::{fmt_count, partner_table, router_table};
use clue_lookup::Family;

fn main() {
    let ispb1 = router_table("ISP-B-1");
    let ispb2 = partner_table(&ispb1, 204);

    println!("=== Section 3.5: clue-table size (ISP-B-2's table for clues from ISP-B-1) ===\n");
    let engine = ClueEngine::precomputed(
        &ispb1,
        &ispb2,
        EngineConfig::new(Family::Patricia, Method::Advance),
    );
    let t = engine.table();
    println!("entries:                {:>10}", fmt_count(t.len()));
    println!("problematic fraction:   {:>9.2}%", t.problematic_fraction() * 100.0);
    println!("paper size model:       {:>10} bytes ({:.1} B/entry)",
        fmt_count(t.memory_bytes_model()),
        t.memory_bytes_model() as f64 / t.len() as f64);
    println!("actual resident size:   {:>10} bytes", fmt_count(t.memory_bytes_actual()));
    println!("\npaper: ~60,000 entries x ~9 B = ~540 KB for the largest routers.");

    println!("\n=== Section 3.4: sharing one table among d neighbors ===\n");
    // Three upstream neighbors with similar tables.
    let n1 = partner_table(&ispb1, 211);
    let n2 = partner_table(&ispb1, 212);
    let n3 = partner_table(&ispb1, 213);
    let senders = vec![n1, n2, n3];
    println!("{:<12} {:>10} {:>14}", "strategy", "entries", "bytes (model)");
    for strategy in Strategy::all() {
        let mt = MultiNeighborTable::build(&ispb2, &senders, strategy);
        println!(
            "{:<12} {:>10} {:>14}",
            strategy.to_string(),
            fmt_count(mt.entry_count()),
            fmt_count(mt.memory_bytes_model())
        );
    }
    println!("\nunion/bitmap keep one entry per distinct clue; sub-tables add small");
    println!("per-neighbor overflow tables; separate tables triple the space.");
}
