//! Section 3.3.2 grounded in a protocol: run a BGP-like path-vector to
//! convergence, then measure — on the *converged RIBs themselves* — the
//! neighbor-similarity statistics (Tables 1–3 style) and the clue-engine
//! costs, inside an AS and across its border.
//!
//! ```sh
//! cargo run --release -p clue-experiments --bin convergence
//! ```
//!
//! This closes the loop the synthetic generator only models: here the
//! neighboring tables are similar *because the protocol made them so*,
//! and the border aggregation policy produces exactly the Case 3
//! refinement structure the Advance method classifies.

use clue_core::{ClueEngine, EngineConfig, Method};
use clue_lookup::Family;
use clue_netsim::{Aggregation, PathVector, Topology};
use clue_tablegen::PairStats;
use clue_trie::{BinaryTrie, Cost, CostStats, Ip4, Prefix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn measure_pair(name: &str, sender: &[Prefix<Ip4>], receiver: &[Prefix<Ip4>], seed: u64) {
    let stats = PairStats::compute(sender, receiver);
    println!(
        "\n{name}: sender {} / receiver {} prefixes, intersection {:.1}%, problematic {:.2}%",
        stats.sender_size,
        stats.receiver_size,
        stats.similarity() * 100.0,
        stats.problematic_fraction() * 100.0
    );
    // Traffic: hosts inside random sender prefixes.
    let mut rng = StdRng::seed_from_u64(seed);
    let t1: BinaryTrie<Ip4, ()> = sender.iter().map(|p| (*p, ())).collect();
    let dests: Vec<Ip4> = (0..4000)
        .map(|_| {
            let p = sender[rng.random_range(0..sender.len())];
            let noise = if p.len() == 32 { 0 } else { rng.random::<u32>() >> p.len() };
            Ip4(p.bits().0 | noise)
        })
        .collect();
    print!("    mean accesses:");
    for method in [Method::Common, Method::Simple, Method::Advance] {
        let mut engine =
            ClueEngine::precomputed(sender, receiver, EngineConfig::new(Family::Patricia, method));
        let mut acc = CostStats::new();
        for &d in &dests {
            let clue = t1.lookup(d).map(|r| t1.prefix(r)).filter(|c| !c.is_empty());
            let mut cost = Cost::new();
            engine.lookup(d, clue, None, &mut cost);
            acc.record(cost);
        }
        print!("  {}={:.2}", method.label(), acc.mean());
    }
    println!();
}

fn main() {
    // Two ASes on a line of 8 routers: AS 1 = routers 0..4 (origin 0),
    // AS 2 = routers 4..8 (origin 7). Each origin announces 60 /24s.
    let topo = Topology::line(8);
    let as_of = vec![1, 1, 1, 1, 2, 2, 2, 2];
    let mut originated: Vec<Vec<Prefix<Ip4>>> = vec![Vec::new(); 8];
    originated[0] =
        (0..60u32).map(|j| Prefix::new(Ip4(0x0A00_0000 | j << 8), 24)).collect();
    originated[7] =
        (0..60u32).map(|j| Prefix::new(Ip4(0x1400_0000 | j << 8), 24)).collect();

    let mut pv = PathVector::new(topo, as_of, originated, Aggregation::OwnAtBorder(16));
    let rounds = pv.converge(64).expect("path vector must converge");
    println!("=== path-vector convergence: 8 routers, 2 ASes, border aggregation /16 ===");
    println!("converged in {rounds} synchronous rounds");
    for r in 0..8 {
        println!("router {r} (AS {}): {} prefixes", pv.as_of(r), pv.ribs()[r].prefixes().len());
    }

    // Pairs: within AS 1 (identical tables expected), across the border
    // (aggregation: the AS-2 side sees only AS-1's /16).
    let r1 = pv.ribs()[1].prefixes();
    let r2 = pv.ribs()[2].prefixes();
    let r3 = pv.ribs()[3].prefixes();
    let r4 = pv.ribs()[4].prefixes();
    measure_pair("intra-AS pair (router 1 -> 2)", &r1, &r2, 11);
    measure_pair("border pair (router 3 -> 4)", &r3, &r4, 12);
    measure_pair("border pair reversed (router 4 -> 3)", &r4, &r3, 13);

    // Dynamics: announce a new /24 at origin 7 and reconverge.
    let new_prefix: Prefix<Ip4> = "20.0.99.0/24".parse().unwrap();
    pv.announce(7, new_prefix);
    let rounds2 = pv.converge(64).expect("reconverges");
    println!("\nannounce {new_prefix} at router 7: reconverged in {rounds2} rounds");
    pv.withdraw(7, &new_prefix);
    let rounds3 = pv.converge(64).expect("reconverges");
    println!("withdraw it again: reconverged in {rounds3} rounds");

    println!("\nthe intra-AS pair reproduces the paper's ISP regime (≈100% similar,");
    println!("Advance ≈ 1); the border pair shows the aggregation boundary — still");
    println!("correct, with the Advance cost reflecting the Case 3 refinements.");
}
