//! Section 5.4: using clues to *shape* where lookup work happens —
//! minimize the load on backbone routers by having senders guarantee
//! final clues into the core.
//!
//! ```sh
//! cargo run --release -p clue-experiments --bin load_balance
//! ```

use clue_core::{EngineConfig, Method};
use clue_lookup::Family;
use clue_netsim::{run_workload, Network, NetworkConfig, Topology};
use clue_trie::Ip4;

fn run(shift: bool, edge_detail: bool) -> (f64, f64, f64) {
    let core_n = 6;
    let (topo, edges) = Topology::backbone(core_n, 2);
    let mut cfg =
        NetworkConfig::new(edges.clone(), EngineConfig::new(Family::Regular, Method::Advance));
    cfg.specifics_per_origin = 25;
    cfg.core = (0..core_n).collect();
    cfg.shift_work_to_edges = shift;
    cfg.edge_detail = edge_detail;
    cfg.seed = 71;
    let mut net: Network<Ip4> = Network::build(topo, cfg);
    let stats = run_workload(&mut net, &edges, 2_000, 72);

    let core_mean = (0..core_n)
        .map(|r| stats.per_router[r].mean() * stats.per_router[r].samples() as f64)
        .sum::<f64>()
        / (0..core_n).map(|r| stats.per_router[r].samples()).sum::<u64>().max(1) as f64;
    let edge_mean = edges
        .iter()
        .map(|&r| stats.per_router[r].mean() * stats.per_router[r].samples() as f64)
        .sum::<f64>()
        / edges.iter().map(|&r| stats.per_router[r].samples()).sum::<u64>().max(1) as f64;
    (core_mean, edge_mean, stats.mean_per_hop())
}

fn main() {
    println!("=== Section 5.4: shifting lookup work out of the backbone ===\n");
    println!("2,000 edge-to-edge packets on a 6-core backbone; per-router mean accesses");
    println!("(a router's own lookups; Section 5.4 shifted work is charged to the sender)\n");
    println!("{:<26} {:>12} {:>12} {:>12}", "mode", "core mean", "edge mean", "overall");
    let (c0, e0, o0) = run(false, false);
    println!("{:<26} {:>12.2} {:>12.2} {:>12.2}", "plain clue routing", c0, e0, o0);
    let (c1, e1, o1) = run(true, false);
    println!("{:<26} {:>12.2} {:>12.2} {:>12.2}", "sender pre-resolves (5.4)", c1, e1, o1);
    let (c2, e2, o2) = run(false, true);
    println!("{:<26} {:>12.2} {:>12.2} {:>12.2}", "edge full detail (5.4b)", c2, e2, o2);

    println!(
        "\nreduced edge aggregation drops core load {:.0}% while edge load rises {:.0}% —",
        100.0 * (1.0 - c2 / c0),
        100.0 * (e2 / e0 - 1.0)
    );
    println!("\"the work load of heavy traffic backbone routers is minimized while the");
    println!("peripheral and edge routers gradually look up longer and longer prefixes.\"");
}
