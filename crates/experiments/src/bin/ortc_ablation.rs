//! Ablation: does table minimization (ORTC, the Section 2(5) related
//! work) help or hurt the clue scheme?
//!
//! ```sh
//! cargo run --release -p clue-experiments --bin ortc_ablation
//! ```
//!
//! ORTC shrinks the receiver's table without changing any forwarding
//! decision. That restructures the trie `t2` the Claim 1 classifier
//! runs against: redundant refinements disappear (fewer problematic
//! clues), but some clue vertices disappear too (more Case 1 entries).
//! The paper never examines this interaction; we measure it.

use clue_core::{ClueEngine, EngineConfig, Method};
use clue_lookup::Family;
use clue_tablegen::{
    derive_neighbor, generate, minimize, synthesize_ipv4, NeighborConfig, PairStats,
    TrafficConfig,
};
use clue_trie::{BinaryTrie, Cost, CostStats, Ip4, Prefix};

fn main() {
    let sender = synthesize_ipv4(10_000, 81);
    let receiver = derive_neighbor(&sender, &NeighborConfig::same_isp(82));
    // Assign next hops: a handful of ports, correlated with the top
    // bits the way a real router's are (neighbors cluster by direction).
    let hops_of = |t: &[Prefix<Ip4>]| -> Vec<u32> {
        t.iter().map(|p| (p.bits().0 >> 26) % 6).collect()
    };
    let minimized: Vec<Prefix<Ip4>> = minimize(
        &receiver
            .iter()
            .copied()
            .zip(hops_of(&receiver))
            .collect::<Vec<_>>(),
    )
    .into_iter()
    .map(|(p, _)| p)
    .collect();

    println!("=== ORTC x clues ablation ===");
    println!(
        "receiver table: {} prefixes -> {} after ORTC ({:.1}% of original)\n",
        receiver.len(),
        minimized.len(),
        100.0 * minimized.len() as f64 / receiver.len() as f64
    );

    let dests = generate(
        &sender,
        &receiver,
        &TrafficConfig { count: 6_000, ..TrafficConfig::paper(83) },
    );
    let t1: BinaryTrie<Ip4, ()> = sender.iter().map(|p| (*p, ())).collect();
    let clues: Vec<Option<Prefix<Ip4>>> = dests
        .iter()
        .map(|&d| t1.lookup(d).map(|r| t1.prefix(r)).filter(|c| !c.is_empty()))
        .collect();

    println!(
        "{:<22} {:>10} {:>14} {:>10} {:>10} {:>10}",
        "receiver table", "prefixes", "problematic%", "common", "Simple", "Advance"
    );
    for (name, table) in [("original", &receiver), ("ORTC-minimized", &minimized)] {
        let stats = PairStats::compute(&sender, table);
        print!(
            "{:<22} {:>10} {:>13.2}%",
            name,
            table.len(),
            stats.problematic_fraction() * 100.0
        );
        for method in Method::all() {
            let mut engine =
                ClueEngine::precomputed(&sender, table, EngineConfig::new(Family::Patricia, method));
            let mut acc = CostStats::new();
            for (&dest, &clue) in dests.iter().zip(&clues) {
                let mut cost = Cost::new();
                engine.lookup(dest, clue, None, &mut cost);
                acc.record(cost);
            }
            print!(" {:>10.2}", acc.mean());
        }
        println!();
    }
    println!("\ncaveat: the minimized table is equivalent for *forwarding decisions*, so");
    println!("the returned BMPs legitimately differ in string (not in next hop). The");
    println!("comparison is about cost structure: fewer prefixes means shallower walks");
    println!("for the clue-less scheme and fewer problematic clues for Advance.");
}
