//! Figure 8 / Section 5.1: label switching with an aggregation point,
//! plain MPLS vs the label-as-clue-index hybrid.
//!
//! ```sh
//! cargo run --release -p clue-experiments --bin fig8_mpls
//! ```
//!
//! In the paper's Figure 8, router R4 receives labelled packets whose
//! FEC (`10.0.0.0/16`-style) it refines with a longer prefix
//! (`10.0.0.0/24`): plain MPLS must do a complete IP lookup there to
//! pick the new label, while the hybrid continues from the FEC clue —
//! and, when Claim 1 applies, pays nothing beyond the label read.

use clue_core::mpls::MplsMode;
use clue_netsim::LabelSwitchedPath;
use clue_tablegen::{derive_neighbor, synthesize_ipv4, NeighborConfig};
use clue_trie::{Address, Ip4, Prefix};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

fn main() {
    // FECs: an aggregated view of a real table (everything at /16).
    let base = synthesize_ipv4(4_000, 77);
    let fecs: Vec<Prefix<Ip4>> = {
        let mut v: Vec<Prefix<Ip4>> =
            base.iter().map(|p| p.truncate(p.len().min(16))).collect();
        v.sort();
        v.dedup();
        v
    };
    // The transit routers: two pure switches, then an egress-side router
    // holding the *full* table — the aggregation point.
    let full = derive_neighbor(&base, &NeighborConfig::same_isp(78));
    let path = LabelSwitchedPath::new(
        fecs.clone(),
        vec![fecs.clone(), fecs.clone(), full.clone()],
    );

    // Traffic: random destinations inside random FECs.
    let mut rng = StdRng::seed_from_u64(79);
    let dests: Vec<Ip4> = (0..5_000)
        .map(|_| {
            let p = fecs.choose(&mut rng).expect("non-empty fecs");
            let span = (32 - p.len()) as u32;
            let host = if span == 0 { 0 } else { rng.random::<u32>() & ((1u32 << span) - 1) };
            Ip4(p.bits().to_u128() as u32 | host)
        })
        .collect();

    println!("=== Figure 8: 4-router LSP, aggregation at the last hop ===");
    println!(
        "{} FECs; egress router refines {} of them\n",
        fecs.len(),
        path.send(dests[0], MplsMode::Plain).map(|_| ()).map_or(0, |_| {
            // count aggregation labels via a probe router
            clue_core::mpls::MplsRouter::new(&full, &fecs, &fecs).aggregation_labels().len()
        })
    );

    for mode in [MplsMode::Plain, MplsMode::WithClues] {
        let (mut total, mut agg_total, mut agg_hits, mut n) = (0u64, 0u64, 0u64, 0u64);
        for &d in &dests {
            let Some(hops) = path.send(d, mode) else { continue };
            n += 1;
            total += hops.iter().map(|h| h.accesses).sum::<u64>();
            for h in &hops {
                if h.aggregation_point {
                    agg_hits += 1;
                    agg_total += h.accesses;
                }
            }
        }
        println!(
            "{mode:<10}  path total {:>6.2} accesses/pkt;  aggregation-point cost {:>5.2} accesses ({} hits)",
            total as f64 / n as f64,
            if agg_hits == 0 { 0.0 } else { agg_total as f64 / agg_hits as f64 },
            agg_hits
        );
    }
    println!("\npaper's point: the hybrid turns the aggregation-point full lookup into a");
    println!("clue continuation — often free by Claim 1 — while plain switching hops");
    println!("cost exactly one access in both modes.");
}
