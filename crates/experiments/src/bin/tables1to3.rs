//! Tables 1–3 of the paper: table sizes, problematic-clue counts and
//! pairwise intersections, over the synthetic stand-ins for the paper's
//! seven routers.
//!
//! ```sh
//! cargo run --release -p clue-experiments --bin tables1to3
//! # quick run at 1/10 size:
//! CLUE_SCALE=small cargo run --release -p clue-experiments --bin tables1to3
//! ```

use clue_experiments::{exchange_view, fmt_count, partner_table, router_table};
use clue_tablegen::PairStats;

fn main() {
    // Route servers: three views of the same exchange fabric.
    let mae_east = router_table("MAE-East");
    let mae_west = exchange_view(&mae_east, mae_east.len() * 23_382 / 42_123, 201);
    let paix = exchange_view(&mae_east, mae_east.len() * 5_974 / 42_123, 202);
    // ISP pairs: direct neighbors inside one ISP.
    let att1 = router_table("AT&T-1");
    let att2 = partner_table(&att1, 203);
    let ispb1 = router_table("ISP-B-1");
    let ispb2 = partner_table(&ispb1, 204);

    let routers: Vec<(&str, &Vec<_>)> = vec![
        ("MAE-East", &mae_east),
        ("MAE-West", &mae_west),
        ("Paix", &paix),
        ("AT&T-1", &att1),
        ("AT&T-2", &att2),
        ("ISP-B-1", &ispb1),
        ("ISP-B-2", &ispb2),
    ];

    println!("=== Table 1: total number of prefixes in each table ===");
    println!("(paper: MAE-East 42,123 · MAE-West 23,382 · Paix 5,974 · AT&T ≈23,400 · ISP-B ≈56,000)\n");
    for (name, t) in &routers {
        println!("{name:<10} {:>8}", fmt_count(t.len()));
    }

    let pairs: Vec<(&str, &Vec<_>, &str, &Vec<_>)> = vec![
        ("MAE-East", &mae_east, "MAE-West", &mae_west),
        ("MAE-East", &mae_east, "Paix", &paix),
        ("Paix", &paix, "MAE-East", &mae_east),
        ("AT&T-1", &att1, "AT&T-2", &att2),
        ("AT&T-2", &att2, "AT&T-1", &att1),
        ("ISP-B-1", &ispb1, "ISP-B-2", &ispb2),
        ("ISP-B-2", &ispb2, "ISP-B-1", &ispb1),
    ];

    println!("\n=== Table 2: problematic clues (Claim 1 fails at the receiver) ===");
    println!("(paper: 35–457 per pair, i.e. ≲ 2% — up to 7% for route-server pairs)\n");
    println!("{:<10} {:<10} {:>12} {:>10}", "sender", "receiver", "problematic", "fraction");
    let mut stats_cache = Vec::new();
    for (sn, s, rn, r) in &pairs {
        let st = PairStats::compute(s, r);
        println!(
            "{sn:<10} {rn:<10} {:>12} {:>9.2}%",
            fmt_count(st.problematic),
            st.problematic_fraction() * 100.0
        );
        stats_cache.push(st);
    }

    println!("\n=== Table 3: prefixes appearing in both tables (intersection) ===");
    println!("(paper: MAE-East∩MAE-West 23,382 · MAE-East∩Paix 5,899 · AT&T 23,381 · ISP-B 55,540)\n");
    println!("{:<10} {:<10} {:>12} {:>12}", "table A", "table B", "intersection", "similarity");
    for ((sn, _, rn, _), st) in pairs.iter().zip(&stats_cache) {
        println!(
            "{sn:<10} {rn:<10} {:>12} {:>11.1}%",
            fmt_count(st.intersection),
            st.similarity() * 100.0
        );
    }
}
