//! The showcase: a multi-AS "mini internet" whose forwarding tables come
//! from the path-vector protocol (not from the synthetic band plan), and
//! whose packets are clue-routed end to end.
//!
//! ```sh
//! cargo run --release -p clue-experiments --bin internet_like
//! ```
//!
//! 5 ASes, each a small ring of core routers with stub edges; inter-AS
//! peering links between cores; every stub originates /24s; borders
//! aggregate own-AS space to /12. After convergence we measure the
//! Figure 1 curves and the Tables 4–9 headline on the *protocol-derived*
//! tables — no generator knobs anywhere.

use clue_core::{EngineConfig, Method};
use clue_lookup::Family;
use clue_netsim::{run_workload, Aggregation, Network, NetworkConfig, PathVector, Topology};
use clue_trie::{Ip4, Prefix};

fn main() {
    // Topology: 5 ASes x (3 cores in a triangle + 2 stubs) = 25 routers.
    // Inter-AS: core 0 of AS k peers with core 0 of AS k+1 (a line of
    // ASes), plus a shortcut AS0-AS3.
    let as_count = 5usize;
    let per_as = 5usize; // 3 cores + 2 stubs
    let n = as_count * per_as;
    let mut topo = Topology::new(n);
    let mut as_of = vec![0u32; n];
    let mut stubs = Vec::new();
    for a in 0..as_count {
        let base = a * per_as;
        for i in 0..per_as {
            as_of[base + i] = a as u32 + 1;
        }
        // Core triangle.
        topo.add_link(base, base + 1);
        topo.add_link(base + 1, base + 2);
        topo.add_link(base + 2, base);
        // Stubs on cores 1 and 2.
        topo.add_link(base + 1, base + 3);
        topo.add_link(base + 2, base + 4);
        stubs.push(base + 3);
        stubs.push(base + 4);
    }
    for a in 1..as_count {
        topo.add_link((a - 1) * per_as, a * per_as); // AS chain via core 0s
    }
    topo.add_link(0, 3 * per_as); // shortcut AS1-AS4

    // Origination: each stub announces 25 /24s inside its AS's /12.
    let mut originated: Vec<Vec<Prefix<Ip4>>> = vec![Vec::new(); n];
    for (si, &s) in stubs.iter().enumerate() {
        let a = s / per_as;
        let block = ((a as u32 + 1) << 20) | ((si as u32 & 1) << 19);
        originated[s] = (0..25u32)
            .map(|j| Prefix::new(Ip4((block | j << 9) << 8), 24))
            .collect();
    }

    let mut pv = PathVector::new(topo, as_of, originated, Aggregation::OwnAtBorder(12));
    let rounds = pv.converge(128).expect("the mini internet converges");
    println!("=== mini internet: {as_count} ASes, {n} routers, {} origin stubs ===", stubs.len());
    println!("path-vector converged in {rounds} rounds");
    let sizes: Vec<usize> = (0..n).map(|r| pv.ribs()[r].prefixes().len()).collect();
    println!(
        "table sizes: min {}, max {} (specifics at home, /12 aggregates abroad)\n",
        sizes.iter().min().unwrap(),
        sizes.iter().max().unwrap()
    );

    for method in [Method::Common, Method::Simple, Method::Advance] {
        let cfg = NetworkConfig::new(vec![], EngineConfig::new(Family::Patricia, method));
        let mut net = Network::from_path_vector(&pv, cfg);
        let stats = run_workload(&mut net, &stubs, 3_000, 99);
        println!(
            "{:<8} total {:>8} accesses, {:>6.2}/hop overall, {:>6.2}/hop past the first, {}/{} delivered",
            method.label(),
            stats.total_accesses,
            stats.mean_per_hop(),
            stats.mean_per_clue_hop(),
            stats.delivered,
            stats.packets
        );
    }

    // Figure 1 on protocol tables.
    let cfg = NetworkConfig::new(vec![], EngineConfig::new(Family::Patricia, Method::Advance));
    let mut net = Network::from_path_vector(&pv, cfg);
    let stats = run_workload(&mut net, &stubs, 3_000, 100);
    println!("\nBMP length / work by hop position (Figure 1 on protocol-derived tables):");
    for (i, s) in stats.per_hop_position.iter().enumerate() {
        if s.samples() < 50 {
            continue;
        }
        println!(
            "  hop {:<2} len {:>5.1}  work {:>5.2}",
            i, stats.bmp_len_by_position[i], s.mean()
        );
    }
    println!("\nno synthetic knobs were used: the similarity, the aggregates and the");
    println!("problematic clues all came out of the routing protocol itself.");
}
