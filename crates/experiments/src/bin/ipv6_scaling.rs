//! Section 6's scaling claim: “the presented scheme is expected to give
//! similar performances in IPv6 while the Log W technique does not scale
//! as good.”
//!
//! ```sh
//! cargo run --release -p clue-experiments --bin ipv6_scaling
//! ```
//!
//! Runs the same pair/workload construction for IPv4 (W = 32) and IPv6
//! (W = 128, 7-bit clues) and prints the mean accesses of the clue-less
//! baselines against Simple/Advance. The clue methods stay at ≈ 1
//! regardless of the address width; the clue-less schemes grow with `W`
//! (Regular ∝ W) or with the number of populated lengths (Log W).

use clue_core::{ClueEngine, EngineConfig, Method};
use clue_lookup::{reference_bmp, Family};
use clue_tablegen::{
    derive_neighbor, generate, synthesize_ipv4, synthesize_ipv6, NeighborConfig, TrafficConfig,
};
use clue_trie::{Address, Cost, CostStats, Prefix};

fn run<A: Address>(name: &str, sender: &[Prefix<A>], receiver: &[Prefix<A>], dests: &[A]) {
    println!("\n=== {name}: {} prefixes, {} packets ===", sender.len(), dests.len());
    println!("{:<10} {:>10} {:>10} {:>10}", "family", "common", "Simple", "Advance");
    for family in Family::all() {
        print!("{:<10}", family.label());
        for method in Method::all() {
            let mut engine =
                ClueEngine::precomputed(sender, receiver, EngineConfig::new(family, method));
            let mut acc = CostStats::new();
            for &dest in dests {
                let clue = reference_bmp(sender, dest).filter(|c| !c.is_empty());
                let mut cost = Cost::new();
                let got = engine.lookup(dest, clue, None, &mut cost);
                debug_assert_eq!(got, reference_bmp(receiver, dest));
                acc.record(cost);
            }
            print!(" {:>10.2}", acc.mean());
        }
        println!();
    }
}

fn main() {
    let n = 6_000;
    let packets = TrafficConfig { count: 5_000, ..TrafficConfig::paper(501) };

    let s4 = synthesize_ipv4(n, 401);
    let r4 = derive_neighbor(&s4, &NeighborConfig::same_isp(402));
    let d4 = generate(&s4, &r4, &packets);
    run("IPv4 (W = 32, 5-bit clues)", &s4, &r4, &d4);

    let s6 = synthesize_ipv6(n, 403);
    let r6 = derive_neighbor(&s6, &NeighborConfig::same_isp(404));
    let d6 = generate(&s6, &r6, &packets);
    run("IPv6 (W = 128, 7-bit clues)", &s6, &r6, &d6);

    println!("\npaper's claim, verified: Simple/Advance are width-independent (≈ 1 access),");
    println!("while Regular grows ∝ W and Log W with the populated-length count.");
}
