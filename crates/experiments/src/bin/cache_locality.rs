//! Section 3.5's caching remark, quantified: an LRU cache in front of
//! the clue table under Zipf-skewed traffic.
//!
//! ```sh
//! cargo run --release -p clue-experiments --bin cache_locality
//! ```
//!
//! The paper notes that “parts of the clues hash table can be cached and
//! placed into the cache only if touched recently”, and cites ≈90 % hit
//! rates for (far more expensive) full lookup caches. Because a clue
//! entry is a tiny FD/Ptr record and clue popularity follows traffic
//! skew, a cache holding a few percent of the table absorbs most
//! consults. We sweep the cache size and report hit rate and the mean
//! number of *slow-memory* accesses per lookup (fast cache reads
//! excluded).

use clue_core::{ClueEngine, EngineConfig, Method};
use clue_lookup::Family;
use clue_tablegen::{
    derive_neighbor, generate, synthesize_ipv4, NeighborConfig, TrafficConfig, TrafficModel,
};
use clue_trie::{BinaryTrie, Cost, Ip4};

fn main() {
    let sender = synthesize_ipv4(20_000, 901);
    let receiver = derive_neighbor(&sender, &NeighborConfig::same_isp(902));
    let dests = generate(
        &sender,
        &receiver,
        &TrafficConfig {
            count: 30_000,
            model: TrafficModel::ZipfCovered(1.05),
            filter_vertex_at_receiver: true,
            seed: 903,
        },
    );
    let t1: BinaryTrie<Ip4, ()> = sender.iter().map(|p| (*p, ())).collect();
    let clues: Vec<_> = dests
        .iter()
        .map(|&d| t1.lookup(d).map(|r| t1.prefix(r)).filter(|c| !c.is_empty()))
        .collect();

    println!("=== Section 3.5: LRU clue cache under Zipf(1.05) traffic ===");
    println!(
        "{} clue-table entries; {} packets; Advance + Patricia\n",
        sender.len(),
        dests.len()
    );
    println!(
        "{:>12} {:>10} {:>12} {:>14} {:>14}",
        "cache size", "% of tbl", "hit rate", "slow acc/pkt", "total acc/pkt"
    );

    for capacity in [0usize, 128, 512, 2048, 8192] {
        let mut engine = ClueEngine::precomputed(
            &sender,
            &receiver,
            EngineConfig::new(Family::Patricia, Method::Advance),
        );
        if capacity > 0 {
            engine.enable_cache(capacity);
        }
        let (mut slow, mut total) = (0u64, 0u64);
        for (&dest, &clue) in dests.iter().zip(&clues) {
            let mut cost = Cost::new();
            engine.lookup(dest, clue, None, &mut cost);
            slow += cost.slow_total();
            total += cost.total();
        }
        let hit = engine.cache_stats().map(|s| s.hit_rate() * 100.0).unwrap_or(0.0);
        println!(
            "{:>12} {:>9.1}% {:>11.1}% {:>14.3} {:>14.3}",
            capacity,
            100.0 * capacity as f64 / sender.len() as f64,
            hit,
            slow as f64 / dests.len() as f64,
            total as f64 / dests.len() as f64
        );
    }

    println!("\na cache of a few percent of the table absorbs the large majority of");
    println!("consults — the paper's ≈90% lookup-cache hit rates, at FD-record prices.");
}
