//! Tables 4–9 of the paper: average memory accesses per lookup for the
//! fifteen method combinations, over six sender→receiver pairs.
//!
//! ```sh
//! cargo run --release -p clue-experiments --bin tables4to9
//! # quick run at 1/10 size:
//! CLUE_SCALE=small cargo run --release -p clue-experiments --bin tables4to9
//! ```
//!
//! The paper's headline shape: the **Advance** column sits at ≈ 1.0–1.05
//! for every family; **Simple** at ≈ 1–3 (≈ 10× better than Regular);
//! the clue-less **common** column pays the full price of each scheme
//! (Regular ≈ 22× Advance, Log W ≈ 3.5× Advance).

use clue_experiments::{
    exchange_view, partner_table, print_scheme_matrix, router_table, workload,
};

fn main() {
    let mae_east = router_table("MAE-East");
    let mae_west = exchange_view(&mae_east, mae_east.len() * 23_382 / 42_123, 201);
    let paix = exchange_view(&mae_east, mae_east.len() * 5_974 / 42_123, 202);
    let att1 = router_table("AT&T-1");
    let att2 = partner_table(&att1, 203);
    let ispb1 = router_table("ISP-B-1");
    let ispb2 = partner_table(&ispb1, 204);

    let pairs: Vec<(&str, &Vec<_>, &Vec<_>, u64)> = vec![
        ("Table 4: MAE-East -> MAE-West", &mae_east, &mae_west, 301),
        ("Table 5: MAE-East -> Paix", &mae_east, &paix, 302),
        ("Table 6: Paix -> MAE-East", &paix, &mae_east, 303),
        ("Table 7: AT&T-1 -> AT&T-2", &att1, &att2, 304),
        ("Table 8: ISP-B-1 -> ISP-B-2", &ispb1, &ispb2, 305),
        ("Table 9: ISP-B-2 -> ISP-B-1", &ispb2, &ispb1, 306),
    ];

    for (title, sender, receiver, seed) in pairs {
        let wl = workload(sender, receiver, seed);
        print_scheme_matrix(title, sender, receiver, &wl);
    }

    println!("\npaper reference: Advance ≈ 1.0–1.05 everywhere; Advance ≈ 22× Regular-common;");
    println!("Advance ≈ 3.5× LogW-common; Simple ≈ 10× Regular-common, ≈ 1.5× better than LogW.");
}
