//! Figure 1 of the paper: the best-matching-prefix length of a packet
//! along its path, and the per-router work under distributed IP lookup.
//!
//! ```sh
//! cargo run --release -p clue-experiments --bin fig1
//! ```
//!
//! The paper's (speculative) figure predicts: the BMP length rises from
//! source to destination, so the *work* — which under clue routing is
//! proportional to the BMP-length increments — concentrates near the
//! edges while the heavily-loaded backbone routers do almost nothing.
//! This binary measures both curves on a simulated backbone.

use clue_core::{EngineConfig, Method};
use clue_lookup::Family;
use clue_netsim::{run_workload, Network, NetworkConfig, Topology};
use clue_trie::Ip4;

fn bar(len: f64, scale: f64) -> String {
    "#".repeat((len * scale).round().max(0.0) as usize)
}

fn main() {
    // A long transit path: edge -> 8 core hops -> edge, with detail
    // decaying over three bands.
    let (topo, edges) = Topology::backbone(8, 2);
    let mut cfg =
        NetworkConfig::new(edges.clone(), EngineConfig::new(Family::Patricia, Method::Advance));
    cfg.specifics_per_origin = 30;
    cfg.bands = vec![(1, 24), (2, 20), (4, 16), (usize::MAX, 14)];
    cfg.seed = 1999;
    let mut net: Network<Ip4> = Network::build(topo, cfg);

    let stats = run_workload(&mut net, &edges, 2_000, 7);
    println!("=== Figure 1 (measured): 2,000 edge-to-edge packets, 8-core backbone ===\n");
    println!("BMP length along the path (paper: grows toward the destination)\n");
    println!("{:<5} {:>8}", "hop", "mean len");
    for (i, len) in stats.bmp_len_by_position.iter().enumerate() {
        if stats.per_hop_position[i].samples() == 0 {
            continue;
        }
        println!("{:<5} {:>8.1}  {}", i, len, bar(*len, 1.0));
    }

    println!("\nWork at each router position (paper: backbone ≈ idle, edges do the lookups)\n");
    println!("{:<5} {:>10}", "hop", "accesses");
    for (i, s) in stats.per_hop_position.iter().enumerate() {
        if s.samples() == 0 {
            continue;
        }
        println!("{:<5} {:>10.2}  {}", i, s.mean(), bar(s.mean(), 2.0));
    }

    let first = stats.per_hop_position[0].mean();
    let mid: f64 = stats.per_hop_position[2..stats.per_hop_position.len() - 1]
        .iter()
        .filter(|s| s.samples() > 0)
        .map(|s| s.mean())
        .sum::<f64>()
        / (stats.per_hop_position.len() - 3).max(1) as f64;
    println!(
        "\nsource hop pays {first:.1} accesses; mid-path (backbone) hops pay {mid:.2} on average"
    );
    println!("=> the derivative of the BMP curve is where the work lives, exactly Figure 1.");
}
