//! Property tests for the fleet simulator's routing substrate: on
//! arbitrary connected topologies, the all-pairs BFS [`RouteTree`]s and
//! ECMP DAGs must be loop-free and hop-minimal, and the per-flow
//! hashed ECMP choice must be stable under router renumbering — the
//! invariant the fleet's deterministic packet leg leans on.

use clue_netsim::Topology;
use proptest::prelude::*;

const MAX_N: usize = 40;

/// An arbitrary connected topology as an explicit edge-insertion
/// sequence: a random spanning tree (router `i` attaches to some
/// earlier router) plus random chord links. The *sequence* matters —
/// adjacency order is insertion order, and the renumbering property is
/// about replaying the same insertions under a relabeling. Raw
/// ingredients are fixed-size and sliced by `n` (the shim has no
/// dependent `prop_flat_map`).
fn arb_edges() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (
        4usize..MAX_N,
        proptest::collection::vec(0usize..10_000, MAX_N - 1),
        proptest::collection::vec((0usize..10_000, 0usize..10_000), 0..MAX_N),
    )
        .prop_map(|(n, parents, chords)| {
            let mut edges: Vec<(usize, usize)> = parents[..n - 1]
                .iter()
                .enumerate()
                .map(|(i, &p)| (i + 1, p % (i + 1)))
                .collect();
            edges.extend(chords.iter().map(|&(a, b)| (a % n, b % n)).filter(|&(a, b)| a != b));
            (n, edges)
        })
}

fn build(n: usize, edges: &[(usize, usize)]) -> Topology {
    let mut t = Topology::new(n);
    for &(a, b) in edges {
        t.add_link(a, b);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All-pairs BFS and ECMP trees are hop-minimal and loop-free on
    /// any connected topology: every ECMP next hop is exactly one hop
    /// closer over a real link, every materialized path has length
    /// equal to the BFS distance, and no path revisits a router.
    #[test]
    fn all_pairs_routes_are_loop_free_and_hop_minimal(
        (n, edges) in arb_edges(),
        keys in proptest::collection::vec(any::<u64>(), 1..5),
    ) {
        let t = build(n, &edges);
        let routes = t.all_routes();
        let ecmp = t.all_ecmp_routes();
        for dest in 0..n {
            for src in 0..n {
                // Spanning-tree construction ⇒ everything reachable,
                // and both tree kinds agree on the metric.
                let d = routes[dest].distance(src).expect("connected by construction");
                prop_assert_eq!(ecmp[dest].distance(src), Some(d));

                // Every equal-cost next hop is a neighbor exactly one
                // hop closer — the strict descent that rules loops out.
                for &nh in &ecmp[dest].next_hops[src] {
                    prop_assert!(t.has_link(src, nh));
                    prop_assert_eq!(ecmp[dest].dist[nh] + 1, d);
                }
                prop_assert_eq!(ecmp[dest].next_hops[src].is_empty(), src == dest);

                // The single-path BFS tree is hop-minimal too.
                let path = routes[dest].path_from(src).expect("reachable");
                prop_assert_eq!(path.len(), d + 1);

                for &key in &keys {
                    let path = ecmp[dest].path_from(src, key).expect("reachable");
                    prop_assert_eq!(path.len(), d + 1, "flow path not hop-minimal");
                    let mut seen = vec![false; n];
                    for pair in path.windows(2) {
                        prop_assert!(t.has_link(pair[0], pair[1]));
                        prop_assert!(!seen[pair[0]], "path revisits router {}", pair[0]);
                        seen[pair[0]] = true;
                    }
                }
            }
        }
    }

    /// The hashed per-flow ECMP choice is stable under router
    /// renumbering: relabel every router through a permutation, replay
    /// the same link insertions under the relabeling, and every flow's
    /// path maps elementwise through the permutation. This is what
    /// lets the fleet compare sharded runs bit for bit — worker count
    /// and router numbering never leak into path choice.
    #[test]
    fn ecmp_choice_is_stable_under_renumbering(
        (n, edges) in arb_edges(),
        perm_keys in proptest::collection::vec(any::<u64>(), MAX_N),
        keys in proptest::collection::vec(any::<u64>(), 1..4),
    ) {
        // A permutation of 0..n from random sort keys (ties broken by
        // index, so it is always a bijection).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (perm_keys[i], i));
        let mut perm = vec![0usize; n];
        for (new, &old) in order.iter().enumerate() {
            perm[old] = new;
        }

        let t1 = build(n, &edges);
        let mapped: Vec<(usize, usize)> =
            edges.iter().map(|&(a, b)| (perm[a], perm[b])).collect();
        let t2 = build(n, &mapped);

        for dest in 0..n {
            let e1 = t1.ecmp_toward(dest);
            let e2 = t2.ecmp_toward(perm[dest]);
            for src in 0..n {
                for &key in &keys {
                    let p1: Vec<usize> = e1
                        .path_from(src, key)
                        .expect("connected")
                        .into_iter()
                        .map(|r| perm[r])
                        .collect();
                    let p2 = e2.path_from(perm[src], key).expect("connected");
                    prop_assert_eq!(&p1, &p2, "renumbering changed the flow path");
                }
            }
        }
    }
}
