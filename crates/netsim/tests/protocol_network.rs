//! End-to-end: a path-vector protocol converges, its RIBs become a
//! packet-forwarding network with per-link clue engines, and packets
//! flow correctly and cheaply — Section 3.3.2 closed into a loop.

use clue_core::{EngineConfig, Method};
use clue_lookup::Family;
use clue_netsim::{Aggregation, Hop, Network, NetworkConfig, PathVector, Topology};
use clue_trie::{Ip4, Prefix};
use proptest::prelude::*;
use rand::SeedableRng;

fn p(s: &str) -> Prefix<Ip4> {
    s.parse().unwrap()
}

fn converged_two_as() -> PathVector<Ip4> {
    let topo = Topology::line(6);
    let as_of = vec![1, 1, 1, 2, 2, 2];
    let mut originated: Vec<Vec<Prefix<Ip4>>> = vec![Vec::new(); 6];
    originated[0] = (0..20u32).map(|j| Prefix::new(Ip4(0x0A00_0000 | j << 8), 24)).collect();
    originated[5] = (0..20u32).map(|j| Prefix::new(Ip4(0x1400_0000 | j << 8), 24)).collect();
    let mut pv = PathVector::new(topo, as_of, originated, Aggregation::OwnAtBorder(16));
    pv.converge(64).expect("converges");
    pv
}

#[test]
fn packets_flow_over_protocol_fibs() {
    let pv = converged_two_as();
    let cfg = NetworkConfig::new(vec![], EngineConfig::new(Family::Patricia, Method::Advance));
    let mut net = Network::from_path_vector(&pv, cfg);
    assert_eq!(net.config().origins, vec![0, 5]);

    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    for _ in 0..40 {
        let dest = net.random_destination(1, &mut rng); // router 5's space
        let trace = net.route_packet(0, dest);
        assert!(trace.delivered, "{trace:?}");
        assert_eq!(trace.hops.last().unwrap().router, 5);
        // Every hop's BMP equals its own FIB's reference lookup.
        for h in &trace.hops {
            let fib = &net.routers()[h.router].fib;
            assert_eq!(h.bmp, fib.lookup(dest).map(|r| fib.prefix(r)));
        }
    }
}

#[test]
fn border_aggregation_shows_in_hop_bmps() {
    let pv = converged_two_as();
    let cfg = NetworkConfig::new(vec![], EngineConfig::new(Family::Patricia, Method::Advance));
    let mut net = Network::from_path_vector(&pv, cfg);
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let dest = net.random_destination(1, &mut rng);
    let trace = net.route_packet(0, dest);
    let lens = trace.bmp_lengths();
    // AS 1 routers see only AS 2's /16 aggregate; once inside AS 2 the
    // /24 specific applies. (Both ASes contain routers 3..=5.)
    assert_eq!(lens[0], 16, "{lens:?}");
    assert_eq!(*lens.last().unwrap(), 24, "{lens:?}");
    // Clue routing over the protocol FIBs stays cheap past the first hop.
    let steady: u64 = trace.hops[1..].iter().map(|h| h.cost.total()).sum();
    assert!(
        steady <= 2 * (trace.hops.len() as u64 - 1) + 8,
        "steady-state hops too expensive: {:?}",
        trace.work()
    );
}

#[test]
fn withdrawn_space_stops_being_routable() {
    let mut pv = converged_two_as();
    let victim = pv.originated(5)[0];
    pv.withdraw(5, &victim);
    pv.converge(64).unwrap();
    let cfg = NetworkConfig::new(vec![], EngineConfig::new(Family::Regular, Method::Advance));
    let net = Network::from_path_vector(&pv, cfg);
    // The /24 is gone from every FIB…
    for r in net.routers() {
        assert!(r.fib.get(&victim).is_none());
    }
    // …but the AS-2 aggregate still routes the rest of the block from
    // AS 1 (it is regenerated from the remaining specifics).
    let fib0 = &net.routers()[0].fib;
    assert!(fib0.get(&p("20.0.0.0/16")).is_some());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random connected topologies: the protocol converges, paths are
    /// consistent (following FIB next hops from any router reaches the
    /// prefix's origin without loops).
    #[test]
    fn path_vector_fibs_are_consistent(
        n in 3usize..16,
        extra in 0usize..8,
        seed in any::<u64>(),
        origin_count in 1usize..4,
    ) {
        let topo = Topology::random_connected(n, extra, seed);
        let mut originated: Vec<Vec<Prefix<Ip4>>> = vec![Vec::new(); n];
        let origins: Vec<usize> = (0..origin_count.min(n)).map(|i| i * (n - 1) / origin_count.max(1)).collect();
        for (i, &o) in origins.iter().enumerate() {
            originated[o].push(Prefix::new(Ip4(((i as u32) + 1) << 24), 8));
        }
        let mut pv = PathVector::new(topo, vec![1; n], originated.clone(), Aggregation::None);
        prop_assert!(pv.converge(4 * n + 8).is_some(), "did not converge");

        for (i, &o) in origins.iter().enumerate() {
            let prefix = originated[o][0];
            for start in 0..n {
                // Follow next hops; must reach o within n steps.
                let mut cur = start;
                for _ in 0..=n {
                    match pv.ribs()[cur].next_hop(&prefix) {
                        Some(None) => {
                            prop_assert_eq!(cur, o, "local delivery at a non-origin");
                            break;
                        }
                        Some(Some(nh)) => cur = nh,
                        None => prop_assert!(false, "router {} lost prefix {} (origin {}, i {})", cur, prefix, o, i),
                    }
                }
                prop_assert_eq!(cur, o, "walk from {} did not reach origin", start);
            }
        }
    }
}

#[test]
fn from_fibs_rejects_mismatched_sizes() {
    let topo = Topology::line(3);
    let cfg = NetworkConfig::new(vec![0], EngineConfig::new(Family::Regular, Method::Common));
    let fibs: Vec<clue_trie::BinaryTrie<Ip4, Hop>> = vec![clue_trie::BinaryTrie::new()];
    let result = std::panic::catch_unwind(|| Network::from_fibs(topo, cfg, fibs, vec![vec![]]));
    assert!(result.is_err(), "size mismatch must panic");
}
