//! `FaultPlan::parse` properties: any subset of the canonical class
//! labels, in any order, with any duplication and spacing, must parse
//! back to exactly those classes (plus the implied `clean`), and the
//! spec language must round-trip through [`FaultClass::label`] /
//! [`FaultClass::from_label`] for every class in the table. The CLI's
//! `--faults` flag and verify.sh's chaos legs lean on this.

use clue_netsim::{FaultClass, FaultPlan};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parsing a spec built from arbitrary class picks yields exactly
    /// the picked classes plus `clean`, deduplicated, and the result
    /// re-parses to the same plan (full round trip).
    #[test]
    fn parse_round_trips_over_all_class_labels(
        picks in proptest::collection::vec(0usize..FaultClass::ALL.len(), 1..16),
        seed in 0u64..1_000,
        spaced in any::<bool>(),
    ) {
        let classes: Vec<FaultClass> =
            picks.iter().map(|&i| FaultClass::ALL[i]).collect();
        let sep = if spaced { " , " } else { "," };
        let spec: String = classes
            .iter()
            .map(|c| c.label())
            .collect::<Vec<_>>()
            .join(sep);

        let plan = FaultPlan::parse(&spec, seed).expect("every canonical label parses");
        prop_assert_eq!(plan.seed(), seed);
        // Exactly the picked set plus the implied `clean`, no dupes.
        prop_assert_eq!(plan.classes()[0], FaultClass::Clean);
        for &c in &classes {
            prop_assert!(plan.classes().contains(&c), "missing {}", c.label());
        }
        for (i, &c) in plan.classes().iter().enumerate() {
            prop_assert!(
                c == FaultClass::Clean || classes.contains(&c),
                "unexpected class {}",
                c.label(),
            );
            prop_assert!(
                !plan.classes()[..i].contains(&c),
                "duplicate class {}",
                c.label(),
            );
        }

        // Round trip: re-rendering the parsed plan's classes as a spec
        // parses back to the identical plan.
        let respec: String = plan
            .classes()
            .iter()
            .map(|c| c.label())
            .collect::<Vec<_>>()
            .join(",");
        let replan = FaultPlan::parse(&respec, seed).expect("rendered spec parses");
        prop_assert_eq!(replan.classes(), plan.classes());

        // The per-packet class stream only draws from the plan.
        for index in 0..64u64 {
            prop_assert!(plan.classes().contains(&plan.class_for(index)));
        }
    }

    /// Label bijection: every class round-trips through its label, and
    /// labels are pairwise distinct (the canonical-table invariant the
    /// spec language is built on).
    #[test]
    fn labels_are_a_bijection(_nothing in any::<bool>()) {
        for (i, &c) in FaultClass::ALL.iter().enumerate() {
            prop_assert_eq!(FaultClass::from_label(c.label()), Some(c));
            prop_assert_eq!(c.index(), i);
            for &other in &FaultClass::ALL[..i] {
                prop_assert!(other.label() != c.label());
            }
        }
        prop_assert_eq!(FaultClass::from_label("not-a-class"), None);
    }
}
