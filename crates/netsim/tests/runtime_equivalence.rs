//! The serving runtime's determinism contract: for any network and
//! seed, [`StrideNetwork::run_workload`] is **bit-identical** to the
//! sequential live-engine reference [`run_workload_per_packet`] at
//! every worker count, and [`serve_lookups`] returns exactly the
//! plain batch lookup of the same inputs at every worker count.

use clue_core::{
    ClueEngine, EngineConfig, EpochCell, Method, StrideConfig,
};
use clue_lookup::Family;
use clue_netsim::{
    run_workload_per_packet, serve_lookups, Network, NetworkConfig, RuntimeConfig, StrideNetwork,
    Topology,
};
use clue_trie::{Ip4, Prefix};
use proptest::prelude::*;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn method(ix: u8) -> Method {
    match ix % 3 {
        0 => Method::Common,
        1 => Method::Simple,
        _ => Method::Advance,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Channel-fed multi-core routing folds to the same [`RunStats`]
    /// as the scalar walk, bit for bit, regardless of worker count or
    /// batch size.
    #[test]
    fn runtime_is_bit_identical_to_the_scalar_reference(
        core in 2usize..5,
        edges_per_core in 1usize..3,
        specifics in 4usize..20,
        net_seed in any::<u64>(),
        run_seed in any::<u64>(),
        method_ix in any::<u8>(),
        batch in 1usize..64,
        shift in any::<bool>(),
    ) {
        let (topo, edges) = Topology::backbone(core, edges_per_core);
        let mut cfg = NetworkConfig::new(
            edges.clone(),
            EngineConfig::new(Family::Regular, method(method_ix)),
        );
        cfg.specifics_per_origin = specifics;
        cfg.seed = net_seed;
        if shift {
            cfg.core = (0..core).collect();
            cfg.shift_work_to_edges = true;
        }
        let mut net: Network<Ip4> = Network::build(topo, cfg);

        let packets = 120;
        let reference = run_workload_per_packet(&mut net, &edges, packets, run_seed);
        let stride = StrideNetwork::freeze(&net, StrideConfig::default()).unwrap();
        for workers in WORKER_COUNTS {
            let runtime_cfg = RuntimeConfig { workers, batch, ..RuntimeConfig::default() };
            let (stats, report) =
                stride.run_workload_timed(&edges, packets, run_seed, &runtime_cfg, None);
            prop_assert_eq!(
                &stats, &reference,
                "workers={} batch={} diverged from the scalar reference", workers, batch
            );
            let attributed: u64 = report.cores.iter().map(|c| c.packets).sum();
            prop_assert_eq!(attributed, packets as u64, "every packet attributed to a core");
        }
    }

    /// Engine-level serving returns the plain batch lookup, decision
    /// for decision, at every worker count.
    #[test]
    fn serving_is_bit_identical_to_the_plain_batch_lookup(
        prefix_blocks in 2u32..24,
        packets in 1usize..600,
        batch in 1usize..128,
        seed in any::<u64>(),
    ) {
        let prefixes: Vec<Prefix<Ip4>> = (0..prefix_blocks)
            .flat_map(|i| {
                let base = (10u32 << 24) | (i << 16);
                [Prefix::new(Ip4::from(base), 16), Prefix::new(Ip4::from(base | (1 << 8)), 24)]
            })
            .collect();
        let engine = ClueEngine::precomputed(
            &prefixes,
            &prefixes,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        let stride = engine.freeze_stride(StrideConfig::default()).unwrap();

        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut dests = Vec::with_capacity(packets);
        let mut clues = Vec::with_capacity(packets);
        for _ in 0..packets {
            let block = next() % prefix_blocks;
            dests.push(Ip4::from((10u32 << 24) | (block << 16) | (next() & 0xFFFF)));
            clues.push(match next() % 3 {
                0 => None,
                1 => Some(Prefix::new(Ip4::from(10u32 << 24), 8)),
                _ => Some(Prefix::new(Ip4::from((10u32 << 24) | (block << 16)), 16)),
            });
        }

        let (want, want_stats) = stride.lookup_batch_vec(&dests, &clues);
        let cell = EpochCell::new(stride);
        for workers in WORKER_COUNTS {
            let cfg = RuntimeConfig { workers, batch, ..RuntimeConfig::default() };
            let mut got = Vec::new();
            let report = serve_lookups(&cell, &dests, &clues, &mut got, &cfg, None);
            prop_assert_eq!(&got, &want, "decisions diverged at {} workers", workers);
            prop_assert_eq!(report.stats, want_stats, "class counts diverged at {} workers", workers);
        }
    }
}
