//! Systematic adversaries: the hostile side of the robustness claim.
//!
//! The chaos harness ([`crate::run_chaos`]) injects *random* faults;
//! this module injects *strategy*. The paper's safety property — a
//! clued lookup is never worse than a clue-less lookup plus one probe
//! — is a worst-case bound, so the right falsification attempt is a
//! worst-case adversary: one that knows the victim's table and shapes
//! every clue to hit the bound on every packet.
//!
//! Three attacker models ([`AttackProfile`]):
//!
//! * **Lying neighbor** — for each destination, crafts the
//!   *deepest-mismatch* clue: the containing prefix (so it survives
//!   the wire encoding and every parse check) whose continuation is
//!   most expensive for the victim, found by pricing every candidate
//!   length against the victim's own engine
//!   ([`deepest_mismatch_clue`]). This is the strongest *polite*
//!   attacker: every packet it touches pays the full soundness bound.
//! * **Clue flooding** — bursts of distinct non-containing clues
//!   ([`flood_clue`]) aimed at the malformed-accounting path and the
//!   clue buckets: every flood clue is unencodable garbage a
//!   conforming wire could never carry, injected at the lookup
//!   boundary the way a compromised upstream engine would.
//! * **Oscillating liar** — alternates honest and hostile epochs to
//!   defeat naive "bad last batch" detection; the reputation layer's
//!   hysteresis (`clue_core::reputation`) is the counter.
//!
//! [`run_scenario`] plays one adversary against a chaos-style
//! sender/receiver pair under a [`ReputationBook`], differentially
//! checking **every** batch against the clue-less baseline
//! ([`clue_core::check_soundness`]) and recording when quarantine
//! engages, when probation re-admits, and whether post-attack cost
//! reconverges to the honest baseline. The fleet-scale version (many
//! routers, partial deployment) lives in
//! [`Fleet::run_adversarial`](crate::Fleet::run_adversarial) and
//! [`participation_sweep`](crate::participation_sweep).

use clue_core::{
    check_soundness, BatchSignals, ClueEngine, EngineConfig, Method, ReputationBook,
    ReputationConfig, StrideError, Transition,
};
use clue_lookup::Family;
use clue_tablegen::{
    derive_neighbor, generate, synthesize_ipv4, NeighborConfig, TrafficConfig,
};
use clue_telemetry::{AdversaryTelemetry, ReputationTelemetry};
use clue_trie::{BinaryTrie, Cost, Ip4, Prefix};

use crate::churn::ChurnError;
use crate::faults::splitmix64;
use crate::fleet::{Fleet, FleetAdversaryConfig, FleetConfig};

/// Which systematic adversary to play.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackProfile {
    /// Deepest-mismatch containing clues on every packet.
    Lying,
    /// Bursts of distinct malformed clues on every packet.
    Flooding,
    /// Lying on even epochs, honest on odd ones.
    Oscillating,
}

impl AttackProfile {
    /// Every profile, in CLI/report order.
    pub const ALL: [AttackProfile; 3] =
        [AttackProfile::Lying, AttackProfile::Flooding, AttackProfile::Oscillating];

    /// The stable snake_case label (CLI `--attack`, report keys).
    pub fn label(self) -> &'static str {
        match self {
            AttackProfile::Lying => "lying",
            AttackProfile::Flooding => "flooding",
            AttackProfile::Oscillating => "oscillating",
        }
    }

    /// Parses a CLI label back to its profile.
    pub fn parse(label: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|p| p.label() == label)
    }

    /// Whether the adversary misbehaves during epoch/batch `epoch`.
    /// The oscillator is hostile on even epochs only; the others are
    /// always hostile.
    pub fn hostile(self, epoch: u64) -> bool {
        match self {
            AttackProfile::Oscillating => epoch.is_multiple_of(2),
            _ => true,
        }
    }
}

/// Crafts the deepest-mismatch clue for `dest` against a victim whose
/// lookup cost is exposed by `price`: the containing prefix (always
/// encodable on the wire, always parseable) whose clued lookup is most
/// expensive, ties broken toward the deeper clue. `price` receives the
/// candidate clue and must return the victim's total lookup cost for
/// `dest` under it — callers close over their engine of record (the
/// frozen engine in the chaos harness, the stride engine in the
/// fleet).
///
/// Soundness caps the damage: the worst candidate costs at most the
/// clue-less walk plus one probe, and [`run_scenario`] proves exactly
/// that on every packet.
pub fn deepest_mismatch_clue<F>(dest: Ip4, mut price: F) -> Prefix<Ip4>
where
    F: FnMut(Option<Prefix<Ip4>>) -> u64,
{
    let mut best = Prefix::of_address(dest, 1);
    let mut best_cost = 0u64;
    for len in 1..=32u8 {
        let candidate = Prefix::of_address(dest, len);
        let cost = price(Some(candidate));
        // `>=`: among equally expensive candidates prefer the deepest
        // — it is the hardest for a naive filter to distinguish from
        // an honest BMP.
        if cost >= best_cost {
            best_cost = cost;
            best = candidate;
        }
    }
    best
}

/// The `index`-th clue of a flooding burst against `dest`: a
/// non-containing prefix (top destination bit flipped, low bits
/// scrambled per index) so every flood clue is distinct — thrashing
/// the clue buckets and the malformed-accounting path rather than
/// settling into one cached miss. Unencodable on a conforming wire
/// (a decoded wire clue always contains the destination), so floods
/// model a compromised engine injecting at the lookup boundary.
pub fn flood_clue(dest: Ip4, seed: u64, index: u64) -> Prefix<Ip4> {
    let roll = splitmix64(seed ^ 0xF100_D5EE_D000_0003, index);
    // Flip the top bit so no truncation of the clue contains `dest`,
    // then scramble the host bits so consecutive clues land in
    // different buckets.
    let addr = Ip4((dest.0 ^ 0x8000_0000) ^ (roll as u32 & 0x00FF_FFFF));
    let len = 8 + (roll >> 32) as u8 % 25; // 8..=32
    Prefix::of_address(addr, len)
}

/// Parameters of a pair-level adversarial scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// The attacker model.
    pub attack: AttackProfile,
    /// Seed for tables, traffic and flood streams.
    pub seed: u64,
    /// Sender table size (the receiver derives from it).
    pub table_size: usize,
    /// Total batches played (the reputation layer's time base).
    pub batches: usize,
    /// Batches during which the adversary is active (from batch 0);
    /// the remainder is the honest tail that must reconverge.
    pub attack_batches: usize,
    /// Packets per batch.
    pub packets_per_batch: usize,
    /// Reputation tuning.
    pub reputation: ReputationConfig,
}

impl ScenarioConfig {
    /// A scenario sized for tests and the CLI smoke: 20 batches of
    /// `packets_per_batch` with the attack on for the first 6.
    pub fn new(attack: AttackProfile, seed: u64) -> Self {
        ScenarioConfig {
            attack,
            seed,
            table_size: 400,
            batches: 20,
            attack_batches: 6,
            packets_per_batch: 512,
            reputation: ReputationConfig::default(),
        }
    }
}

/// One batch's outcome in a scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioBatch {
    /// Batch index.
    pub batch: usize,
    /// The adversary misbehaved this batch.
    pub hostile: bool,
    /// The link served clue-less (quarantined) this batch.
    pub quarantined: bool,
    /// The reputation score after folding this batch.
    pub score: f64,
    /// Degradation evidence the batch produced.
    pub signals: BatchSignals,
    /// Total clued-path cost of the batch.
    pub cost: u64,
    /// Total clue-less baseline cost of the batch.
    pub baseline_cost: u64,
    /// Worst single-packet overhead versus the baseline.
    pub overhead_max: u64,
}

/// What a scenario run did and proved.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The attacker model played.
    pub attack: AttackProfile,
    /// Per-batch outcomes.
    pub batches: Vec<ScenarioBatch>,
    /// Forwarding decisions differing from the clue-less baseline
    /// (soundness requires 0, attacker or not).
    pub divergences: u64,
    /// Packets whose overhead exceeded the bound (baseline + 1 probe).
    /// Must stay 0.
    pub bound_violations: u64,
    /// First batch whose serving ran quarantined, if any.
    pub quarantine_batch: Option<usize>,
    /// Batch at which probation re-admitted the neighbor, if any.
    pub readmit_batch: Option<usize>,
    /// Mean per-packet cost over the final honest batches.
    pub final_cost_per_packet: f64,
    /// Mean per-packet cost of a never-attacked reference over the
    /// same destinations.
    pub honest_cost_per_packet: f64,
}

impl ScenarioReport {
    /// The scenario's verdict: the soundness bound held on every
    /// packet and no forwarding decision changed.
    pub fn sound(&self) -> bool {
        self.divergences == 0 && self.bound_violations == 0
    }

    /// Whether the post-attack tail reconverged to within `tolerance`
    /// (relative) of the honest reference cost.
    pub fn reconverged(&self, tolerance: f64) -> bool {
        if self.honest_cost_per_packet == 0.0 {
            return true;
        }
        let ratio = self.final_cost_per_packet / self.honest_cost_per_packet;
        (ratio - 1.0).abs() <= tolerance
    }
}

/// Plays one adversary against a chaos-style sender/receiver pair
/// under a [`ReputationBook`], checking every batch against the
/// clue-less baseline. See the module docs for the models.
///
/// # Errors
/// Returns [`ChurnError::Freeze`] if the synthesized pair cannot be
/// frozen.
pub fn run_scenario(
    config: &ScenarioConfig,
    adversary_telemetry: Option<&AdversaryTelemetry>,
    reputation_telemetry: Option<&ReputationTelemetry>,
) -> Result<ScenarioReport, ChurnError> {
    let sender = synthesize_ipv4(config.table_size, config.seed);
    let receiver = derive_neighbor(&sender, &NeighborConfig::same_isp(config.seed ^ 0x0EC3));
    // Method::Simple — sound for ANY clue (the chaos harness's trust
    // argument, see `run_chaos`): an adversary scenario must not hand
    // the attacker the Advance method's epoch trust.
    let engine_config = EngineConfig::new(Family::Regular, Method::Simple);
    let mut engine = ClueEngine::precomputed(&sender, &receiver, engine_config);
    let frozen = engine.freeze().map_err(ChurnError::Freeze)?;
    let t1: BinaryTrie<Ip4, ()> = sender.iter().map(|p| (*p, ())).collect();

    let mut book = ReputationBook::new(1, config.reputation);
    let mut batches = Vec::with_capacity(config.batches);
    let mut divergences = 0u64;
    let mut bound_violations = 0u64;
    let mut quarantine_batch = None;
    let mut readmit_batch = None;
    let mut final_cost = 0u64;
    let mut final_packets = 0u64;
    let mut honest_cost = 0u64;

    for batch in 0..config.batches {
        let traffic = TrafficConfig {
            count: config.packets_per_batch,
            ..TrafficConfig::paper(config.seed ^ 0x7AFF ^ ((batch as u64) << 20))
        };
        let dests = generate(&sender, &receiver, &traffic);
        let quarantined = !book.uses_clues(0);
        let attacking = batch < config.attack_batches && config.attack.hostile(batch as u64);

        let honest_clues: Vec<Option<Prefix<Ip4>>> = dests
            .iter()
            .map(|&d| t1.lookup(d).map(|r| t1.prefix(r)).filter(|c| !c.is_empty()))
            .collect();
        let clues: Vec<Option<Prefix<Ip4>>> = if quarantined {
            // The quarantine switch: the incoming-link engine is
            // bypassed and every packet served clue-less.
            vec![None; dests.len()]
        } else if attacking {
            dests
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    if let Some(t) = adversary_telemetry {
                        t.attacked_hops_total.inc();
                    }
                    match config.attack {
                        AttackProfile::Flooding => {
                            if let Some(t) = adversary_telemetry {
                                t.flood_clues_total.inc();
                            }
                            Some(flood_clue(d, config.seed, (batch * dests.len() + i) as u64))
                        }
                        _ => {
                            if let Some(t) = adversary_telemetry {
                                t.crafted_clues_total.inc();
                            }
                            Some(deepest_mismatch_clue(d, |clue| {
                                let mut cost = Cost::new();
                                frozen.lookup(d, clue, &mut cost);
                                cost.total()
                            }))
                        }
                    }
                })
                .collect()
        } else {
            honest_clues.clone()
        };

        let report = check_soundness(&mut engine, &frozen, &dests, &clues);
        divergences += report.divergence_count;
        let violations =
            report.overheads.iter().filter(|&&o| o > 1).count() as u64;
        bound_violations += violations;
        if let Some(t) = adversary_telemetry {
            t.bound_violations_total.add(violations);
            for &o in &report.overheads {
                t.attack_overhead.observe(o);
            }
            if report.overhead_max as f64 > t.worst_overhead.get() {
                t.worst_overhead.set(report.overhead_max as f64);
            }
        }

        // Price the batch: clued path as served, and the clue-less
        // baseline the soundness bound is stated against.
        let mut cost = Cost::new();
        for (&d, &c) in dests.iter().zip(&clues) {
            frozen.lookup(d, c, &mut cost);
        }
        let batch_cost = cost.total();
        let mut base = Cost::new();
        for &d in &dests {
            frozen.lookup(d, None, &mut base);
        }
        let baseline_cost = base.total();
        // The never-attacked reference over the same destinations.
        let mut honest = Cost::new();
        for (&d, &c) in dests.iter().zip(&honest_clues) {
            frozen.lookup(d, c, &mut honest);
        }
        honest_cost += honest.total();

        let signals = BatchSignals {
            lookups: report.checked,
            malformed: report.frozen_stats.malformed,
            overruns: report.overheads.iter().filter(|&&o| o >= 1).count() as u64,
        };
        let transition = book.observe(0, &signals);
        if let Some(t) = reputation_telemetry {
            t.batches_observed_total.inc();
            match transition {
                Transition::Quarantined => t.quarantines_total.inc(),
                Transition::Probation => t.probations_total.inc(),
                Transition::Readmitted => t.readmissions_total.inc(),
                Transition::None => {}
            }
            t.quarantined_links.set(book.quarantined() as f64);
            t.min_score.set(book.min_score());
        }
        if quarantined && quarantine_batch.is_none() {
            quarantine_batch = Some(batch);
        }
        if transition == Transition::Readmitted && readmit_batch.is_none() {
            readmit_batch = Some(batch);
        }
        if batch + 1 + 4 > config.batches {
            // The final window the reconvergence verdict averages.
            final_cost += batch_cost;
            final_packets += dests.len() as u64;
        }
        batches.push(ScenarioBatch {
            batch,
            hostile: attacking,
            quarantined,
            score: book.neighbor(0).score(),
            signals,
            cost: batch_cost,
            baseline_cost,
            overhead_max: report.overhead_max,
        });
    }

    let total_packets: u64 = batches.iter().map(|b| b.signals.lookups).sum();
    Ok(ScenarioReport {
        attack: config.attack,
        batches,
        divergences,
        bound_violations,
        quarantine_batch,
        readmit_batch,
        final_cost_per_packet: if final_packets == 0 {
            0.0
        } else {
            final_cost as f64 / final_packets as f64
        },
        honest_cost_per_packet: if total_packets == 0 {
            0.0
        } else {
            honest_cost as f64 / total_packets as f64
        },
    })
}

/// One point of a partial-deployment sweep: what the attack costs a
/// fleet at a given clue-participation fraction.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Fraction of routers participating in the clue scheme.
    pub participation: f64,
    /// Savings the honest fleet achieves at this participation.
    pub honest_savings: f64,
    /// Savings during the hostile rounds (quarantine ramping up).
    pub attacked_savings: f64,
    /// Savings over the final post-quarantine window.
    pub final_savings: f64,
    /// Worst per-hop overhead any attacked packet paid.
    pub worst_overhead: u64,
    /// First round that began with links quarantined, if any.
    pub quarantine_round: Option<usize>,
    /// Whether the soundness bound held on every packet.
    pub sound: bool,
}

/// Sweeps clue participation over `steps`, playing the same adversary
/// against a freshly built fleet at each fraction, and reports the
/// worst-case-overhead-vs-participation curve: at 0 % there is nothing
/// to attack (and nothing to save); as participation grows, so does
/// the attack surface — but the per-packet bound pins the worst case
/// at one probe regardless, which is the robustness claim in one
/// curve.
///
/// The base config's engine method is forced to [`Method::Simple`]
/// (the adversarial trust boundary; see
/// [`Fleet::run_adversarial`](crate::Fleet::run_adversarial)).
///
/// # Errors
/// Returns the [`StrideError`] of the first fleet that fails to build.
pub fn participation_sweep(
    base: &FleetConfig,
    adversary: &FleetAdversaryConfig,
    steps: &[f64],
) -> Result<Vec<SweepPoint>, StrideError> {
    let mut points = Vec::with_capacity(steps.len());
    for &p in steps {
        let mut config = base.clone();
        config.participation = p;
        config.engine.method = Method::Simple;
        let fleet = Fleet::build(config)?;
        let report = fleet.run_adversarial(adversary, None, None, None);
        let (hostile_clue, hostile_base) = report
            .rounds
            .iter()
            .filter(|r| r.hostile)
            .fold((0u64, 0u64), |(c, b), r| (c + r.clue_refs, b + r.baseline_refs));
        let attacked_savings = if hostile_base == 0 {
            0.0
        } else {
            1.0 - hostile_clue as f64 / hostile_base as f64
        };
        points.push(SweepPoint {
            participation: p,
            honest_savings: report.honest_final_savings(),
            attacked_savings,
            final_savings: report.final_savings(),
            worst_overhead: report.overhead_max(),
            quarantine_round: report.quarantine_round,
            sound: report.sound(),
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_round_trip_their_labels() {
        for p in AttackProfile::ALL {
            assert_eq!(AttackProfile::parse(p.label()), Some(p));
        }
        assert_eq!(AttackProfile::parse("ddos"), None);
        assert!(AttackProfile::Lying.hostile(0) && AttackProfile::Lying.hostile(1));
        assert!(AttackProfile::Oscillating.hostile(0));
        assert!(!AttackProfile::Oscillating.hostile(1));
    }

    #[test]
    fn crafted_clues_contain_their_destination() {
        let dest = Ip4(0x0A01_0203);
        let clue = deepest_mismatch_clue(dest, |c| c.map_or(0, |p| p.len() as u64));
        assert!(clue.contains(dest));
        assert_eq!(clue.len(), 32, "argmax under a depth price picks the deepest clue");
        // Ties break deeper.
        let flat = deepest_mismatch_clue(dest, |_| 7);
        assert_eq!(flat.len(), 32);
    }

    #[test]
    fn flood_clues_are_distinct_and_never_contain_the_destination() {
        let dest = Ip4(0x0A01_0203);
        let mut seen = std::collections::HashSet::new();
        for i in 0..256u64 {
            let clue = flood_clue(dest, 9, i);
            assert!(!clue.contains(dest), "flood clue {clue} must be malformed");
            seen.insert(clue);
        }
        assert!(seen.len() > 200, "flood clues must thrash, not repeat: {}", seen.len());
    }

    #[test]
    fn lying_scenario_is_sound_quarantines_and_reconverges() {
        let config = ScenarioConfig::new(AttackProfile::Lying, 21);
        let report = run_scenario(&config, None, None).unwrap();
        assert!(report.sound(), "divergences or bound violations under a lying neighbor");
        let q = report.quarantine_batch.expect("a full-time liar must be quarantined");
        assert!(q <= 4, "quarantine should engage within the window, got {q}");
        assert!(report.readmit_batch.is_some(), "honesty after the attack earns re-admission");
        assert!(report.reconverged(0.05), "post-attack cost must return to honest baseline");
        // The attack batches really hurt before quarantine: the first
        // batch is hostile, un-quarantined, and pays about the bound
        // on every packet.
        let first = &report.batches[0];
        assert!(first.hostile && !first.quarantined);
        assert!(first.signals.overruns * 2 > first.signals.lookups);
        assert_eq!(first.overhead_max, 1, "the soundness bound caps the damage at one probe");
    }

    #[test]
    fn flooding_scenario_trips_malformed_accounting() {
        let mut config = ScenarioConfig::new(AttackProfile::Flooding, 22);
        config.batches = 12;
        config.attack_batches = 4;
        let report = run_scenario(&config, None, None).unwrap();
        assert!(report.sound());
        let first = &report.batches[0];
        assert_eq!(
            first.signals.malformed, first.signals.lookups,
            "every flood clue must hit the malformed path"
        );
        assert!(report.quarantine_batch.is_some());
    }

    #[test]
    fn oscillating_liar_cannot_dodge_hysteresis() {
        let mut config = ScenarioConfig::new(AttackProfile::Oscillating, 23);
        config.batches = 24;
        config.attack_batches = 10;
        let report = run_scenario(&config, None, None).unwrap();
        assert!(report.sound());
        assert!(
            report.quarantine_batch.is_some(),
            "alternating honest epochs must not launder the score"
        );
        assert!(report.reconverged(0.05));
    }

    #[test]
    fn participation_sweep_traces_the_curve() {
        let mut base = FleetConfig::new(48, 31);
        base.origins = 8;
        base.specifics_per_origin = 4;
        let mut adversary = FleetAdversaryConfig::new(AttackProfile::Lying, 3);
        adversary.rounds = 6;
        adversary.attack_rounds = 2;
        adversary.flows_per_round = 300;
        adversary.window = 2;
        let points =
            participation_sweep(&base, &adversary, &[0.0, 0.5, 1.0]).unwrap();
        assert_eq!(points.len(), 3);
        for pt in &points {
            assert!(pt.sound, "unsound at participation {}", pt.participation);
            assert!(
                pt.worst_overhead <= 1,
                "bound broken at participation {}: {}",
                pt.participation,
                pt.worst_overhead
            );
        }
        // Nothing deployed → nothing to attack, nothing to save.
        assert_eq!(points[0].honest_savings, 0.0);
        assert_eq!(points[0].worst_overhead, 0);
        assert!(points[0].quarantine_round.is_none());
        // Full deployment saves the most and offers the biggest
        // attack surface — which quarantine then contains.
        assert!(points[2].honest_savings > points[1].honest_savings);
        assert!(points[2].honest_savings > 0.2);
        assert_eq!(points[2].worst_overhead, 1);
        assert!(points[2].quarantine_round.is_some());
        assert!(points[2].attacked_savings < points[2].honest_savings);
    }

    #[test]
    fn scenario_feeds_telemetry() {
        use clue_telemetry::Registry;
        let registry = Registry::new();
        let at = AdversaryTelemetry::registered(&registry, "clue_adversary");
        let rt = ReputationTelemetry::registered(&registry, "clue_reputation");
        let mut config = ScenarioConfig::new(AttackProfile::Lying, 24);
        config.batches = 10;
        config.attack_batches = 3;
        let report = run_scenario(&config, Some(&at), Some(&rt)).unwrap();
        assert!(report.sound());
        assert!(at.attacked_hops_total.get() > 0);
        assert!(at.crafted_clues_total.get() > 0);
        assert_eq!(at.bound_violations_total.get(), 0);
        assert!(at.worst_overhead.get() <= 1.0);
        assert_eq!(rt.batches_observed_total.get(), 10);
        assert!(rt.quarantines_total.get() >= 1);
    }
}
