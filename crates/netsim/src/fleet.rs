//! Fleet-scale topology simulator with clue-coverage analytics.
//!
//! Where [`Network`](crate::Network) studies one clue deployment in a
//! handful of routers, this module asks the *deployment* question:
//! what does "Routing with a Clue" buy across an internet-like fleet
//! of thousands of routers?  It layers three things on the existing
//! pieces:
//!
//! * **Internet-like topologies** — the hierarchical transit-stub and
//!   preferential-attachment generators of
//!   [`Topology`](crate::Topology), sized to a target router count;
//! * **ECMP forwarding** — every origin gets an [`EcmpTree`] keeping
//!   *all* shortest next hops, and each flow picks one per hop by a
//!   hash of its flow key and hop position (never of router ids, so
//!   choices survive renumbering — see `ecmp_renumbering` proptests);
//! * **Stride-compiled routers behind epoch cells** — every router's
//!   forwarding state (one clue-less base [`StrideEngine`] plus one
//!   precomputed clue engine per incoming link) is compiled once and
//!   published through an [`EpochCell`], so a churn builder can
//!   republish routers barrier-free while serving workers keep
//!   routing off pinned snapshots.
//!
//! The packet leg reuses the PR-7 shared-nothing recipe: contiguous
//! flow-range jobs on lock-free SPSC feeds, per-worker integer
//! accumulators merged after the run. Each flow's drawing RNG is a
//! private SplitMix64-seeded stream of its *index*, and every merge is
//! a commutative integer add, so [`Fleet::run_flows`] is bit-identical
//! to [`Fleet::run_flows_sequential`] at any worker count — the
//! `--check` mode of `clue fleet` asserts exactly that.
//!
//! What comes out is the fleet view the paper never had room for:
//! per-link clue hit / problematic / clueless rates, per-hop-position
//! and end-to-end memory-reference savings against a clue-less
//! baseline run over the *same* hops, and churn-induced staleness per
//! router.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use clue_core::channel::{mpsc, spsc, SpscReceiver, TryRecvError};
use clue_core::{
    BatchSignals, ClueEngine, ClueHeader, EngineConfig, EpochCell, EpochGuard, EpochReader,
    Method, ReputationBook, ReputationConfig, StrideConfig, StrideEngine, StrideError, NO_TAG,
};
use clue_lookup::Family;
use clue_tablegen::{rebase_into_block, synthesize_ipv4, ZipfSampler};
use clue_telemetry::{
    AdversaryTelemetry, DegradationTelemetry, FleetTelemetry, LookupClass, ReputationTelemetry,
};
use clue_trie::{Address, Cost, Ip4, Prefix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::adversary::{deepest_mismatch_clue, flood_clue, AttackProfile};
use crate::parallel::packet_seed;
use crate::runtime::{Backoff, Job};
use crate::topology::{EcmpTree, RouterId, Topology};

/// Origin sentinel for a tag whose prefix is not in the router's FIB.
const NO_ORIGIN: u32 = u32::MAX;

/// Salt separating the flow-drawing streams from the seed's other
/// uses (topology build, participation draw, churn).
const FLOW_SALT: u64 = 0x5EED_F10E;

/// Per-link outcome rows: hit / problematic / miss / clueless.
const LINK_HIT: usize = 0;
const LINK_PROBLEMATIC: usize = 1;
const LINK_MISS: usize = 2;
const LINK_CLUELESS: usize = 3;

/// Which topology family the fleet is built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// Hierarchical transit-stub (Zegura-style): transit domains in a
    /// ring, stub domains hanging off transit routers, some stubs
    /// multihomed.
    TransitStub,
    /// Preferential attachment (Barabási–Albert): heavy-tailed degree
    /// distribution with a few hub routers.
    Preferential,
}

/// Configuration of a [`Fleet`] build.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Target router count; the generated topology has at least this
    /// many routers (transit-stub rounds up to whole stub domains).
    pub routers: usize,
    /// Topology family.
    pub topology: TopologyKind,
    /// Routers that originate address space (spread over the stub /
    /// low-degree routers). Capped at `2^block_len`.
    pub origins: usize,
    /// Specifics advertised per origin (before rebase dedup).
    pub specifics_per_origin: usize,
    /// Disjointness length of origin blocks.
    pub block_len: u8,
    /// Distance-decaying detail bands `(max_distance, prefix_len)`,
    /// checked in order; the last band should be the origin-block
    /// aggregate so every router can route every flow.
    pub bands: Vec<(usize, u8)>,
    /// Clue-engine configuration for the per-link engines.
    pub engine: EngineConfig,
    /// Stride shape for the compiled engines. Keep it small: a fleet
    /// compiles `routers + 2·links` engines.
    pub stride: StrideConfig,
    /// Fraction of routers that participate in the clue scheme
    /// (Section 5.3's heterogeneous deployment).
    pub participation: f64,
    /// Zipf exponent of the destination-locality draw over origins.
    pub zipf_exponent: f64,
    /// Seed for topology, address plan, participation and flows.
    pub seed: u64,
}

impl FleetConfig {
    /// Defaults for a fleet of at least `routers` routers: transit-stub
    /// topology, `routers/12` origins (8..=192), 6 specifics each in
    /// disjoint /14 blocks, detail decaying /24 → /20 → /14, Advance
    /// method over a small (8, 4) stride shape, full participation,
    /// Zipf(0.9) destination locality.
    pub fn new(routers: usize, seed: u64) -> Self {
        FleetConfig {
            routers,
            topology: TopologyKind::TransitStub,
            origins: (routers / 12).clamp(8, 192),
            specifics_per_origin: 6,
            block_len: 14,
            bands: vec![(1, 24), (3, 20), (usize::MAX, 14)],
            engine: EngineConfig::new(Family::Regular, Method::Advance),
            stride: StrideConfig::new(8, 4),
            participation: 1.0,
            zipf_exponent: 0.9,
            seed,
        }
    }
}

/// One synthetic flow: a source router, a destination address inside
/// some origin's block, and the flow key hashed for ECMP choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Router the flow enters the fleet at.
    pub src: RouterId,
    /// Destination address.
    pub dest: Ip4,
    /// Random flow key; the only flow input to ECMP tie-breaks.
    pub key: u64,
}

/// One router's compiled forwarding state: the value type inside the
/// per-router [`EpochCell`].
struct FleetRouter {
    /// Does this router use (and stamp) clues? Non-participants route
    /// with `base` and relay the incoming header (Section 5.3).
    participates: bool,
    /// Clue-less engine: the baseline, and the resolver for clueless
    /// hops. Compiled with `Method::Common`.
    base: StrideEngine<Ip4>,
    /// One clue engine per incoming link, indexed by the position of
    /// the upstream router in `topology.neighbors(r)`. Empty for
    /// non-participants.
    engines: Vec<StrideEngine<Ip4>>,
    /// `base.tag_prefixes()[tag]` → origin index ([`NO_ORIGIN`] when
    /// the tag prefix left the FIB).
    base_origins: Vec<u32>,
    /// As `base_origins`, per clue engine.
    engine_origins: Vec<Vec<u32>>,
}

impl FleetRouter {
    /// Origin of the tag `engine` (`None` = base) resolved to.
    #[inline]
    fn origin_of(&self, engine: Option<usize>, tag: u32) -> u32 {
        let table = match engine {
            Some(e) => &self.engine_origins[e],
            None => &self.base_origins,
        };
        table.get(tag as usize).copied().unwrap_or(NO_ORIGIN)
    }
}

/// The built fleet: topology, address plan, ECMP trees, and one
/// epoch-published [`FleetRouter`] per router.
pub struct Fleet {
    config: FleetConfig,
    topology: Topology,
    /// Origin index → the router originating that block.
    origin_routers: Vec<RouterId>,
    /// Router → origin index it originates, [`NO_ORIGIN`] otherwise.
    origin_of_router: Vec<u32>,
    /// Per-origin rebased specifics (sorted, disjoint across origins).
    specifics: Vec<Vec<Prefix<Ip4>>>,
    /// Per-origin ECMP shortest-path DAGs.
    ecmp: Vec<EcmpTree>,
    /// Routers flows may enter at (stub / low-degree routers).
    sources: Vec<RouterId>,
    /// Destination-locality sampler over origins.
    zipf: ZipfSampler,
    /// Per-router participation, drawn once at build.
    participates: Vec<bool>,
    /// Per-router compiled state behind epoch cells.
    cells: Vec<EpochCell<FleetRouter>>,
    /// Router → first dense directed-link slot (prefix sum of degree).
    link_base: Vec<u32>,
    /// Dense directed-link slot → upstream router.
    link_from: Vec<RouterId>,
}

/// Sizes a transit-stub build so the total reaches at least `target`.
fn transit_stub_shape(target: usize) -> (usize, usize, usize, usize) {
    let domains = (target / 300 + 2).clamp(2, 8);
    let transit_size = 4;
    let stub_size = 8;
    let transit = domains * transit_size;
    let per_transit_capacity = transit * stub_size;
    let stubs_per_transit =
        target.saturating_sub(transit).div_ceil(per_transit_capacity).max(1);
    (domains, transit_size, stubs_per_transit, stub_size)
}

impl Fleet {
    /// Builds the fleet: topology, per-origin specifics rebased into
    /// disjoint blocks, per-router FIBs with distance-decaying detail,
    /// ECMP trees, and every router's engine bundle compiled and
    /// published at epoch 0.
    pub fn build(config: FleetConfig) -> Result<Self, StrideError> {
        assert!(config.routers >= 2, "a fleet needs at least two routers");
        assert!(config.specifics_per_origin > 0, "origins must advertise something");
        assert!(
            config.bands.last().is_some_and(|&(d, l)| d == usize::MAX && l == config.block_len),
            "the last band must install the origin-block aggregate everywhere"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);

        // -- Topology and roles ---------------------------------------
        let (topology, mut sources) = match config.topology {
            TopologyKind::TransitStub => {
                let (d, ts, spt, ss) = transit_stub_shape(config.routers);
                Topology::transit_stub(d, ts, spt, ss, config.seed)
            }
            TopologyKind::Preferential => {
                let t = Topology::preferential_attachment(config.routers, 2, config.seed);
                // Flows enter at the fringe: routers of minimal degree.
                let min_deg =
                    (0..t.len()).map(|r| t.neighbors(r).len()).min().unwrap_or(0);
                let sources: Vec<RouterId> =
                    (0..t.len()).filter(|&r| t.neighbors(r).len() == min_deg).collect();
                (t, sources)
            }
        };
        if sources.is_empty() {
            sources = (0..topology.len()).collect();
        }
        let n = topology.len();

        // Origins: an even spread over the source routers.
        let origins = config.origins.clamp(1, 1 << config.block_len).min(sources.len());
        let origin_routers: Vec<RouterId> =
            (0..origins).map(|i| sources[i * sources.len() / origins]).collect();
        let mut origin_of_router = vec![NO_ORIGIN; n];
        for (oi, &r) in origin_routers.iter().enumerate() {
            origin_of_router[r] = oi as u32;
        }

        // -- Address plan ---------------------------------------------
        let min_len = config.block_len + 2;
        let max_len = 28.max(min_len);
        let specifics: Vec<Vec<Prefix<Ip4>>> = (0..origins)
            .map(|oi| {
                let raw = synthesize_ipv4(
                    config.specifics_per_origin,
                    config.seed ^ (oi as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                rebase_into_block(&raw, oi as u128, config.block_len, min_len, max_len)
            })
            .collect();
        let ecmp: Vec<EcmpTree> =
            origin_routers.iter().map(|&r| topology.ecmp_toward(r)).collect();

        // Destination locality over origins, drawn once at build time.
        let zipf = ZipfSampler::new(origins, config.zipf_exponent, &mut rng);

        // -- Per-router FIBs ------------------------------------------
        // Each entry is (prefix, origin); origins' blocks are disjoint,
        // so the merged table is conflict-free and sorted.
        let band_len = |dist: usize| -> u8 {
            config
                .bands
                .iter()
                .find(|&&(max_d, _)| dist <= max_d)
                .map(|&(_, l)| l)
                .unwrap_or(config.block_len)
        };
        let fibs: Vec<Vec<(Prefix<Ip4>, u32)>> = (0..n)
            .map(|r| {
                let mut fib: Vec<(Prefix<Ip4>, u32)> = Vec::new();
                for (oi, specs) in specifics.iter().enumerate() {
                    if origin_of_router[r] == oi as u32 {
                        fib.extend(specs.iter().map(|&p| (p, oi as u32)));
                        continue;
                    }
                    let dist = ecmp[oi].distance(r).unwrap_or(usize::MAX);
                    let len = band_len(dist);
                    let mut seen: Option<Prefix<Ip4>> = None;
                    for s in specs {
                        let t = s.truncate(len.min(s.len()));
                        if seen != Some(t) {
                            // Truncation collapses sorted neighbors;
                            // a full dedup pass still runs below.
                            fib.push((t, oi as u32));
                            seen = Some(t);
                        }
                    }
                }
                fib.sort_unstable();
                fib.dedup();
                fib
            })
            .collect();

        // -- Participation --------------------------------------------
        let participates: Vec<bool> =
            (0..n).map(|_| rng.random_bool(config.participation.clamp(0.0, 1.0))).collect();

        // -- Dense directed-link indexing -----------------------------
        let mut link_base = Vec::with_capacity(n + 1);
        let mut link_from = Vec::new();
        let mut acc = 0u32;
        for r in 0..n {
            link_base.push(acc);
            for &nb in topology.neighbors(r) {
                link_from.push(nb);
                acc += 1;
            }
        }
        link_base.push(acc);

        // -- Compile and publish every router -------------------------
        let mut cells = Vec::with_capacity(n);
        for (r, &active) in participates.iter().enumerate() {
            let router = compile_router(&topology, &fibs, &ecmp, r, active, &config)?;
            cells.push(EpochCell::new(router));
        }

        Ok(Fleet {
            config,
            topology,
            origin_routers,
            origin_of_router,
            specifics,
            ecmp,
            sources,
            zipf,
            participates,
            cells,
            link_base,
            link_from,
        })
    }

    /// The build configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The generated topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Routers in the fleet.
    pub fn router_count(&self) -> usize {
        self.topology.len()
    }

    /// Undirected links in the fleet.
    pub fn link_count(&self) -> usize {
        self.topology.link_count()
    }

    /// Directed links (potential clue attachment points).
    pub fn directed_link_count(&self) -> usize {
        self.link_from.len()
    }

    /// Origin routers, by origin index.
    pub fn origin_routers(&self) -> &[RouterId] {
        &self.origin_routers
    }

    /// One registered epoch reader per router — a worker registers its
    /// set once and re-pins at batch boundaries.
    fn readers(&self) -> Vec<EpochReader<'_, FleetRouter>> {
        self.cells.iter().map(|c| c.reader()).collect()
    }

    /// Draws flow `index` of the seeded workload: a private RNG stream
    /// per index, so any contiguous sharding of indices sees the same
    /// flows.
    pub fn draw_flow(&self, index: u64) -> Flow {
        let mut rng =
            StdRng::seed_from_u64(packet_seed(self.config.seed ^ FLOW_SALT, index));
        let src = self.sources[rng.random_range(0..self.sources.len())];
        let oi = self.zipf.sample(&mut rng).expect("a fleet has at least one origin");
        let specs = &self.specifics[oi];
        let p = specs[rng.random_range(0..specs.len())];
        let span = (Ip4::BITS - p.len()) as u32;
        let host = if span == 0 { 0 } else { (rng.random::<u64>() as u128) & ((1u128 << span) - 1) };
        let dest = Ip4::from_u128(p.bits().to_u128() | host);
        let key = rng.random::<u64>();
        Flow { src, dest, key }
    }

    /// Routes flows `lo..hi` into `acc` against one set of pinned
    /// router snapshots (the packet leg pins epoch-0 snapshots; the
    /// churn leg sees whatever the builder had published at pin time).
    fn route_range(
        &self,
        guards: &[EpochGuard<'_, FleetRouter>],
        lo: u64,
        hi: u64,
        acc: &mut FleetAccum,
    ) {
        for i in lo..hi {
            let flow = self.draw_flow(i);
            self.route_flow(guards, &flow, acc);
        }
    }

    /// Walks one flow hop by hop. Every hop resolves through the
    /// pinned router's stride engines exactly like
    /// [`StrideNetwork`](crate::StrideNetwork)'s walk; clued hops
    /// additionally run the clue-less base lookup on the same
    /// (router, destination) to price the baseline — soundness
    /// guarantees both resolve the same BMP, so the baseline run
    /// walks the *same* path and the per-hop savings are exact.
    fn route_flow(
        &self,
        guards: &[EpochGuard<'_, FleetRouter>],
        flow: &Flow,
        acc: &mut FleetAccum,
    ) {
        acc.flows += 1;
        let mut header = ClueHeader::none();
        let mut prev: Option<RouterId> = None;
        let mut cur = flow.src;
        // ECMP choices strictly decrease the distance to the origin,
        // so a walk can't loop; the cap is pure defence.
        let max_hops = self.topology.len() + 4;
        for pos in 0..max_hops {
            // Guards are pinned per job batch (the runtime's epoch
            // refresh at job boundaries): a hop served while the churn
            // builder has moved on counts as stale.
            let lag = guards[cur].lag();
            acc.max_staleness = acc.max_staleness.max(lag);
            acc.lagged_hops += u64::from(lag > 0);
            let node: &FleetRouter = &guards[cur];

            // Engine choice mirrors the serving runtime: a clue engine
            // runs iff the router participates, the link has a slot,
            // and the header carries a decodable clue.
            let slot = prev.map(|p| {
                self.topology
                    .neighbors(cur)
                    .iter()
                    .position(|&x| x == p)
                    .expect("prev is a neighbor of cur")
            });
            let clue = header.decode(flow.dest);
            let engine = match slot {
                Some(s) if node.participates && clue.is_some() && s < node.engines.len() => {
                    Some(s)
                }
                _ => None,
            };

            let mut cost = Cost::new();
            let (tag, class) = match engine {
                Some(e) => {
                    let eng = &node.engines[e];
                    let op = eng.lookup_prepare(flow.dest, clue);
                    eng.lookup_finish_tag(op, flow.dest, clue, &mut cost)
                }
                None => {
                    let op = node.base.lookup_prepare(flow.dest, None);
                    node.base.lookup_finish_tag(op, flow.dest, None, &mut cost)
                }
            };

            // Baseline: what the same hop costs with no clue at all.
            let base_cost = match engine {
                Some(_) => {
                    let mut c = Cost::new();
                    let op = node.base.lookup_prepare(flow.dest, None);
                    node.base.lookup_finish_tag(op, flow.dest, None, &mut c);
                    c
                }
                None => cost,
            };

            // Per-link attribution (only hops that crossed a link).
            if let (Some(p), Some(s)) = (prev, slot) {
                debug_assert_eq!(self.link_from[self.link_base[cur] as usize + s], p);
                let link = self.link_base[cur] as usize + s;
                let row = match (engine, class) {
                    (Some(_), LookupClass::Final) => LINK_HIT,
                    (Some(_), LookupClass::Continued) => LINK_PROBLEMATIC,
                    (Some(_), LookupClass::Miss) => LINK_MISS,
                    _ => LINK_CLUELESS,
                };
                acc.per_link[link][row] += 1;
            }

            acc.record_hop(pos, engine.is_some(), &cost, &base_cost);

            if tag == NO_TAG {
                acc.dropped += 1;
                return;
            }
            let origin = node.origin_of(engine, tag);
            if origin == NO_ORIGIN {
                acc.dropped += 1;
                return;
            }

            // Participants stamp their BMP as the next hop's clue;
            // non-participants relay the incoming header (Section 5.3).
            if node.participates {
                let bmp = match engine {
                    Some(e) => node.engines[e].tag_prefixes()[tag as usize],
                    None => node.base.tag_prefixes()[tag as usize],
                };
                header = ClueHeader::with_clue(&bmp);
            }

            if self.origin_routers[origin as usize] == cur {
                acc.delivered += 1;
                return;
            }
            let Some(next) = self.ecmp[origin as usize].next_hop(cur, flow.key, pos) else {
                acc.dropped += 1;
                return;
            };
            prev = Some(cur);
            cur = next;
        }
        acc.dropped += 1;
    }

    /// Routes `flows` flows on one thread — the reference the sharded
    /// run must match bit for bit.
    pub fn run_flows_sequential(&self, flows: usize) -> FleetStats {
        let mut readers = self.readers();
        let guards: Vec<EpochGuard<'_, FleetRouter>> =
            readers.iter_mut().map(|r| r.pin()).collect();
        let mut acc = FleetAccum::new(self.link_from.len());
        self.route_range(&guards, 0, flows as u64, &mut acc);
        drop(guards);
        self.finish(acc)
    }

    /// Routes `flows` flows over `workers` OS threads: contiguous
    /// flow-range jobs on per-worker SPSC feeds, per-worker
    /// accumulators merged in worker order. Bit-identical to
    /// [`Self::run_flows_sequential`] at any worker count.
    pub fn run_flows(&self, flows: usize, workers: usize) -> FleetRunReport {
        let workers = workers.max(1);
        let batch = 64u64;
        let links = self.link_from.len();

        let mut feeds = Vec::with_capacity(workers);
        let mut worker_rx: Vec<Option<SpscReceiver<Job>>> = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = spsc::<Job>(64);
            feeds.push(tx);
            worker_rx.push(Some(rx));
        }
        let (res_tx, mut res_rx) = mpsc::<(usize, FleetAccum)>(workers);
        let priming = AtomicUsize::new(workers);
        let mut shards: Vec<Option<FleetAccum>> = (0..workers).map(|_| None).collect();
        let mut elapsed_ns = 0u64;

        std::thread::scope(|scope| {
            for (w, slot) in worker_rx.iter_mut().enumerate() {
                let mut rx = slot.take().expect("receiver consumed once");
                let res_tx = res_tx.clone();
                let priming = &priming;
                let this = &*self;
                scope.spawn(move || {
                    // Priming = registering this worker's epoch readers
                    // (one per router), hoisted out of the timed region
                    // like the serving runtime's replica clones.
                    let mut readers = this.readers();
                    priming.fetch_sub(1, Ordering::Release);
                    let mut acc = FleetAccum::new(links);
                    loop {
                        match rx.try_recv() {
                            Ok(job) => {
                                // Pin per job: the runtime's epoch
                                // refresh at job boundaries.
                                let guards: Vec<EpochGuard<'_, FleetRouter>> =
                                    readers.iter_mut().map(|r| r.pin()).collect();
                                this.route_range(&guards, job.lo, job.hi, &mut acc);
                            }
                            Err(TryRecvError::Empty) => std::thread::yield_now(),
                            Err(TryRecvError::Disconnected) => break,
                        }
                    }
                    let mut msg = (w, acc);
                    while let Err(back) = res_tx.try_send(msg) {
                        msg = back;
                        std::thread::yield_now();
                    }
                });
            }
            drop(res_tx);

            let mut backoff = Backoff::new();
            while priming.load(Ordering::Acquire) != 0 {
                backoff.wait();
            }
            let t0 = Instant::now();
            let mut lo = 0u64;
            let mut w = 0usize;
            while lo < flows as u64 {
                let hi = (lo + batch).min(flows as u64);
                let mut job = Job { lo, hi };
                while let Err(back) = feeds[w].try_send(job) {
                    job = back;
                    std::thread::yield_now();
                }
                lo = hi;
                w = (w + 1) % workers;
            }
            for tx in &mut feeds {
                tx.close();
            }
            let mut done = 0;
            backoff.reset();
            while done < workers {
                match res_rx.try_recv() {
                    Ok((w, acc)) => {
                        shards[w] = Some(acc);
                        done += 1;
                        backoff.reset();
                    }
                    Err(TryRecvError::Empty) => backoff.wait(),
                    Err(TryRecvError::Disconnected) => break,
                }
            }
            elapsed_ns = t0.elapsed().as_nanos() as u64;
        });

        let mut acc = FleetAccum::new(links);
        for shard in shards {
            acc.merge(&shard.expect("every worker reports exactly once"));
        }
        FleetRunReport { stats: self.finish(acc), elapsed_ns, workers }
    }

    /// Folds an accumulator into the reported statistics.
    fn finish(&self, acc: FleetAccum) -> FleetStats {
        let per_link: Vec<LinkStats> = acc
            .per_link
            .iter()
            .enumerate()
            .filter(|(_, rows)| rows.iter().any(|&c| c > 0))
            .map(|(slot, rows)| {
                let router = match self.link_base.binary_search(&(slot as u32)) {
                    Ok(mut i) => {
                        // Zero-degree routers repeat the same offset;
                        // take the last router starting at this slot.
                        while i + 1 < self.link_base.len() - 1
                            && self.link_base[i + 1] == slot as u32
                        {
                            i += 1;
                        }
                        i
                    }
                    Err(i) => i - 1,
                };
                LinkStats {
                    router,
                    from: self.link_from[slot],
                    hits: rows[LINK_HIT],
                    problematic: rows[LINK_PROBLEMATIC],
                    misses: rows[LINK_MISS],
                    clueless: rows[LINK_CLUELESS],
                }
            })
            .collect();
        let per_hop = acc
            .per_hop
            .iter()
            .map(|&(clue_refs, base_refs, hops)| HopSavings { clue_refs, base_refs, hops })
            .collect();
        FleetStats {
            flows: acc.flows,
            delivered: acc.delivered,
            dropped: acc.dropped,
            hops: acc.hops,
            clue_hops: acc.clue_hops,
            clue_refs: acc.clue_refs,
            baseline_refs: acc.base_refs,
            max_staleness: acc.max_staleness,
            lagged_hops: acc.lagged_hops,
            per_hop,
            per_link,
        }
    }

    /// Runs the churn leg: a builder thread applies `config.events`
    /// origin re-advertisements — resynthesizing the origin's
    /// specifics, patching the FIBs of routers within
    /// `detail_radius`, recompiling and republishing their engine
    /// bundles through the epoch cells — while `config.workers`
    /// serving threads keep routing flows off pinned snapshots and
    /// record how stale the fleet got.
    pub fn run_churn(&self, config: &FleetChurnConfig) -> FleetChurnReport {
        let stop = AtomicBool::new(false);
        let links = self.link_from.len();
        let (res_tx, mut res_rx) = mpsc::<FleetAccum>(config.workers.max(1));

        let mut events = 0u64;
        let mut republished = 0u64;
        let mut rebuild_ns = 0u64;
        let mut reclaimed = 0u64;
        let mut shards: Vec<FleetAccum> = Vec::new();

        std::thread::scope(|scope| {
            for w in 0..config.workers.max(1) {
                let res_tx = res_tx.clone();
                let stop = &stop;
                let this = &*self;
                let base = config.seed ^ (w as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F);
                scope.spawn(move || {
                    let mut readers = this.readers();
                    let mut acc = FleetAccum::new(links);
                    let mut i = 0u64;
                    loop {
                        // Worker-private flow stream: churn serving is
                        // about liveness and staleness, not the
                        // bit-determinism of the packet leg. A whole
                        // batch routes off one set of pinned
                        // snapshots, so a builder publish mid-batch
                        // shows up as genuine staleness; the next
                        // batch re-pins fresh. Route before polling
                        // the stop flag so even an instant churn leg
                        // serves at least one batch per worker.
                        let guards: Vec<EpochGuard<'_, FleetRouter>> =
                            readers.iter_mut().map(|r| r.pin()).collect();
                        for _ in 0..CHURN_SERVE_BATCH {
                            let flow = this.draw_flow(packet_seed(base, i));
                            this.route_flow(&guards, &flow, &mut acc);
                            i += 1;
                        }
                        drop(guards);
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    let mut msg = acc;
                    while let Err(back) = res_tx.try_send(msg) {
                        msg = back;
                        std::thread::yield_now();
                    }
                });
            }
            drop(res_tx);

            // The builder runs on this thread: one mutable copy of the
            // address plan, events applied in sequence.
            let mut rng = StdRng::seed_from_u64(config.seed);
            let mut specifics = self.specifics.clone();
            let min_len = self.config.block_len + 2;
            let max_len = 28.max(min_len);
            for e in 0..config.events {
                let oi = rng.random_range(0..specifics.len());
                let raw = synthesize_ipv4(
                    self.config.specifics_per_origin,
                    config.seed ^ (e as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                specifics[oi] = rebase_into_block(
                    &raw,
                    oi as u128,
                    self.config.block_len,
                    min_len,
                    max_len,
                );
                events += 1;

                // Only routers close enough to hold the origin's
                // specifics see a FIB change: beyond the detail bands
                // the origin is one fixed /14 aggregate — the
                // BGP-aggregation containment the paper leans on.
                let t0 = Instant::now();
                for r in 0..self.topology.len() {
                    let dist = self.ecmp[oi].distance(r).unwrap_or(usize::MAX);
                    if dist > config.detail_radius && self.origin_of_router[r] != oi as u32 {
                        continue;
                    }
                    let fibs = self.rebuild_fibs_for(&specifics, r);
                    let router = compile_router(
                        &self.topology,
                        &fibs,
                        &self.ecmp,
                        r,
                        self.participates[r],
                        &self.config,
                    )
                    .expect("the build already compiled this shape");
                    let pub_ = self.cells[r].publish(router);
                    reclaimed += pub_.reclaimed as u64;
                    republished += 1;
                }
                rebuild_ns += t0.elapsed().as_nanos() as u64;
            }
            for cell in &self.cells {
                reclaimed += cell.reclaim() as u64;
            }
            stop.store(true, Ordering::Relaxed);

            let mut backoff = Backoff::new();
            let mut done = 0;
            while done < config.workers.max(1) {
                match res_rx.try_recv() {
                    Ok(acc) => {
                        shards.push(acc);
                        done += 1;
                        backoff.reset();
                    }
                    Err(TryRecvError::Empty) => backoff.wait(),
                    Err(TryRecvError::Disconnected) => break,
                }
            }
        });

        let mut acc = FleetAccum::new(links);
        for shard in &shards {
            acc.merge(shard);
        }
        let stats = self.finish(acc);
        FleetChurnReport { events, republished, rebuild_ns, reclaimed, stats }
    }

    /// Rebuilds the FIB table slice `compile_router` needs for router
    /// `r` under an updated address plan. Only `fibs[r]` and its
    /// neighbors' tables are populated — the others stay empty, which
    /// `compile_router` never reads.
    fn rebuild_fibs_for(
        &self,
        specifics: &[Vec<Prefix<Ip4>>],
        r: RouterId,
    ) -> Vec<Vec<(Prefix<Ip4>, u32)>> {
        let band_len = |dist: usize| -> u8 {
            self.config
                .bands
                .iter()
                .find(|&&(max_d, _)| dist <= max_d)
                .map(|&(_, l)| l)
                .unwrap_or(self.config.block_len)
        };
        let mut fibs: Vec<Vec<(Prefix<Ip4>, u32)>> =
            (0..self.topology.len()).map(|_| Vec::new()).collect();
        let mut wanted: Vec<RouterId> = vec![r];
        wanted.extend_from_slice(self.topology.neighbors(r));
        for &x in &wanted {
            let mut fib: Vec<(Prefix<Ip4>, u32)> = Vec::new();
            for (oi, specs) in specifics.iter().enumerate() {
                if self.origin_of_router[x] == oi as u32 {
                    fib.extend(specs.iter().map(|&p| (p, oi as u32)));
                    continue;
                }
                let dist = self.ecmp[oi].distance(x).unwrap_or(usize::MAX);
                let len = band_len(dist);
                for s in specs {
                    fib.push((s.truncate(len.min(s.len())), oi as u32));
                }
            }
            fib.sort_unstable();
            fib.dedup();
            fibs[x] = fib;
        }
        fibs
    }

    /// Flushes a run's statistics (and optionally a churn report) into
    /// a [`FleetTelemetry`] bundle.
    pub fn record(
        &self,
        stats: &FleetStats,
        churn: Option<&FleetChurnReport>,
        t: &FleetTelemetry,
    ) {
        t.routers.set(self.router_count() as f64);
        t.links.set(self.link_count() as f64);
        t.flows_total.add(stats.flows);
        t.packets_total.add(stats.flows);
        t.hops_total.add(stats.hops);
        t.clue_hops_total.add(stats.clue_hops);
        t.delivered_total.add(stats.delivered);
        t.link_hits_total.add(stats.link_hits());
        t.link_problematic_total.add(stats.link_problematic());
        t.link_misses_total.add(stats.link_misses());
        t.link_clueless_total.add(stats.link_clueless());
        t.clue_refs_total.add(stats.clue_refs);
        t.baseline_refs_total.add(stats.baseline_refs);
        t.savings_ratio.set(stats.savings());
        for link in &stats.per_link {
            let clued = link.hits + link.problematic + link.misses;
            if let Some(pct) = (link.hits * 100).checked_div(clued) {
                t.link_hit_rate_pct.observe(pct);
            }
        }
        if let Some(c) = churn {
            t.churn_events_total.add(c.events);
            t.republished_total.add(c.republished);
            if let Some(us) = (c.rebuild_ns / 1_000).checked_div(c.republished) {
                t.rebuild_us.observe(us);
            }
            t.staleness_epochs.observe(c.stats.max_staleness);
        }
    }

    /// Picks the fleet's adversaries deterministically: participating
    /// non-origin routers of highest degree (an attacker wants to sit
    /// on as many paths as possible), ties broken by router id.
    pub fn adversary_routers(&self, count: usize) -> Vec<RouterId> {
        let mut candidates: Vec<RouterId> = (0..self.topology.len())
            .filter(|&r| self.participates[r] && self.origin_of_router[r] == NO_ORIGIN)
            .collect();
        candidates
            .sort_by_key(|&r| (std::cmp::Reverse(self.topology.neighbors(r).len()), r));
        candidates.truncate(count);
        candidates
    }

    /// Runs the adversarial leg: `config.rounds` rounds of
    /// `config.flows_per_round` flows, with the chosen adversaries
    /// misbehaving ([`AttackProfile`]) for the first
    /// `config.attack_rounds` rounds while every router scores its
    /// incoming links in a [`ReputationBook`] and quarantines bad
    /// clue sources. Quarantine decisions are frozen per round — the
    /// batch-boundary semantics of the serving runtime's
    /// [`QuarantineGate`](clue_core::QuarantineGate) — and every
    /// clued hop is differentially checked in-walk: the clued tag must
    /// resolve the same BMP as the clue-less base lookup, and its cost
    /// may exceed the baseline by at most one probe.
    ///
    /// Each round also routes the *same* flow indices through the
    /// honest walk, so the report can state attacked savings against
    /// the honest-fleet baseline round by round.
    ///
    /// # Panics
    /// Panics unless the fleet was built with [`Method::Simple`]: the
    /// Advance method *trusts* the clue epoch (its Claim-1 pruning is
    /// only sound for clues drawn from the sender table it was
    /// precomputed against), so handing it an adversary's crafted
    /// clues would be a genuine soundness break, not a finding.
    pub fn run_adversarial(
        &self,
        config: &FleetAdversaryConfig,
        adversary_telemetry: Option<&AdversaryTelemetry>,
        reputation_telemetry: Option<&ReputationTelemetry>,
        degradation_telemetry: Option<&DegradationTelemetry>,
    ) -> FleetAdversaryReport {
        assert_eq!(
            self.config.engine.method,
            Method::Simple,
            "adversarial runs require Method::Simple — Advance trusts the clue epoch"
        );
        let adversaries = self.adversary_routers(config.adversaries);
        let mut is_adversary = vec![false; self.topology.len()];
        for &a in &adversaries {
            is_adversary[a] = true;
        }
        let links = self.link_from.len();
        let mut book = ReputationBook::new(links, config.reputation);
        let mut readers = self.readers();
        let guards: Vec<EpochGuard<'_, FleetRouter>> =
            readers.iter_mut().map(|r| r.pin()).collect();
        let fault_label = match config.attack {
            AttackProfile::Flooding => "adversarial_clue",
            _ => "lying_neighbor",
        };

        let mut rounds = Vec::with_capacity(config.rounds);
        let mut divergences = 0u64;
        let mut bound_violations = 0u64;
        let mut quarantine_round = None;
        let mut readmit_round = None;
        for round in 0..config.rounds {
            let hostile =
                round < config.attack_rounds && config.attack.hostile(round as u64);
            // Frozen for the whole round: the per-batch gate snapshot.
            let use_clues: Vec<bool> = (0..links).map(|l| book.uses_clues(l)).collect();
            let quarantined_links = use_clues.iter().filter(|&&u| !u).count();

            let lo = (round * config.flows_per_round) as u64;
            let hi = lo + config.flows_per_round as u64;
            let mut acc = AdversaryAccum::new(links);
            for i in lo..hi {
                let flow = self.draw_flow(i);
                self.route_flow_adversarial(
                    &guards,
                    &flow,
                    i,
                    &is_adversary,
                    hostile,
                    config.attack,
                    &use_clues,
                    &mut acc,
                );
            }
            // The honest reference: the same flow indices, nobody lies,
            // nothing quarantined.
            let mut honest = FleetAccum::new(links);
            for i in lo..hi {
                let flow = self.draw_flow(i);
                self.route_flow(&guards, &flow, &mut honest);
            }

            divergences += acc.divergences;
            bound_violations += acc.bound_violations;
            let malformed: u64 = acc.signals.iter().map(|s| s.malformed).sum();

            // Fold the round's evidence. Every link is observed — an
            // idle or quarantined batch still ticks hold-downs — so
            // the state machine's time base is rounds, not traffic.
            for l in 0..links {
                book.observe(l, &acc.signals[l]);
            }
            if quarantined_links > 0 && quarantine_round.is_none() {
                quarantine_round = Some(round);
            }
            if quarantine_round.is_some()
                && readmit_round.is_none()
                && book.readmissions() > 0
                && book.quarantined() == 0
            {
                readmit_round = Some(round);
            }

            if let Some(t) = adversary_telemetry {
                t.attacked_hops_total.add(acc.attacked_hops);
                t.crafted_clues_total.add(acc.crafted);
                t.flood_clues_total.add(acc.floods);
                t.bound_violations_total.add(acc.bound_violations);
                if acc.overhead_max as f64 > t.worst_overhead.get() {
                    t.worst_overhead.set(acc.overhead_max as f64);
                }
            }
            if let Some(t) = reputation_telemetry {
                t.batches_observed_total.add(links as u64);
                t.quarantined_links.set(book.quarantined() as f64);
                t.min_score.set(book.min_score());
            }
            if let Some(t) = degradation_telemetry {
                t.injected_total.add(acc.attacked_hops);
                if let Some(c) = t.class(fault_label) {
                    c.add(acc.attacked_hops);
                }
                t.degraded_lookups_total.add(malformed);
                t.divergences_total.add(acc.divergences);
            }

            rounds.push(AdversaryRound {
                round,
                hostile,
                quarantined_links,
                attacked_hops: acc.attacked_hops,
                malformed,
                divergences: acc.divergences,
                bound_violations: acc.bound_violations,
                overhead_max: acc.overhead_max,
                clue_refs: acc.base.clue_refs,
                baseline_refs: acc.base.base_refs,
                honest_clue_refs: honest.clue_refs,
                honest_baseline_refs: honest.base_refs,
                delivered: acc.base.delivered,
                dropped: acc.base.dropped,
            });
        }
        if let Some(t) = reputation_telemetry {
            t.quarantines_total.add(book.quarantines());
            t.probations_total.add(book.probations());
            t.readmissions_total.add(book.readmissions());
        }
        drop(guards);

        FleetAdversaryReport {
            attack: config.attack,
            adversaries,
            window: config.window,
            rounds,
            divergences,
            bound_violations,
            quarantine_round,
            readmit_round,
            quarantines: book.quarantines(),
            probations: book.probations(),
            readmissions: book.readmissions(),
        }
    }

    /// The adversarial variant of [`Self::route_flow`]: adversaries
    /// override the clue they stamp (deepest-mismatch crafting against
    /// the next router's own engine, or flooding garbage injected at
    /// the lookup boundary), quarantined links serve clue-less, and
    /// every clued hop is differentially checked — resolved BMP
    /// against the clue-less base lookup, cost against the soundness
    /// bound — while per-link [`BatchSignals`] accumulate for the
    /// reputation fold.
    #[allow(clippy::too_many_arguments)]
    fn route_flow_adversarial(
        &self,
        guards: &[EpochGuard<'_, FleetRouter>],
        flow: &Flow,
        flow_index: u64,
        is_adversary: &[bool],
        hostile: bool,
        attack: AttackProfile,
        use_clues: &[bool],
        acc: &mut AdversaryAccum,
    ) {
        acc.base.flows += 1;
        let mut header = ClueHeader::none();
        // Flood clues never contain the destination, so the wire
        // cannot carry them: they ride this one-hop side channel, the
        // lookup-boundary injection a compromised engine would use.
        let mut forced: Option<Prefix<Ip4>> = None;
        let mut prev: Option<RouterId> = None;
        let mut cur = flow.src;
        let max_hops = self.topology.len() + 4;
        for pos in 0..max_hops {
            let node: &FleetRouter = &guards[cur];
            let slot = prev.map(|p| {
                self.topology
                    .neighbors(cur)
                    .iter()
                    .position(|&x| x == p)
                    .expect("prev is a neighbor of cur")
            });
            let link = slot.map(|s| self.link_base[cur] as usize + s);
            let clue = forced.take().or_else(|| header.decode(flow.dest));
            // The quarantine switch: a quarantined incoming link is
            // served by the clue-less base engine, bypassing the clue
            // path entirely.
            let quarantined = link.is_some_and(|l| !use_clues[l]);
            let engine = match slot {
                Some(s)
                    if node.participates
                        && clue.is_some()
                        && s < node.engines.len()
                        && !quarantined =>
                {
                    Some(s)
                }
                _ => None,
            };

            let mut cost = Cost::new();
            let (tag, class) = match engine {
                Some(e) => {
                    let eng = &node.engines[e];
                    let op = eng.lookup_prepare(flow.dest, clue);
                    eng.lookup_finish_tag(op, flow.dest, clue, &mut cost)
                }
                None => {
                    let op = node.base.lookup_prepare(flow.dest, None);
                    node.base.lookup_finish_tag(op, flow.dest, None, &mut cost)
                }
            };

            // The differential check, in-walk: the clue-less lookup on
            // the same (router, destination) must resolve the same BMP
            // (soundness of the *decision*) and the clued cost may
            // exceed it by at most one probe (soundness of the
            // *cost*).
            let (base_tag, base_cost) = match engine {
                Some(_) => {
                    let mut c = Cost::new();
                    let op = node.base.lookup_prepare(flow.dest, None);
                    let (bt, _) = node.base.lookup_finish_tag(op, flow.dest, None, &mut c);
                    (bt, c)
                }
                None => (tag, cost),
            };
            if let Some(e) = engine {
                let clued_bmp = (tag != NO_TAG)
                    .then(|| node.engines[e].tag_prefixes()[tag as usize]);
                let base_bmp =
                    (base_tag != NO_TAG).then(|| node.base.tag_prefixes()[base_tag as usize]);
                if clued_bmp != base_bmp {
                    acc.divergences += 1;
                }
                let overhead = cost.total().saturating_sub(base_cost.total());
                acc.overhead_max = acc.overhead_max.max(overhead);
                if overhead > 1 {
                    acc.bound_violations += 1;
                }
                let l = link.expect("a clue engine implies an incoming link");
                acc.signals[l].lookups += 1;
                acc.signals[l].malformed += u64::from(class == LookupClass::Malformed);
                acc.signals[l].overruns += u64::from(overhead >= 1);
            }

            if let (Some(p), Some(s)) = (prev, slot) {
                debug_assert_eq!(self.link_from[self.link_base[cur] as usize + s], p);
                let link = self.link_base[cur] as usize + s;
                let row = match (engine, class) {
                    (Some(_), LookupClass::Final) => LINK_HIT,
                    (Some(_), LookupClass::Continued) => LINK_PROBLEMATIC,
                    (Some(_), LookupClass::Miss) => LINK_MISS,
                    _ => LINK_CLUELESS,
                };
                acc.base.per_link[link][row] += 1;
            }

            acc.base.record_hop(pos, engine.is_some(), &cost, &base_cost);

            if tag == NO_TAG {
                acc.base.dropped += 1;
                return;
            }
            let origin = node.origin_of(engine, tag);
            if origin == NO_ORIGIN {
                acc.base.dropped += 1;
                return;
            }

            if node.participates {
                let bmp = match engine {
                    Some(e) => node.engines[e].tag_prefixes()[tag as usize],
                    None => node.base.tag_prefixes()[tag as usize],
                };
                header = ClueHeader::with_clue(&bmp);
            }

            if self.origin_routers[origin as usize] == cur {
                acc.base.delivered += 1;
                return;
            }
            let Some(next) = self.ecmp[origin as usize].next_hop(cur, flow.key, pos) else {
                acc.base.dropped += 1;
                return;
            };

            // The attack: an adversary overrides what it just stamped.
            // Crafting happens *after* the next hop is known, because
            // the deepest-mismatch clue is priced against the next
            // router's own engine for this link — the strongest
            // table-aware attacker.
            if hostile && is_adversary[cur] {
                acc.attacked_hops += 1;
                match attack {
                    AttackProfile::Flooding => {
                        forced = Some(flood_clue(
                            flow.dest,
                            self.config.seed,
                            flow_index * 64 + pos as u64,
                        ));
                        acc.floods += 1;
                    }
                    _ => {
                        let nnode: &FleetRouter = &guards[next];
                        let s = self
                            .topology
                            .neighbors(next)
                            .iter()
                            .position(|&x| x == cur)
                            .expect("cur is a neighbor of next");
                        if nnode.participates && s < nnode.engines.len() {
                            let eng = &nnode.engines[s];
                            let crafted = deepest_mismatch_clue(flow.dest, |c| {
                                let mut cc = Cost::new();
                                eng.lookup(flow.dest, c, &mut cc);
                                cc.total()
                            });
                            header = ClueHeader::with_clue(&crafted);
                            acc.crafted += 1;
                        }
                    }
                }
            }
            prev = Some(cur);
            cur = next;
        }
        acc.base.dropped += 1;
    }
}

/// Compiles router `r`'s engine bundle from the FIB tables: a
/// `Method::Common` base engine, and (for participants) one
/// precomputed clue engine per incoming link whose clue set is exactly
/// "the upstream's FIB prefixes it ECMP-routes through me".
fn compile_router(
    topology: &Topology,
    fibs: &[Vec<(Prefix<Ip4>, u32)>],
    ecmp: &[EcmpTree],
    r: RouterId,
    participates: bool,
    config: &FleetConfig,
) -> Result<FleetRouter, StrideError> {
    let fib = &fibs[r];
    let own: Vec<Prefix<Ip4>> = fib.iter().map(|&(p, _)| p).collect();
    let origin_of = |prefix: &Prefix<Ip4>| -> u32 {
        match fib.binary_search_by(|(p, _)| p.cmp(prefix)) {
            Ok(i) => fib[i].1,
            Err(_) => NO_ORIGIN,
        }
    };

    let base_config = EngineConfig::new(config.engine.family, Method::Common);
    let base = ClueEngine::precomputed(&[], &own, base_config).freeze_stride(config.stride)?;
    let base_origins: Vec<u32> = base.tag_prefixes().iter().map(&origin_of).collect();

    let mut engines = Vec::new();
    let mut engine_origins = Vec::new();
    if participates {
        for &nb in topology.neighbors(r) {
            let clues: Vec<Prefix<Ip4>> = fibs[nb]
                .iter()
                .filter(|&&(_, oi)| ecmp[oi as usize].next_hops[nb].contains(&r))
                .map(|&(p, _)| p)
                .collect();
            let engine = ClueEngine::precomputed(&clues, &own, config.engine)
                .freeze_stride(config.stride)?;
            engine_origins.push(engine.tag_prefixes().iter().map(&origin_of).collect());
            engines.push(engine);
        }
    }
    Ok(FleetRouter { participates, base, engines, base_origins, engine_origins })
}

/// Flows each churn-serving worker routes between epoch re-pins.
const CHURN_SERVE_BATCH: usize = 16;

/// Shard-local integer accumulator; every field merges with a
/// commutative add, which is what makes the sharded run's fold
/// order-independent and therefore bit-identical to the sequential
/// reference.
struct FleetAccum {
    flows: u64,
    delivered: u64,
    dropped: u64,
    hops: u64,
    clue_hops: u64,
    clue_refs: u64,
    base_refs: u64,
    max_staleness: u64,
    lagged_hops: u64,
    /// Per directed link: [hit, problematic, miss, clueless].
    per_link: Vec<[u64; 4]>,
    /// Per hop position: (clue refs, baseline refs, hops recorded).
    per_hop: Vec<(u64, u64, u64)>,
}

impl FleetAccum {
    fn new(links: usize) -> Self {
        FleetAccum {
            flows: 0,
            delivered: 0,
            dropped: 0,
            hops: 0,
            clue_hops: 0,
            clue_refs: 0,
            base_refs: 0,
            max_staleness: 0,
            lagged_hops: 0,
            per_link: vec![[0; 4]; links],
            per_hop: Vec::new(),
        }
    }

    #[inline]
    fn record_hop(&mut self, pos: usize, clued: bool, cost: &Cost, base: &Cost) {
        self.hops += 1;
        self.clue_hops += u64::from(clued);
        let refs = cost.total();
        let base_refs = base.total();
        self.clue_refs += refs;
        self.base_refs += base_refs;
        if pos >= self.per_hop.len() {
            self.per_hop.resize(pos + 1, (0, 0, 0));
        }
        let h = &mut self.per_hop[pos];
        h.0 += refs;
        h.1 += base_refs;
        h.2 += 1;
    }

    fn merge(&mut self, other: &FleetAccum) {
        self.flows += other.flows;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.hops += other.hops;
        self.clue_hops += other.clue_hops;
        self.clue_refs += other.clue_refs;
        self.base_refs += other.base_refs;
        self.max_staleness = self.max_staleness.max(other.max_staleness);
        self.lagged_hops += other.lagged_hops;
        for (a, b) in self.per_link.iter_mut().zip(&other.per_link) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
        if other.per_hop.len() > self.per_hop.len() {
            self.per_hop.resize(other.per_hop.len(), (0, 0, 0));
        }
        for (a, b) in self.per_hop.iter_mut().zip(&other.per_hop) {
            a.0 += b.0;
            a.1 += b.1;
            a.2 += b.2;
        }
    }
}

/// Clue outcomes on one directed link (traffic entering `router` from
/// `from`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkStats {
    /// The receiving router.
    pub router: RouterId,
    /// The upstream router.
    pub from: RouterId,
    /// Clued lookups the clue table answered final (Case 2).
    pub hits: u64,
    /// Clued lookups that ran a problematic-clue continuation (Case 3).
    pub problematic: u64,
    /// Clued lookups whose clue was absent from the table (Case 1).
    pub misses: u64,
    /// Hops that crossed this link without a usable clue.
    pub clueless: u64,
}

impl LinkStats {
    /// Hit rate over the link's clued lookups, `None` if it saw none.
    pub fn hit_rate(&self) -> Option<f64> {
        let clued = self.hits + self.problematic + self.misses;
        (clued > 0).then(|| self.hits as f64 / clued as f64)
    }
}

/// Memory-reference accounting at one hop position (0 = ingress).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopSavings {
    /// References the clue deployment spent at this position.
    pub clue_refs: u64,
    /// References the clue-less baseline spent on the same lookups.
    pub base_refs: u64,
    /// Lookups recorded at this position.
    pub hops: u64,
}

impl HopSavings {
    /// Savings at this position: `1 - clue/baseline`.
    pub fn savings(&self) -> f64 {
        if self.base_refs == 0 {
            0.0
        } else {
            1.0 - self.clue_refs as f64 / self.base_refs as f64
        }
    }
}

/// What a fleet run measured. `PartialEq` so the `--check` mode can
/// assert bit-identity across worker counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetStats {
    /// Flows routed.
    pub flows: u64,
    /// Flows delivered at their destination's origin router.
    pub delivered: u64,
    /// Flows dropped (no route / ECMP dead end / hop cap).
    pub dropped: u64,
    /// Router-hops walked.
    pub hops: u64,
    /// Hops resolved through a clue engine.
    pub clue_hops: u64,
    /// Memory references the clue deployment spent.
    pub clue_refs: u64,
    /// References the clue-less baseline spent on the same hops.
    pub baseline_refs: u64,
    /// Worst epoch lag any pinned snapshot had (0 outside churn).
    pub max_staleness: u64,
    /// Hops routed off a stale (lagging) snapshot.
    pub lagged_hops: u64,
    /// Reference accounting by hop position.
    pub per_hop: Vec<HopSavings>,
    /// Clue outcomes per directed link with traffic.
    pub per_link: Vec<LinkStats>,
}

impl FleetStats {
    /// Fleet-wide clue hits (Case 2 finals).
    pub fn link_hits(&self) -> u64 {
        self.per_link.iter().map(|l| l.hits).sum()
    }

    /// Fleet-wide problematic-clue continuations.
    pub fn link_problematic(&self) -> u64 {
        self.per_link.iter().map(|l| l.problematic).sum()
    }

    /// Fleet-wide clue-table misses.
    pub fn link_misses(&self) -> u64 {
        self.per_link.iter().map(|l| l.misses).sum()
    }

    /// Fleet-wide clueless link crossings.
    pub fn link_clueless(&self) -> u64 {
        self.per_link.iter().map(|l| l.clueless).sum()
    }

    /// End-to-end memory-reference savings: `1 - clue/baseline`.
    pub fn savings(&self) -> f64 {
        if self.baseline_refs == 0 {
            0.0
        } else {
            1.0 - self.clue_refs as f64 / self.baseline_refs as f64
        }
    }
}

/// A sharded packet-leg run: the (bit-deterministic) statistics plus
/// wall-clock attribution.
#[derive(Debug, Clone)]
pub struct FleetRunReport {
    /// The statistics — identical at any `workers`.
    pub stats: FleetStats,
    /// Steady-state nanoseconds (reader registration hoisted out).
    pub elapsed_ns: u64,
    /// Worker threads used.
    pub workers: usize,
}

/// Configuration of the churn leg.
#[derive(Debug, Clone, Copy)]
pub struct FleetChurnConfig {
    /// Origin re-advertisement events to apply.
    pub events: usize,
    /// Serving worker threads routing during the churn.
    pub workers: usize,
    /// Routers within this ECMP distance of a churned origin get their
    /// FIBs patched and bundles republished; beyond it the origin's
    /// /14 aggregate is unchanged, so nothing needs rebuilding.
    pub detail_radius: usize,
    /// Seed for event targets and the serving flow streams.
    pub seed: u64,
}

impl FleetChurnConfig {
    /// Defaults: 8 events, 2 serving workers, the detail bands' reach.
    pub fn new(seed: u64) -> Self {
        FleetChurnConfig { events: 8, workers: 2, detail_radius: 3, seed }
    }
}

/// What the churn leg did.
#[derive(Debug, Clone)]
pub struct FleetChurnReport {
    /// Events applied.
    pub events: u64,
    /// Router bundles republished.
    pub republished: u64,
    /// Total nanoseconds spent rebuilding and publishing bundles.
    pub rebuild_ns: u64,
    /// Retired snapshots reclaimed after their grace period.
    pub reclaimed: u64,
    /// What the serving workers measured while the fleet churned.
    pub stats: FleetStats,
}

/// Configuration of the adversarial leg ([`Fleet::run_adversarial`]).
#[derive(Debug, Clone, Copy)]
pub struct FleetAdversaryConfig {
    /// Adversarial routers to plant (highest-degree participating
    /// transit routers; see [`Fleet::adversary_routers`]).
    pub adversaries: usize,
    /// How they misbehave.
    pub attack: AttackProfile,
    /// Total rounds (reputation batches) to run.
    pub rounds: usize,
    /// Rounds at the start during which the attack profile is active;
    /// the remainder are honest, so the report can show reconvergence.
    pub attack_rounds: usize,
    /// Flows routed per round.
    pub flows_per_round: usize,
    /// Trailing rounds over which final savings are measured.
    pub window: usize,
    /// Reputation state-machine thresholds.
    pub reputation: ReputationConfig,
}

impl FleetAdversaryConfig {
    /// Defaults sized so that with [`ReputationConfig::default`] a
    /// sustained attacker quarantines within two rounds and an honest
    /// link walks all the way back through probation to re-admission
    /// well before the final measurement window.
    pub fn new(attack: AttackProfile, adversaries: usize) -> Self {
        FleetAdversaryConfig {
            adversaries,
            attack,
            rounds: 20,
            attack_rounds: 6,
            flows_per_round: 1_000,
            window: 4,
            reputation: ReputationConfig::default(),
        }
    }
}

/// One round of the adversarial leg.
#[derive(Debug, Clone, Copy)]
pub struct AdversaryRound {
    /// Round index (reputation batch number).
    pub round: usize,
    /// Whether the attack profile was active this round.
    pub hostile: bool,
    /// Directed links serving clue-less under quarantine this round
    /// (the snapshot taken at the round boundary).
    pub quarantined_links: usize,
    /// Hops at which an adversary overrode its stamped clue.
    pub attacked_hops: u64,
    /// Malformed clue decodes charged to links this round.
    pub malformed: u64,
    /// Clued hops whose resolved BMP differed from the clue-less base
    /// lookup (always 0 — a nonzero value is a soundness bug).
    pub divergences: u64,
    /// Clued hops costing more than baseline + 1 (always 0 likewise).
    pub bound_violations: u64,
    /// Worst per-hop overhead seen this round.
    pub overhead_max: u64,
    /// References the (attacked, quarantining) fleet spent.
    pub clue_refs: u64,
    /// References the clue-less baseline spent on the same hops.
    pub baseline_refs: u64,
    /// References the honest fleet spent on the same flow indices.
    pub honest_clue_refs: u64,
    /// The honest fleet's clue-less baseline references.
    pub honest_baseline_refs: u64,
    /// Flows delivered.
    pub delivered: u64,
    /// Flows dropped.
    pub dropped: u64,
}

impl AdversaryRound {
    /// Savings this round under attack/quarantine: `1 - clue/baseline`.
    pub fn savings(&self) -> f64 {
        if self.baseline_refs == 0 {
            0.0
        } else {
            1.0 - self.clue_refs as f64 / self.baseline_refs as f64
        }
    }

    /// Savings the honest fleet achieved on the same flows.
    pub fn honest_savings(&self) -> f64 {
        if self.honest_baseline_refs == 0 {
            0.0
        } else {
            1.0 - self.honest_clue_refs as f64 / self.honest_baseline_refs as f64
        }
    }
}

/// What the adversarial leg measured.
#[derive(Debug, Clone)]
pub struct FleetAdversaryReport {
    /// The attack profile that ran.
    pub attack: AttackProfile,
    /// Routers that were adversarial.
    pub adversaries: Vec<RouterId>,
    /// Trailing rounds the final-savings window covers.
    pub window: usize,
    /// Per-round measurements.
    pub rounds: Vec<AdversaryRound>,
    /// Total BMP divergences (0 on a sound build).
    pub divergences: u64,
    /// Total soundness-bound violations (0 on a sound build).
    pub bound_violations: u64,
    /// First round that began with links quarantined, if any.
    pub quarantine_round: Option<usize>,
    /// First round after which every quarantined link had been
    /// re-admitted, if reconvergence completed.
    pub readmit_round: Option<usize>,
    /// Healthy→Quarantined transitions across all links.
    pub quarantines: u64,
    /// Quarantined→Probation transitions.
    pub probations: u64,
    /// Probation→Healthy re-admissions.
    pub readmissions: u64,
}

impl FleetAdversaryReport {
    /// Whether every clued hop of every round resolved the same BMP as
    /// the clue-less baseline and stayed within the +1 cost bound.
    pub fn sound(&self) -> bool {
        self.divergences == 0 && self.bound_violations == 0
    }

    /// Worst per-hop overhead across the whole run.
    pub fn overhead_max(&self) -> u64 {
        self.rounds.iter().map(|r| r.overhead_max).max().unwrap_or(0)
    }

    fn window_rounds(&self) -> &[AdversaryRound] {
        let n = self.rounds.len();
        &self.rounds[n.saturating_sub(self.window)..]
    }

    /// Savings over the final measurement window (post-attack,
    /// post-quarantine steady state).
    pub fn final_savings(&self) -> f64 {
        let (clue, base) = self
            .window_rounds()
            .iter()
            .fold((0u64, 0u64), |(c, b), r| (c + r.clue_refs, b + r.baseline_refs));
        if base == 0 { 0.0 } else { 1.0 - clue as f64 / base as f64 }
    }

    /// The honest fleet's savings over the same window and flows.
    pub fn honest_final_savings(&self) -> f64 {
        let (clue, base) = self.window_rounds().iter().fold((0u64, 0u64), |(c, b), r| {
            (c + r.honest_clue_refs, b + r.honest_baseline_refs)
        });
        if base == 0 { 0.0 } else { 1.0 - clue as f64 / base as f64 }
    }

    /// Whether post-quarantine savings came back to within `tolerance`
    /// (absolute) of the honest fleet's.
    pub fn reconverged(&self, tolerance: f64) -> bool {
        (self.final_savings() - self.honest_final_savings()).abs() <= tolerance
    }
}

/// Accumulator of the adversarial walk: the ordinary fleet accounting
/// plus the differential-check and per-link reputation evidence.
struct AdversaryAccum {
    base: FleetAccum,
    signals: Vec<BatchSignals>,
    attacked_hops: u64,
    crafted: u64,
    floods: u64,
    divergences: u64,
    bound_violations: u64,
    overhead_max: u64,
}

impl AdversaryAccum {
    fn new(links: usize) -> Self {
        AdversaryAccum {
            base: FleetAccum::new(links),
            signals: vec![BatchSignals::default(); links],
            attacked_hops: 0,
            crafted: 0,
            floods: 0,
            divergences: 0,
            bound_violations: 0,
            overhead_max: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FleetConfig {
        let mut c = FleetConfig::new(64, 11);
        c.origins = 8;
        c.specifics_per_origin = 4;
        c
    }

    #[test]
    fn builds_to_at_least_the_target() {
        let fleet = Fleet::build(FleetConfig::new(300, 3)).unwrap();
        assert!(fleet.router_count() >= 300, "got {}", fleet.router_count());
        assert_eq!(fleet.origin_routers().len(), fleet.config().origins);
    }

    #[test]
    fn preferential_fleet_builds() {
        let mut c = small_config();
        c.topology = TopologyKind::Preferential;
        let fleet = Fleet::build(c).unwrap();
        assert_eq!(fleet.router_count(), 64);
        let stats = fleet.run_flows_sequential(200);
        assert_eq!(stats.flows, 200);
        assert!(stats.delivered + stats.dropped == 200);
        assert!(stats.delivered > 150, "delivered {}", stats.delivered);
    }

    #[test]
    fn flows_deliver_and_clues_save_references() {
        let fleet = Fleet::build(small_config()).unwrap();
        let stats = fleet.run_flows_sequential(500);
        assert_eq!(stats.flows, 500);
        assert_eq!(stats.dropped, 0, "no flow should drop in a full-detail fleet");
        assert_eq!(stats.delivered, 500);
        assert!(stats.clue_hops > 0, "multi-hop flows must cross clued links");
        assert!(
            stats.savings() > 0.2,
            "clues should save references fleet-wide: {}",
            stats.savings()
        );
        // Per-link outcomes account for every clued hop.
        let clued = stats.link_hits() + stats.link_problematic() + stats.link_misses();
        assert_eq!(clued, stats.clue_hops);
    }

    #[test]
    fn sharded_run_matches_sequential_bit_for_bit() {
        let fleet = Fleet::build(small_config()).unwrap();
        let reference = fleet.run_flows_sequential(400);
        for workers in [1, 2, 4] {
            let run = fleet.run_flows(400, workers);
            assert_eq!(run.stats, reference, "divergence at {workers} workers");
        }
    }

    #[test]
    fn draw_flow_is_a_pure_function_of_the_index() {
        let fleet = Fleet::build(small_config()).unwrap();
        assert_eq!(fleet.draw_flow(7), fleet.draw_flow(7));
        assert_ne!(fleet.draw_flow(7), fleet.draw_flow(8));
    }

    #[test]
    fn partial_participation_still_delivers() {
        let mut c = small_config();
        c.participation = 0.5;
        let fleet = Fleet::build(c).unwrap();
        let stats = fleet.run_flows_sequential(300);
        assert_eq!(stats.delivered + stats.dropped, 300);
        assert_eq!(stats.dropped, 0);
        assert!(stats.clue_hops < stats.hops);
    }

    #[test]
    fn churn_republishes_and_keeps_serving() {
        let fleet = Fleet::build(small_config()).unwrap();
        let report = fleet.run_churn(&FleetChurnConfig {
            events: 4,
            workers: 2,
            detail_radius: 2,
            seed: 99,
        });
        assert_eq!(report.events, 4);
        assert!(report.republished >= 4, "each event republishes at least the origin");
        assert!(report.stats.flows > 0, "serving workers routed during churn");
        // Liveness: serving never wedges; delivery may dip but the
        // aggregate keeps flows routable.
        assert!(report.stats.delivered > 0);
    }

    #[test]
    fn telemetry_flush_covers_the_run() {
        let fleet = Fleet::build(small_config()).unwrap();
        let stats = fleet.run_flows_sequential(200);
        let t = FleetTelemetry::detached();
        fleet.record(&stats, None, &t);
        assert_eq!(t.flows_total.get(), 200);
        assert_eq!(t.hops_total.get(), stats.hops);
        assert!(t.savings_ratio.get() > 0.0);
        assert!(t.link_hit_rate_pct.snapshot().count > 0);
    }

    fn simple_fleet() -> Fleet {
        let mut c = small_config();
        c.engine.method = Method::Simple;
        Fleet::build(c).unwrap()
    }

    #[test]
    fn adversary_routers_are_deterministic_transit_hubs() {
        let fleet = simple_fleet();
        let a = fleet.adversary_routers(4);
        assert_eq!(a, fleet.adversary_routers(4));
        assert_eq!(a.len(), 4);
        for &r in &a {
            assert!(
                !fleet.origin_routers().contains(&r),
                "adversaries must be transit routers, got origin {r}"
            );
        }
        // Highest-degree first.
        let degree = |r: RouterId| fleet.topology().neighbors(r).len();
        for w in a.windows(2) {
            assert!(degree(w[0]) >= degree(w[1]));
        }
    }

    #[test]
    fn lying_adversaries_stay_sound_quarantine_and_reconverge() {
        let fleet = simple_fleet();
        let config = FleetAdversaryConfig::new(AttackProfile::Lying, 4);
        let report = fleet.run_adversarial(&config, None, None, None);
        assert!(report.sound(), "divergences or bound violations under lying attack");
        assert!(report.overhead_max() <= 1);
        let q = report.quarantine_round.expect("lying links must quarantine");
        assert!(q <= 3, "quarantine engaged too late: round {q}");
        assert!(report.quarantines > 0);
        assert!(
            report.readmit_round.is_some(),
            "honest behaviour after the attack must re-admit every link"
        );
        assert!(
            report.reconverged(0.05),
            "final savings {:.4} vs honest {:.4}",
            report.final_savings(),
            report.honest_final_savings()
        );
        // During the attack the attacked fleet saves less than honest.
        let first = &report.rounds[0];
        assert!(first.attacked_hops > 0);
        assert!(first.savings() < first.honest_savings());
    }

    #[test]
    fn flooding_adversaries_trip_malformed_accounting() {
        let fleet = simple_fleet();
        let mut config = FleetAdversaryConfig::new(AttackProfile::Flooding, 4);
        config.rounds = 8;
        config.attack_rounds = 3;
        let report = fleet.run_adversarial(&config, None, None, None);
        assert!(report.sound());
        // Flood clues never contain the destination: every forced clue
        // decodes Malformed, which costs zero extra references.
        let first = &report.rounds[0];
        assert!(first.malformed > 0, "flood clues must register as malformed");
        assert!(first.attacked_hops > 0);
    }

    #[test]
    fn oscillating_liar_cannot_dodge_fleet_hysteresis() {
        let fleet = simple_fleet();
        let config = FleetAdversaryConfig::new(AttackProfile::Oscillating, 4);
        let report = fleet.run_adversarial(&config, None, None, None);
        assert!(report.sound());
        assert!(
            report.quarantine_round.is_some(),
            "alternating honest epochs must not evade quarantine"
        );
        assert!(report.reconverged(0.05));
    }

    #[test]
    fn adversarial_run_feeds_telemetry() {
        let fleet = simple_fleet();
        let mut config = FleetAdversaryConfig::new(AttackProfile::Lying, 2);
        config.rounds = 6;
        config.attack_rounds = 2;
        let at = AdversaryTelemetry::detached();
        let rt = ReputationTelemetry::detached();
        let dt = DegradationTelemetry::detached(&["lying_neighbor", "adversarial_clue"]);
        let report = fleet.run_adversarial(&config, Some(&at), Some(&rt), Some(&dt));
        let attacked: u64 = report.rounds.iter().map(|r| r.attacked_hops).sum();
        assert_eq!(at.attacked_hops_total.get(), attacked);
        assert!(at.crafted_clues_total.get() > 0);
        assert_eq!(at.bound_violations_total.get(), 0);
        assert!(at.worst_overhead.get() <= 1.0);
        assert!(rt.batches_observed_total.get() > 0);
        assert_eq!(rt.quarantines_total.get(), report.quarantines);
        assert_eq!(dt.injected_total.get(), attacked);
        assert_eq!(dt.class("lying_neighbor").unwrap().get(), attacked);
    }
}
