//! Shared-nothing multi-core serving runtime.
//!
//! [`FrozenNetwork::run_workload`](crate::FrozenNetwork::run_workload)
//! shards one workload across scoped threads, but every shard still
//! routes through the *shared* frozen engines and materialises a
//! [`PathTrace`](crate::PathTrace) per packet. This module is the
//! run-to-completion replacement (ROADMAP item 1, after flashroute's
//! "mutex or rwlock free; all inter-task communications through
//! message channels or atomic operations"):
//!
//! * **Per-core replicas.** Each worker owns a private clone of every
//!   compiled [`StrideEngine`] it serves from ([`StrideEngine::replicate`]
//!   detaches telemetry handles, so a replica shares not even an `Arc`
//!   with its siblings). Replica priming happens before the timed
//!   region and is reported separately ([`CoreStats::replica_clone_ns`]).
//! * **Lock-free channels.** The dispatcher feeds each worker over its
//!   own bounded SPSC ring ([`clue_core::channel::spsc`]); results
//!   drain through one MPSC ring ([`clue_core::channel::mpsc`]). Full
//!   and empty are yield-and-retry, never a lock.
//! * **Deterministic partitioning.** Jobs are contiguous packet-index
//!   ranges and every packet derives its own SplitMix64 RNG stream
//!   from its index, so what a worker computes is independent of which
//!   worker computes it; the per-worker accumulators fold with
//!   commutative integer merges. [`StrideNetwork::run_workload`] is
//!   therefore **bit-identical to
//!   [`run_workload_per_packet`](crate::run_workload_per_packet) at
//!   any worker count** — the property `tests/runtime_equivalence.rs`
//!   pins down.
//! * **Barrier-free churn propagation.** [`serve_lookups`] serves from
//!   an [`EpochCell`]: each worker holds a pinned [`EpochReader`] and
//!   re-clones its replica at the first batch boundary after a
//!   publish — no barrier, no coordination with other cores, and the
//!   epochs-behind lag is attributed per core
//!   ([`CoreStats::max_staleness`]).
//!
//! Three details make the network driver fast enough to beat the
//! scalar reference by the gated 3x even before true parallelism:
//! router lookups run on stride-compiled engines (a direct-indexed
//! root plus multibit nodes instead of a bit-by-bit trie walk);
//! next-hop resolution — `fib.get(&bmp)`, an *uncharged* binary-trie
//! descent on the frozen path — is tag-indexed, the compiled lookup
//! returning a dense payload index ([`StrideEngine::lookup_finish_tag`])
//! into a per-engine [`TagHop`] table precomputed at freeze time from
//! the flat open-addressed prefix→hop map ([`PrefixHopMap`]); and
//! each worker walks [`WALK_LANES`] packets in lockstep,
//! decoding-and-prefetching every packet's next lookup
//! ([`StrideEngine::lookup_prepare`]) a full lane rotation before
//! resolving it, so the dependent loads of one walk hide behind the
//! other lanes' work. None of the three changes any recorded
//! statistic: the stride engines are tick-parity with the scalar
//! engines (the `stride_prop` suite), the tag tables resolve exactly
//! what the FIB walk resolves while both charge nothing, and lane
//! order only permutes commutative accumulator merges.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use clue_core::channel::{mpsc, spsc, MpscSender, SpscReceiver, TryRecvError};
use clue_core::{
    BackendError, ClueHeader, CompiledBackend, CompressedEngine, Decision, EngineStats, EpochCell,
    PreparedLookup, QuarantineGate, StrideConfig, StrideEngine, StrideError, DEFAULT_INTERLEAVE,
    NO_TAG,
};
use clue_telemetry::RuntimeTelemetry;
use clue_trie::{Address, Cost, Prefix};

use crate::network::{Hop, Network};
use crate::parallel::{draw_packet, Accum};
use crate::sim::RunStats;
use crate::topology::RouterId;

/// The number of worker cores [`RuntimeConfig::default`] uses: every
/// core the OS reports, falling back to one.
pub fn available_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Tuning knobs of the serving runtime.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker cores (default: [`available_workers`]).
    pub workers: usize,
    /// Packets per job — the unit of channel traffic and of replica
    /// refresh (churn is observed at job boundaries).
    pub batch: usize,
    /// SPSC feed depth in jobs.
    pub depth: usize,
    /// Interleave group for the workers' prefetched batch loops
    /// (engine serving only; `<= 1` disables prefetch).
    pub prefetch: usize,
    /// Stride shape for [`StrideNetwork::freeze`].
    pub stride: StrideConfig,
    /// Reputation-layer quarantine switch for the served link. Workers
    /// read it once per job at the epoch-refresh boundary: while
    /// engaged, the job is served entirely clue-less — the hot path
    /// stays branchless within a batch and never touches the flag
    /// per packet.
    pub gate: Option<std::sync::Arc<QuarantineGate>>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: available_workers(),
            batch: 512,
            depth: 64,
            prefetch: DEFAULT_INTERLEAVE,
            stride: StrideConfig::default(),
            gate: None,
        }
    }
}

impl RuntimeConfig {
    /// A config with the given worker count and every other knob at
    /// its default.
    pub fn with_workers(workers: usize) -> Self {
        RuntimeConfig { workers, ..Default::default() }
    }
}

/// One worker core's attribution for a run.
#[derive(Debug, Clone, Default)]
pub struct CoreStats {
    /// Worker index (0-based).
    pub worker: usize,
    /// Packets this core served.
    pub packets: u64,
    /// Jobs this core pulled off its feed.
    pub batches: u64,
    /// Nanoseconds spent inside lookups (excludes channel polling).
    pub busy_ns: u64,
    /// Replica clones: the priming clone plus one per observed epoch
    /// publish.
    pub replica_clones: u64,
    /// Nanoseconds spent cloning replicas (priming + refreshes).
    pub replica_clone_ns: u64,
    /// Worst epochs-behind-the-writer this core served a batch at.
    pub max_staleness: u64,
    /// Channel polls that found the feed empty (or the drain full) and
    /// yielded.
    pub backpressure: u64,
}

/// What a runtime run did, beyond its workload result: wall-clock of
/// the timed region, setup cost kept out of it, and per-core
/// attribution.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Nanoseconds from "every replica primed" to "every result
    /// drained" — the steady-state serving time.
    pub elapsed_ns: u64,
    /// Total nanoseconds workers spent priming their replicas, all of
    /// it **outside** the timed region.
    pub replica_clone_ns: u64,
    /// Per-core attribution, indexed by worker.
    pub cores: Vec<CoreStats>,
}

impl RuntimeReport {
    /// Packets per second over the timed region.
    pub fn pps(&self) -> f64 {
        let packets: u64 = self.cores.iter().map(|c| c.packets).sum();
        packets as f64 / (self.elapsed_ns.max(1) as f64 / 1e9)
    }

    /// Each core's packets per second over the (shared) timed region.
    pub fn per_core_pps(&self) -> Vec<f64> {
        let secs = self.elapsed_ns.max(1) as f64 / 1e9;
        self.cores.iter().map(|c| c.packets as f64 / secs).collect()
    }

    /// Flushes this report into a telemetry bundle.
    pub fn record(&self, t: &RuntimeTelemetry) {
        t.workers.set(self.cores.len() as f64);
        for c in &self.cores {
            t.record_core(c.packets, c.batches, c.replica_clones, c.backpressure);
            t.replica_clone_us.observe(c.replica_clone_ns / 1_000);
        }
    }
}

/// A contiguous range of packet (or slice) indices — the unit of work
/// on the SPSC feeds.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Job {
    pub(crate) lo: u64,
    pub(crate) hi: u64,
}

/// Idle backoff for the *coordinator* (dispatcher/collector) thread
/// only: a couple of yields for low latency, then short sleeps so an
/// oversubscribed core (more workers than hardware threads) is not
/// robbed of scheduler quanta by a spinning coordinator. Workers keep
/// plain `yield_now` — their feeds are primed deep, so they rarely
/// poll empty, and job latency matters there.
pub(crate) struct Backoff {
    idle: u32,
}

impl Backoff {
    pub(crate) fn new() -> Self {
        Backoff { idle: 0 }
    }

    /// Called when a poll made progress.
    pub(crate) fn reset(&mut self) {
        self.idle = 0;
    }

    /// Called when a poll found nothing to do.
    pub(crate) fn wait(&mut self) {
        self.idle += 1;
        if self.idle <= 3 {
            std::thread::yield_now();
        } else {
            std::thread::sleep(Duration::from_micros(50));
        }
    }
}

// ---------------------------------------------------------------------
// Prefix → hop resolution
// ---------------------------------------------------------------------

/// Next-hop sentinel codes in [`PrefixHopMap`] slots.
const EMPTY_HOP: u32 = u32::MAX;
const LOCAL_HOP: u32 = u32::MAX - 1;

/// A flat open-addressed map from FIB prefix to forwarding decision.
///
/// The live and frozen drivers resolve a found BMP to its hop with
/// `fib.get(&bmp)` — a bit-by-bit binary-trie descent that charges no
/// [`Cost`] (next-hop resolution is not part of the paper's lookup
/// accounting) but burns real cycles on every hop. This map holds the
/// identical prefix→hop relation in one power-of-two slot array:
/// Fibonacci multiply-shift hash, linear probing, payload inlined.
/// Same answers, no tree walk.
#[derive(Debug, Clone)]
struct PrefixHopMap<A: Address> {
    slots: Vec<HopSlot<A>>,
    mask: usize,
    shift: u32,
}

#[derive(Debug, Clone, Copy)]
struct HopSlot<A: Address> {
    bits: A,
    len: u8,
    code: u32,
}

impl<A: Address> PrefixHopMap<A> {
    fn build(entries: impl Iterator<Item = (Prefix<A>, Hop)>) -> Self {
        let entries: Vec<_> = entries.collect();
        let cap = (entries.len() * 2).next_power_of_two().max(4);
        let mut map = PrefixHopMap {
            slots: vec![HopSlot { bits: A::ZERO, len: 0, code: EMPTY_HOP }; cap],
            mask: cap - 1,
            shift: 64 - cap.trailing_zeros(),
        };
        for (p, hop) in entries {
            let code = match hop {
                Hop::Local => LOCAL_HOP,
                Hop::Via(nh) => {
                    let nh = nh as u32;
                    assert!(nh < LOCAL_HOP, "router id collides with hop sentinel");
                    nh
                }
            };
            let mut i = map.index(p.bits(), p.len());
            while map.slots[i].code != EMPTY_HOP {
                debug_assert!(
                    !(map.slots[i].bits == p.bits() && map.slots[i].len == p.len()),
                    "duplicate prefix in FIB"
                );
                i = (i + 1) & map.mask;
            }
            map.slots[i] = HopSlot { bits: p.bits(), len: p.len(), code };
        }
        map
    }

    #[inline]
    fn index(&self, bits: A, len: u8) -> usize {
        let v = bits.to_u128();
        let h = (v as u64) ^ ((v >> 64) as u64) ^ ((len as u64) << 57);
        (h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize & self.mask
    }

    /// The forwarding decision for an exact FIB prefix, if installed —
    /// the drop-in replacement for `fib.get(&p).map(|r| *fib.value(r))`.
    #[inline]
    fn get(&self, p: &Prefix<A>) -> Option<Hop> {
        let (bits, len) = (p.bits(), p.len());
        let mut i = self.index(bits, len);
        loop {
            let s = &self.slots[i];
            if s.code == EMPTY_HOP {
                return None;
            }
            if s.len == len && s.bits == bits {
                return Some(if s.code == LOCAL_HOP {
                    Hop::Local
                } else {
                    Hop::Via(s.code as RouterId)
                });
            }
            i = (i + 1) & self.mask;
        }
    }
}

/// One lookup tag's precomputed forwarding state: the prefix the tag
/// names and its [`PrefixHopMap`] decision. Built once per engine at
/// freeze time, so the hot walk turns “hash the found prefix into the
/// FIB map” into a single tag-addressed array read.
#[derive(Debug, Clone, Copy)]
struct TagHop<A: Address> {
    prefix: Prefix<A>,
    /// [`EMPTY_HOP`] (prefix not in this FIB), [`LOCAL_HOP`], or the
    /// next-hop router id.
    code: u32,
}

/// Resolves every tag of `engine` through the router's hop map.
fn tag_hops<A: Address, E: CompiledBackend<A>>(
    engine: &E,
    hops: &PrefixHopMap<A>,
) -> Vec<TagHop<A>> {
    engine
        .tag_prefixes()
        .iter()
        .map(|&p| TagHop {
            prefix: p,
            code: match hops.get(&p) {
                None => EMPTY_HOP,
                Some(Hop::Local) => LOCAL_HOP,
                Some(Hop::Via(nh)) => nh as u32,
            },
        })
        .collect()
}

// ---------------------------------------------------------------------
// Backend-compiled network
// ---------------------------------------------------------------------

/// One router's serving state: backend-compiled engines plus the
/// precompiled hop map. The hop map and tag tables are immutable after
/// construction and `Arc`-shared into every worker replica — together
/// with the engines' own `Arc`-shared arenas this makes
/// [`Self::replicate`] a handful of refcount bumps even at
/// million-prefix scale.
#[derive(Debug, Clone)]
struct CompiledRouter<A: Address, E: CompiledBackend<A>> {
    base: E,
    /// Neighbor id → index into `engines`, [`EMPTY_HOP`]-style dense
    /// sentinel ([`NO_ENGINE`]).
    by_neighbor: Arc<Vec<u32>>,
    engines: Vec<E>,
    hops: Arc<PrefixHopMap<A>>,
    /// `base`'s tag → forwarding-decision table.
    base_hops: Arc<Vec<TagHop<A>>>,
    /// Per-neighbor-engine tag tables, parallel to `engines`.
    engine_hops: Arc<Vec<Vec<TagHop<A>>>>,
    participates: bool,
}

/// “No per-neighbor engine” sentinel in
/// [`CompiledRouter::by_neighbor`].
const NO_ENGINE: u32 = u32::MAX;

impl<A: Address, E: CompiledBackend<A>> CompiledRouter<A, E> {
    /// A worker-private replica: every engine re-cloned with telemetry
    /// detached ([`CompiledBackend::replicate`]); the hop state is
    /// `Arc`-shared.
    fn replicate(&self) -> CompiledRouter<A, E> {
        CompiledRouter {
            base: self.base.replicate(),
            by_neighbor: Arc::clone(&self.by_neighbor),
            engines: self.engines.iter().map(E::replicate).collect(),
            hops: Arc::clone(&self.hops),
            base_hops: Arc::clone(&self.base_hops),
            engine_hops: Arc::clone(&self.engine_hops),
            participates: self.participates,
        }
    }
}

/// A read-only view of a [`Network`] with every clue engine compiled
/// to one [`CompiledBackend`] and every FIB's prefix→hop relation
/// flattened into a [`PrefixHopMap`] — the serving-runtime analogue of
/// [`FrozenNetwork`](crate::FrozenNetwork), generic over the compiled
/// layout. Every backend serves bit-identical results (the Cost-parity
/// contract); they differ only in bytes touched per lookup.
#[derive(Debug)]
pub struct CompiledNetwork<'n, A: Address, E: CompiledBackend<A>> {
    net: &'n Network<A>,
    routers: Vec<CompiledRouter<A, E>>,
}

/// The serving runtime on the multibit stride backend — the historical
/// name, and still the default the CLI and fleet drive.
pub type StrideNetwork<'n, A> = CompiledNetwork<'n, A, StrideEngine<A>>;

/// The serving runtime on the entropy-compressed backend.
pub type CompressedNetwork<'n, A> = CompiledNetwork<'n, A, CompressedEngine<A>>;

impl<'n, A: Address> StrideNetwork<'n, A> {
    /// Stride-compiles every engine in `net`. Fails like a freeze
    /// fails (non-Regular family, indexed table, cache) or if the
    /// stride shape is invalid.
    pub fn freeze(net: &'n Network<A>, stride: StrideConfig) -> Result<Self, StrideError> {
        Self::compile(net, &stride).map_err(|e| match e {
            BackendError::Stride(e) => e,
            BackendError::Freeze(e) => StrideError::Freeze(e),
        })
    }
}

impl<'n, A: Address, E: CompiledBackend<A>> CompiledNetwork<'n, A, E> {
    /// Compiles every engine in `net` to backend `E`. Fails like a
    /// freeze fails (non-Regular family, indexed table, cache) or if
    /// the backend rejects its configuration.
    pub fn compile(net: &'n Network<A>, config: &E::Config) -> Result<Self, BackendError> {
        let n = net.topology().len();
        let routers = net
            .routers()
            .iter()
            .map(|r| {
                let mut by_neighbor = vec![NO_ENGINE; n];
                let mut engines = Vec::with_capacity(r.engines.len());
                for (&nb, e) in &r.engines {
                    by_neighbor[nb] = engines.len() as u32;
                    engines.push(E::compile(e, config)?);
                }
                let base = E::compile(&r.base, config)?;
                let hops = PrefixHopMap::build(r.fib.iter().map(|(_, p, &h)| (p, h)));
                let base_hops = tag_hops(&base, &hops);
                let engine_hops = engines.iter().map(|e| tag_hops(e, &hops)).collect();
                Ok(CompiledRouter {
                    base,
                    by_neighbor: Arc::new(by_neighbor),
                    engines,
                    hops: Arc::new(hops),
                    base_hops: Arc::new(base_hops),
                    engine_hops: Arc::new(engine_hops),
                    participates: r.participates,
                })
            })
            .collect::<Result<Vec<_>, BackendError>>()?;
        Ok(CompiledNetwork { net, routers })
    }

    /// The live network this view was compiled from.
    pub fn network(&self) -> &'n Network<A> {
        self.net
    }

    /// Routes `packets` random packets through the channel-fed
    /// multi-core runtime. Bit-identical to
    /// [`run_workload_per_packet`](crate::run_workload_per_packet) for
    /// the same seed at any worker count.
    ///
    /// # Panics
    /// Panics if `sources` is empty or the network has no origins.
    pub fn run_workload(
        &self,
        sources: &[RouterId],
        packets: usize,
        seed: u64,
        workers: usize,
    ) -> RunStats {
        self.run_workload_timed(sources, packets, seed, &RuntimeConfig::with_workers(workers), None)
            .0
    }

    /// As [`Self::run_workload`], returning the runtime report
    /// (steady-state wall clock with replica priming hoisted out of
    /// it, per-core attribution) and optionally flushing it into a
    /// telemetry bundle.
    ///
    /// # Panics
    /// Panics if `sources` is empty or the network has no origins.
    pub fn run_workload_timed(
        &self,
        sources: &[RouterId],
        packets: usize,
        seed: u64,
        config: &RuntimeConfig,
        telemetry: Option<&RuntimeTelemetry>,
    ) -> (RunStats, RuntimeReport) {
        assert!(!sources.is_empty(), "need at least one source");
        let origins = self.net.config().origins.clone();
        assert!(!origins.is_empty(), "need at least one origin");
        let workers = config.workers.max(1);
        let batch = config.batch.max(1);
        let n = self.net.topology().len();

        let mut feeds = Vec::with_capacity(workers);
        let mut worker_rx: Vec<Option<SpscReceiver<Job>>> = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = spsc::<Job>(config.depth.max(1));
            feeds.push(tx);
            worker_rx.push(Some(rx));
        }
        let (res_tx, mut res_rx) = mpsc::<(usize, Accum, CoreStats)>(workers);
        let priming = AtomicUsize::new(workers);

        let mut shards: Vec<Option<(Accum, CoreStats)>> = (0..workers).map(|_| None).collect();
        let mut elapsed_ns = 0u64;

        std::thread::scope(|scope| {
            for (w, slot) in worker_rx.iter_mut().enumerate() {
                let mut rx = slot.take().expect("receiver consumed once");
                let res_tx = res_tx.clone();
                let priming = &priming;
                let (this, origins, sources) = (&*self, &origins, sources);
                scope.spawn(move || {
                    let t0 = Instant::now();
                    let replicas: Vec<CompiledRouter<A, E>> =
                        this.routers.iter().map(CompiledRouter::replicate).collect();
                    let mut stats = CoreStats {
                        worker: w,
                        replica_clones: 1,
                        replica_clone_ns: t0.elapsed().as_nanos() as u64,
                        ..CoreStats::default()
                    };
                    priming.fetch_sub(1, Ordering::Release);
                    let mut acc = Accum::new(n);
                    loop {
                        match rx.try_recv() {
                            Ok(job) => {
                                let t = Instant::now();
                                route_job_into(
                                    this.net, &replicas, sources, origins, seed, job.lo, job.hi,
                                    &mut acc,
                                );
                                stats.busy_ns += t.elapsed().as_nanos() as u64;
                                stats.packets += job.hi - job.lo;
                                stats.batches += 1;
                            }
                            Err(TryRecvError::Empty) => {
                                stats.backpressure += 1;
                                std::thread::yield_now();
                            }
                            Err(TryRecvError::Disconnected) => break,
                        }
                    }
                    let mut msg = (w, acc, stats);
                    while let Err(back) = res_tx.try_send(msg) {
                        msg = back;
                        std::thread::yield_now();
                    }
                });
            }
            drop(res_tx);

            // Replica priming is setup, not serving: wait it out, then
            // start the clock.
            let mut backoff = Backoff::new();
            while priming.load(Ordering::Acquire) != 0 {
                backoff.wait();
            }
            let t0 = Instant::now();
            let mut lo = 0u64;
            let mut w = 0usize;
            while lo < packets as u64 {
                let hi = (lo + batch as u64).min(packets as u64);
                let mut job = Job { lo, hi };
                while let Err(back) = feeds[w].try_send(job) {
                    job = back;
                    std::thread::yield_now();
                }
                lo = hi;
                w = (w + 1) % workers;
            }
            for tx in &mut feeds {
                tx.close();
            }
            let mut done = 0;
            backoff.reset();
            while done < workers {
                match res_rx.try_recv() {
                    Ok((w, acc, stats)) => {
                        shards[w] = Some((acc, stats));
                        done += 1;
                        backoff.reset();
                    }
                    Err(TryRecvError::Empty) => backoff.wait(),
                    Err(TryRecvError::Disconnected) => break,
                }
            }
            elapsed_ns = t0.elapsed().as_nanos() as u64;
        });

        let mut acc = Accum::new(n);
        let mut cores = Vec::with_capacity(workers);
        let mut clone_ns = 0u64;
        for shard in shards {
            let (a, c) = shard.expect("every worker reports exactly once");
            acc.merge(&a);
            clone_ns += c.replica_clone_ns;
            cores.push(c);
        }
        let report = RuntimeReport { elapsed_ns, replica_clone_ns: clone_ns, cores };
        if let Some(t) = telemetry {
            report.record(t);
        }
        (acc.finish(packets), report)
    }
}

/// In-flight packet walks interleaved per worker. Each lane's next
/// lookup is decoded — and its first probe line prefetched — when the
/// packet *advances*, a full lane rotation before it resolves, so the
/// other lanes' work hides the fetch latency. Sized to keep the lane
/// state (a few hundred bytes) comfortably in L1 while still covering
/// an LLC miss with ~7 lanes' worth of work.
const WALK_LANES: usize = 8;

/// One in-flight packet walk: where the packet is, what its header
/// carries, and the decoded (already-prefetched) op for the lookup it
/// will run next.
#[derive(Clone, Copy)]
struct Flight<A: Address> {
    dest: A,
    header: ClueHeader,
    prev: Option<RouterId>,
    cur: RouterId,
    pos: usize,
    engine_slot: u32,
    used_clue: bool,
    clue: Option<Prefix<A>>,
    op: PreparedLookup,
}

/// Decodes the lookup a packet will run at its current router — engine
/// choice, decoded clue, start line prefetched — without resolving it.
#[inline]
fn prepare<A: Address, E: CompiledBackend<A>>(
    routers: &[CompiledRouter<A, E>],
    dest: A,
    header: &ClueHeader,
    prev: Option<RouterId>,
    cur: RouterId,
) -> (u32, bool, Option<Prefix<A>>, PreparedLookup) {
    let node = &routers[cur];
    let engine_slot =
        prev.map_or(NO_ENGINE, |p| node.by_neighbor.get(p).copied().unwrap_or(NO_ENGINE));
    let used_clue = node.participates && engine_slot != NO_ENGINE && header.clue.is_some();
    if used_clue {
        let clue = header.decode(dest);
        let op = node.engines[engine_slot as usize].lookup_prepare(dest, clue);
        (engine_slot, true, clue, op)
    } else {
        (engine_slot, false, None, node.base.lookup_prepare(dest, None))
    }
}

/// Routes packets `lo..hi` of the seeded workload, walking up to
/// [`WALK_LANES`] packets in lockstep. Every hop matches
/// [`FrozenNetwork::route_packet`](crate::FrozenNetwork::route_packet)
/// — same hops, same per-hop [`Cost`], same Section 5.4 shifted work —
/// recorded straight into the accumulator instead of materialising a
/// `PathTrace`. Lanes only change the order packets' hops execute in,
/// and [`Accum`]'s merges are commutative, so the folded [`RunStats`]
/// is unchanged.
#[allow(clippy::too_many_arguments)]
fn route_job_into<A: Address, E: CompiledBackend<A>>(
    net: &Network<A>,
    routers: &[CompiledRouter<A, E>],
    sources: &[RouterId],
    origins: &[RouterId],
    seed: u64,
    lo: u64,
    hi: u64,
    acc: &mut Accum,
) {
    let config = net.config();
    let live = net.routers();
    let max_hops = net.topology().len() * 2 + 4;

    let launch = |i: u64| -> Flight<A> {
        let (src, dest) = draw_packet(net, sources, origins, seed, i);
        let header = ClueHeader::none();
        let (engine_slot, used_clue, clue, op) = prepare(routers, dest, &header, None, src);
        Flight { dest, header, prev: None, cur: src, pos: 0, engine_slot, used_clue, clue, op }
    };

    let mut lanes: [Option<Flight<A>>; WALK_LANES] = [None; WALK_LANES];
    let mut next_packet = lo;
    let mut in_flight = 0usize;
    for lane in lanes.iter_mut() {
        if next_packet >= hi {
            break;
        }
        *lane = Some(launch(next_packet));
        next_packet += 1;
        in_flight += 1;
    }

    while in_flight > 0 {
        for lane in lanes.iter_mut() {
            // The flight mutates in place — no per-hop move of the
            // lane state in and out of the `Option`.
            let Some(f) = lane.as_mut() else { continue };
            let node = &routers[f.cur];
            let mut cost = Cost::new();
            let (tag, table) = if f.used_clue {
                let e = f.engine_slot as usize;
                let (tag, _) = node.engines[e].lookup_finish_tag(f.op, f.dest, f.clue, &mut cost);
                (tag, node.engine_hops[e].as_slice())
            } else {
                let (tag, _) = node.base.lookup_finish_tag(f.op, f.dest, None, &mut cost);
                (tag, node.base_hops.as_slice())
            };

            // Tag → (prefix, decision): one array read where the
            // reference path hashes the found prefix into the FIB map.
            let (bmp, next) = if tag == NO_TAG {
                (None, None)
            } else {
                let th = &table[tag as usize];
                let next = match th.code {
                    EMPTY_HOP => None,
                    LOCAL_HOP => Some(Hop::Local),
                    nh => Some(Hop::Via(nh as RouterId)),
                };
                (Some(th.prefix), next)
            };

            if node.participates {
                if let Some(p) = bmp {
                    f.header = ClueHeader::with_clue(&p);
                }
                if config.shift_work_to_edges {
                    if let Some(Hop::Via(nh)) = next {
                        if config.core.contains(&nh) {
                            // Shifted-work charges tick straight into
                            // `cost`: the reference folds them in with
                            // a category-wise `+=` before recording,
                            // so charging in place sums identically.
                            let nb_fib = &live[nh].fib;
                            let nb_bmp = match bmp.and_then(|p| nb_fib.node_of_prefix(&p)) {
                                Some(start) => nb_fib
                                    .lookup_from(start, f.dest, &mut cost)
                                    .map(|r| nb_fib.prefix(r)),
                                None => nb_fib
                                    .lookup_counted(f.dest, &mut cost)
                                    .map(|r| nb_fib.prefix(r)),
                            };
                            if let Some(p) = nb_bmp {
                                f.header = ClueHeader::with_clue(&p);
                            }
                        }
                    }
                }
            }

            acc.record_hop(f.pos, f.cur, bmp.map_or(0, |p| p.len()), cost, f.used_clue);

            let retired = match next {
                Some(Hop::Local) => {
                    acc.record_delivered();
                    true
                }
                Some(Hop::Via(nh)) => {
                    f.prev = Some(f.cur);
                    f.cur = nh;
                    f.pos += 1;
                    if f.pos >= max_hops {
                        true
                    } else {
                        let (engine_slot, used_clue, clue, op) =
                            prepare(routers, f.dest, &f.header, f.prev, f.cur);
                        f.engine_slot = engine_slot;
                        f.used_clue = used_clue;
                        f.clue = clue;
                        f.op = op;
                        false
                    }
                }
                None => true,
            };
            if retired {
                if next_packet < hi {
                    *lane = Some(launch(next_packet));
                    next_packet += 1;
                } else {
                    *lane = None;
                    in_flight -= 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Engine-level serving over an EpochCell
// ---------------------------------------------------------------------

/// What one [`serve_lookups`] run did.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Packets served.
    pub packets: u64,
    /// Nanoseconds from "every replica primed" to "every result
    /// reassembled".
    pub elapsed_ns: u64,
    /// Total priming-clone nanoseconds, outside the timed region
    /// (mid-run refresh clones are inside it, attributed per core).
    pub replica_clone_ns: u64,
    /// Merged resolution-class counts.
    pub stats: EngineStats,
    /// Per-core attribution, indexed by worker.
    pub cores: Vec<CoreStats>,
}

impl ServeReport {
    /// Packets per second over the timed region.
    pub fn pps(&self) -> f64 {
        self.packets as f64 / (self.elapsed_ns.max(1) as f64 / 1e9)
    }

    /// Each core's packets per second over the (shared) timed region.
    pub fn per_core_pps(&self) -> Vec<f64> {
        let secs = self.elapsed_ns.max(1) as f64 / 1e9;
        self.cores.iter().map(|c| c.packets as f64 / secs).collect()
    }
}

/// A worker → collector message on the result drain.
enum ServeMsg<A: Address> {
    /// One served job: decisions for `dests[base .. base + len]`.
    Batch { base: usize, decisions: Vec<Decision<A>> },
    /// The worker's feed closed and it is done.
    Done { worker: usize, stats: CoreStats, classes: EngineStats },
}

/// Serves one batch workload from an [`EpochCell`] across per-core
/// engine replicas — the engine-level serving loop, generic over any
/// [`CompiledBackend`] (stride by default; the compressed backend
/// drops in unchanged).
///
/// Each worker registers an [`clue_core::EpochReader`], clones a
/// private replica from the pinned snapshot (priming, outside the
/// timed region), then pulls jobs off its SPSC feed, runs the
/// prefetched batch lookup on its replica and ships the decisions back
/// over the MPSC drain, where they are reassembled by base offset into
/// `out`. At every job boundary the worker compares its replica's
/// epoch with the cell's: a newer publish triggers a re-pin and
/// re-clone — churn propagates to every core without any barrier, and
/// the observed lag lands in [`CoreStats::max_staleness`] (and the
/// `staleness_epochs` histogram when telemetry is attached).
///
/// With no concurrent publish the decisions are exactly
/// `engine.lookup_batch` of the same inputs, independent of worker
/// count and timing.
///
/// # Panics
/// Panics unless `dests` and `clues` have equal lengths.
pub fn serve_lookups<A: Address, E: CompiledBackend<A>>(
    cell: &EpochCell<E>,
    dests: &[A],
    clues: &[Option<Prefix<A>>],
    out: &mut Vec<Decision<A>>,
    config: &RuntimeConfig,
    telemetry: Option<&RuntimeTelemetry>,
) -> ServeReport {
    assert_eq!(dests.len(), clues.len(), "one clue slot per destination");
    let workers = config.workers.max(1);
    let batch = config.batch.max(1);
    let prefetch = config.prefetch;
    out.clear();
    out.resize(dests.len(), Decision::default());

    let mut feeds = Vec::with_capacity(workers);
    let mut worker_rx: Vec<Option<SpscReceiver<Job>>> = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = spsc::<Job>(config.depth.max(1));
        feeds.push(tx);
        worker_rx.push(Some(rx));
    }
    let (res_tx, mut res_rx) = mpsc::<ServeMsg<A>>(workers * config.depth.max(1));
    let priming = AtomicUsize::new(workers);

    let mut cores: Vec<Option<CoreStats>> = (0..workers).map(|_| None).collect();
    let mut classes = EngineStats::default();
    let mut elapsed_ns = 0u64;

    std::thread::scope(|scope| {
        for (w, slot) in worker_rx.iter_mut().enumerate() {
            let mut rx = slot.take().expect("receiver consumed once");
            let res_tx = res_tx.clone();
            let priming = &priming;
            let gate = config.gate.as_deref();
            scope.spawn(move || {
                serve_worker(
                    cell, dests, clues, w, &mut rx, &res_tx, priming, batch, prefetch, gate,
                    telemetry,
                );
            });
        }
        drop(res_tx);

        let mut backoff = Backoff::new();
        while priming.load(Ordering::Acquire) != 0 {
            backoff.wait();
        }
        let t0 = Instant::now();

        // Dispatch and drain from the same thread: push jobs while the
        // feeds take them, reassemble whatever has already drained in
        // between — the collector never sleeps on a full feed.
        if dests.is_empty() {
            for tx in &mut feeds {
                tx.close();
            }
        }
        let mut lo = 0u64;
        let mut w = 0usize;
        let mut done = 0usize;
        backoff.reset();
        while done < workers {
            let mut progressed = false;
            if lo < dests.len() as u64 {
                let hi = (lo + batch as u64).min(dests.len() as u64);
                if feeds[w].try_send(Job { lo, hi }).is_ok() {
                    lo = hi;
                    w = (w + 1) % workers;
                    progressed = true;
                    if lo == dests.len() as u64 {
                        for tx in &mut feeds {
                            tx.close();
                        }
                    }
                }
            }
            loop {
                match res_rx.try_recv() {
                    Ok(ServeMsg::Batch { base, decisions }) => {
                        out[base..base + decisions.len()].copy_from_slice(&decisions);
                        progressed = true;
                    }
                    Ok(ServeMsg::Done { worker, stats, classes: c }) => {
                        cores[worker] = Some(stats);
                        classes.merge(&c);
                        done += 1;
                        progressed = true;
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        done = workers;
                        break;
                    }
                }
            }
            if progressed {
                backoff.reset();
            } else {
                backoff.wait();
            }
        }
        elapsed_ns = t0.elapsed().as_nanos() as u64;
    });

    let cores: Vec<CoreStats> =
        cores.into_iter().map(|c| c.expect("every worker reports exactly once")).collect();
    let replica_clone_ns = cores.iter().map(|c| c.replica_clone_ns).sum();
    let report = ServeReport {
        packets: dests.len() as u64,
        elapsed_ns,
        replica_clone_ns,
        stats: classes,
        cores,
    };
    if let Some(t) = telemetry {
        t.workers.set(workers as f64);
        for c in &report.cores {
            t.record_core(c.packets, c.batches, c.replica_clones, c.backpressure);
            t.replica_clone_us.observe(c.replica_clone_ns / 1_000);
        }
    }
    report
}

/// One serving core: private replica, epoch-refresh at job boundaries,
/// batch lookups, results shipped back over the drain.
#[allow(clippy::too_many_arguments)]
fn serve_worker<A: Address, E: CompiledBackend<A>>(
    cell: &EpochCell<E>,
    dests: &[A],
    clues: &[Option<Prefix<A>>],
    w: usize,
    rx: &mut SpscReceiver<Job>,
    res_tx: &MpscSender<ServeMsg<A>>,
    priming: &AtomicUsize,
    batch: usize,
    prefetch: usize,
    gate: Option<&QuarantineGate>,
    telemetry: Option<&RuntimeTelemetry>,
) {
    let mut reader = cell.reader();
    let t0 = Instant::now();
    let (mut replica, mut epoch) = {
        let guard = reader.pin();
        (guard.replicate(), guard.epoch())
    };
    let mut stats = CoreStats {
        worker: w,
        replica_clones: 1,
        replica_clone_ns: t0.elapsed().as_nanos() as u64,
        ..CoreStats::default()
    };
    priming.fetch_sub(1, Ordering::Release);

    let mut classes = EngineStats::default();
    let mut decisions: Vec<Decision<A>> = Vec::with_capacity(batch);
    // Quarantine substitution buffer: sized once, reused every gated
    // job, so engaging the gate allocates nothing on the hot path.
    let no_clues: Vec<Option<Prefix<A>>> = vec![None; batch];
    loop {
        match rx.try_recv() {
            Ok(job) => {
                // Churn propagation, no barrier: a publish since this
                // replica was cloned is observed here, at the job
                // boundary, by this core alone.
                let current = reader.current_epoch();
                if current != epoch {
                    let staleness = current.saturating_sub(epoch);
                    stats.max_staleness = stats.max_staleness.max(staleness);
                    if let Some(t) = telemetry {
                        t.staleness_epochs.observe(staleness);
                    }
                    let t = Instant::now();
                    let guard = reader.pin();
                    replica = guard.replicate();
                    epoch = guard.epoch();
                    let ns = t.elapsed().as_nanos() as u64;
                    stats.replica_clones += 1;
                    stats.replica_clone_ns += ns;
                    if let Some(t) = telemetry {
                        t.replica_clone_us.observe(ns / 1_000);
                    }
                } else if let Some(t) = telemetry {
                    t.staleness_epochs.observe(0);
                }
                let (lo, hi) = (job.lo as usize, job.hi as usize);
                // The quarantine switch, observed per job like churn:
                // while the reputation layer holds the gate engaged,
                // this batch serves clue-less — same engine, same
                // decisions (soundness), no clue-table probes.
                let job_clues = match gate {
                    Some(g) if g.is_engaged() => &no_clues[..hi - lo],
                    _ => &clues[lo..hi],
                };
                let t = Instant::now();
                decisions.clear();
                decisions.resize(hi - lo, Decision::default());
                let s = replica.lookup_batch_interleaved(
                    &dests[lo..hi],
                    job_clues,
                    &mut decisions,
                    prefetch,
                );
                stats.busy_ns += t.elapsed().as_nanos() as u64;
                classes.merge(&s);
                stats.packets += (hi - lo) as u64;
                stats.batches += 1;
                let mut msg =
                    ServeMsg::Batch { base: lo, decisions: std::mem::take(&mut decisions) };
                loop {
                    match res_tx.try_send(msg) {
                        Ok(()) => break,
                        Err(back) => {
                            msg = back;
                            stats.backpressure += 1;
                            std::thread::yield_now();
                        }
                    }
                }
                decisions = Vec::with_capacity(batch);
            }
            Err(TryRecvError::Empty) => {
                stats.backpressure += 1;
                std::thread::yield_now();
            }
            Err(TryRecvError::Disconnected) => break,
        }
    }
    let mut msg = ServeMsg::Done { worker: w, stats, classes };
    while let Err(back) = res_tx.try_send(msg) {
        msg = back;
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;
    use crate::parallel::run_workload_per_packet;
    use crate::topology::Topology;
    use clue_core::{ClueEngine, EngineConfig, Method};
    use clue_lookup::Family;
    use clue_trie::Ip4;

    fn build(method: Method) -> (Network<Ip4>, Vec<RouterId>) {
        let (topo, edges) = Topology::backbone(4, 2);
        let mut cfg = NetworkConfig::new(edges.clone(), EngineConfig::new(Family::Regular, method));
        cfg.specifics_per_origin = 12;
        cfg.seed = 42;
        (Network::build(topo, cfg), edges)
    }

    #[test]
    fn runtime_equals_scalar_reference_at_several_worker_counts() {
        let (mut net, edges) = build(Method::Advance);
        let seq = run_workload_per_packet(&mut net, &edges, 150, 7);
        let stride = StrideNetwork::freeze(&net, StrideConfig::default()).unwrap();
        for workers in [1, 2, 4, 8] {
            let rt = stride.run_workload(&edges, 150, 7, workers);
            assert_eq!(rt, seq, "bit-identity at {workers} workers");
        }
    }

    #[test]
    fn every_backend_serves_the_identical_workload() {
        use clue_core::{CompressedConfig, FrozenEngine};
        let (mut net, edges) = build(Method::Advance);
        let seq = run_workload_per_packet(&mut net, &edges, 120, 9);
        let frozen: CompiledNetwork<Ip4, FrozenEngine<Ip4>> =
            CompiledNetwork::compile(&net, &()).unwrap();
        assert_eq!(frozen.run_workload(&edges, 120, 9, 3), seq, "frozen backend");
        let compressed = CompressedNetwork::compile(&net, &CompressedConfig).unwrap();
        assert_eq!(compressed.run_workload(&edges, 120, 9, 3), seq, "compressed backend");
    }

    #[test]
    fn compressed_serving_matches_the_plain_batch_lookup() {
        use clue_core::CompressedConfig;
        let (engine, dests, clues) = engine_fixture();
        let compressed = engine.freeze_compressed(CompressedConfig).unwrap();
        let (want, want_stats) = compressed.lookup_batch_vec(&dests, &clues);
        let cell = EpochCell::new(compressed);
        let cfg = RuntimeConfig { workers: 3, batch: 128, ..RuntimeConfig::default() };
        let mut got = Vec::new();
        let report = serve_lookups(&cell, &dests, &clues, &mut got, &cfg, None);
        assert_eq!(got, want, "compressed serving decisions");
        assert_eq!(report.stats, want_stats, "compressed serving class counts");
    }

    #[test]
    fn runtime_report_attributes_every_packet_to_a_core() {
        let (net, edges) = build(Method::Advance);
        let stride = StrideNetwork::freeze(&net, StrideConfig::default()).unwrap();
        let cfg = RuntimeConfig { workers: 3, batch: 16, ..RuntimeConfig::default() };
        let (stats, report) = stride.run_workload_timed(&edges, 200, 5, &cfg, None);
        assert_eq!(stats.packets, 200);
        assert_eq!(report.cores.len(), 3);
        let attributed: u64 = report.cores.iter().map(|c| c.packets).sum();
        assert_eq!(attributed, 200);
        assert!(report.cores.iter().all(|c| c.replica_clones == 1));
        assert!(report.replica_clone_ns > 0);
        assert!(report.pps() > 0.0);
        assert_eq!(report.per_core_pps().len(), 3);
    }

    #[test]
    fn runtime_flushes_telemetry() {
        let (net, edges) = build(Method::Simple);
        let stride = StrideNetwork::freeze(&net, StrideConfig::default()).unwrap();
        let t = RuntimeTelemetry::detached();
        let cfg = RuntimeConfig { workers: 2, batch: 32, ..RuntimeConfig::default() };
        stride.run_workload_timed(&edges, 100, 3, &cfg, Some(&t));
        assert_eq!(t.workers.get(), 2.0);
        assert_eq!(t.packets_total.get(), 100);
        assert!(t.batches_total.get() >= 4, "100 packets / batch 32 needs >= 4 jobs");
        assert_eq!(t.replica_clones_total.get(), 2, "one priming clone per core");
    }

    #[test]
    fn shift_work_mode_is_preserved() {
        let (topo, edges) = Topology::backbone(4, 1);
        let mut cfg =
            NetworkConfig::new(edges.clone(), EngineConfig::new(Family::Regular, Method::Advance));
        cfg.specifics_per_origin = 8;
        cfg.core = vec![0, 1, 2, 3];
        cfg.shift_work_to_edges = true;
        cfg.seed = 11;
        let mut net: Network<Ip4> = Network::build(topo, cfg);
        let seq = run_workload_per_packet(&mut net, &edges, 60, 2);
        let stride = StrideNetwork::freeze(&net, StrideConfig::default()).unwrap();
        assert_eq!(stride.run_workload(&edges, 60, 2, 4), seq);
    }

    fn engine_fixture() -> (ClueEngine<Ip4>, Vec<Ip4>, Vec<Option<Prefix<Ip4>>>) {
        let parse = |s: &str| s.parse::<Prefix<Ip4>>().unwrap();
        let prefixes: Vec<Prefix<Ip4>> = (0u32..64)
            .map(|i| Prefix::new(Ip4::from((10 << 24) | (i << 16)), 16))
            .chain((0u32..64).map(|i| Prefix::new(Ip4::from((10 << 24) | (i << 16) | (5 << 8)), 24)))
            .collect();
        let engine = ClueEngine::precomputed(
            &prefixes,
            &prefixes,
            EngineConfig::new(Family::Regular, Method::Advance),
        );
        let mut dests = Vec::new();
        let mut clues = Vec::new();
        for i in 0..3000u32 {
            dests.push(Ip4::from((10 << 24) | ((i % 64) << 16) | ((i % 7) * 251)));
            clues.push(if i % 3 == 0 { Some(parse("10.0.0.0/8")) } else { Some(Prefix::new(Ip4::from((10 << 24) | ((i % 64) << 16)), 16)) });
        }
        (engine, dests, clues)
    }

    #[test]
    fn serving_matches_the_plain_batch_lookup() {
        let (engine, dests, clues) = engine_fixture();
        let stride = engine.freeze_stride(StrideConfig::default()).unwrap();
        let (want, want_stats) = stride.lookup_batch_vec(&dests, &clues);
        let cell = EpochCell::new(stride);
        for workers in [1, 2, 4] {
            let cfg = RuntimeConfig { workers, batch: 128, ..RuntimeConfig::default() };
            let mut got = Vec::new();
            let report = serve_lookups(&cell, &dests, &clues, &mut got, &cfg, None);
            assert_eq!(got, want, "decisions at {workers} workers");
            assert_eq!(report.stats, want_stats, "class counts at {workers} workers");
            assert_eq!(report.packets, dests.len() as u64);
            let attributed: u64 = report.cores.iter().map(|c| c.packets).sum();
            assert_eq!(attributed, dests.len() as u64);
            assert_eq!(report.cores.iter().map(|c| c.max_staleness).max(), Some(0));
        }
    }

    #[test]
    fn engaged_gate_serves_exactly_like_an_all_none_clue_run() {
        let (engine, dests, clues) = engine_fixture();
        let stride = engine.freeze_stride(StrideConfig::default()).unwrap();
        let none_clues: Vec<Option<Prefix<Ip4>>> = vec![None; dests.len()];
        let (want_quarantined, want_quarantined_stats) =
            stride.lookup_batch_vec(&dests, &none_clues);
        let (want_clued, _) = stride.lookup_batch_vec(&dests, &clues);
        let cell = EpochCell::new(stride);
        let gate = std::sync::Arc::new(QuarantineGate::default());
        gate.engage();
        let cfg = RuntimeConfig {
            workers: 2,
            batch: 128,
            gate: Some(gate.clone()),
            ..RuntimeConfig::default()
        };
        let mut got = Vec::new();
        let report = serve_lookups(&cell, &dests, &clues, &mut got, &cfg, None);
        assert_eq!(got, want_quarantined, "an engaged gate must serve clue-less");
        assert_eq!(report.stats, want_quarantined_stats);
        let clued = |s: &EngineStats| s.finals + s.continued + s.misses;
        assert_eq!(clued(&report.stats), 0, "no clue may cross an engaged gate");
        // Lifting the gate restores clued serving with the same config.
        gate.lift();
        let report = serve_lookups(&cell, &dests, &clues, &mut got, &cfg, None);
        assert_eq!(got, want_clued, "a lifted gate must serve clues again");
        assert!(clued(&report.stats) > 0);
    }

    #[test]
    fn publishes_propagate_to_every_core_without_a_barrier() {
        let (engine, dests, clues) = engine_fixture();
        let stride = engine.freeze_stride(StrideConfig::default()).unwrap();
        let (want, _) = stride.lookup_batch_vec(&dests, &clues);
        let cell = EpochCell::new(stride.replicate());
        // Publish a bit-identical recompile before serving: every core
        // primes at epoch 1... unless it pinned before the publish, in
        // which case it must observe the publish at a job boundary and
        // re-clone. Either way the decisions cannot change.
        cell.publish(stride.replicate());
        let t = RuntimeTelemetry::detached();
        let cfg = RuntimeConfig { workers: 2, batch: 64, ..RuntimeConfig::default() };
        let mut got = Vec::new();
        let report = serve_lookups(&cell, &dests, &clues, &mut got, &cfg, Some(&t));
        assert_eq!(got, want, "a bit-identical publish never changes decisions");
        // Every core primed from the freshest snapshot (pin loads the
        // current pointer), so no refresh was needed; the staleness
        // histogram saw only zeros.
        assert_eq!(report.cores.len(), 2);
        assert!(t.staleness_epochs.snapshot().count > 0);
    }

    #[test]
    fn mid_run_publish_refreshes_replicas_at_a_job_boundary() {
        let (engine, dests, clues) = engine_fixture();
        let stride = engine.freeze_stride(StrideConfig::default()).unwrap();
        let cell = EpochCell::new(stride.replicate());
        // A writer hammers bit-identical publishes while the runtime
        // serves: workers must keep answering correctly and observe at
        // least the publishes' existence (staleness/refresh counters),
        // with zero locks anywhere on the path.
        let (want, _) = stride.lookup_batch_vec(&dests, &clues);
        std::thread::scope(|scope| {
            let publisher = scope.spawn(|| {
                for _ in 0..50 {
                    cell.publish(stride.replicate());
                    cell.reclaim();
                    std::thread::yield_now();
                }
            });
            let cfg = RuntimeConfig { workers: 4, batch: 16, ..RuntimeConfig::default() };
            let mut got = Vec::new();
            let report = serve_lookups(&cell, &dests, &clues, &mut got, &cfg, None);
            assert_eq!(got, want, "bit-identical publishes never change decisions");
            assert_eq!(report.packets, dests.len() as u64);
            publisher.join().unwrap();
        });
        assert_eq!(cell.current_epoch(), 50);
    }

    #[test]
    fn hop_map_answers_exactly_like_the_fib() {
        let (net, _) = build(Method::Advance);
        for r in net.routers() {
            let map = PrefixHopMap::build(r.fib.iter().map(|(_, p, &h)| (p, h)));
            for (rid, p, &hop) in r.fib.iter() {
                let _ = rid;
                assert_eq!(map.get(&p), Some(hop), "prefix {p}");
            }
            assert_eq!(map.get(&"203.0.113.0/24".parse().unwrap()), None);
        }
    }
}
