//! The simulated network: address plan, per-router forwarding tables and
//! per-link clue engines.
//!
//! The build models how real tables acquire the structure the paper
//! depends on:
//!
//! * every **origin** router owns a disjoint address block and advertises
//!   `specifics_per_origin` long prefixes inside it;
//! * routers install each origin's space at a *detail level that decays
//!   with distance* — nearby routers hold the full specifics, the
//!   backbone holds only aggregates. This is Section 3's BGP-aggregation
//!   story, and it is exactly what produces the paper's Figure 1 shape:
//!   the best matching prefix of a packet grows as it approaches its
//!   destination, and clue work concentrates at the detail boundaries;
//! * the clue set a router keeps for an incoming link is precisely “the
//!   prefixes the upstream router routes through me” (Section 2's trust
//!   argument).

use std::collections::HashMap;

use clue_core::{ClueEngine, ClueHeader, EngineConfig};
use clue_trie::{Address, BinaryTrie, Cost, Prefix};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

use crate::topology::{RouteTree, RouterId, Topology};

/// A forwarding decision target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hop {
    /// The prefix terminates here (this router originates it).
    Local,
    /// Forward to this neighbor.
    Via(RouterId),
}

/// How much detail a router installs for an origin, by hop distance:
/// `(max_distance_inclusive, installed_prefix_length)`, checked in order.
pub type DetailBands = Vec<(usize, u8)>;

/// Address-plan and engine configuration for [`Network::build`].
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Routers that originate address space (typically the topology's
    /// edge routers).
    pub origins: Vec<RouterId>,
    /// Long prefixes advertised per origin.
    pub specifics_per_origin: usize,
    /// Length of the advertised specifics.
    pub specific_len: u8,
    /// Disjointness length of origin blocks (every band length must be
    /// ≥ this; supports `2^block_len` origins).
    pub block_len: u8,
    /// Distance-decaying detail bands.
    pub bands: DetailBands,
    /// Clue-engine configuration used by every participating router.
    pub engine: EngineConfig,
    /// Fraction of routers that participate in the clue scheme
    /// (Section 5.3's heterogeneous deployment); selected by seed.
    pub participation: f64,
    /// Routers designated as backbone/core (used by the Section 5.4
    /// load-shifting mode).
    pub core: Vec<RouterId>,
    /// Section 5.4: senders perform the next router's lookup themselves
    /// when forwarding *into the core*, so core lookups are final.
    pub shift_work_to_edges: bool,
    /// Section 5.4's aggressive variant (“reducing the aggregation”):
    /// edge (origin) routers install full-detail specifics for *every*
    /// origin, so the clue they stamp is final at every core router —
    /// the backbone coasts at one access while the periphery pays for
    /// the deep lookups.
    pub edge_detail: bool,
    /// Put an LRU cache of this many entries in front of every clue
    /// table (Section 3.5); `None` = no caching.
    pub cache_capacity: Option<usize>,
    /// RNG seed (address plan + participation draw).
    pub seed: u64,
}

impl NetworkConfig {
    /// Defaults mirroring the paper's environment: /24 specifics,
    /// aggregation to /20 then /14 with distance, full participation.
    pub fn new(origins: Vec<RouterId>, engine: EngineConfig) -> Self {
        NetworkConfig {
            origins,
            specifics_per_origin: 40,
            specific_len: 24,
            block_len: 14,
            bands: vec![(1, 24), (3, 20), (usize::MAX, 14)],
            engine,
            participation: 1.0,
            core: Vec::new(),
            shift_work_to_edges: false,
            edge_detail: false,
            cache_capacity: None,
            seed: 0,
        }
    }
}

/// One simulated router.
#[derive(Debug)]
pub struct RouterNode<A: Address> {
    /// The forwarding table (value = forwarding decision).
    pub fib: BinaryTrie<A, Hop>,
    /// Clue engines, one per incoming neighbor (participants only).
    pub engines: HashMap<RouterId, ClueEngine<A>>,
    /// The clue-less engine used for packets with no usable clue.
    pub base: ClueEngine<A>,
    /// Whether this router participates in the clue scheme.
    pub participates: bool,
}

/// One hop of a packet's journey.
#[derive(Debug, Clone)]
pub struct HopRecord<A: Address> {
    /// The router doing the lookup.
    pub router: RouterId,
    /// Where the packet came from (`None` at the source).
    pub from: Option<RouterId>,
    /// The BMP found here.
    pub bmp: Option<Prefix<A>>,
    /// Memory accesses this router spent on its own lookup.
    pub cost: Cost,
    /// Extra accesses spent resolving the packet in the *next* router's
    /// table under the Section 5.4 load-shifting mode.
    pub shift_cost: Cost,
    /// Whether this router used a clue for the lookup.
    pub used_clue: bool,
}

/// A packet's full journey.
#[derive(Debug, Clone)]
pub struct PathTrace<A: Address> {
    /// The destination address.
    pub dest: A,
    /// Per-hop records, source first.
    pub hops: Vec<HopRecord<A>>,
    /// `true` iff the packet reached a router that originates its BMP.
    pub delivered: bool,
}

impl<A: Address> PathTrace<A> {
    /// Total memory accesses along the path (own + shifted work).
    pub fn total_cost(&self) -> u64 {
        self.hops.iter().map(|h| h.cost.total() + h.shift_cost.total()).sum()
    }

    /// The per-hop BMP lengths — the paper's Figure 1 top curve.
    pub fn bmp_lengths(&self) -> Vec<u8> {
        self.hops.iter().map(|h| h.bmp.map_or(0, |p| p.len())).collect()
    }

    /// The per-hop work (own + shifted) — the paper's Figure 1 bottom
    /// curve.
    pub fn work(&self) -> Vec<u64> {
        self.hops.iter().map(|h| h.cost.total() + h.shift_cost.total()).collect()
    }

    /// The per-hop *own* lookup work, excluding Section 5.4 shifted work.
    pub fn own_work(&self) -> Vec<u64> {
        self.hops.iter().map(|h| h.cost.total()).collect()
    }
}

/// The simulated network.
#[derive(Debug)]
pub struct Network<A: Address> {
    topology: Topology,
    config: NetworkConfig,
    routers: Vec<RouterNode<A>>,
    /// Specific prefixes per origin (parallel to `config.origins`).
    specifics: Vec<Vec<Prefix<A>>>,
    route_trees: Vec<RouteTree>,
}

impl<A: Address> Network<A> {
    /// Builds the network: address plan, FIBs, and clue engines.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent (band lengths shorter
    /// than the block length, too many origins for the block length,
    /// out-of-range origin ids).
    pub fn build(topology: Topology, config: NetworkConfig) -> Self {
        assert!(
            config.bands.iter().all(|&(_, l)| l >= config.block_len && l <= A::BITS),
            "band lengths must lie in [block_len, address width]"
        );
        assert!(config.specific_len <= A::BITS);
        assert!(
            (config.origins.len() as u128) <= (1u128 << config.block_len.min(64)),
            "too many origins for the block length"
        );
        assert!(config.origins.iter().all(|&o| o < topology.len()));
        assert!(!config.bands.is_empty(), "need at least one detail band");

        let mut rng = StdRng::seed_from_u64(config.seed);

        // Address plan: disjoint blocks, random specifics inside.
        let specifics: Vec<Vec<Prefix<A>>> = (0..config.origins.len())
            .map(|oi| {
                let block: u128 = (oi as u128) << (A::BITS - config.block_len) as u32;
                let span = (config.specific_len - config.block_len) as u32;
                let mut set = std::collections::BTreeSet::new();
                let mut guard = 0;
                while set.len() < config.specifics_per_origin && guard < 10_000 {
                    guard += 1;
                    let noise: u128 = rng.random::<u64>() as u128;
                    let inner = if span == 0 { 0 } else { noise & ((1u128 << span) - 1) };
                    let bits = block | (inner << (A::BITS - config.specific_len) as u32);
                    set.insert(Prefix::new(A::from_u128(bits), config.specific_len));
                }
                set.into_iter().collect()
            })
            .collect();

        // Shortest-path trees toward every origin.
        let route_trees: Vec<RouteTree> =
            config.origins.iter().map(|&o| topology.routes_toward(o)).collect();

        let band_len = |dist: usize| -> u8 {
            config
                .bands
                .iter()
                .find(|&&(max, _)| dist <= max)
                .map(|&(_, l)| l)
                .unwrap_or_else(|| config.bands.last().expect("non-empty bands").1)
        };

        // FIBs: per router, per origin, the origin's specifics truncated
        // to this router's band (duplicates collapse into one aggregate).
        let mut fibs: Vec<BinaryTrie<A, Hop>> =
            (0..topology.len()).map(|_| BinaryTrie::new()).collect();
        for (oi, tree) in route_trees.iter().enumerate() {
            for (r, fib) in fibs.iter_mut().enumerate() {
                let Some(dist) = tree.distance(r) else { continue };
                let hop = match tree.next_hop[r] {
                    None => Hop::Local,
                    Some(nh) => Hop::Via(nh),
                };
                let len = if config.edge_detail && config.origins.contains(&r) {
                    config.specific_len
                } else {
                    band_len(dist)
                };
                for s in &specifics[oi] {
                    fib.insert(s.truncate(len), hop);
                }
            }
        }

        // Participation draw.
        let participates: Vec<bool> =
            (0..topology.len()).map(|_| rng.random_bool(config.participation)).collect();

        Self::assemble(topology, config, fibs, participates, specifics, route_trees)
    }

    /// Builds a network from externally computed FIBs — e.g. the
    /// converged RIBs of [`crate::PathVector`] — instead of the built-in
    /// distance-band address plan. Per-link clue engines are constructed
    /// the same way: the clue set for the link `nb → r` is exactly the
    /// prefixes `nb` routes through `r`.
    ///
    /// `config.origins` and the matching `specifics` drive
    /// [`Self::random_destination`]; the band/plan fields of `config`
    /// are ignored.
    pub fn from_fibs(
        topology: Topology,
        config: NetworkConfig,
        fibs: Vec<BinaryTrie<A, Hop>>,
        specifics: Vec<Vec<Prefix<A>>>,
    ) -> Self {
        assert_eq!(fibs.len(), topology.len(), "one FIB per router");
        assert_eq!(
            specifics.len(),
            config.origins.len(),
            "one specifics list per origin"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let participates: Vec<bool> =
            (0..topology.len()).map(|_| rng.random_bool(config.participation)).collect();
        let route_trees: Vec<RouteTree> =
            config.origins.iter().map(|&o| topology.routes_toward(o)).collect();
        Self::assemble(topology, config, fibs, participates, specifics, route_trees)
    }

    /// Builds a network from a **converged** path-vector instance: FIBs
    /// come from the protocol's RIBs, origins/specifics from its
    /// originated prefixes.
    pub fn from_path_vector(pv: &crate::PathVector<A>, mut config: NetworkConfig) -> Self {
        let topology = pv.topology().clone();
        let fibs: Vec<BinaryTrie<A, Hop>> = pv
            .ribs()
            .iter()
            .map(|rib| {
                rib.best
                    .iter()
                    .map(|(p, (_, nh))| (*p, nh.map_or(Hop::Local, Hop::Via)))
                    .collect()
            })
            .collect();
        let (origins, specifics): (Vec<RouterId>, Vec<Vec<Prefix<A>>>) = (0..topology.len())
            .filter(|&r| !pv.originated(r).is_empty())
            .map(|r| (r, pv.originated(r).to_vec()))
            .unzip();
        config.origins = origins;
        Self::from_fibs(topology, config, fibs, specifics)
    }

    fn assemble(
        topology: Topology,
        config: NetworkConfig,
        fibs: Vec<BinaryTrie<A, Hop>>,
        participates: Vec<bool>,
        specifics: Vec<Vec<Prefix<A>>>,
        route_trees: Vec<RouteTree>,
    ) -> Self {
        // Engines: per participating router, one per incoming neighbor,
        // with the clue set = the neighbor's prefixes routed through us.
        // Built before the FIBs are moved into their routers, because a
        // router's engines read its *neighbors'* FIBs.
        type Built<A> = Vec<(ClueEngine<A>, HashMap<RouterId, ClueEngine<A>>)>;
        let built: Built<A> = (0..topology.len())
            .map(|r| {
                let own: Vec<Prefix<A>> = fibs[r].prefixes().collect();
                let base = ClueEngine::precomputed(&[], &own, config.engine);
                let mut engines = HashMap::new();
                if participates[r] {
                    for &nb in topology.neighbors(r) {
                        let mut clues: Vec<Prefix<A>> = fibs[nb]
                            .iter()
                            .filter(|(_, _, hop)| **hop == Hop::Via(r))
                            .map(|(_, p, _)| p)
                            .collect();
                        if config.shift_work_to_edges {
                            // Section 5.4 senders stamp *this* router's
                            // own BMP as the clue, so the table must
                            // cover the router's own prefixes too.
                            clues.extend(own.iter().copied());
                            clues.sort_unstable();
                            clues.dedup();
                        }
                        if !clues.is_empty() {
                            let mut engine =
                                ClueEngine::precomputed(&clues, &own, config.engine);
                            if let Some(cap) = config.cache_capacity {
                                engine.enable_cache(cap);
                            }
                            engines.insert(nb, engine);
                        }
                    }
                }
                (base, engines)
            })
            .collect();

        let routers: Vec<RouterNode<A>> = built
            .into_iter()
            .zip(fibs)
            .zip(&participates)
            .map(|(((base, engines), fib), &participates)| RouterNode {
                fib,
                engines,
                base,
                participates,
            })
            .collect();

        Network { topology, config, routers, specifics, route_trees }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The build configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The routers.
    pub fn routers(&self) -> &[RouterNode<A>] {
        &self.routers
    }

    /// Mutable router access (e.g. to toggle participation in
    /// heterogeneous-deployment experiments).
    pub fn routers_mut(&mut self) -> &mut [RouterNode<A>] {
        &mut self.routers
    }

    /// The specifics advertised by origin `i` (index into
    /// `config.origins`).
    pub fn origin_specifics(&self, i: usize) -> &[Prefix<A>] {
        &self.specifics[i]
    }

    /// A random destination address covered by origin `i`'s space.
    pub fn random_destination(&self, i: usize, rng: &mut StdRng) -> A {
        let s = self.specifics[i].choose(rng).expect("origin has specifics");
        let span = (A::BITS - s.len()) as u32;
        let host =
            if span == 0 { 0 } else { (rng.random::<u64>() as u128) & ((1u128 << span) - 1) };
        A::from_u128(s.bits().to_u128() | host)
    }

    /// Hop distance between two routers, if connected.
    pub fn distance(&self, from: RouterId, origin_index: usize) -> Option<usize> {
        self.route_trees[origin_index].distance(from)
    }

    /// Forwards one packet from `src` to `dest`, recording per-hop BMPs
    /// and costs. This is the end-to-end distributed-lookup procedure:
    /// each participating router consults its clue engine for the
    /// incoming link and stamps its own BMP as the outgoing clue;
    /// non-participants do a full lookup and *relay* the incoming clue
    /// unchanged (Section 5.3).
    pub fn route_packet(&mut self, src: RouterId, dest: A) -> PathTrace<A> {
        let mut hops = Vec::new();
        let mut header = ClueHeader::none();
        let mut prev: Option<RouterId> = None;
        let mut cur = src;
        let mut delivered = false;
        let max_hops = self.topology.len() * 2 + 4;

        for _ in 0..max_hops {
            let shift = self.config.shift_work_to_edges;
            let mut cost = Cost::new();
            let node = &mut self.routers[cur];
            let used_clue = node.participates
                && prev.is_some_and(|p| node.engines.contains_key(&p))
                && header.clue.is_some();
            let bmp = if used_clue {
                let engine = node
                    .engines
                    .get_mut(&prev.expect("used_clue implies prev"))
                    .expect("used_clue implies engine");
                engine.lookup_with_header(dest, &header, &mut cost)
            } else {
                node.base.common_lookup(dest, &mut cost)
            };

            let next = bmp.and_then(|p| node.fib.get(&p)).map(|r| *node.fib.value(r));
            let participates = node.participates;

            // Outgoing clue: participants stamp their BMP. Under the
            // Section 5.4 load-shifting mode a sender forwarding into
            // the core resolves the packet in the *core router's* table
            // itself — continuing from its own BMP, so the extra work is
            // just the detail gap — and stamps that BMP, guaranteeing
            // the core lookup is final. The shifted work is accounted
            // separately.
            let mut shift_cost = Cost::new();
            if participates {
                if let Some(p) = bmp {
                    header = ClueHeader::with_clue(&p);
                }
                if shift {
                    if let Some(Hop::Via(nh)) = next {
                        if self.config.core.contains(&nh) {
                            let nb_bmp = {
                                let nb_fib = &self.routers[nh].fib;
                                match bmp.and_then(|p| nb_fib.node_of_prefix(&p)) {
                                    Some(start) => nb_fib
                                        .lookup_from(start, dest, &mut shift_cost)
                                        .map(|r| nb_fib.prefix(r)),
                                    None => nb_fib
                                        .lookup_counted(dest, &mut shift_cost)
                                        .map(|r| nb_fib.prefix(r)),
                                }
                            };
                            if let Some(p) = nb_bmp {
                                header = ClueHeader::with_clue(&p);
                            }
                        }
                    }
                }
            }

            hops.push(HopRecord { router: cur, from: prev, bmp, cost, shift_cost, used_clue });

            match next {
                Some(Hop::Local) => {
                    delivered = true;
                    break;
                }
                Some(Hop::Via(nh)) => {
                    prev = Some(cur);
                    cur = nh;
                }
                None => break, // no route: dropped
            }
        }
        PathTrace { dest, hops, delivered }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_core::Method;
    use clue_lookup::Family;

    fn line_network(method: Method) -> Network<clue_trie::Ip4> {
        let topo = Topology::line(6);
        let mut cfg = NetworkConfig::new(vec![0, 5], EngineConfig::new(Family::Regular, method));
        cfg.specifics_per_origin = 10;
        cfg.seed = 7;
        Network::build(topo, cfg)
    }

    #[test]
    fn packets_are_delivered_end_to_end() {
        let mut net = line_network(Method::Advance);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let dest = net.random_destination(1, &mut rng); // origin router 5
            let trace = net.route_packet(0, dest);
            assert!(trace.delivered, "undelivered: {trace:?}");
            assert_eq!(trace.hops.last().unwrap().router, 5);
            assert_eq!(trace.hops.len(), 6);
        }
    }

    #[test]
    fn bmp_lengths_grow_toward_the_destination() {
        let mut net = line_network(Method::Advance);
        let mut rng = StdRng::seed_from_u64(2);
        let dest = net.random_destination(1, &mut rng);
        let trace = net.route_packet(0, dest);
        let lens = trace.bmp_lengths();
        assert!(lens.windows(2).all(|w| w[0] <= w[1]), "non-monotone {lens:?}");
        assert!(lens[0] < *lens.last().unwrap(), "no growth at all: {lens:?}");
        assert_eq!(*lens.last().unwrap(), 24);
    }

    #[test]
    fn clue_routing_beats_clueless_after_first_hop() {
        let mut net = line_network(Method::Advance);
        let mut rng = StdRng::seed_from_u64(3);
        let dest = net.random_destination(1, &mut rng);
        let trace = net.route_packet(0, dest);
        // First hop has no clue: full lookup.
        assert!(!trace.hops[0].used_clue);
        assert!(trace.hops[0].cost.total() > 5);
        // Later hops use clues, most of them final in 1 access.
        let clue_hops = &trace.hops[1..];
        assert!(clue_hops.iter().all(|h| h.used_clue));
        let ones = clue_hops.iter().filter(|h| h.cost.total() == 1).count();
        assert!(ones * 2 >= clue_hops.len(), "too few final hops: {:?}", trace.work());
    }

    #[test]
    fn every_hop_bmp_matches_a_reference_lookup() {
        let mut net = line_network(Method::Advance);
        let mut rng = StdRng::seed_from_u64(4);
        for src in [0usize, 2] {
            for oi in [0usize, 1] {
                let dest = net.random_destination(oi, &mut rng);
                let trace = net.route_packet(src, dest);
                for h in &trace.hops {
                    let fib = &net.routers()[h.router].fib;
                    let want = fib.lookup(dest).map(|r| fib.prefix(r));
                    assert_eq!(h.bmp, want, "router {} clue divergence", h.router);
                }
            }
        }
    }

    #[test]
    fn nonparticipants_relay_clues() {
        let topo = Topology::line(6);
        let mut cfg =
            NetworkConfig::new(vec![0, 5], EngineConfig::new(Family::Regular, Method::Advance));
        cfg.specifics_per_origin = 10;
        cfg.seed = 9;
        cfg.participation = 1.0;
        let mut net: Network<clue_trie::Ip4> = Network::build(topo, cfg);
        // Knock out router 2 manually for determinism.
        net.routers[2].participates = false;
        let mut rng = StdRng::seed_from_u64(5);
        let dest = net.random_destination(1, &mut rng);
        let trace = net.route_packet(0, dest);
        assert!(trace.delivered);
        let h2 = &trace.hops[2];
        assert_eq!(h2.router, 2);
        assert!(!h2.used_clue);
        // Router 3 still gets a clue — relayed from router 1 — and its
        // result stays correct.
        let h3 = &trace.hops[3];
        let fib = &net.routers()[3].fib;
        assert_eq!(h3.bmp, fib.lookup(dest).map(|r| fib.prefix(r)));
    }

    #[test]
    fn load_shift_makes_core_lookups_final() {
        let (topo, edges) = Topology::backbone(4, 1);
        let engine = EngineConfig::new(Family::Regular, Method::Advance);
        let mut cfg = NetworkConfig::new(edges.clone(), engine);
        cfg.specifics_per_origin = 8;
        cfg.core = vec![0, 1, 2, 3];
        cfg.shift_work_to_edges = true;
        cfg.seed = 11;
        let mut net: Network<clue_trie::Ip4> = Network::build(topo, cfg);
        let mut rng = StdRng::seed_from_u64(6);
        let dest = net.random_destination(3, &mut rng); // last edge's space
        let trace = net.route_packet(edges[0], dest);
        assert!(trace.delivered);
        let mut core_clue_hops = 0;
        for h in &trace.hops {
            if net.config().core.contains(&h.router) && h.used_clue {
                core_clue_hops += 1;
                assert_eq!(
                    h.cost.total(),
                    1,
                    "core router {} own lookup not final: {trace:?}",
                    h.router
                );
            }
        }
        assert!(core_clue_hops > 0, "no core hops exercised: {trace:?}");
        // The shifted work exists and sits on the senders.
        assert!(trace.hops.iter().any(|h| h.shift_cost.total() > 0));
    }

    #[test]
    fn edge_detail_gives_edges_full_specifics() {
        let (topo, edges) = Topology::backbone(4, 1);
        let engine = EngineConfig::new(Family::Regular, Method::Advance);
        let mut cfg = NetworkConfig::new(edges.clone(), engine);
        cfg.specifics_per_origin = 6;
        cfg.edge_detail = true;
        cfg.seed = 13;
        let mut net: Network<clue_trie::Ip4> = Network::build(topo, cfg);
        // The source edge router's first lookup already resolves the
        // destination's full /24 — no aggregation at the edge.
        let mut rng = StdRng::seed_from_u64(14);
        let dest = net.random_destination(3, &mut rng);
        let trace = net.route_packet(edges[0], dest);
        assert!(trace.delivered);
        assert_eq!(trace.hops[0].bmp.map(|p| p.len()), Some(24), "{trace:?}");
    }

    #[test]
    fn per_link_caches_record_hits() {
        let topo = Topology::line(4);
        let engine = EngineConfig::new(Family::Patricia, Method::Advance);
        let mut cfg = NetworkConfig::new(vec![0, 3], engine);
        cfg.specifics_per_origin = 6;
        cfg.cache_capacity = Some(16);
        cfg.seed = 15;
        let mut net: Network<clue_trie::Ip4> = Network::build(topo, cfg);
        let mut rng = StdRng::seed_from_u64(16);
        let dest = net.random_destination(1, &mut rng);
        let first = net.route_packet(0, dest);
        let second = net.route_packet(0, dest);
        assert!(first.delivered && second.delivered);
        // The repeat packet's clue hops come from the caches: strictly
        // fewer slow accesses.
        let slow = |t: &PathTrace<clue_trie::Ip4>| {
            t.hops.iter().map(|h| h.cost.slow_total()).sum::<u64>()
        };
        assert!(slow(&second) < slow(&first), "{} !< {}", slow(&second), slow(&first));
        let stats = net.routers()[1]
            .engines
            .get(&0)
            .and_then(|e| e.cache_stats())
            .expect("cache enabled");
        assert!(stats.hits >= 1);
    }

    #[test]
    fn unreachable_destination_is_dropped() {
        let mut net = line_network(Method::Advance);
        let dest = clue_trie::Ip4(u32::MAX); // outside every origin block
        let trace = net.route_packet(0, dest);
        assert!(!trace.delivered);
        assert_eq!(trace.hops.len(), 1);
        assert_eq!(trace.hops[0].bmp, None);
    }
}
