//! Sharded, multi-threaded workload driver over a frozen network.
//!
//! [`run_workload`](crate::run_workload) routes packets one at a time
//! through mutable [`ClueEngine`](clue_core::ClueEngine)s. This module
//! freezes every engine into its read-only
//! [`FrozenEngine`](clue_core::FrozenEngine) compilation
//! ([`FrozenNetwork`]) and fans the packet stream out across OS threads
//! with [`std::thread::scope`] — no locks, no new dependencies.
//!
//! ## The determinism-under-sharding contract
//!
//! [`run_workload_parallel`] is **bit-identical for a given seed
//! regardless of thread count**. Three ingredients make that hold:
//!
//! 1. *Per-packet RNG streams.* Packet `i` draws from its own
//!    `StdRng` seeded with `splitmix64(seed, i)` instead of sharing one
//!    sequential stream, so a packet's draws do not depend on which
//!    thread runs it or what ran before it. (This is also why the
//!    parallel driver is not draw-for-draw identical to the sequential
//!    [`run_workload`](crate::run_workload); [`run_workload_per_packet`]
//!    is the scalar reference with the same derivation.)
//! 2. *Contiguous shards, merged in order.* Thread `t` owns packets
//!    `[t·chunk, (t+1)·chunk)` and accumulates into its own
//!    [`CostStats`] set; shards are merged left to right, so every
//!    merge tree reduces to the same integer sums and maxima.
//! 3. *Integer accumulation.* Per-position BMP-length sums are kept as
//!    `u64` and divided once at the end — no float-association drift.
//!
//! Frozen engines are stateless, so per-packet work is genuinely
//! independent: the same property that makes the run parallelizable
//! makes it deterministic.

use clue_core::{
    BackendError, ClueHeader, CompiledBackend, FreezeError, FrozenEngine, StageProfiler,
};
use clue_trie::{Address, Cost, CostStats};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

use crate::network::{Hop, HopRecord, Network, PathTrace};
use crate::sim::RunStats;
use crate::topology::RouterId;

/// “No per-neighbor engine” sentinel in
/// [`CompiledRouter::by_neighbor`].
const NO_ENGINE: u32 = u32::MAX;

/// One router's compiled lookup state (the FIB stays borrowed from the
/// live [`Network`]).
///
/// Per-neighbor engines live in a dense vector behind a
/// direct-indexed `by_neighbor` table: the live network keys them by
/// neighbor id in a `HashMap`, but a SipHash probe per hop is real
/// money on the forwarding path, and router ids are small dense
/// integers anyway.
#[derive(Debug)]
struct CompiledRouter<E> {
    base: E,
    /// Neighbor id → index into `engines`, [`NO_ENGINE`] if none.
    by_neighbor: Vec<u32>,
    engines: Vec<E>,
    participates: bool,
}

/// A read-only view of a [`Network`] with every clue engine compiled
/// to one [`CompiledBackend`]: routable from `&self`, shareable across
/// threads. Every backend routes bit-identically (the Cost-parity
/// contract); the generic exists so the sharded driver can be pointed
/// at any compiled layout.
#[derive(Debug)]
pub struct PacketNetwork<'n, A: Address, E: CompiledBackend<A>> {
    net: &'n Network<A>,
    routers: Vec<CompiledRouter<E>>,
}

/// The sharded driver on the frozen backend — the historical name, and
/// the only backend with a stage-profiled routing path.
pub type FrozenNetwork<'n, A> = PacketNetwork<'n, A, FrozenEngine<A>>;

impl<'n, A: Address> FrozenNetwork<'n, A> {
    /// Freezes every engine in `net`. Fails if any engine is not
    /// freezable (non-Regular family, indexed table, or an LRU cache —
    /// caches make per-packet cost history-dependent, which the
    /// deterministic sharded driver cannot reproduce).
    pub fn freeze(net: &'n Network<A>) -> Result<Self, FreezeError> {
        Self::compile(net, &()).map_err(|e| match e {
            BackendError::Freeze(e) => e,
            BackendError::Stride(_) => unreachable!("frozen compilation has no stride stage"),
        })
    }
}

impl<'n, A: Address, E: CompiledBackend<A>> PacketNetwork<'n, A, E> {
    /// Compiles every engine in `net` to backend `E`. Fails like a
    /// freeze fails, or if the backend rejects its configuration.
    pub fn compile(net: &'n Network<A>, config: &E::Config) -> Result<Self, BackendError> {
        let n = net.topology().len();
        let routers = net
            .routers()
            .iter()
            .map(|r| {
                let mut by_neighbor = vec![NO_ENGINE; n];
                let mut engines = Vec::with_capacity(r.engines.len());
                for (&nb, e) in &r.engines {
                    by_neighbor[nb] = engines.len() as u32;
                    engines.push(E::compile(e, config)?);
                }
                Ok(CompiledRouter {
                    base: E::compile(&r.base, config)?,
                    by_neighbor,
                    engines,
                    participates: r.participates,
                })
            })
            .collect::<Result<Vec<_>, BackendError>>()?;
        Ok(PacketNetwork { net, routers })
    }

    /// The live network this view was frozen from.
    pub fn network(&self) -> &'n Network<A> {
        self.net
    }

    /// Forwards one packet exactly like
    /// [`Network::route_packet`] — same hops, same per-hop [`Cost`],
    /// same Section 5.4 shifted work — but from `&self`, through the
    /// frozen engines.
    pub fn route_packet(&self, src: RouterId, dest: A) -> PathTrace<A> {
        let config = self.net.config();
        let routers = self.net.routers();
        let mut hops = Vec::new();
        let mut header = ClueHeader::none();
        let mut prev: Option<RouterId> = None;
        let mut cur = src;
        let mut delivered = false;
        let max_hops = self.net.topology().len() * 2 + 4;

        for _ in 0..max_hops {
            let mut cost = Cost::new();
            let node = &self.routers[cur];
            let fib = &routers[cur].fib;
            let engine_slot =
                prev.map_or(NO_ENGINE, |p| node.by_neighbor.get(p).copied().unwrap_or(NO_ENGINE));
            let used_clue =
                node.participates && engine_slot != NO_ENGINE && header.clue.is_some();
            let bmp = if used_clue {
                let engine = &node.engines[engine_slot as usize];
                engine.lookup(dest, header.decode(dest), &mut cost).0
            } else {
                node.base.lookup(dest, None, &mut cost).0
            };

            let next = bmp.and_then(|p| fib.get(&p)).map(|r| *fib.value(r));

            let mut shift_cost = Cost::new();
            if node.participates {
                if let Some(p) = bmp {
                    header = ClueHeader::with_clue(&p);
                }
                if config.shift_work_to_edges {
                    if let Some(Hop::Via(nh)) = next {
                        if config.core.contains(&nh) {
                            let nb_fib = &routers[nh].fib;
                            let nb_bmp = match bmp.and_then(|p| nb_fib.node_of_prefix(&p)) {
                                Some(start) => nb_fib
                                    .lookup_from(start, dest, &mut shift_cost)
                                    .map(|r| nb_fib.prefix(r)),
                                None => nb_fib
                                    .lookup_counted(dest, &mut shift_cost)
                                    .map(|r| nb_fib.prefix(r)),
                            };
                            if let Some(p) = nb_bmp {
                                header = ClueHeader::with_clue(&p);
                            }
                        }
                    }
                }
            }

            hops.push(HopRecord { router: cur, from: prev, bmp, cost, shift_cost, used_clue });

            match next {
                Some(Hop::Local) => {
                    delivered = true;
                    break;
                }
                Some(Hop::Via(nh)) => {
                    prev = Some(cur);
                    cur = nh;
                }
                None => break,
            }
        }
        PathTrace { dest, hops, delivered }
    }
}

impl<'n, A: Address> FrozenNetwork<'n, A> {
    /// As [`Self::route_packet`], additionally attributing every hop's
    /// engine lookup to pipeline stages in `prof` (see
    /// [`StageProfiler`]). Semantically inert: same hops, same
    /// per-hop [`Cost`], same delivery — the profiled engine paths
    /// observe the walk deltas, they never alter them. The Section
    /// 5.4 shifted-work leg is raw FIB trie work rather than an
    /// engine lookup and stays unprofiled. Frozen-backend only: the
    /// stage-profiled lookup exists on [`FrozenEngine`] alone.
    pub fn route_packet_profiled(
        &self,
        src: RouterId,
        dest: A,
        prof: &mut StageProfiler,
    ) -> PathTrace<A> {
        let config = self.net.config();
        let routers = self.net.routers();
        let mut hops = Vec::new();
        let mut header = ClueHeader::none();
        let mut prev: Option<RouterId> = None;
        let mut cur = src;
        let mut delivered = false;
        let max_hops = self.net.topology().len() * 2 + 4;

        for _ in 0..max_hops {
            let mut cost = Cost::new();
            let node = &self.routers[cur];
            let fib = &routers[cur].fib;
            let engine_slot =
                prev.map_or(NO_ENGINE, |p| node.by_neighbor.get(p).copied().unwrap_or(NO_ENGINE));
            let used_clue =
                node.participates && engine_slot != NO_ENGINE && header.clue.is_some();
            let bmp = if used_clue {
                let engine = &node.engines[engine_slot as usize];
                engine.lookup_profiled(dest, header.decode(dest), &mut cost, prof).0
            } else {
                node.base.lookup_profiled(dest, None, &mut cost, prof).0
            };

            let next = bmp.and_then(|p| fib.get(&p)).map(|r| *fib.value(r));

            let mut shift_cost = Cost::new();
            if node.participates {
                if let Some(p) = bmp {
                    header = ClueHeader::with_clue(&p);
                }
                if config.shift_work_to_edges {
                    if let Some(Hop::Via(nh)) = next {
                        if config.core.contains(&nh) {
                            let nb_fib = &routers[nh].fib;
                            let nb_bmp = match bmp.and_then(|p| nb_fib.node_of_prefix(&p)) {
                                Some(start) => nb_fib
                                    .lookup_from(start, dest, &mut shift_cost)
                                    .map(|r| nb_fib.prefix(r)),
                                None => nb_fib
                                    .lookup_counted(dest, &mut shift_cost)
                                    .map(|r| nb_fib.prefix(r)),
                            };
                            if let Some(p) = nb_bmp {
                                header = ClueHeader::with_clue(&p);
                            }
                        }
                    }
                }
            }

            hops.push(HopRecord { router: cur, from: prev, bmp, cost, shift_cost, used_clue });

            match next {
                Some(Hop::Local) => {
                    delivered = true;
                    break;
                }
                Some(Hop::Via(nh)) => {
                    prev = Some(cur);
                    cur = nh;
                }
                None => break,
            }
        }
        PathTrace { dest, hops, delivered }
    }
}

impl<'n, A: Address, E: CompiledBackend<A>> PacketNetwork<'n, A, E> {
    /// Routes `packets` random packets through this already-compiled
    /// view, sharded over `threads` scoped OS threads — the hot half
    /// of [`run_workload_parallel`], with the one-off freeze hoisted
    /// out. Callers that already hold a compiled view (or want to
    /// time the steady state without the setup) use this directly.
    ///
    /// Results are bit-identical for a given `seed` regardless of
    /// `threads` (see the module docs).
    ///
    /// # Panics
    /// Panics if `sources` is empty, the network has no origins, or
    /// `threads` is zero.
    pub fn run_workload(
        &self,
        sources: &[RouterId],
        packets: usize,
        seed: u64,
        threads: usize,
    ) -> RunStats {
        assert!(threads > 0, "need at least one thread");
        assert!(!sources.is_empty(), "need at least one source");
        let origins = self.net.config().origins.clone();
        assert!(!origins.is_empty(), "need at least one origin");

        let n = self.net.topology().len();
        let chunk = packets.div_ceil(threads);
        let mut acc = Accum::new(n);

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = (t * chunk).min(packets);
                    let hi = ((t + 1) * chunk).min(packets);
                    let (frozen, origins, sources) = (&*self, &origins, sources);
                    scope.spawn(move || {
                        let mut shard = Accum::new(n);
                        for i in lo..hi {
                            let (src, dest) =
                                draw_packet(frozen.network(), sources, origins, seed, i as u64);
                            shard.record(&frozen.route_packet(src, dest));
                        }
                        shard
                    })
                })
                .collect();
            // Join in spawn order: shard t covers packets
            // [t·chunk, …), so a left-to-right merge is packet order.
            for h in handles {
                acc.merge(&h.join().expect("shard thread panicked"));
            }
        });
        acc.finish(packets)
    }
}

impl<'n, A: Address> FrozenNetwork<'n, A> {
    /// As [`Self::run_workload`], additionally aggregating a
    /// [`StageProfiler`] across every hop's engine lookup: per-thread
    /// profilers, merged left to right like the cost shards, so the
    /// predicted half of the attribution (visits, ticks, bytes) is
    /// bit-identical for a given seed regardless of thread count —
    /// only the measured nanoseconds vary with the machine.
    ///
    /// # Panics
    /// Panics if `sources` is empty, the network has no origins, or
    /// `threads` is zero.
    pub fn profile_workload(
        &self,
        sources: &[RouterId],
        packets: usize,
        seed: u64,
        threads: usize,
    ) -> (RunStats, StageProfiler) {
        assert!(threads > 0, "need at least one thread");
        assert!(!sources.is_empty(), "need at least one source");
        let origins = self.net.config().origins.clone();
        assert!(!origins.is_empty(), "need at least one origin");

        let n = self.net.topology().len();
        let chunk = packets.div_ceil(threads);
        let mut acc = Accum::new(n);
        let mut prof = StageProfiler::new();

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = (t * chunk).min(packets);
                    let hi = ((t + 1) * chunk).min(packets);
                    let (frozen, origins, sources) = (&*self, &origins, sources);
                    scope.spawn(move || {
                        let mut shard = Accum::new(n);
                        let mut shard_prof = StageProfiler::new();
                        for i in lo..hi {
                            let (src, dest) =
                                draw_packet(frozen.network(), sources, origins, seed, i as u64);
                            shard.record(&frozen.route_packet_profiled(
                                src,
                                dest,
                                &mut shard_prof,
                            ));
                        }
                        (shard, shard_prof)
                    })
                })
                .collect();
            for h in handles {
                let (shard, shard_prof) = h.join().expect("shard thread panicked");
                acc.merge(&shard);
                prof.merge(&shard_prof);
            }
        });
        (acc.finish(packets), prof)
    }
}

/// SplitMix64 finalizer over a (seed, packet index) pair: the root of
/// packet `i`'s private RNG stream. Cheap, and two distinct indices
/// never collide for a fixed seed (the finalizer is a bijection).
pub(crate) fn packet_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws packet `i`'s (source, destination) pair from its private
/// stream — the shared half of the scalar/parallel determinism
/// contract.
pub(crate) fn draw_packet<A: Address>(
    net: &Network<A>,
    sources: &[RouterId],
    origins: &[RouterId],
    seed: u64,
    index: u64,
) -> (RouterId, A) {
    let mut rng = StdRng::seed_from_u64(packet_seed(seed, index));
    let src = *sources.choose(&mut rng).expect("non-empty sources");
    let oi = loop {
        let i = rng.random_range(0..origins.len());
        if origins[i] != src || origins.len() == 1 {
            break i;
        }
    };
    (src, net.random_destination(oi, &mut rng))
}

/// Order-merged shard accumulator; integer-only so merge grouping
/// cannot change the result — every field is a sum or a maximum, so
/// the merge is commutative and associative, and *any* exactly-once
/// partition of the packet stream (contiguous shards here, channel-fed
/// batches in [`crate::runtime`]) folds to the same [`RunStats`].
pub(crate) struct Accum {
    per_router: Vec<CostStats>,
    per_hop_position: Vec<CostStats>,
    bmp_len_sum: Vec<(u64, u64)>,
    delivered: usize,
    total: u64,
    clue_hops: u64,
    total_hops: u64,
}

impl Accum {
    pub(crate) fn new(routers: usize) -> Self {
        Accum {
            per_router: vec![CostStats::new(); routers],
            per_hop_position: Vec::new(),
            bmp_len_sum: Vec::new(),
            delivered: 0,
            total: 0,
            clue_hops: 0,
            total_hops: 0,
        }
    }

    pub(crate) fn record<A: Address>(&mut self, trace: &PathTrace<A>) {
        if trace.delivered {
            self.record_delivered();
        }
        for (pos, hop) in trace.hops.iter().enumerate() {
            let mut full = hop.cost;
            full += hop.shift_cost;
            self.record_hop(pos, hop.router, hop.bmp.map_or(0, |p| p.len()), full, hop.used_clue);
        }
    }

    /// One hop, recorded without materialising a [`PathTrace`] — the
    /// allocation-free twin of [`Self::record`] used by the serving
    /// runtime's inline walk. `full` is the hop's own cost plus its
    /// Section 5.4 shifted work, exactly as `record` folds them.
    #[inline]
    pub(crate) fn record_hop(
        &mut self,
        pos: usize,
        router: RouterId,
        bmp_len: u8,
        full: Cost,
        used_clue: bool,
    ) {
        let t = full.total();
        self.per_router[router].record_with_total(full, t);
        if self.per_hop_position.len() <= pos {
            self.per_hop_position.resize(pos + 1, CostStats::new());
            self.bmp_len_sum.resize(pos + 1, (0, 0));
        }
        self.per_hop_position[pos].record_with_total(full, t);
        let (s, c) = &mut self.bmp_len_sum[pos];
        *s += bmp_len as u64;
        *c += 1;
        self.total += t;
        self.total_hops += 1;
        if used_clue {
            self.clue_hops += 1;
        }
    }

    pub(crate) fn record_delivered(&mut self) {
        self.delivered += 1;
    }

    pub(crate) fn merge(&mut self, other: &Accum) {
        for (a, b) in self.per_router.iter_mut().zip(&other.per_router) {
            a.merge(b);
        }
        if self.per_hop_position.len() < other.per_hop_position.len() {
            self.per_hop_position.resize(other.per_hop_position.len(), CostStats::new());
            self.bmp_len_sum.resize(other.bmp_len_sum.len(), (0, 0));
        }
        for (a, b) in self.per_hop_position.iter_mut().zip(&other.per_hop_position) {
            a.merge(b);
        }
        for (a, b) in self.bmp_len_sum.iter_mut().zip(&other.bmp_len_sum) {
            a.0 += b.0;
            a.1 += b.1;
        }
        self.delivered += other.delivered;
        self.total += other.total;
        self.clue_hops += other.clue_hops;
        self.total_hops += other.total_hops;
    }

    pub(crate) fn finish(self, packets: usize) -> RunStats {
        RunStats {
            per_router: self.per_router,
            bmp_len_by_position: self
                .bmp_len_sum
                .iter()
                .map(|&(s, c)| if c == 0 { 0.0 } else { s as f64 / c as f64 })
                .collect(),
            per_hop_position: self.per_hop_position,
            packets,
            delivered: self.delivered,
            total_accesses: self.total,
            clue_hops: self.clue_hops,
            total_hops: self.total_hops,
        }
    }
}

/// The scalar reference for [`run_workload_parallel`]: routes the
/// identical per-packet stream sequentially through the **live**
/// [`ClueEngine`](clue_core::ClueEngine)s. For any freezable network,
/// `run_workload_per_packet(net, …) ==
/// run_workload_parallel(net, …, threads)` for every thread count —
/// the property `tests/parallel.rs` pins down.
pub fn run_workload_per_packet<A: Address>(
    net: &mut Network<A>,
    sources: &[RouterId],
    packets: usize,
    seed: u64,
) -> RunStats {
    assert!(!sources.is_empty(), "need at least one source");
    let origins = net.config().origins.clone();
    assert!(!origins.is_empty(), "need at least one origin");
    let mut acc = Accum::new(net.topology().len());
    for i in 0..packets {
        let (src, dest) = draw_packet(net, sources, &origins, seed, i as u64);
        let trace = net.route_packet(src, dest);
        acc.record(&trace);
    }
    acc.finish(packets)
}

/// Freezes `net` and routes `packets` random packets through it,
/// sharded over `threads` scoped OS threads.
///
/// This is the freeze-and-run convenience; the freeze is one-off
/// setup, so anything timing the steady state (or running several
/// workloads over one table) should call [`FrozenNetwork::freeze`]
/// once and [`FrozenNetwork::run_workload`] per run instead.
///
/// Results are bit-identical for a given `seed` regardless of
/// `threads`, and equal to [`run_workload_per_packet`] on the live
/// network (see the module docs for why, and for how this relates to
/// the sequential [`run_workload`](crate::run_workload)).
///
/// # Errors
/// Propagates the [`FreezeError`] if any engine cannot be frozen.
///
/// # Panics
/// Panics if `sources` is empty, the network has no origins, or
/// `threads` is zero.
pub fn run_workload_parallel<A: Address>(
    net: &Network<A>,
    sources: &[RouterId],
    packets: usize,
    seed: u64,
    threads: usize,
) -> Result<RunStats, FreezeError> {
    Ok(FrozenNetwork::freeze(net)?.run_workload(sources, packets, seed, threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;
    use crate::topology::Topology;
    use clue_core::{EngineConfig, Method};
    use clue_lookup::Family;
    use clue_trie::Ip4;

    fn build(method: Method) -> (Network<Ip4>, Vec<RouterId>) {
        let (topo, edges) = Topology::backbone(4, 2);
        let mut cfg = NetworkConfig::new(edges.clone(), EngineConfig::new(Family::Regular, method));
        cfg.specifics_per_origin = 12;
        cfg.seed = 42;
        (Network::build(topo, cfg), edges)
    }

    #[test]
    fn frozen_routing_matches_live_routing() {
        let (mut net, edges) = build(Method::Advance);
        let origins = net.config().origins.clone();
        let mut packets = Vec::new();
        for i in 0..50u64 {
            packets.push(draw_packet(&net, &edges, &origins, 9, i));
        }
        let frozen_traces: Vec<_> = {
            let frozen = FrozenNetwork::freeze(&net).unwrap();
            packets.iter().map(|&(src, dest)| frozen.route_packet(src, dest)).collect()
        };
        for (&(src, dest), f) in packets.iter().zip(&frozen_traces) {
            let l = net.route_packet(src, dest);
            assert_eq!(f.delivered, l.delivered);
            assert_eq!(f.hops.len(), l.hops.len());
            for (fh, lh) in f.hops.iter().zip(&l.hops) {
                assert_eq!((fh.router, fh.bmp, fh.used_clue), (lh.router, lh.bmp, lh.used_clue));
                assert_eq!(fh.cost, lh.cost, "cost parity at router {}", fh.router);
                assert_eq!(fh.shift_cost, lh.shift_cost);
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (net, edges) = build(Method::Advance);
        let r1 = run_workload_parallel(&net, &edges, 120, 7, 1).unwrap();
        let r2 = run_workload_parallel(&net, &edges, 120, 7, 2).unwrap();
        let r8 = run_workload_parallel(&net, &edges, 120, 7, 8).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1, r8);
        assert_eq!(r1.packets, 120);
        assert!(r1.delivered > 0);
    }

    #[test]
    fn frozen_run_workload_matches_the_convenience_wrapper() {
        let (net, edges) = build(Method::Advance);
        let frozen = FrozenNetwork::freeze(&net).unwrap();
        let a = frozen.run_workload(&edges, 80, 13, 2);
        let b = frozen.run_workload(&edges, 80, 13, 5);
        let c = run_workload_parallel(&net, &edges, 80, 13, 3).unwrap();
        assert_eq!(a, b, "reusing one frozen view is thread-count invariant");
        assert_eq!(a, c, "freeze-once equals freeze-and-run");
    }

    #[test]
    fn parallel_equals_scalar_reference() {
        let (mut net, edges) = build(Method::Advance);
        let par = run_workload_parallel(&net, &edges, 100, 3, 4).unwrap();
        let seq = run_workload_per_packet(&mut net, &edges, 100, 3);
        assert_eq!(par, seq);
    }

    #[test]
    fn uneven_and_excess_shards_cover_every_packet() {
        let (net, edges) = build(Method::Simple);
        let a = run_workload_parallel(&net, &edges, 17, 5, 3).unwrap();
        let b = run_workload_parallel(&net, &edges, 17, 5, 32).unwrap();
        assert_eq!(a, b);
        let hops: u64 = a.per_router.iter().map(CostStats::samples).sum();
        assert_eq!(hops, a.total_hops);
    }

    #[test]
    fn profiled_routing_is_semantically_inert() {
        let (net, edges) = build(Method::Advance);
        let origins = net.config().origins.clone();
        let frozen = FrozenNetwork::freeze(&net).unwrap();
        let mut prof = StageProfiler::new();
        let mut charged = 0u64;
        for i in 0..60u64 {
            let (src, dest) = draw_packet(&net, &edges, &origins, 21, i);
            let plain = frozen.route_packet(src, dest);
            let profiled = frozen.route_packet_profiled(src, dest, &mut prof);
            assert_eq!(plain.delivered, profiled.delivered);
            assert_eq!(plain.hops.len(), profiled.hops.len());
            for (p, q) in plain.hops.iter().zip(&profiled.hops) {
                assert_eq!((p.router, p.bmp, p.used_clue), (q.router, q.bmp, q.used_clue));
                assert_eq!(p.cost, q.cost, "cost parity at router {}", p.router);
                assert_eq!(p.shift_cost, q.shift_cost);
                charged += p.cost.total();
            }
        }
        // Every charged tick is attributed to exactly one stage; the
        // unprofiled shift leg charges shift_cost, not cost.
        assert_eq!(prof.total_ticks(), charged);
        assert!(prof.lookups() > 0);
        assert!(prof.stage(clue_core::Stage::Root).visits > 0);
    }

    #[test]
    fn profile_workload_matches_run_workload_and_is_thread_invariant() {
        let (net, edges) = build(Method::Advance);
        let frozen = FrozenNetwork::freeze(&net).unwrap();
        let plain = frozen.run_workload(&edges, 90, 17, 3);
        let (s1, p1) = frozen.profile_workload(&edges, 90, 17, 1);
        let (s4, p4) = frozen.profile_workload(&edges, 90, 17, 4);
        assert_eq!(plain, s1, "profiling must not change the workload stats");
        assert_eq!(s1, s4);
        assert_eq!(p1.lookups(), s1.total_hops, "one profiled lookup per hop");
        assert_eq!(p1.lookups(), p4.lookups());
        // The predicted half of the attribution is deterministic; only
        // the measured nanoseconds depend on the machine and threads.
        assert_eq!(p1.total_ticks(), p4.total_ticks());
        assert_eq!(p1.total_bytes(), p4.total_bytes());
        for stage in clue_core::Stage::all() {
            assert_eq!(p1.stage(stage).visits, p4.stage(stage).visits, "{}", stage.label());
            assert_eq!(p1.stage(stage).ticks, p4.stage(stage).ticks, "{}", stage.label());
        }
        assert!(p1.total_ticks() > 0);
    }

    #[test]
    fn cached_networks_refuse_to_freeze() {
        let (topo, edges) = Topology::backbone(4, 2);
        let mut cfg =
            NetworkConfig::new(edges.clone(), EngineConfig::new(Family::Regular, Method::Advance));
        cfg.specifics_per_origin = 8;
        cfg.cache_capacity = Some(16);
        cfg.seed = 1;
        let net: Network<Ip4> = Network::build(topo, cfg);
        assert_eq!(
            run_workload_parallel(&net, &edges, 10, 1, 2).unwrap_err(),
            FreezeError::CacheEnabled
        );
    }

    #[test]
    fn shift_work_mode_survives_freezing() {
        let (topo, edges) = Topology::backbone(4, 1);
        let mut cfg =
            NetworkConfig::new(edges.clone(), EngineConfig::new(Family::Regular, Method::Advance));
        cfg.specifics_per_origin = 8;
        cfg.core = vec![0, 1, 2, 3];
        cfg.shift_work_to_edges = true;
        cfg.seed = 11;
        let mut net: Network<Ip4> = Network::build(topo, cfg);
        let par = run_workload_parallel(&net, &edges, 60, 2, 4).unwrap();
        let seq = run_workload_per_packet(&mut net, &edges, 60, 2);
        assert_eq!(par, seq);
        assert!(par.per_router.iter().any(|s| s.sum().total() > 0));
    }
}
