//! Network topologies and shortest-path route computation.
//!
//! The simulator needs only unweighted shortest paths (the paper's
//! arguments are about *which prefixes* neighboring tables hold, not
//! about link metrics), so routing is all-pairs BFS producing, per
//! destination router, a next-hop tree — the role OSPF/BGP play in
//! Section 3.3.2.

use std::collections::VecDeque;

use clue_core::FxHashSet;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Index of a router in the topology.
pub type RouterId = usize;

/// An undirected multigraph-free topology over `n` routers.
#[derive(Debug, Clone)]
pub struct Topology {
    n: usize,
    adjacency: Vec<Vec<RouterId>>,
    /// Every link as an ordered `(min, max)` pair, so `add_link`'s
    /// dedup and `has_link` are O(1) instead of an O(degree) scan of
    /// the adjacency list (which goes quadratic on the dense generated
    /// graphs the fleet simulator builds).
    edges: FxHashSet<(RouterId, RouterId)>,
}

impl Topology {
    /// An empty topology with `n` routers and no links.
    pub fn new(n: usize) -> Self {
        Topology { n, adjacency: vec![Vec::new(); n], edges: FxHashSet::default() }
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` iff the topology has no routers.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `true` iff an (undirected) link `a – b` exists.
    pub fn has_link(&self, a: RouterId, b: RouterId) -> bool {
        self.edges.contains(&(a.min(b), a.max(b)))
    }

    /// Adds an undirected link (idempotent).
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or self-loops.
    pub fn add_link(&mut self, a: RouterId, b: RouterId) {
        assert!(a < self.n && b < self.n, "link endpoint out of range");
        assert_ne!(a, b, "self-loops are not allowed");
        if self.edges.insert((a.min(b), a.max(b))) {
            self.adjacency[a].push(b);
            self.adjacency[b].push(a);
        }
    }

    /// The neighbors of a router.
    pub fn neighbors(&self, r: RouterId) -> &[RouterId] {
        &self.adjacency[r]
    }

    /// Total number of undirected links.
    pub fn link_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// A simple path `0 – 1 – … – n-1`: the backbone-transit shape of the
    /// paper's Figure 1.
    pub fn line(n: usize) -> Self {
        let mut t = Topology::new(n);
        for i in 1..n {
            t.add_link(i - 1, i);
        }
        t
    }

    /// A ring.
    pub fn ring(n: usize) -> Self {
        let mut t = Topology::line(n);
        if n > 2 {
            t.add_link(n - 1, 0);
        }
        t
    }

    /// A star with router 0 in the center.
    pub fn star(n: usize) -> Self {
        let mut t = Topology::new(n);
        for i in 1..n {
            t.add_link(0, i);
        }
        t
    }

    /// A two-level ISP-like topology: a ring of `core` backbone routers,
    /// each with `edges_per_core` stub routers attached. Returns the
    /// topology and the list of edge (stub) routers — the natural packet
    /// sources/sinks.
    pub fn backbone(core: usize, edges_per_core: usize) -> (Self, Vec<RouterId>) {
        assert!(core >= 1, "need at least one core router");
        let n = core + core * edges_per_core;
        let mut t = Topology::new(n);
        for i in 1..core {
            t.add_link(i - 1, i);
        }
        if core > 2 {
            t.add_link(core - 1, 0);
        }
        let mut edges = Vec::new();
        for c in 0..core {
            for e in 0..edges_per_core {
                let id = core + c * edges_per_core + e;
                t.add_link(c, id);
                edges.push(id);
            }
        }
        (t, edges)
    }

    /// A connected random graph: a spanning random tree plus `extra`
    /// random chords. Deterministic in the seed.
    pub fn random_connected(n: usize, extra: usize, seed: u64) -> Self {
        assert!(n >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Topology::new(n);
        for i in 1..n {
            let parent = rng.random_range(0..i);
            t.add_link(parent, i);
        }
        let mut added = 0;
        let mut guard = 0;
        while added < extra && guard < extra * 20 + 50 && n > 2 {
            guard += 1;
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            if a != b && !t.has_link(a, b) {
                t.add_link(a, b);
                added += 1;
            }
        }
        t
    }

    /// A GT-ITM-style hierarchical transit-stub topology: `domains`
    /// transit domains (each a ring of `transit_size` routers with a
    /// chord) joined into a ring of domains, and `stubs_per_transit`
    /// stub domains hanging off every transit router (each stub a
    /// random tree of `stub_size` routers plus one chord, attached by
    /// a single uplink; a small fraction are multihomed to a second
    /// transit router). Returns the topology and the stub routers —
    /// the natural packet sources and sinks. Deterministic in the
    /// seed.
    ///
    /// # Panics
    /// Panics unless `domains`, `transit_size` and `stub_size` are
    /// all at least 1.
    pub fn transit_stub(
        domains: usize,
        transit_size: usize,
        stubs_per_transit: usize,
        stub_size: usize,
        seed: u64,
    ) -> (Self, Vec<RouterId>) {
        assert!(domains >= 1 && transit_size >= 1 && stub_size >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let transit_n = domains * transit_size;
        let n = transit_n + transit_n * stubs_per_transit * stub_size;
        let mut t = Topology::new(n);

        // Transit domains: ring + one chord each, domains joined in a
        // ring through random member pairs.
        for d in 0..domains {
            let base = d * transit_size;
            for i in 1..transit_size {
                t.add_link(base + i - 1, base + i);
            }
            if transit_size > 2 {
                t.add_link(base + transit_size - 1, base);
                let a = base + rng.random_range(0..transit_size);
                let b = base + rng.random_range(0..transit_size);
                if a != b {
                    t.add_link(a, b);
                }
            }
        }
        for d in 0..domains {
            if domains > 1 {
                let next = (d + 1) % domains;
                if d < next || domains > 2 {
                    let a = d * transit_size + rng.random_range(0..transit_size);
                    let b = next * transit_size + rng.random_range(0..transit_size);
                    t.add_link(a, b);
                }
            }
        }

        // Stub domains: a random tree plus one chord, single-homed to
        // the owning transit router (every ~8th stub multihomes to a
        // random second transit router).
        let mut stubs = Vec::new();
        let mut next_id = transit_n;
        let mut stub_index = 0usize;
        for tr in 0..transit_n {
            for _ in 0..stubs_per_transit {
                let base = next_id;
                next_id += stub_size;
                for i in 1..stub_size {
                    let parent = base + rng.random_range(0..i);
                    t.add_link(parent, base + i);
                }
                if stub_size > 2 {
                    let a = base + rng.random_range(0..stub_size);
                    let b = base + rng.random_range(0..stub_size);
                    if a != b {
                        t.add_link(a, b);
                    }
                }
                t.add_link(tr, base + rng.random_range(0..stub_size));
                if stub_index % 8 == 7 && transit_n > 1 {
                    let other = rng.random_range(0..transit_n);
                    if other != tr {
                        t.add_link(other, base + rng.random_range(0..stub_size));
                    }
                }
                stubs.extend(base..base + stub_size);
                stub_index += 1;
            }
        }
        (t, stubs)
    }

    /// A Barabási–Albert preferential-attachment graph: routers join
    /// one at a time and link to `m` distinct existing routers chosen
    /// proportional to current degree, yielding the heavy-tailed
    /// degree distribution of AS-level maps. Connected by
    /// construction; deterministic in the seed.
    ///
    /// # Panics
    /// Panics unless `1 <= m < n`.
    pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> Self {
        assert!(m >= 1 && m < n, "need 1 <= m < n");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Topology::new(n);
        // Seed clique over the first m+1 routers.
        for a in 0..=m {
            for b in a + 1..=m {
                t.add_link(a, b);
            }
        }
        // One entry per link endpoint: sampling it uniformly is
        // sampling routers proportional to degree.
        let mut endpoints: Vec<RouterId> = Vec::with_capacity(2 * m * n);
        for a in 0..=m {
            for b in a + 1..=m {
                endpoints.push(a);
                endpoints.push(b);
            }
        }
        for v in m + 1..n {
            let mut picked = Vec::with_capacity(m);
            let mut guard = 0;
            while picked.len() < m && guard < 50 * m + 100 {
                guard += 1;
                let u = endpoints[rng.random_range(0..endpoints.len())];
                if u != v && !picked.contains(&u) {
                    picked.push(u);
                }
            }
            // Degenerate fallback (tiny graphs): fill from low ids.
            let mut u = 0;
            while picked.len() < m {
                if u != v && !picked.contains(&u) {
                    picked.push(u);
                }
                u += 1;
            }
            for &u in &picked {
                t.add_link(u, v);
                endpoints.push(u);
                endpoints.push(v);
            }
        }
        t
    }

    /// BFS from `dest` keeping **every** shortest-path next hop: the
    /// ECMP variant of [`Self::routes_toward`]. Next-hop sets are in
    /// adjacency-list order, which makes them *permutation-covariant*:
    /// relabeling routers (and replaying the same link insertions
    /// under the relabeling) maps each set elementwise, so a hashed
    /// choice by set index is stable under renumbering.
    pub fn ecmp_toward(&self, dest: RouterId) -> EcmpTree {
        assert!(dest < self.n, "destination out of range");
        let mut dist = vec![usize::MAX; self.n];
        let mut q = VecDeque::new();
        dist[dest] = 0;
        q.push_back(dest);
        while let Some(u) = q.pop_front() {
            for &v in &self.adjacency[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    q.push_back(v);
                }
            }
        }
        let next_hops = (0..self.n)
            .map(|r| {
                if r == dest || dist[r] == usize::MAX {
                    return Vec::new();
                }
                // Every neighbor exactly one hop closer is a valid
                // equal-cost next hop; order = adjacency order.
                self.adjacency[r].iter().copied().filter(|&v| dist[v] + 1 == dist[r]).collect()
            })
            .collect();
        EcmpTree { dest, dist, next_hops }
    }

    /// All-pairs ECMP trees (one BFS per router).
    pub fn all_ecmp_routes(&self) -> Vec<EcmpTree> {
        (0..self.n).map(|d| self.ecmp_toward(d)).collect()
    }

    /// BFS from `dest`: per router, its distance to `dest` and the next
    /// hop toward it (`None` at `dest` itself and on unreachable
    /// routers).
    pub fn routes_toward(&self, dest: RouterId) -> RouteTree {
        assert!(dest < self.n, "destination out of range");
        let mut dist = vec![usize::MAX; self.n];
        let mut next_hop: Vec<Option<RouterId>> = vec![None; self.n];
        let mut q = VecDeque::new();
        dist[dest] = 0;
        q.push_back(dest);
        while let Some(u) = q.pop_front() {
            for &v in &self.adjacency[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    // v reaches dest through u.
                    next_hop[v] = Some(u);
                    q.push_back(v);
                }
            }
        }
        RouteTree { dest, dist, next_hop }
    }

    /// All-pairs route trees (one BFS per router).
    pub fn all_routes(&self) -> Vec<RouteTree> {
        (0..self.n).map(|d| self.routes_toward(d)).collect()
    }
}

/// The shortest-path tree toward one destination router.
#[derive(Debug, Clone)]
pub struct RouteTree {
    /// The tree's destination.
    pub dest: RouterId,
    /// Hop distance per router (`usize::MAX` if unreachable).
    pub dist: Vec<usize>,
    /// Next hop toward `dest` per router.
    pub next_hop: Vec<Option<RouterId>>,
}

impl RouteTree {
    /// Hop distance from `r` to the destination, `None` if unreachable.
    pub fn distance(&self, r: RouterId) -> Option<usize> {
        (self.dist[r] != usize::MAX).then_some(self.dist[r])
    }

    /// The path from `r` to the destination (inclusive of both ends).
    pub fn path_from(&self, r: RouterId) -> Option<Vec<RouterId>> {
        self.distance(r)?;
        let mut path = vec![r];
        let mut cur = r;
        while cur != self.dest {
            cur = self.next_hop[cur].expect("reachable router has a next hop");
            path.push(cur);
        }
        Some(path)
    }
}

/// The equal-cost multipath DAG toward one destination router: per
/// router, *all* next hops that lie on some shortest path, in
/// adjacency-list order.
#[derive(Debug, Clone)]
pub struct EcmpTree {
    /// The DAG's destination.
    pub dest: RouterId,
    /// Hop distance per router (`usize::MAX` if unreachable).
    pub dist: Vec<usize>,
    /// All equal-cost next hops per router (empty at `dest` and on
    /// unreachable routers), in adjacency-list order.
    pub next_hops: Vec<Vec<RouterId>>,
}

/// SplitMix64 finalizer — the same integer avalanche the sharded
/// workload drivers use for per-packet streams, reused here to mix a
/// flow key with a hop position.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl EcmpTree {
    /// Hop distance from `r` to the destination, `None` if unreachable.
    pub fn distance(&self, r: RouterId) -> Option<usize> {
        (self.dist[r] != usize::MAX).then_some(self.dist[r])
    }

    /// The deterministic per-flow next hop at `r`: the equal-cost set
    /// indexed by a hash of `(flow_key, hop position)`. The hash never
    /// sees a router id — only the flow key, the position along the
    /// path, and the set's *size* — so the choice is stable under
    /// router renumbering (the set itself maps elementwise, and the
    /// chosen index is unchanged). Mixing the hop position in keeps a
    /// flow from always landing on the same index at every hop, which
    /// would polarize traffic the way real ECMP hash reuse does.
    pub fn next_hop(&self, r: RouterId, flow_key: u64, hop: usize) -> Option<RouterId> {
        let set = &self.next_hops[r];
        if set.is_empty() {
            return None;
        }
        let pick = mix64(flow_key ^ mix64(hop as u64)) as usize % set.len();
        Some(set[pick])
    }

    /// The flow's full path from `r` to the destination (inclusive of
    /// both ends), following [`Self::next_hop`] at every hop. Finite
    /// by construction: every choice strictly decreases `dist`.
    pub fn path_from(&self, r: RouterId, flow_key: u64) -> Option<Vec<RouterId>> {
        self.distance(r)?;
        let mut path = vec![r];
        let mut cur = r;
        let mut hop = 0;
        while cur != self.dest {
            cur = self.next_hop(cur, flow_key, hop).expect("reachable router has a next hop");
            path.push(cur);
            hop += 1;
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_routes_and_distances() {
        let t = Topology::line(5);
        assert_eq!(t.link_count(), 4);
        let rt = t.routes_toward(4);
        assert_eq!(rt.distance(0), Some(4));
        assert_eq!(rt.next_hop[0], Some(1));
        assert_eq!(rt.path_from(0).unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(rt.next_hop[4], None);
    }

    #[test]
    fn ring_takes_the_short_way() {
        let t = Topology::ring(6);
        let rt = t.routes_toward(0);
        assert_eq!(rt.distance(5), Some(1));
        assert_eq!(rt.distance(3), Some(3));
    }

    #[test]
    fn star_is_two_hops_between_leaves() {
        let t = Topology::star(5);
        let rt = t.routes_toward(3);
        assert_eq!(rt.distance(4), Some(2));
        assert_eq!(rt.next_hop[4], Some(0));
    }

    #[test]
    fn backbone_shape() {
        let (t, edges) = Topology::backbone(4, 2);
        assert_eq!(t.len(), 12);
        assert_eq!(edges.len(), 8);
        // Every edge router hangs off exactly one core router.
        for &e in &edges {
            assert_eq!(t.neighbors(e).len(), 1);
            assert!(t.neighbors(e)[0] < 4);
        }
    }

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..5 {
            let t = Topology::random_connected(30, 10, seed);
            let rt = t.routes_toward(0);
            assert!((0..30).all(|r| rt.distance(r).is_some()), "seed {seed} disconnected");
        }
    }

    #[test]
    fn unreachable_routers_have_no_route() {
        let t = Topology::new(3); // no links at all
        let rt = t.routes_toward(0);
        assert_eq!(rt.distance(1), None);
        assert_eq!(rt.path_from(1), None);
        assert_eq!(rt.path_from(0).unwrap(), vec![0]);
    }

    #[test]
    fn add_link_is_idempotent() {
        let mut t = Topology::new(3);
        t.add_link(0, 1);
        t.add_link(1, 0);
        assert_eq!(t.link_count(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        Topology::new(2).add_link(1, 1);
    }

    #[test]
    fn has_link_tracks_add_link() {
        let mut t = Topology::new(4);
        t.add_link(2, 1);
        assert!(t.has_link(1, 2) && t.has_link(2, 1));
        assert!(!t.has_link(0, 1));
    }

    #[test]
    fn transit_stub_is_connected_and_sized() {
        let (t, stubs) = Topology::transit_stub(3, 4, 2, 5, 7);
        assert_eq!(t.len(), 12 + 12 * 2 * 5);
        assert_eq!(stubs.len(), 12 * 2 * 5);
        let rt = t.routes_toward(0);
        assert!((0..t.len()).all(|r| rt.distance(r).is_some()), "disconnected");
        // Stub ids are exactly the non-transit ids.
        assert!(stubs.iter().all(|&s| s >= 12));
    }

    #[test]
    fn preferential_attachment_is_connected_with_hubs() {
        let t = Topology::preferential_attachment(200, 2, 11);
        let rt = t.routes_toward(0);
        assert!((0..200).all(|r| rt.distance(r).is_some()), "disconnected");
        // Heavy tail: some router far exceeds the mean degree.
        let max_deg = (0..200).map(|r| t.neighbors(r).len()).max().unwrap();
        assert!(max_deg >= 10, "no hub emerged (max degree {max_deg})");
    }

    #[test]
    fn ecmp_keeps_every_shortest_next_hop() {
        // A 4-cycle: 0-1-3 and 0-2-3 are both shortest 0→3 paths.
        let mut t = Topology::new(4);
        t.add_link(0, 1);
        t.add_link(0, 2);
        t.add_link(1, 3);
        t.add_link(2, 3);
        let e = t.ecmp_toward(3);
        assert_eq!(e.next_hops[0], vec![1, 2]); // adjacency order
        assert_eq!(e.next_hops[1], vec![3]);
        assert!(e.next_hops[3].is_empty());
        // Both flows terminate on shortest paths.
        for flow in 0..16u64 {
            let p = e.path_from(0, flow).unwrap();
            assert_eq!(p.len(), 3);
            assert_eq!(*p.last().unwrap(), 3);
        }
        // Different flows actually spread over both next hops.
        let picks: std::collections::BTreeSet<RouterId> =
            (0..16u64).map(|f| e.next_hop(0, f, 0).unwrap()).collect();
        assert_eq!(picks.len(), 2, "hashed choice never spread");
    }

    #[test]
    fn ecmp_choice_varies_by_hop_position() {
        let mut t = Topology::new(6);
        // Two parallel 2-choice stages toward 5.
        t.add_link(0, 1);
        t.add_link(0, 2);
        t.add_link(1, 3);
        t.add_link(1, 4);
        t.add_link(2, 3);
        t.add_link(2, 4);
        t.add_link(3, 5);
        t.add_link(4, 5);
        let e = t.ecmp_toward(5);
        // Across many flows, the (stage-0 index, stage-1 index) pairs
        // must not be perfectly correlated — hop mixing breaks
        // polarization.
        let mut seen = std::collections::BTreeSet::new();
        for flow in 0..64u64 {
            let p = e.path_from(0, flow).unwrap();
            seen.insert((p[1], p[2]));
        }
        assert!(seen.len() >= 3, "ECMP polarized: {seen:?}");
    }
}
