//! Network topologies and shortest-path route computation.
//!
//! The simulator needs only unweighted shortest paths (the paper's
//! arguments are about *which prefixes* neighboring tables hold, not
//! about link metrics), so routing is all-pairs BFS producing, per
//! destination router, a next-hop tree — the role OSPF/BGP play in
//! Section 3.3.2.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Index of a router in the topology.
pub type RouterId = usize;

/// An undirected multigraph-free topology over `n` routers.
#[derive(Debug, Clone)]
pub struct Topology {
    n: usize,
    adjacency: Vec<Vec<RouterId>>,
}

impl Topology {
    /// An empty topology with `n` routers and no links.
    pub fn new(n: usize) -> Self {
        Topology { n, adjacency: vec![Vec::new(); n] }
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` iff the topology has no routers.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds an undirected link (idempotent).
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or self-loops.
    pub fn add_link(&mut self, a: RouterId, b: RouterId) {
        assert!(a < self.n && b < self.n, "link endpoint out of range");
        assert_ne!(a, b, "self-loops are not allowed");
        if !self.adjacency[a].contains(&b) {
            self.adjacency[a].push(b);
            self.adjacency[b].push(a);
        }
    }

    /// The neighbors of a router.
    pub fn neighbors(&self, r: RouterId) -> &[RouterId] {
        &self.adjacency[r]
    }

    /// Total number of undirected links.
    pub fn link_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// A simple path `0 – 1 – … – n-1`: the backbone-transit shape of the
    /// paper's Figure 1.
    pub fn line(n: usize) -> Self {
        let mut t = Topology::new(n);
        for i in 1..n {
            t.add_link(i - 1, i);
        }
        t
    }

    /// A ring.
    pub fn ring(n: usize) -> Self {
        let mut t = Topology::line(n);
        if n > 2 {
            t.add_link(n - 1, 0);
        }
        t
    }

    /// A star with router 0 in the center.
    pub fn star(n: usize) -> Self {
        let mut t = Topology::new(n);
        for i in 1..n {
            t.add_link(0, i);
        }
        t
    }

    /// A two-level ISP-like topology: a ring of `core` backbone routers,
    /// each with `edges_per_core` stub routers attached. Returns the
    /// topology and the list of edge (stub) routers — the natural packet
    /// sources/sinks.
    pub fn backbone(core: usize, edges_per_core: usize) -> (Self, Vec<RouterId>) {
        assert!(core >= 1, "need at least one core router");
        let n = core + core * edges_per_core;
        let mut t = Topology::new(n);
        for i in 1..core {
            t.add_link(i - 1, i);
        }
        if core > 2 {
            t.add_link(core - 1, 0);
        }
        let mut edges = Vec::new();
        for c in 0..core {
            for e in 0..edges_per_core {
                let id = core + c * edges_per_core + e;
                t.add_link(c, id);
                edges.push(id);
            }
        }
        (t, edges)
    }

    /// A connected random graph: a spanning random tree plus `extra`
    /// random chords. Deterministic in the seed.
    pub fn random_connected(n: usize, extra: usize, seed: u64) -> Self {
        assert!(n >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Topology::new(n);
        for i in 1..n {
            let parent = rng.random_range(0..i);
            t.add_link(parent, i);
        }
        let mut added = 0;
        let mut guard = 0;
        while added < extra && guard < extra * 20 + 50 && n > 2 {
            guard += 1;
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            if a != b && !t.adjacency[a].contains(&b) {
                t.add_link(a, b);
                added += 1;
            }
        }
        t
    }

    /// BFS from `dest`: per router, its distance to `dest` and the next
    /// hop toward it (`None` at `dest` itself and on unreachable
    /// routers).
    pub fn routes_toward(&self, dest: RouterId) -> RouteTree {
        assert!(dest < self.n, "destination out of range");
        let mut dist = vec![usize::MAX; self.n];
        let mut next_hop: Vec<Option<RouterId>> = vec![None; self.n];
        let mut q = VecDeque::new();
        dist[dest] = 0;
        q.push_back(dest);
        while let Some(u) = q.pop_front() {
            for &v in &self.adjacency[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    // v reaches dest through u.
                    next_hop[v] = Some(u);
                    q.push_back(v);
                }
            }
        }
        RouteTree { dest, dist, next_hop }
    }

    /// All-pairs route trees (one BFS per router).
    pub fn all_routes(&self) -> Vec<RouteTree> {
        (0..self.n).map(|d| self.routes_toward(d)).collect()
    }
}

/// The shortest-path tree toward one destination router.
#[derive(Debug, Clone)]
pub struct RouteTree {
    /// The tree's destination.
    pub dest: RouterId,
    /// Hop distance per router (`usize::MAX` if unreachable).
    pub dist: Vec<usize>,
    /// Next hop toward `dest` per router.
    pub next_hop: Vec<Option<RouterId>>,
}

impl RouteTree {
    /// Hop distance from `r` to the destination, `None` if unreachable.
    pub fn distance(&self, r: RouterId) -> Option<usize> {
        (self.dist[r] != usize::MAX).then_some(self.dist[r])
    }

    /// The path from `r` to the destination (inclusive of both ends).
    pub fn path_from(&self, r: RouterId) -> Option<Vec<RouterId>> {
        self.distance(r)?;
        let mut path = vec![r];
        let mut cur = r;
        while cur != self.dest {
            cur = self.next_hop[cur].expect("reachable router has a next hop");
            path.push(cur);
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_routes_and_distances() {
        let t = Topology::line(5);
        assert_eq!(t.link_count(), 4);
        let rt = t.routes_toward(4);
        assert_eq!(rt.distance(0), Some(4));
        assert_eq!(rt.next_hop[0], Some(1));
        assert_eq!(rt.path_from(0).unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(rt.next_hop[4], None);
    }

    #[test]
    fn ring_takes_the_short_way() {
        let t = Topology::ring(6);
        let rt = t.routes_toward(0);
        assert_eq!(rt.distance(5), Some(1));
        assert_eq!(rt.distance(3), Some(3));
    }

    #[test]
    fn star_is_two_hops_between_leaves() {
        let t = Topology::star(5);
        let rt = t.routes_toward(3);
        assert_eq!(rt.distance(4), Some(2));
        assert_eq!(rt.next_hop[4], Some(0));
    }

    #[test]
    fn backbone_shape() {
        let (t, edges) = Topology::backbone(4, 2);
        assert_eq!(t.len(), 12);
        assert_eq!(edges.len(), 8);
        // Every edge router hangs off exactly one core router.
        for &e in &edges {
            assert_eq!(t.neighbors(e).len(), 1);
            assert!(t.neighbors(e)[0] < 4);
        }
    }

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..5 {
            let t = Topology::random_connected(30, 10, seed);
            let rt = t.routes_toward(0);
            assert!((0..30).all(|r| rt.distance(r).is_some()), "seed {seed} disconnected");
        }
    }

    #[test]
    fn unreachable_routers_have_no_route() {
        let t = Topology::new(3); // no links at all
        let rt = t.routes_toward(0);
        assert_eq!(rt.distance(1), None);
        assert_eq!(rt.path_from(1), None);
        assert_eq!(rt.path_from(0).unwrap(), vec![0]);
    }

    #[test]
    fn add_link_is_idempotent() {
        let mut t = Topology::new(3);
        t.add_link(0, 1);
        t.add_link(1, 0);
        assert_eq!(t.link_count(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        Topology::new(2).add_link(1, 1);
    }
}
