//! A path-vector routing protocol (BGP-like), run to convergence over a
//! topology — the distributed counterpart of the centralized BFS route
//! computation in [`crate::Network::build`].
//!
//! This grounds two claims of the paper in an actual protocol:
//!
//! * Section 3: “the computation of a forwarding table at a router is
//!   based on the forwarding tables of its neighbors and thus is
//!   strongly related to these tables” — here tables literally *are*
//!   functions of the neighbors' announcements, and the measured
//!   similarity of converged neighbor tables is what the clue scheme
//!   feeds on;
//! * Section 3: “aggregation is done inside some domains (ASes) and at
//!   the borders of the ASes; once the prefixes are sent outside of the
//!   AS they are not aggregated anymore” — the export policy aggregates
//!   own-AS specifics exactly once, at the border.
//!
//! The protocol is a synchronous-round path-vector: each round every
//! router exports its best routes to each neighbor (applying the border
//! aggregation policy), imports what it hears (rejecting paths that
//! contain itself — loop freedom), and recomputes best routes by path
//! length. Rounds repeat until a fixpoint.

use std::collections::BTreeMap;

use clue_trie::{Address, Prefix};

use crate::topology::{RouterId, Topology};

/// Export-time aggregation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Propagate every prefix unchanged.
    None,
    /// At an AS border, replace *own-AS-originated* specifics by their
    /// aggregate of the given length; foreign routes pass unchanged
    /// (BGP's “may not aggregate prefixes it does not administer”).
    OwnAtBorder(u8),
}

/// One route in a RIB: the prefix's path back to its origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Routers from origin (first) to the announcer (last).
    pub path: Vec<RouterId>,
}

impl Route {
    fn origin(&self) -> RouterId {
        *self.path.first().expect("a route has an origin")
    }
}

/// The converged state of one router.
#[derive(Debug, Clone)]
pub struct Rib<A: Address> {
    /// Best route per prefix, with the neighbor it was learned from
    /// (`None` = originated here).
    pub best: BTreeMap<Prefix<A>, (Route, Option<RouterId>)>,
}

impl<A: Address> Default for Rib<A> {
    fn default() -> Self {
        Rib { best: BTreeMap::new() }
    }
}

impl<A: Address> Rib<A> {
    /// The router's prefix set (its forwarding-table keys).
    pub fn prefixes(&self) -> Vec<Prefix<A>> {
        self.best.keys().copied().collect()
    }

    /// Next hop for a prefix (`None` = local delivery).
    pub fn next_hop(&self, p: &Prefix<A>) -> Option<Option<RouterId>> {
        self.best.get(p).map(|(_, nh)| *nh)
    }
}

/// A path-vector protocol instance over a topology.
#[derive(Debug)]
pub struct PathVector<A: Address> {
    topology: Topology,
    /// AS number per router.
    as_of: Vec<u32>,
    /// Prefixes originated per router.
    originated: Vec<Vec<Prefix<A>>>,
    aggregation: Aggregation,
    ribs: Vec<Rib<A>>,
    rounds_run: usize,
}

impl<A: Address> PathVector<A> {
    /// Creates the instance; every router starts knowing only what it
    /// originates.
    ///
    /// # Panics
    /// Panics if the per-router vectors disagree with the topology size.
    pub fn new(
        topology: Topology,
        as_of: Vec<u32>,
        originated: Vec<Vec<Prefix<A>>>,
        aggregation: Aggregation,
    ) -> Self {
        assert_eq!(as_of.len(), topology.len(), "as_of length mismatch");
        assert_eq!(originated.len(), topology.len(), "originated length mismatch");
        let mut ribs: Vec<Rib<A>> = vec![Rib::default(); topology.len()];
        for (r, prefixes) in originated.iter().enumerate() {
            for p in prefixes {
                ribs[r].best.insert(*p, (Route { path: vec![r] }, None));
            }
        }
        PathVector { topology, as_of, originated, aggregation, ribs, rounds_run: 0 }
    }

    /// The converged (or current) RIBs.
    pub fn ribs(&self) -> &[Rib<A>] {
        &self.ribs
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The prefixes a router originates.
    pub fn originated(&self, r: RouterId) -> &[Prefix<A>] {
        &self.originated[r]
    }

    /// Rounds executed so far.
    pub fn rounds_run(&self) -> usize {
        self.rounds_run
    }

    /// The AS of a router.
    pub fn as_of(&self, r: RouterId) -> u32 {
        self.as_of[r]
    }

    /// What `from` exports to `to` this round: its best routes with
    /// itself appended to the path, border aggregation applied, and
    /// split-horizon (no route back to the neighbor it came from, nor
    /// any path already containing the receiver).
    fn export(&self, from: RouterId, to: RouterId) -> Vec<(Prefix<A>, Route)> {
        let border = self.as_of[from] != self.as_of[to];
        let mut out: BTreeMap<Prefix<A>, Route> = BTreeMap::new();
        for (prefix, (route, learned_from)) in &self.ribs[from].best {
            if route.path.contains(&to) || *learned_from == Some(to) {
                continue; // loop prevention + split horizon
            }
            // Stored paths end at the router that told us (ourselves,
            // for originated routes) — append `from` only when it is not
            // already the terminal element.
            let mut path = route.path.clone();
            if path.last() != Some(&from) {
                path.push(from);
            }
            let exported_prefix = match self.aggregation {
                Aggregation::OwnAtBorder(agg_len)
                    if border
                        && self.as_of[route.origin()] == self.as_of[from]
                        && prefix.len() > agg_len =>
                {
                    prefix.truncate(agg_len)
                }
                _ => *prefix,
            };
            // Several specifics may collapse into one aggregate: keep
            // the shortest path among them.
            match out.get(&exported_prefix) {
                Some(existing) if existing.path.len() <= path.len() => {}
                _ => {
                    out.insert(exported_prefix, Route { path });
                }
            }
        }
        out.into_iter().collect()
    }

    /// Runs one synchronous round. Returns `true` if any RIB changed.
    pub fn step(&mut self) -> bool {
        self.rounds_run += 1;
        let n = self.topology.len();
        // Collect all announcements first (synchronous semantics).
        let mut inbox: Vec<Vec<(RouterId, Prefix<A>, Route)>> = vec![Vec::new(); n];
        for from in 0..n {
            for &to in self.topology.neighbors(from) {
                for (prefix, route) in self.export(from, to) {
                    inbox[to].push((from, prefix, route));
                }
            }
        }
        // Import with best-path selection: shorter path wins; ties break
        // toward the lower announcing neighbor for determinism.
        let mut changed = false;
        for (r, mail) in inbox.into_iter().enumerate() {
            // Candidate set per prefix: keep current best (if not
            // originated-stale) and challenge it with the mail.
            let mut best: BTreeMap<Prefix<A>, (Route, Option<RouterId>)> = BTreeMap::new();
            for p in &self.originated[r] {
                best.insert(*p, (Route { path: vec![r] }, None));
            }
            for (from, prefix, route) in mail {
                if route.path.contains(&r) {
                    continue; // never accept a looped path
                }
                match best.get(&prefix) {
                    Some((cur, cur_nh)) => {
                        let better = route.path.len() < cur.path.len()
                            || (route.path.len() == cur.path.len()
                                && Some(from) < cur_nh.or(Some(usize::MAX)));
                        let replace = match cur_nh {
                            None => false, // originated routes are sticky
                            Some(_) => better,
                        };
                        if replace {
                            best.insert(prefix, (route, Some(from)));
                        }
                    }
                    None => {
                        best.insert(prefix, (route, Some(from)));
                    }
                }
            }
            if best != self.ribs[r].best {
                self.ribs[r].best = best;
                changed = true;
            }
        }
        changed
    }

    /// Runs rounds to a fixpoint (bounded by `max_rounds`). Returns the
    /// number of rounds taken, or `None` if it did not converge.
    pub fn converge(&mut self, max_rounds: usize) -> Option<usize> {
        (1..=max_rounds).find(|_| !self.step())
    }

    /// Announces a new prefix at a router (then call
    /// [`Self::converge`]).
    pub fn announce(&mut self, r: RouterId, prefix: Prefix<A>) {
        if !self.originated[r].contains(&prefix) {
            self.originated[r].push(prefix);
        }
        self.ribs[r].best.insert(prefix, (Route { path: vec![r] }, None));
    }

    /// Withdraws an originated prefix; stale copies wash out during
    /// reconvergence.
    pub fn withdraw(&mut self, r: RouterId, prefix: &Prefix<A>) {
        self.originated[r].retain(|p| p != prefix);
        self.ribs[r].best.remove(prefix);
        // Synchronous-round path vector has no explicit withdraw
        // messages here; purge the prefix everywhere whose best path
        // originates at r (the paper's routing substrate needs only the
        // converged states).
        for rib in &mut self.ribs {
            rib.best.retain(|p, (route, _)| !(p == prefix && route.origin() == r));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_trie::Ip4;

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    /// Line of 4 routers, two ASes: {0,1} and {2,3}. Router 0 and 3
    /// originate address space.
    fn two_as_line(aggregation: Aggregation) -> PathVector<Ip4> {
        let topo = Topology::line(4);
        let as_of = vec![1, 1, 2, 2];
        let originated = vec![
            vec![p("10.0.0.0/16"), p("10.0.1.0/24"), p("10.0.2.0/24")],
            vec![],
            vec![],
            vec![p("20.0.0.0/16"), p("20.0.5.0/24")],
        ];
        PathVector::new(topo, as_of, originated, aggregation)
    }

    #[test]
    fn converges_on_a_line() {
        let mut pv = two_as_line(Aggregation::None);
        let rounds = pv.converge(32).expect("must converge");
        assert!(rounds <= 6, "took {rounds} rounds");
        // Everyone knows everything without aggregation.
        for r in 0..4 {
            assert_eq!(pv.ribs()[r].prefixes().len(), 5, "router {r}");
        }
        // Next hops point the right way.
        assert_eq!(pv.ribs()[1].next_hop(&p("20.0.0.0/16")), Some(Some(2)));
        assert_eq!(pv.ribs()[2].next_hop(&p("10.0.0.0/16")), Some(Some(1)));
        assert_eq!(pv.ribs()[0].next_hop(&p("10.0.0.0/16")), Some(None));
    }

    #[test]
    fn paths_are_loop_free() {
        let mut pv = PathVector::new(
            Topology::ring(6),
            vec![1; 6],
            (0..6).map(|i| vec![Prefix::new(Ip4((i as u32) << 24), 8)]).collect(),
            Aggregation::None,
        );
        pv.converge(32).expect("must converge");
        for rib in pv.ribs() {
            for (route, _) in rib.best.values() {
                let mut seen = route.path.clone();
                seen.sort_unstable();
                seen.dedup();
                assert_eq!(seen.len(), route.path.len(), "loop in {:?}", route.path);
            }
        }
    }

    #[test]
    fn ring_prefers_the_short_side() {
        let mut pv = PathVector::new(
            Topology::ring(6),
            vec![1; 6],
            (0..6).map(|i| vec![Prefix::new(Ip4((i as u32 + 1) << 24), 8)]).collect(),
            Aggregation::None,
        );
        pv.converge(32).unwrap();
        // Router 1's route to router 5's prefix goes via 0 (2 hops), not
        // via 2-3-4 (4 hops).
        let (route, nh) = &pv.ribs()[1].best[&Prefix::new(Ip4(6 << 24), 8)];
        assert_eq!(*nh, Some(0));
        assert_eq!(route.path.len(), 2);
    }

    #[test]
    fn border_aggregation_hides_specifics_outside_the_as() {
        let mut pv = two_as_line(Aggregation::OwnAtBorder(16));
        pv.converge(32).expect("must converge");
        // Inside AS 1, router 1 sees 10.0/16 plus both /24 specifics.
        let r1: Vec<String> =
            pv.ribs()[1].prefixes().iter().map(|q| q.to_string()).collect();
        assert!(r1.contains(&"10.0.1.0/24".to_owned()), "{r1:?}");
        // Outside (router 2, AS 2), only the /16 aggregate of AS 1.
        let r2: Vec<String> =
            pv.ribs()[2].prefixes().iter().map(|q| q.to_string()).collect();
        assert!(r2.contains(&"10.0.0.0/16".to_owned()), "{r2:?}");
        assert!(!r2.iter().any(|s| s.ends_with("/24") && s.starts_with("10.")), "{r2:?}");
        // And once exported, never re-aggregated: router 3 still sees
        // the /16 (not some shorter form).
        assert!(pv.ribs()[3].prefixes().contains(&p("10.0.0.0/16")));
    }

    #[test]
    fn neighbor_tables_are_similar_inside_an_as() {
        let (topo, edges) = Topology::backbone(4, 2);
        let n = topo.len();
        let mut originated = vec![Vec::new(); n];
        for (i, &e) in edges.iter().enumerate() {
            let block = (i as u32 + 1) << 20;
            originated[e] = (0..8)
                .map(|j| Prefix::new(Ip4(block | (j << 8)), 24))
                .collect();
        }
        let mut pv = PathVector::new(topo, vec![1; n], originated, Aggregation::None);
        pv.converge(64).expect("must converge");
        // Any two adjacent core routers hold identical prefix sets.
        let a = pv.ribs()[0].prefixes();
        let b = pv.ribs()[1].prefixes();
        assert_eq!(a, b, "converged neighbor tables must agree on prefixes");
        assert_eq!(a.len(), 8 * edges.len());
    }

    #[test]
    fn announce_and_withdraw_reconverge() {
        let mut pv = two_as_line(Aggregation::None);
        pv.converge(32).unwrap();
        pv.announce(3, p("20.0.9.0/24"));
        pv.converge(32).expect("reconverges after announce");
        assert_eq!(pv.ribs()[0].next_hop(&p("20.0.9.0/24")), Some(Some(1)));

        pv.withdraw(3, &p("20.0.9.0/24"));
        pv.converge(32).expect("reconverges after withdraw");
        for r in 0..4 {
            assert!(
                !pv.ribs()[r].prefixes().contains(&p("20.0.9.0/24")),
                "router {r} kept a withdrawn route"
            );
        }
    }

    #[test]
    fn originated_routes_are_sticky() {
        let mut pv = two_as_line(Aggregation::None);
        pv.converge(32).unwrap();
        // Router 0 must still prefer its own origination of 10.0/16.
        assert_eq!(pv.ribs()[0].next_hop(&p("10.0.0.0/16")), Some(None));
    }
}
