//! A label-switched path with an aggregation point — the paper's Figure 8
//! scenario, end to end.
//!
//! Packets enter at an ingress router that performs a full IP lookup and
//! binds the FEC's label; intermediate routers switch on the label (one
//! access); routers whose tables *refine* the FEC are aggregation points
//! and must re-resolve — with a full lookup under plain MPLS, or with a
//! clue continuation when labels double as clue indices (Section 5.1).

use std::collections::HashMap;

use clue_core::mpls::{MplsMode, MplsRouter};
use clue_trie::{Address, BinaryTrie, Cost, Prefix};

/// One router's accounting for a packet traversing the LSP.
#[derive(Debug, Clone)]
pub struct LspHop {
    /// Index along the path (0 = ingress).
    pub position: usize,
    /// Memory accesses at this router.
    pub accesses: u64,
    /// Whether this router was an aggregation point for the label.
    pub aggregation_point: bool,
}

/// A linear label-switched path.
#[derive(Debug)]
pub struct LabelSwitchedPath<A: Address> {
    ingress_fib: BinaryTrie<A, ()>,
    /// FEC → label binding at the ingress.
    labels: HashMap<Prefix<A>, u32>,
    /// The transit routers, ingress excluded.
    transit: Vec<MplsRouter<A>>,
}

impl<A: Address> LabelSwitchedPath<A> {
    /// Builds a path: the ingress holds `fecs` (one label each); each
    /// transit router holds `tables[i]` — which may refine the FECs,
    /// creating aggregation points.
    pub fn new(fecs: Vec<Prefix<A>>, tables: Vec<Vec<Prefix<A>>>) -> Self {
        let ingress_fib: BinaryTrie<A, ()> = fecs.iter().map(|p| (*p, ())).collect();
        let labels: HashMap<Prefix<A>, u32> =
            fecs.iter().enumerate().map(|(i, p)| (*p, i as u32)).collect();
        // Each router's Claim 1 knowledge is its upstream neighbor's
        // table: the ingress FEC set first, then each previous table.
        let mut upstream: Vec<Prefix<A>> = fecs.clone();
        let transit = tables
            .into_iter()
            .map(|own| {
                let r = MplsRouter::new(&own, &fecs, &upstream);
                upstream = own;
                r
            })
            .collect();
        LabelSwitchedPath { ingress_fib, labels, transit }
    }

    /// Number of routers on the path (ingress + transit).
    pub fn len(&self) -> usize {
        1 + self.transit.len()
    }

    /// `true` iff the path has no transit routers.
    pub fn is_empty(&self) -> bool {
        self.transit.is_empty()
    }

    /// Sends one packet down the path, returning per-hop accounting.
    /// Returns `None` if the destination matches no FEC at the ingress.
    pub fn send(&self, dest: A, mode: MplsMode) -> Option<Vec<LspHop>> {
        let mut hops = Vec::with_capacity(self.len());
        // Ingress: full IP lookup to classify into a FEC + bind label.
        let mut cost = Cost::new();
        let fec = self
            .ingress_fib
            .lookup_counted(dest, &mut cost)
            .map(|r| self.ingress_fib.prefix(r))?;
        let label = *self.labels.get(&fec).expect("ingress FIB holds exactly the FECs");
        hops.push(LspHop { position: 0, accesses: cost.total(), aggregation_point: false });

        for (i, router) in self.transit.iter().enumerate() {
            let mut cost = Cost::new();
            let decision = router.switch(label, dest, mode, &mut cost);
            hops.push(LspHop {
                position: i + 1,
                accesses: cost.total(),
                aggregation_point: decision.aggregation_point,
            });
        }
        Some(hops)
    }

    /// Total accesses for one packet, per mode.
    pub fn total_accesses(&self, dest: A, mode: MplsMode) -> Option<u64> {
        self.send(dest, mode).map(|hops| hops.iter().map(|h| h.accesses).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_trie::Ip4;

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    /// Figure 8: R1 ingress → R2, R3 pure switches → R4 aggregation
    /// point holding 10.0.0.0/24 inside the 10.0.0.0/16 FEC.
    fn figure8() -> LabelSwitchedPath<Ip4> {
        let fecs = vec![p("10.0.0.0/16"), p("20.0.0.0/8")];
        let tables = vec![
            vec![p("10.0.0.0/16"), p("20.0.0.0/8")], // R2
            vec![p("10.0.0.0/16"), p("20.0.0.0/8")], // R3
            vec![p("10.0.0.0/16"), p("10.0.0.0/24"), p("20.0.0.0/8")], // R4
        ];
        LabelSwitchedPath::new(fecs, tables)
    }

    #[test]
    fn pure_switching_costs_one_access_per_transit_hop() {
        let path = figure8();
        let hops = path.send("20.1.2.3".parse().unwrap(), MplsMode::Plain).unwrap();
        assert_eq!(hops.len(), 4);
        for h in &hops[1..] {
            assert_eq!(h.accesses, 1);
            assert!(!h.aggregation_point);
        }
    }

    #[test]
    fn aggregation_point_is_detected_at_r4() {
        let path = figure8();
        let hops = path.send("10.0.0.9".parse().unwrap(), MplsMode::Plain).unwrap();
        assert!(!hops[1].aggregation_point);
        assert!(!hops[2].aggregation_point);
        assert!(hops[3].aggregation_point);
        assert!(hops[3].accesses > 1);
    }

    #[test]
    fn clue_mode_is_cheaper_at_the_aggregation_point() {
        let path = figure8();
        let dest: Ip4 = "10.0.0.9".parse().unwrap();
        let plain = path.total_accesses(dest, MplsMode::Plain).unwrap();
        let clue = path.total_accesses(dest, MplsMode::WithClues).unwrap();
        assert!(clue < plain, "clue {clue} !< plain {plain}");
        // And identical elsewhere.
        let other: Ip4 = "20.1.2.3".parse().unwrap();
        assert_eq!(
            path.total_accesses(other, MplsMode::Plain),
            path.total_accesses(other, MplsMode::WithClues)
        );
    }

    #[test]
    fn unmatched_destination_returns_none() {
        let path = figure8();
        assert!(path.send("99.0.0.1".parse().unwrap(), MplsMode::Plain).is_none());
    }
}
