//! Workload runner: many packets over a network, with the per-router and
//! per-hop aggregations the paper's Figure 1 and Sections 5.3–5.4 need.

use clue_trie::{Address, CostStats};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

use crate::network::Network;
use crate::topology::RouterId;

/// Aggregated results of a multi-packet run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Per-router access statistics (indexed by router id).
    pub per_router: Vec<CostStats>,
    /// Access statistics by hop position along the path (0 = source).
    pub per_hop_position: Vec<CostStats>,
    /// Mean BMP length by hop position.
    pub bmp_len_by_position: Vec<f64>,
    /// Packets routed.
    pub packets: usize,
    /// Packets that reached their destination.
    pub delivered: usize,
    /// Total accesses across the whole run.
    pub total_accesses: u64,
    /// Hops that actually consulted a clue.
    pub clue_hops: u64,
    /// All hops taken.
    pub total_hops: u64,
}

impl RunStats {
    /// Mean accesses per hop over the whole run.
    pub fn mean_per_hop(&self) -> f64 {
        let hops: u64 = self.per_router.iter().map(|s| s.samples()).sum();
        if hops == 0 {
            0.0
        } else {
            self.total_accesses as f64 / hops as f64
        }
    }

    /// Mean accesses per hop, excluding each packet's first (clue-less)
    /// hop — the steady-state cost of a clue-routed core.
    pub fn mean_per_clue_hop(&self) -> f64 {
        let (mut total, mut n) = (0.0, 0u64);
        for s in self.per_hop_position.iter().skip(1) {
            total += s.mean() * s.samples() as f64;
            n += s.samples();
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }
}

/// Runs `packets` random edge-to-edge packets over the network.
///
/// Sources are drawn from `sources`; destinations from random origins'
/// address space (excluding an origin co-located with the source, so
/// every packet actually crosses the network).
pub fn run_workload<A: Address>(
    net: &mut Network<A>,
    sources: &[RouterId],
    packets: usize,
    seed: u64,
) -> RunStats {
    assert!(!sources.is_empty(), "need at least one source");
    let origins = net.config().origins.clone();
    assert!(!origins.is_empty(), "need at least one origin");
    let mut rng = StdRng::seed_from_u64(seed);

    let n = net.topology().len();
    let mut per_router = vec![CostStats::new(); n];
    let mut per_hop_position: Vec<CostStats> = Vec::new();
    let mut bmp_len_sum: Vec<(f64, u64)> = Vec::new();
    let mut delivered = 0usize;
    let mut total = 0u64;
    let mut clue_hops = 0u64;
    let mut total_hops = 0u64;

    for _ in 0..packets {
        let src = *sources.choose(&mut rng).expect("non-empty sources");
        // Pick an origin different from the source router itself.
        let oi = loop {
            let i = rng.random_range(0..origins.len());
            if origins[i] != src || origins.len() == 1 {
                break i;
            }
        };
        let dest = net.random_destination(oi, &mut rng);
        let trace = net.route_packet(src, dest);
        if trace.delivered {
            delivered += 1;
        }
        for (pos, hop) in trace.hops.iter().enumerate() {
            // A router's load includes any Section 5.4 work it performs
            // on behalf of its downstream neighbor.
            let mut full = hop.cost;
            full += hop.shift_cost;
            per_router[hop.router].record(full);
            if per_hop_position.len() <= pos {
                per_hop_position.resize(pos + 1, CostStats::new());
                bmp_len_sum.resize(pos + 1, (0.0, 0));
            }
            per_hop_position[pos].record(full);
            let (s, c) = &mut bmp_len_sum[pos];
            *s += hop.bmp.map_or(0, |p| p.len()) as f64;
            *c += 1;
            total += full.total();
            total_hops += 1;
            if hop.used_clue {
                clue_hops += 1;
            }
        }
    }

    RunStats {
        per_router,
        bmp_len_by_position: bmp_len_sum
            .iter()
            .map(|(s, c)| if *c == 0 { 0.0 } else { s / *c as f64 })
            .collect(),
        per_hop_position,
        packets,
        delivered,
        total_accesses: total,
        clue_hops,
        total_hops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;
    use crate::topology::Topology;
    use clue_core::{EngineConfig, Method};
    use clue_lookup::Family;
    use clue_trie::Ip4;

    fn build(method: Method, participation: f64) -> (Network<Ip4>, Vec<RouterId>) {
        let (topo, edges) = Topology::backbone(4, 2);
        let mut cfg = NetworkConfig::new(edges.clone(), EngineConfig::new(Family::Regular, method));
        cfg.specifics_per_origin = 12;
        cfg.participation = participation;
        cfg.seed = 42;
        (Network::build(topo, cfg), edges)
    }

    #[test]
    fn workload_delivers_everything_on_connected_topology() {
        let (mut net, edges) = build(Method::Advance, 1.0);
        let stats = run_workload(&mut net, &edges, 200, 1);
        assert_eq!(stats.packets, 200);
        assert_eq!(stats.delivered, 200);
        assert!(stats.total_accesses > 0);
    }

    #[test]
    fn clue_hops_are_much_cheaper_than_first_hops() {
        let (mut net, edges) = build(Method::Advance, 1.0);
        let stats = run_workload(&mut net, &edges, 300, 2);
        let first = stats.per_hop_position[0].mean();
        let steady = stats.mean_per_clue_hop();
        assert!(
            steady * 3.0 < first,
            "steady {steady:.2} not ≪ first-hop {first:.2}"
        );
    }

    #[test]
    fn advance_beats_common_network_wide() {
        let (mut adv, edges) = build(Method::Advance, 1.0);
        let (mut com, _) = build(Method::Common, 1.0);
        let sa = run_workload(&mut adv, &edges, 200, 3);
        let sc = run_workload(&mut com, &edges, 200, 3);
        assert!(
            sa.total_accesses * 2 < sc.total_accesses,
            "advance {} vs common {}",
            sa.total_accesses,
            sc.total_accesses
        );
    }

    #[test]
    fn partial_participation_still_helps() {
        let (mut full, edges) = build(Method::Advance, 1.0);
        let (mut half, _) = build(Method::Advance, 0.5);
        let (mut none, _) = build(Method::Common, 1.0);
        let sf = run_workload(&mut full, &edges, 200, 4);
        let sh = run_workload(&mut half, &edges, 200, 4);
        let sn = run_workload(&mut none, &edges, 200, 4);
        assert!(sf.total_accesses <= sh.total_accesses);
        assert!(
            sh.total_accesses < sn.total_accesses,
            "half {} should beat none {}",
            sh.total_accesses,
            sn.total_accesses
        );
    }

    #[test]
    fn bmp_length_curve_is_increasing() {
        let (mut net, edges) = build(Method::Advance, 1.0);
        let stats = run_workload(&mut net, &edges, 200, 5);
        let curve = &stats.bmp_len_by_position;
        assert!(curve.len() >= 3);
        assert!(
            curve.last().unwrap() > &curve[0],
            "BMP curve should grow: {curve:?}"
        );
    }
}
