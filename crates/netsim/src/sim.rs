//! Workload runner: many packets over a network, with the per-router and
//! per-hop aggregations the paper's Figure 1 and Sections 5.3–5.4 need.

use clue_telemetry::{
    Counter, Histogram, Registry, MEMORY_REFERENCE_BOUNDS, PREFIX_LENGTH_BOUNDS,
};
use clue_trie::{Address, CostStats};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

use crate::network::Network;
use crate::topology::RouterId;

/// The simulator's per-hop metric bundle, registered under
/// `clue_netsim_*`.
struct HopTelemetry {
    packets: Counter,
    delivered: Counter,
    hops: Counter,
    clue_hops: Counter,
    hop_references: Histogram,
    bmp_length: Histogram,
}

impl HopTelemetry {
    fn registered(registry: &Registry) -> Self {
        HopTelemetry {
            packets: registry.counter("clue_netsim_packets_total", "Packets injected"),
            delivered: registry
                .counter("clue_netsim_delivered_total", "Packets that reached their destination"),
            hops: registry.counter("clue_netsim_hops_total", "Hops taken across all packets"),
            clue_hops: registry
                .counter("clue_netsim_clue_hops_total", "Hops that consulted a clue"),
            hop_references: registry.histogram(
                "clue_netsim_hop_memory_references",
                "Memory references per hop (including Section 5.4 shift work)",
                MEMORY_REFERENCE_BOUNDS,
            ),
            bmp_length: registry.histogram(
                "clue_netsim_bmp_length",
                "Length of the BMP found at each hop",
                PREFIX_LENGTH_BOUNDS,
            ),
        }
    }
}

/// Mirrors one [`CostStats`] accumulator into `registry` as gauges
/// `{name}_mean_accesses`, `{name}_max_accesses` and `{name}_samples` —
/// the registry view of the paper's per-table averages.
pub fn export_cost_stats(registry: &Registry, name: &str, stats: &CostStats) {
    registry
        .gauge(&format!("{name}_mean_accesses"), "Mean memory accesses per lookup")
        .set(stats.mean());
    registry
        .gauge(&format!("{name}_max_accesses"), "Worst single lookup observed")
        .set(stats.max() as f64);
    registry
        .gauge(&format!("{name}_samples"), "Lookups accumulated")
        .set(stats.samples() as f64);
}

/// Aggregated results of a multi-packet run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Per-router access statistics (indexed by router id).
    pub per_router: Vec<CostStats>,
    /// Access statistics by hop position along the path (0 = source).
    pub per_hop_position: Vec<CostStats>,
    /// Mean BMP length by hop position.
    pub bmp_len_by_position: Vec<f64>,
    /// Packets routed.
    pub packets: usize,
    /// Packets that reached their destination.
    pub delivered: usize,
    /// Total accesses across the whole run.
    pub total_accesses: u64,
    /// Hops that actually consulted a clue.
    pub clue_hops: u64,
    /// All hops taken.
    pub total_hops: u64,
}

impl RunStats {
    /// Mean accesses per hop over the whole run.
    pub fn mean_per_hop(&self) -> f64 {
        let hops: u64 = self.per_router.iter().map(|s| s.samples()).sum();
        if hops == 0 {
            0.0
        } else {
            self.total_accesses as f64 / hops as f64
        }
    }

    /// Mean accesses per hop, excluding each packet's first (clue-less)
    /// hop — the steady-state cost of a clue-routed core.
    pub fn mean_per_clue_hop(&self) -> f64 {
        let (mut total, mut n) = (0.0, 0u64);
        for s in self.per_hop_position.iter().skip(1) {
            total += s.mean() * s.samples() as f64;
            n += s.samples();
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }

    /// Mirrors the run's summary figures into `registry` as gauges
    /// (`clue_netsim_mean_accesses_per_hop`, …) plus [`CostStats`]
    /// mirrors for the first-hop and steady-state positions — the
    /// registry view of a netsim report.
    pub fn export_into(&self, registry: &Registry) {
        registry
            .gauge("clue_netsim_mean_accesses_per_hop", "Mean memory accesses per hop")
            .set(self.mean_per_hop());
        registry
            .gauge(
                "clue_netsim_mean_accesses_per_clue_hop",
                "Mean memory accesses per hop, first hops excluded",
            )
            .set(self.mean_per_clue_hop());
        registry
            .gauge("clue_netsim_clue_hop_fraction", "Fraction of hops that consulted a clue")
            .set(if self.total_hops == 0 {
                0.0
            } else {
                self.clue_hops as f64 / self.total_hops as f64
            });
        registry
            .gauge("clue_netsim_delivery_rate", "Fraction of packets delivered")
            .set(if self.packets == 0 {
                0.0
            } else {
                self.delivered as f64 / self.packets as f64
            });
        if let Some(first) = self.per_hop_position.first() {
            export_cost_stats(registry, "clue_netsim_first_hop", first);
        }
        if self.per_hop_position.len() > 1 {
            let mut steady = CostStats::new();
            for s in &self.per_hop_position[1..] {
                steady.merge(s);
            }
            export_cost_stats(registry, "clue_netsim_clue_hop", &steady);
        }
    }
}

/// Runs `packets` random edge-to-edge packets over the network.
///
/// Sources are drawn from `sources`; destinations from random origins'
/// address space (excluding an origin co-located with the source, so
/// every packet actually crosses the network).
pub fn run_workload<A: Address>(
    net: &mut Network<A>,
    sources: &[RouterId],
    packets: usize,
    seed: u64,
) -> RunStats {
    run_workload_impl(net, sources, packets, seed, None)
}

/// As [`run_workload`], additionally recording per-hop telemetry
/// (`clue_netsim_*` counters and histograms) into `registry` while the
/// run progresses and mirroring the final [`RunStats`] summary into it.
pub fn run_workload_instrumented<A: Address>(
    net: &mut Network<A>,
    sources: &[RouterId],
    packets: usize,
    seed: u64,
    registry: &Registry,
) -> RunStats {
    let telemetry = HopTelemetry::registered(registry);
    let stats = run_workload_impl(net, sources, packets, seed, Some(&telemetry));
    stats.export_into(registry);
    stats
}

fn run_workload_impl<A: Address>(
    net: &mut Network<A>,
    sources: &[RouterId],
    packets: usize,
    seed: u64,
    telemetry: Option<&HopTelemetry>,
) -> RunStats {
    assert!(!sources.is_empty(), "need at least one source");
    let origins = net.config().origins.clone();
    assert!(!origins.is_empty(), "need at least one origin");
    let mut rng = StdRng::seed_from_u64(seed);

    let n = net.topology().len();
    let mut per_router = vec![CostStats::new(); n];
    let mut per_hop_position: Vec<CostStats> = Vec::new();
    let mut bmp_len_sum: Vec<(f64, u64)> = Vec::new();
    let mut delivered = 0usize;
    let mut total = 0u64;
    let mut clue_hops = 0u64;
    let mut total_hops = 0u64;

    for _ in 0..packets {
        let src = *sources.choose(&mut rng).expect("non-empty sources");
        // Pick an origin different from the source router itself.
        let oi = loop {
            let i = rng.random_range(0..origins.len());
            if origins[i] != src || origins.len() == 1 {
                break i;
            }
        };
        let dest = net.random_destination(oi, &mut rng);
        let trace = net.route_packet(src, dest);
        if trace.delivered {
            delivered += 1;
        }
        if let Some(t) = telemetry {
            t.packets.inc();
            if trace.delivered {
                t.delivered.inc();
            }
        }
        for (pos, hop) in trace.hops.iter().enumerate() {
            // A router's load includes any Section 5.4 work it performs
            // on behalf of its downstream neighbor.
            let mut full = hop.cost;
            full += hop.shift_cost;
            per_router[hop.router].record(full);
            if per_hop_position.len() <= pos {
                per_hop_position.resize(pos + 1, CostStats::new());
                bmp_len_sum.resize(pos + 1, (0.0, 0));
            }
            per_hop_position[pos].record(full);
            let (s, c) = &mut bmp_len_sum[pos];
            *s += hop.bmp.map_or(0, |p| p.len()) as f64;
            *c += 1;
            total += full.total();
            total_hops += 1;
            if hop.used_clue {
                clue_hops += 1;
            }
            if let Some(t) = telemetry {
                t.hops.inc();
                if hop.used_clue {
                    t.clue_hops.inc();
                }
                t.hop_references.observe(full.total());
                t.bmp_length.observe(hop.bmp.map_or(0, |p| p.len()) as u64);
            }
        }
    }

    RunStats {
        per_router,
        bmp_len_by_position: bmp_len_sum
            .iter()
            .map(|(s, c)| if *c == 0 { 0.0 } else { s / *c as f64 })
            .collect(),
        per_hop_position,
        packets,
        delivered,
        total_accesses: total,
        clue_hops,
        total_hops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;
    use crate::topology::Topology;
    use clue_core::{EngineConfig, Method};
    use clue_lookup::Family;
    use clue_trie::Ip4;

    fn build(method: Method, participation: f64) -> (Network<Ip4>, Vec<RouterId>) {
        let (topo, edges) = Topology::backbone(4, 2);
        let mut cfg = NetworkConfig::new(edges.clone(), EngineConfig::new(Family::Regular, method));
        cfg.specifics_per_origin = 12;
        cfg.participation = participation;
        cfg.seed = 42;
        (Network::build(topo, cfg), edges)
    }

    #[test]
    fn workload_delivers_everything_on_connected_topology() {
        let (mut net, edges) = build(Method::Advance, 1.0);
        let stats = run_workload(&mut net, &edges, 200, 1);
        assert_eq!(stats.packets, 200);
        assert_eq!(stats.delivered, 200);
        assert!(stats.total_accesses > 0);
    }

    #[test]
    fn clue_hops_are_much_cheaper_than_first_hops() {
        let (mut net, edges) = build(Method::Advance, 1.0);
        let stats = run_workload(&mut net, &edges, 300, 2);
        let first = stats.per_hop_position[0].mean();
        let steady = stats.mean_per_clue_hop();
        assert!(
            steady * 3.0 < first,
            "steady {steady:.2} not ≪ first-hop {first:.2}"
        );
    }

    #[test]
    fn advance_beats_common_network_wide() {
        let (mut adv, edges) = build(Method::Advance, 1.0);
        let (mut com, _) = build(Method::Common, 1.0);
        let sa = run_workload(&mut adv, &edges, 200, 3);
        let sc = run_workload(&mut com, &edges, 200, 3);
        assert!(
            sa.total_accesses * 2 < sc.total_accesses,
            "advance {} vs common {}",
            sa.total_accesses,
            sc.total_accesses
        );
    }

    #[test]
    fn partial_participation_still_helps() {
        let (mut full, edges) = build(Method::Advance, 1.0);
        let (mut half, _) = build(Method::Advance, 0.5);
        let (mut none, _) = build(Method::Common, 1.0);
        let sf = run_workload(&mut full, &edges, 200, 4);
        let sh = run_workload(&mut half, &edges, 200, 4);
        let sn = run_workload(&mut none, &edges, 200, 4);
        assert!(sf.total_accesses <= sh.total_accesses);
        assert!(
            sh.total_accesses < sn.total_accesses,
            "half {} should beat none {}",
            sh.total_accesses,
            sn.total_accesses
        );
    }

    #[test]
    fn instrumented_run_mirrors_stats_into_registry() {
        let (mut net, edges) = build(Method::Advance, 1.0);
        let registry = Registry::new();
        let stats = run_workload_instrumented(&mut net, &edges, 100, 7, &registry);
        let packets = registry.counter("clue_netsim_packets_total", "");
        assert_eq!(packets.get(), stats.packets as u64);
        let delivered = registry.counter("clue_netsim_delivered_total", "");
        assert_eq!(delivered.get(), stats.delivered as u64);
        let hops = registry.counter("clue_netsim_hops_total", "");
        assert_eq!(hops.get(), stats.total_hops);
        let clue_hops = registry.counter("clue_netsim_clue_hops_total", "");
        assert_eq!(clue_hops.get(), stats.clue_hops);
        let refs = registry
            .histogram("clue_netsim_hop_memory_references", "", MEMORY_REFERENCE_BOUNDS)
            .snapshot();
        assert_eq!(refs.count, stats.total_hops);
        assert_eq!(refs.sum, stats.total_accesses);
        // Summary gauges are mirrored too.
        assert!(registry.contains("clue_netsim_mean_accesses_per_hop"));
        assert!(registry.contains("clue_netsim_delivery_rate"));
        assert!(registry.contains("clue_netsim_first_hop_mean_accesses"));
        assert!(registry.contains("clue_netsim_clue_hop_mean_accesses"));
    }

    #[test]
    fn bmp_length_curve_is_increasing() {
        let (mut net, edges) = build(Method::Advance, 1.0);
        let stats = run_workload(&mut net, &edges, 200, 5);
        let curve = &stats.bmp_len_by_position;
        assert!(curve.len() >= 3);
        assert!(
            curve.last().unwrap() > &curve[0],
            "BMP curve should grow: {curve:?}"
        );
    }
}
