//! The live-churn workload: lookups served *through* a route-update
//! stream.
//!
//! [`run_workload_parallel`](crate::run_workload_parallel) shards a
//! static snapshot; this driver exercises the regime a deployed
//! router actually lives in. One **builder** thread owns the mutable
//! [`ClueEngine`], applies one [`RouteUpdate`] batch at a time
//! (announce → insert, withdraw → delete, modify → delete + re-insert
//! of the same prefix, forcing the localized reclassify), re-freezes,
//! and publishes each snapshot through an [`EpochEngine`]. Meanwhile
//! `readers` threads pin snapshots and run `lookup_batch` over a
//! deterministic pre-generated packet stream, never blocking on the
//! builder.
//!
//! Two numbers characterise the run:
//!
//! * **staleness** — how many lookups were answered from snapshot `N`
//!   while `N+1` already existed, and the worst epoch lag observed
//!   (readers are lock-free, so some staleness is the price of never
//!   stalling);
//! * **rebuild latency** — microseconds per freeze-and-publish, the
//!   update-cost axis that "Scaling IP Lookup" treats as co-equal
//!   with lookup throughput.
//!
//! The driver is hardened for partial failure: it returns a typed
//! [`ChurnError`] instead of panicking, reader-thread panics are
//! caught and attributed per reader (a panicking reader unwinds
//! through its `EpochGuard`, quiescing it, so reclamation never
//! wedges), and an optional [`RebuildWatchdog`] discards over-budget
//! rebuilds with backoff-and-retry instead of publishing over-stale
//! snapshots — one slow rebuild can delay convergence but never stop
//! the serving loop. The chaos harness
//! ([`run_chaos`](crate::run_chaos)) injects exactly these failures.
//!
//! With [`ChurnDriverConfig::check`] set, the run ends by freezing a
//! from-scratch engine built on [`end_state`] of the stream and
//! asserting the final published snapshot is
//! [`bit_identical`](FrozenEngine::bit_identical) to it — the
//! incremental path provably converges to the batch path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::time::Instant;

use clue_core::{
    ClueEngine, Decision, EngineConfig, EngineStats, EpochEngine, FreezeError, Method,
};
use clue_lookup::Family;
use clue_tablegen::{end_state, RouteUpdate, UpdateKind};
use clue_telemetry::{ChurnTelemetry, DegradationTelemetry};
use clue_trie::{Address, BinaryTrie, Cost, Prefix};

use crate::faults::{ChurnFaultPlan, RebuildWatchdog};

/// Why a churn run could not complete. Every failure the driver can
/// hit is typed here — the serving loop itself never panics.
#[derive(Debug)]
pub enum ChurnError {
    /// The engine pair cannot be frozen (wrong family, indexed table
    /// or a cache — see [`FreezeError::feature`]).
    Freeze(FreezeError),
    /// `config.readers` was zero.
    NoReaders,
    /// The derived traffic pool was empty — nothing to serve.
    EmptyTraffic,
    /// A reader thread panicked outside any injected fault plan; the
    /// panic was caught and is attributed here instead of poisoning
    /// the join.
    ReaderPanicked {
        /// Index of the reader that panicked.
        reader: usize,
        /// The panic payload, stringified.
        message: String,
    },
}

impl std::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnError::Freeze(e) => {
                write!(f, "cannot freeze the engine ({} blocks it): {e}", e.feature())
            }
            ChurnError::NoReaders => write!(f, "churn needs at least one reader"),
            ChurnError::EmptyTraffic => write!(f, "churn traffic pool is empty"),
            ChurnError::ReaderPanicked { reader, message } => {
                write!(f, "reader {reader} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for ChurnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChurnError::Freeze(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FreezeError> for ChurnError {
    fn from(e: FreezeError) -> Self {
        ChurnError::Freeze(e)
    }
}

/// Parameters of the churn driver.
#[derive(Debug, Clone)]
pub struct ChurnDriverConfig {
    /// Reader threads serving lookups concurrently with the builder.
    pub readers: usize,
    /// Lookups a reader performs per pinned snapshot (one guard, one
    /// `lookup_batch` call).
    pub chunk: usize,
    /// Distinct packets pre-generated for the readers to cycle over.
    pub traffic: usize,
    /// Seed for the packet stream.
    pub seed: u64,
    /// Verify the final snapshot against a from-scratch rebuild.
    pub check: bool,
    /// Budget-and-backoff acceptance gate for rebuilds (`None` =
    /// publish whatever the freeze produces, however long it took).
    pub watchdog: Option<RebuildWatchdog>,
    /// Deterministic failures to inject (chaos harness only).
    pub fault: Option<ChurnFaultPlan>,
}

impl ChurnDriverConfig {
    /// A driver with `readers` threads and defaults sized for tests
    /// and the CLI smoke: 256-lookup chunks over 4 096 packets, no
    /// watchdog, no injected faults.
    pub fn new(readers: usize, seed: u64) -> Self {
        ChurnDriverConfig {
            readers,
            chunk: 256,
            traffic: 4_096,
            seed,
            check: true,
            watchdog: None,
            fault: None,
        }
    }
}

/// What a churn run did and observed.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Final published epoch (= successful publishes).
    pub epochs: u64,
    /// Individual route updates applied by the builder.
    pub updates_applied: u64,
    /// Lookups served across all readers that completed cleanly.
    pub lookups_total: u64,
    /// Lookups answered from a snapshot that had already been
    /// superseded when their batch finished.
    pub stale_lookups: u64,
    /// Stale lookups attributed to the epoch they were served from.
    pub stale_by_epoch: Vec<u64>,
    /// Worst epoch lag any reader batch observed.
    pub max_staleness: u64,
    /// Microseconds per accepted freeze, one entry per published epoch.
    pub rebuild_us: Vec<u64>,
    /// Lookups served per reader thread (0 for a panicked reader).
    pub reader_lookups: Vec<u64>,
    /// Per-class lookup counts aggregated from every completed
    /// `lookup_batch` — each served lookup counted exactly once
    /// (malformed clues included), matching the scalar engine's
    /// accounting for the same traffic.
    pub batch_stats: EngineStats,
    /// Caught reader panics, attributed `(reader index, message)`.
    /// Non-empty only under an injected fault plan — an unplanned
    /// panic fails the run as [`ChurnError::ReaderPanicked`].
    pub reader_panics: Vec<(usize, String)>,
    /// Freeze attempts that exceeded the watchdog budget.
    pub watchdog_trips: u64,
    /// Backoff-then-retry cycles the watchdog scheduled.
    pub backoff_retries: u64,
    /// Epochs skipped after exhausting watchdog retries.
    pub skipped_epochs: u64,
    /// Rebuilds that landed within budget after at least one trip.
    pub recovered_rebuilds: u64,
    /// Unbudgeted convergence publishes issued for skipped epochs.
    pub recovery_publishes: u64,
    /// Retired snapshots still unreclaimed after the final grace
    /// period (0 — every superseded snapshot was freed).
    pub retired_after: usize,
    /// `--check` verdict: final snapshot bit-identical to the
    /// from-scratch freeze of the end-state table (`None` = not run).
    pub final_identical: Option<bool>,
}

impl ChurnReport {
    /// Mean rebuild latency in microseconds (0 with no epochs).
    pub fn mean_rebuild_us(&self) -> f64 {
        if self.rebuild_us.is_empty() {
            0.0
        } else {
            self.rebuild_us.iter().sum::<u64>() as f64 / self.rebuild_us.len() as f64
        }
    }

    /// Worst rebuild latency in microseconds.
    pub fn max_rebuild_us(&self) -> u64 {
        self.rebuild_us.iter().copied().max().unwrap_or(0)
    }

    /// Stale fraction of all lookups served.
    pub fn stale_fraction(&self) -> f64 {
        if self.lookups_total == 0 {
            0.0
        } else {
            self.stale_lookups as f64 / self.lookups_total as f64
        }
    }
}

/// Applies one update to the live engine. Modify is delete +
/// re-insert of the same prefix: the set is unchanged but the entry's
/// FD, continuation and Claim-1 bits are recomputed, exactly like an
/// attribute change on a real feed.
fn apply_update<A: Address>(engine: &mut ClueEngine<A>, update: &RouteUpdate<A>) {
    match update.kind {
        UpdateKind::Announce => engine.add_receiver_route(update.prefix),
        UpdateKind::Withdraw => {
            engine.remove_receiver_route(&update.prefix);
        }
        UpdateKind::Modify => {
            engine.remove_receiver_route(&update.prefix);
            engine.add_receiver_route(update.prefix);
        }
    }
}

/// Stringifies a caught panic payload for attribution.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs the churn workload for a sender/receiver pair and an update
/// stream (see the module docs). Lookup traffic is derived
/// deterministically from `config.seed`; scheduling (how many lookups
/// each reader serves, how stale they run) is timing-dependent by
/// nature, but every *answer* comes from some published snapshot and
/// the final state is checkable.
///
/// Churn observability goes to `telemetry`; degradation events
/// (caught panics, watchdog trips, retries, recoveries) additionally
/// go to `degradation` when attached.
///
/// # Errors
/// [`ChurnError::NoReaders`] / [`ChurnError::EmptyTraffic`] on a
/// config that cannot serve; [`ChurnError::Freeze`] if the pair stops
/// being freezable (the driver builds a Regular-family, hashed,
/// cache-less engine, so this only fires for address families without
/// a flattened walk); [`ChurnError::ReaderPanicked`] for a caught
/// reader panic that no fault plan injected. The driver itself does
/// not panic.
pub fn run_churn<A: Address>(
    sender: &[Prefix<A>],
    receiver: &[Prefix<A>],
    batches: &[Vec<RouteUpdate<A>>],
    config: &ChurnDriverConfig,
    telemetry: Option<&ChurnTelemetry>,
    degradation: Option<&DegradationTelemetry>,
) -> Result<ChurnReport, ChurnError> {
    if config.readers == 0 {
        return Err(ChurnError::NoReaders);
    }
    let engine_config = EngineConfig::new(Family::Regular, Method::Advance);
    let mut live = ClueEngine::precomputed(sender, receiver, engine_config);
    let mut epochs = EpochEngine::new(&live)?;
    if let Some(t) = telemetry {
        epochs.attach_telemetry(t.clone());
    }

    // The packet stream: destinations covered by the sender table,
    // each carrying the sender's BMP as its clue (None where the
    // sender has no route — the clueless case rides along).
    let (dests, clues) = churn_traffic(sender, receiver, config);
    if dests.is_empty() {
        return Err(ChurnError::EmptyTraffic);
    }

    let final_epoch = batches.len() as u64;
    let stale_by_epoch: Vec<AtomicU64> =
        (0..=final_epoch).map(|_| AtomicU64::new(0)).collect();
    let max_staleness = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let mut rebuild_us = Vec::with_capacity(batches.len());
    let mut updates_applied = 0u64;
    let mut reader_lookups = vec![0u64; config.readers];
    let mut batch_stats = EngineStats::default();
    let mut reader_panics: Vec<(usize, String)> = Vec::new();
    let mut builder_error: Option<ChurnError> = None;
    let mut watchdog_trips = 0u64;
    let mut backoff_retries = 0u64;
    let mut skipped_epochs = 0u64;
    let mut recovered_rebuilds = 0u64;
    let mut recovery_publishes = 0u64;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.readers)
            .map(|r| {
                let mut reader = epochs.reader();
                let (dests, clues) = (&dests, &clues);
                let (stale_by_epoch, max_staleness, stop) =
                    (&stale_by_epoch, &max_staleness, &stop);
                let telemetry = telemetry.cloned();
                let chunk = config.chunk.min(dests.len()).max(1);
                let injected_panic = config.fault.as_ref().and_then(|f| f.panic_reader);
                scope.spawn(move || {
                    // Catch panics here so a dying reader is an
                    // attributed event, not a poisoned join. Unwinding
                    // drops the pinned guard (quiescing the slot) and
                    // the reader registration, so reclamation and the
                    // epoch counter stay sound — the epoch-module
                    // catch-unwind tests pin exactly this.
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                        let mut out = vec![Decision::default(); chunk];
                        let mut served = 0u64;
                        let mut stale = 0u64;
                        let mut stats = EngineStats::default();
                        // Stagger start offsets so readers don't
                        // stampede the same cache lines.
                        let mut pos = (r * chunk * 7) % dests.len();
                        loop {
                            let end = (pos + chunk).min(dests.len());
                            let window = end - pos;
                            let guard = reader.pin();
                            let chunk_stats = guard.lookup_batch(
                                &dests[pos..end],
                                &clues[pos..end],
                                &mut out[..window],
                            );
                            let lag = guard.lag();
                            let epoch = guard.epoch();
                            if injected_panic == Some(r) {
                                // Deliberately while the guard is held:
                                // the unwind must quiesce it.
                                panic!(
                                    "injected reader fault: reader {r} panicked while pinned"
                                );
                            }
                            drop(guard);
                            stats.merge(&chunk_stats);
                            served += window as u64;
                            if lag > 0 {
                                stale += window as u64;
                                stale_by_epoch[epoch as usize]
                                    .fetch_add(window as u64, Relaxed);
                                max_staleness.fetch_max(lag, Relaxed);
                            }
                            if let Some(t) = &telemetry {
                                t.staleness.set(lag as f64);
                                if lag > 0 {
                                    t.stale_lookups_total.add(window as u64);
                                }
                            }
                            pos = if end == dests.len() { 0 } else { end };
                            if stop.load(Relaxed) {
                                break;
                            }
                        }
                        (served, stale, stats)
                    }))
                })
            })
            .collect();

        'batches: for (b, batch) in batches.iter().enumerate() {
            for update in batch {
                apply_update(&mut live, update);
            }
            updates_applied += batch.len() as u64;
            if let Some(t) = telemetry {
                t.updates_applied_total.add(batch.len() as u64);
            }
            // Freeze-and-publish, gated by the watchdog: an attempt
            // that comes back over budget is discarded (not published
            // — its snapshot is already staler than the budget
            // allows), backed off, and retried; after `max_retries`
            // the epoch is skipped and its updates ride the next
            // successful publish.
            let mut attempt = 0u32;
            loop {
                attempt += 1;
                let started = Instant::now();
                // Inside the timed window: the stall models a slow
                // rebuild, so the watchdog must see it.
                if let Some(fault) = &config.fault {
                    if fault.stall_epoch == Some(b as u64)
                        && attempt == 1
                        && !fault.stall.is_zero()
                    {
                        std::thread::sleep(fault.stall);
                    }
                }
                let frozen = match live.freeze() {
                    Ok(f) => f,
                    Err(e) => {
                        builder_error = Some(ChurnError::Freeze(e));
                        break 'batches;
                    }
                };
                let elapsed = started.elapsed();
                if let Some(watchdog) = &config.watchdog {
                    if elapsed > watchdog.budget {
                        watchdog_trips += 1;
                        if let Some(d) = degradation {
                            d.watchdog_trips_total.inc();
                        }
                        if attempt <= watchdog.max_retries {
                            backoff_retries += 1;
                            if let Some(d) = degradation {
                                d.backoff_retries_total.inc();
                            }
                            std::thread::sleep(
                                watchdog.backoff * 2u32.saturating_pow(attempt - 1),
                            );
                            continue;
                        }
                        skipped_epochs += 1;
                        break;
                    }
                }
                epochs.publish(frozen);
                let us = elapsed.as_micros() as u64;
                rebuild_us.push(us);
                if let Some(t) = telemetry {
                    t.rebuild_latency_us.observe(us);
                }
                if attempt > 1 {
                    recovered_rebuilds += 1;
                    if let Some(d) = degradation {
                        d.recoveries_total.inc();
                    }
                }
                break;
            }
        }
        stop.store(true, Relaxed);

        let mut stale_total = 0u64;
        for (r, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(Ok((served, stale, stats))) => {
                    reader_lookups[r] = served;
                    stale_total += stale;
                    batch_stats.merge(&stats);
                }
                Ok(Err(payload)) => reader_panics.push((r, panic_message(payload))),
                // Only reachable if the catch itself unwound; attribute
                // it the same way rather than re-panicking.
                Err(payload) => reader_panics.push((r, panic_message(payload))),
            }
        }
        if reader_panics.is_empty() {
            // A panicked reader's in-flight chunk may be counted in the
            // atomics but not in its lost return value, so this only
            // holds on clean runs.
            debug_assert_eq!(
                stale_total,
                stale_by_epoch.iter().map(|c| c.load(Relaxed)).sum::<u64>()
            );
        }
    });

    if let Some(e) = builder_error {
        return Err(e);
    }
    if let Some(d) = degradation {
        d.reader_panics_total.add(reader_panics.len() as u64);
    }
    let injected_panic = config.fault.as_ref().and_then(|f| f.panic_reader);
    if let Some((reader, message)) =
        reader_panics.iter().find(|(r, _)| Some(*r) != injected_panic)
    {
        return Err(ChurnError::ReaderPanicked { reader: *reader, message: message.clone() });
    }

    // Deferred convergence for skipped epochs: their updates are still
    // in the live engine — one unbudgeted publish carries them, so the
    // watchdog can delay convergence but never forfeit it.
    if skipped_epochs > 0 {
        let frozen = live.freeze()?;
        epochs.publish(frozen);
        recovery_publishes += 1;
        if let Some(d) = degradation {
            d.recoveries_total.inc();
        }
    }

    // All readers have deregistered: one reclaim empties the retire
    // list (the EpochEngine records it into the telemetry bundle).
    epochs.reclaim();
    let retired_after = epochs.retired_count();

    let final_identical = if config.check {
        let end = end_state(receiver, batches);
        let fresh = ClueEngine::precomputed(sender, &end, engine_config).freeze()?;
        let mut reader = epochs.reader();
        let identical = reader.pin().bit_identical(&fresh);
        Some(identical)
    } else {
        None
    };

    Ok(ChurnReport {
        epochs: epochs.current_epoch(),
        updates_applied,
        lookups_total: reader_lookups.iter().sum(),
        stale_lookups: stale_by_epoch.iter().map(|c| c.load(Relaxed)).sum(),
        stale_by_epoch: stale_by_epoch.iter().map(|c| c.load(Relaxed)).collect(),
        max_staleness: max_staleness.load(Relaxed),
        rebuild_us,
        reader_lookups,
        batch_stats,
        reader_panics,
        watchdog_trips,
        backoff_retries,
        skipped_epochs,
        recovered_rebuilds,
        recovery_publishes,
        retired_after,
        final_identical,
    })
}

/// Deterministic reader traffic: destinations covered by the sender
/// table with the sender's BMP as the clue.
fn churn_traffic<A: Address>(
    sender: &[Prefix<A>],
    receiver: &[Prefix<A>],
    config: &ChurnDriverConfig,
) -> (Vec<A>, Vec<Option<Prefix<A>>>) {
    let traffic_config = clue_tablegen::TrafficConfig {
        count: config.traffic,
        ..clue_tablegen::TrafficConfig::paper(config.seed)
    };
    let dests = clue_tablegen::generate(sender, receiver, &traffic_config);
    let t1: BinaryTrie<A, ()> = sender.iter().map(|p| (*p, ())).collect();
    let clues = dests
        .iter()
        .map(|&d| {
            let mut scratch = Cost::new();
            t1.lookup_counted(d, &mut scratch).map(|r| t1.prefix(r))
        })
        .collect();
    (dests, clues)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_tablegen::{derive_neighbor, generate_churn, synthesize_ipv4, ChurnConfig, NeighborConfig};
    use clue_trie::Ip4;
    use std::time::Duration;

    fn pair() -> (Vec<Prefix<Ip4>>, Vec<Prefix<Ip4>>) {
        let sender = synthesize_ipv4(600, 42);
        let receiver = derive_neighbor(&sender, &NeighborConfig::same_isp(43));
        (sender, receiver)
    }

    #[test]
    fn churn_converges_to_the_from_scratch_engine_at_any_reader_count() {
        let (sender, receiver) = pair();
        let batches = generate_churn(&receiver, &ChurnConfig::bgp(400, 7));
        for readers in [1usize, 4, 8] {
            let mut cfg = ChurnDriverConfig::new(readers, 11);
            cfg.traffic = 512;
            cfg.chunk = 64;
            let report = run_churn(&sender, &receiver, &batches, &cfg, None, None).unwrap();
            assert_eq!(report.final_identical, Some(true), "{readers} readers");
            assert_eq!(report.epochs, batches.len() as u64);
            assert_eq!(report.updates_applied, 400);
            assert_eq!(report.rebuild_us.len(), batches.len());
            assert!(report.lookups_total > 0, "readers served lookups");
            assert_eq!(report.reader_lookups.len(), readers);
            assert!(report.reader_lookups.iter().all(|&n| n > 0));
            assert_eq!(report.retired_after, 0, "every snapshot reclaimed");
            assert_eq!(
                report.stale_lookups,
                report.stale_by_epoch.iter().sum::<u64>()
            );
            assert!(report.stale_fraction() <= 1.0);
            // Exactly-once accounting across every completed batch.
            assert_eq!(report.batch_stats.total(), report.lookups_total);
            assert!(report.reader_panics.is_empty());
            assert_eq!(report.watchdog_trips, 0);
            assert_eq!(report.skipped_epochs, 0);
        }
    }

    #[test]
    fn served_answers_come_from_published_snapshots() {
        // With a single update per batch we can enumerate every
        // intermediate table; each pinned lookup must match the frozen
        // engine of *some* epoch — no torn or mixed answers.
        let (sender, receiver) = pair();
        let batches = generate_churn(&receiver, &ChurnConfig::bgp(40, 3));
        let cfg = ChurnDriverConfig::new(2, 5);

        // Reference: the decision vector per epoch.
        let engine_config = EngineConfig::new(Family::Regular, Method::Advance);
        let (dests, clues) = churn_traffic(&sender, &receiver, &cfg);
        let mut live = ClueEngine::precomputed(&sender, &receiver, engine_config);
        let mut decisions = Vec::new();
        live.freeze().unwrap().lookup_batch_into(&dests, &clues, &mut decisions);
        let mut per_epoch = vec![decisions.clone()];
        for batch in &batches {
            for u in batch {
                apply_update(&mut live, u);
            }
            live.freeze().unwrap().lookup_batch_into(&dests, &clues, &mut decisions);
            per_epoch.push(decisions.clone());
        }

        // Run the real concurrent driver; then spot-check that a
        // freshly pinned snapshot answers exactly like the last epoch.
        let report = run_churn(&sender, &receiver, &batches, &cfg, None, None).unwrap();
        assert_eq!(report.final_identical, Some(true));
        let end = end_state(&receiver, &batches);
        let fresh = ClueEngine::precomputed(&sender, &end, engine_config).freeze().unwrap();
        fresh.lookup_batch_into(&dests, &clues, &mut decisions);
        assert_eq!(decisions, *per_epoch.last().unwrap());
    }

    #[test]
    fn telemetry_observes_the_run() {
        use clue_telemetry::Registry;
        let (sender, receiver) = pair();
        let batches = generate_churn(&receiver, &ChurnConfig::bgp(120, 9));
        let registry = Registry::new();
        let telemetry = ChurnTelemetry::registered(&registry, "clue_churn");
        let mut cfg = ChurnDriverConfig::new(2, 13);
        cfg.traffic = 256;
        cfg.chunk = 64;
        let report =
            run_churn(&sender, &receiver, &batches, &cfg, Some(&telemetry), None).unwrap();
        assert_eq!(telemetry.updates_applied_total.get(), report.updates_applied);
        assert_eq!(report.rebuild_us.len() as u64, report.epochs);
        // Note: swaps/rebuild histogram are recorded by the
        // EpochEngine only when the bundle is attached to it — the
        // driver attaches it, so the counts line up with the epochs.
        assert!(registry.contains("clue_churn_swaps_total"));
        assert_eq!(telemetry.rebuild_latency_us.count(), report.epochs);
    }

    #[test]
    fn bad_configs_are_typed_errors_not_panics() {
        let (sender, receiver) = pair();
        let batches = generate_churn(&receiver, &ChurnConfig::bgp(10, 1));
        let cfg = ChurnDriverConfig::new(0, 1);
        assert!(matches!(
            run_churn(&sender, &receiver, &batches, &cfg, None, None),
            Err(ChurnError::NoReaders)
        ));
        let mut cfg = ChurnDriverConfig::new(1, 1);
        cfg.traffic = 0;
        let err = run_churn(&sender, &receiver, &batches, &cfg, None, None).unwrap_err();
        assert!(matches!(err, ChurnError::EmptyTraffic));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn an_unplanned_reader_panic_is_caught_and_attributed() {
        // Inject the panic but pretend it wasn't planned by aiming the
        // plan at a reader index that exists — then checking the error
        // carries the right attribution requires an unplanned one, so
        // plan a panic for reader 0 of 2 and expect the run to treat a
        // panic at any *other* reader as fatal. Here: planned reader 0
        // panics — the run survives and attributes it.
        let (sender, receiver) = pair();
        let batches = generate_churn(&receiver, &ChurnConfig::bgp(60, 5));
        let mut cfg = ChurnDriverConfig::new(2, 7);
        cfg.traffic = 256;
        cfg.chunk = 32;
        cfg.fault = Some(ChurnFaultPlan { panic_reader: Some(0), ..Default::default() });
        let report = run_churn(&sender, &receiver, &batches, &cfg, None, None).unwrap();
        assert_eq!(report.reader_panics.len(), 1);
        assert_eq!(report.reader_panics[0].0, 0);
        assert!(report.reader_panics[0].1.contains("injected reader fault"));
        assert_eq!(report.reader_lookups[0], 0, "panicked reader's tally is lost");
        assert!(report.reader_lookups[1] > 0, "surviving reader kept serving");
        assert_eq!(report.final_identical, Some(true), "convergence survives the panic");
        assert_eq!(report.retired_after, 0, "the unwound guard never blocks reclamation");
    }

    #[test]
    fn watchdog_trips_retries_and_recovers_on_a_stalled_rebuild() {
        let (sender, receiver) = pair();
        let batches = generate_churn(&receiver, &ChurnConfig::bgp(60, 5));
        let mut cfg = ChurnDriverConfig::new(1, 7);
        cfg.traffic = 256;
        cfg.chunk = 64;
        cfg.watchdog = Some(RebuildWatchdog {
            budget: Duration::from_millis(80),
            max_retries: 2,
            backoff: Duration::from_micros(100),
        });
        cfg.fault = Some(ChurnFaultPlan {
            stall_epoch: Some(0),
            stall: Duration::from_millis(150),
            ..Default::default()
        });
        let report = run_churn(&sender, &receiver, &batches, &cfg, None, None).unwrap();
        assert!(report.watchdog_trips >= 1, "the stalled attempt trips the budget");
        assert!(report.backoff_retries >= 1);
        assert!(
            report.recovered_rebuilds >= 1 || report.recovery_publishes >= 1,
            "the retry (or the convergence publish) recovers"
        );
        assert_eq!(report.final_identical, Some(true), "convergence survives the stall");
    }

    #[test]
    fn exhausted_watchdog_skips_epochs_but_still_converges() {
        // A 0-budget watchdog rejects every freeze: all epochs skip,
        // and the single deferred convergence publish still lands the
        // end state — degraded, never wedged.
        let (sender, receiver) = pair();
        let batches = generate_churn(&receiver, &ChurnConfig::bgp(30, 5));
        let mut cfg = ChurnDriverConfig::new(1, 7);
        cfg.traffic = 128;
        cfg.chunk = 32;
        cfg.watchdog = Some(RebuildWatchdog {
            budget: Duration::ZERO,
            max_retries: 1,
            backoff: Duration::ZERO,
        });
        let report = run_churn(&sender, &receiver, &batches, &cfg, None, None).unwrap();
        assert_eq!(report.skipped_epochs, batches.len() as u64);
        assert_eq!(report.recovery_publishes, 1);
        assert_eq!(report.epochs, 1, "only the convergence publish landed");
        assert_eq!(report.final_identical, Some(true));
    }
}
