//! The live-churn workload: lookups served *through* a route-update
//! stream.
//!
//! [`run_workload_parallel`](crate::run_workload_parallel) shards a
//! static snapshot; this driver exercises the regime a deployed
//! router actually lives in. One **builder** thread owns the mutable
//! [`ClueEngine`], applies one [`RouteUpdate`] batch at a time
//! (announce → insert, withdraw → delete, modify → delete + re-insert
//! of the same prefix, forcing the localized reclassify), re-freezes,
//! and publishes each snapshot through an [`EpochEngine`]. Meanwhile
//! `readers` threads pin snapshots and run `lookup_batch` over a
//! deterministic pre-generated packet stream, never blocking on the
//! builder.
//!
//! Two numbers characterise the run:
//!
//! * **staleness** — how many lookups were answered from snapshot `N`
//!   while `N+1` already existed, and the worst epoch lag observed
//!   (readers are lock-free, so some staleness is the price of never
//!   stalling);
//! * **rebuild latency** — microseconds per freeze-and-publish, the
//!   update-cost axis that "Scaling IP Lookup" treats as co-equal
//!   with lookup throughput.
//!
//! With [`ChurnDriverConfig::check`] set, the run ends by freezing a
//! from-scratch engine built on [`end_state`] of the stream and
//! asserting the final published snapshot is
//! [`bit_identical`](FrozenEngine::bit_identical) to it — the
//! incremental path provably converges to the batch path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::time::Instant;

use clue_core::{ClueEngine, Decision, EngineConfig, EpochEngine, FreezeError, Method};
use clue_lookup::Family;
use clue_tablegen::{end_state, RouteUpdate, UpdateKind};
use clue_telemetry::ChurnTelemetry;
use clue_trie::{Address, BinaryTrie, Cost, Prefix};

/// Parameters of the churn driver.
#[derive(Debug, Clone)]
pub struct ChurnDriverConfig {
    /// Reader threads serving lookups concurrently with the builder.
    pub readers: usize,
    /// Lookups a reader performs per pinned snapshot (one guard, one
    /// `lookup_batch` call).
    pub chunk: usize,
    /// Distinct packets pre-generated for the readers to cycle over.
    pub traffic: usize,
    /// Seed for the packet stream.
    pub seed: u64,
    /// Verify the final snapshot against a from-scratch rebuild.
    pub check: bool,
}

impl ChurnDriverConfig {
    /// A driver with `readers` threads and defaults sized for tests
    /// and the CLI smoke: 256-lookup chunks over 4 096 packets.
    pub fn new(readers: usize, seed: u64) -> Self {
        ChurnDriverConfig { readers, chunk: 256, traffic: 4_096, seed, check: true }
    }
}

/// What a churn run did and observed.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Final published epoch (= update batches applied).
    pub epochs: u64,
    /// Individual route updates applied by the builder.
    pub updates_applied: u64,
    /// Lookups served across all readers.
    pub lookups_total: u64,
    /// Lookups answered from a snapshot that had already been
    /// superseded when their batch finished.
    pub stale_lookups: u64,
    /// Stale lookups attributed to the epoch they were served from.
    pub stale_by_epoch: Vec<u64>,
    /// Worst epoch lag any reader batch observed.
    pub max_staleness: u64,
    /// Microseconds per freeze-and-publish, one entry per epoch.
    pub rebuild_us: Vec<u64>,
    /// Lookups served per reader thread.
    pub reader_lookups: Vec<u64>,
    /// Retired snapshots still unreclaimed after the final grace
    /// period (0 — every superseded snapshot was freed).
    pub retired_after: usize,
    /// `--check` verdict: final snapshot bit-identical to the
    /// from-scratch freeze of the end-state table (`None` = not run).
    pub final_identical: Option<bool>,
}

impl ChurnReport {
    /// Mean rebuild latency in microseconds (0 with no epochs).
    pub fn mean_rebuild_us(&self) -> f64 {
        if self.rebuild_us.is_empty() {
            0.0
        } else {
            self.rebuild_us.iter().sum::<u64>() as f64 / self.rebuild_us.len() as f64
        }
    }

    /// Worst rebuild latency in microseconds.
    pub fn max_rebuild_us(&self) -> u64 {
        self.rebuild_us.iter().copied().max().unwrap_or(0)
    }

    /// Stale fraction of all lookups served.
    pub fn stale_fraction(&self) -> f64 {
        if self.lookups_total == 0 {
            0.0
        } else {
            self.stale_lookups as f64 / self.lookups_total as f64
        }
    }
}

/// Applies one update to the live engine. Modify is delete +
/// re-insert of the same prefix: the set is unchanged but the entry's
/// FD, continuation and Claim-1 bits are recomputed, exactly like an
/// attribute change on a real feed.
fn apply_update<A: Address>(engine: &mut ClueEngine<A>, update: &RouteUpdate<A>) {
    match update.kind {
        UpdateKind::Announce => engine.add_receiver_route(update.prefix),
        UpdateKind::Withdraw => {
            engine.remove_receiver_route(&update.prefix);
        }
        UpdateKind::Modify => {
            engine.remove_receiver_route(&update.prefix);
            engine.add_receiver_route(update.prefix);
        }
    }
}

/// Runs the churn workload for a sender/receiver pair and an update
/// stream (see the module docs). Lookup traffic is derived
/// deterministically from `config.seed`; scheduling (how many lookups
/// each reader serves, how stale they run) is timing-dependent by
/// nature, but every *answer* comes from some published snapshot and
/// the final state is checkable.
///
/// # Errors
/// Propagates [`FreezeError`] if the pair cannot be frozen (the
/// driver builds a Regular-family, hashed, cache-less engine, so this
/// only fires for address families without a flattened walk).
///
/// # Panics
/// Panics if `config.readers` is zero or the traffic pool is empty.
pub fn run_churn<A: Address>(
    sender: &[Prefix<A>],
    receiver: &[Prefix<A>],
    batches: &[Vec<RouteUpdate<A>>],
    config: &ChurnDriverConfig,
    telemetry: Option<&ChurnTelemetry>,
) -> Result<ChurnReport, FreezeError> {
    assert!(config.readers > 0, "need at least one reader");
    let engine_config = EngineConfig::new(Family::Regular, Method::Advance);
    let mut live = ClueEngine::precomputed(sender, receiver, engine_config);
    let mut epochs = EpochEngine::new(&live)?;
    if let Some(t) = telemetry {
        epochs.attach_telemetry(t.clone());
    }

    // The packet stream: destinations covered by the sender table,
    // each carrying the sender's BMP as its clue (None where the
    // sender has no route — the clueless case rides along).
    let (dests, clues) = churn_traffic(sender, receiver, config);
    assert!(!dests.is_empty(), "traffic pool must be non-empty");

    let final_epoch = batches.len() as u64;
    let stale_by_epoch: Vec<AtomicU64> =
        (0..=final_epoch).map(|_| AtomicU64::new(0)).collect();
    let max_staleness = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let mut rebuild_us = Vec::with_capacity(batches.len());
    let mut updates_applied = 0u64;
    let mut reader_lookups = vec![0u64; config.readers];

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.readers)
            .map(|r| {
                let mut reader = epochs.reader();
                let (dests, clues) = (&dests, &clues);
                let (stale_by_epoch, max_staleness, stop) =
                    (&stale_by_epoch, &max_staleness, &stop);
                let telemetry = telemetry.cloned();
                let chunk = config.chunk.min(dests.len()).max(1);
                scope.spawn(move || {
                    let mut out = vec![Decision::default(); chunk];
                    let mut served = 0u64;
                    let mut stale = 0u64;
                    // Stagger start offsets so readers don't stampede
                    // the same cache lines.
                    let mut pos = (r * chunk * 7) % dests.len();
                    loop {
                        let end = (pos + chunk).min(dests.len());
                        let window = end - pos;
                        let guard = reader.pin();
                        guard.lookup_batch(
                            &dests[pos..end],
                            &clues[pos..end],
                            &mut out[..window],
                        );
                        let lag = guard.lag();
                        let epoch = guard.epoch();
                        drop(guard);
                        served += window as u64;
                        if lag > 0 {
                            stale += window as u64;
                            stale_by_epoch[epoch as usize].fetch_add(window as u64, Relaxed);
                            max_staleness.fetch_max(lag, Relaxed);
                        }
                        if let Some(t) = &telemetry {
                            t.staleness.set(lag as f64);
                            if lag > 0 {
                                t.stale_lookups_total.add(window as u64);
                            }
                        }
                        pos = if end == dests.len() { 0 } else { end };
                        if stop.load(Relaxed) {
                            break;
                        }
                    }
                    (served, stale)
                })
            })
            .collect();

        for batch in batches {
            for update in batch {
                apply_update(&mut live, update);
            }
            updates_applied += batch.len() as u64;
            if let Some(t) = telemetry {
                t.updates_applied_total.add(batch.len() as u64);
            }
            let started = Instant::now();
            epochs
                .publish_from(&live)
                .expect("a Regular hashed engine stays freezable under updates");
            rebuild_us.push(started.elapsed().as_micros() as u64);
        }
        stop.store(true, Relaxed);

        let mut stale_total = 0u64;
        for (r, h) in handles.into_iter().enumerate() {
            let (served, stale) = h.join().expect("reader thread panicked");
            reader_lookups[r] = served;
            stale_total += stale;
        }
        debug_assert_eq!(
            stale_total,
            stale_by_epoch.iter().map(|c| c.load(Relaxed)).sum::<u64>()
        );
    });

    // All readers have deregistered: one reclaim empties the retire
    // list (the EpochEngine records it into the telemetry bundle).
    epochs.reclaim();
    let retired_after = epochs.retired_count();

    let final_identical = if config.check {
        let end = end_state(receiver, batches);
        let fresh = ClueEngine::precomputed(sender, &end, engine_config).freeze()?;
        let mut reader = epochs.reader();
        let identical = reader.pin().bit_identical(&fresh);
        Some(identical)
    } else {
        None
    };

    Ok(ChurnReport {
        epochs: epochs.current_epoch(),
        updates_applied,
        lookups_total: reader_lookups.iter().sum(),
        stale_lookups: stale_by_epoch.iter().map(|c| c.load(Relaxed)).sum(),
        stale_by_epoch: stale_by_epoch.iter().map(|c| c.load(Relaxed)).collect(),
        max_staleness: max_staleness.load(Relaxed),
        rebuild_us,
        reader_lookups,
        retired_after,
        final_identical,
    })
}

/// Deterministic reader traffic: destinations covered by the sender
/// table with the sender's BMP as the clue.
fn churn_traffic<A: Address>(
    sender: &[Prefix<A>],
    receiver: &[Prefix<A>],
    config: &ChurnDriverConfig,
) -> (Vec<A>, Vec<Option<Prefix<A>>>) {
    let traffic_config = clue_tablegen::TrafficConfig {
        count: config.traffic,
        ..clue_tablegen::TrafficConfig::paper(config.seed)
    };
    let dests = clue_tablegen::generate(sender, receiver, &traffic_config);
    let t1: BinaryTrie<A, ()> = sender.iter().map(|p| (*p, ())).collect();
    let clues = dests
        .iter()
        .map(|&d| {
            let mut scratch = Cost::new();
            t1.lookup_counted(d, &mut scratch).map(|r| t1.prefix(r))
        })
        .collect();
    (dests, clues)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_tablegen::{derive_neighbor, generate_churn, synthesize_ipv4, ChurnConfig, NeighborConfig};
    use clue_trie::Ip4;

    fn pair() -> (Vec<Prefix<Ip4>>, Vec<Prefix<Ip4>>) {
        let sender = synthesize_ipv4(600, 42);
        let receiver = derive_neighbor(&sender, &NeighborConfig::same_isp(43));
        (sender, receiver)
    }

    #[test]
    fn churn_converges_to_the_from_scratch_engine_at_any_reader_count() {
        let (sender, receiver) = pair();
        let batches = generate_churn(&receiver, &ChurnConfig::bgp(400, 7));
        for readers in [1usize, 4, 8] {
            let mut cfg = ChurnDriverConfig::new(readers, 11);
            cfg.traffic = 512;
            cfg.chunk = 64;
            let report = run_churn(&sender, &receiver, &batches, &cfg, None).unwrap();
            assert_eq!(report.final_identical, Some(true), "{readers} readers");
            assert_eq!(report.epochs, batches.len() as u64);
            assert_eq!(report.updates_applied, 400);
            assert_eq!(report.rebuild_us.len(), batches.len());
            assert!(report.lookups_total > 0, "readers served lookups");
            assert_eq!(report.reader_lookups.len(), readers);
            assert!(report.reader_lookups.iter().all(|&n| n > 0));
            assert_eq!(report.retired_after, 0, "every snapshot reclaimed");
            assert_eq!(
                report.stale_lookups,
                report.stale_by_epoch.iter().sum::<u64>()
            );
            assert!(report.stale_fraction() <= 1.0);
        }
    }

    #[test]
    fn served_answers_come_from_published_snapshots() {
        // With a single update per batch we can enumerate every
        // intermediate table; each pinned lookup must match the frozen
        // engine of *some* epoch — no torn or mixed answers.
        let (sender, receiver) = pair();
        let batches = generate_churn(&receiver, &ChurnConfig::bgp(40, 3));
        let cfg = ChurnDriverConfig::new(2, 5);

        // Reference: the decision vector per epoch.
        let engine_config = EngineConfig::new(Family::Regular, Method::Advance);
        let (dests, clues) = churn_traffic(&sender, &receiver, &cfg);
        let mut live = ClueEngine::precomputed(&sender, &receiver, engine_config);
        let mut per_epoch = vec![live.freeze().unwrap().lookup_batch_vec(&dests, &clues).0];
        for batch in &batches {
            for u in batch {
                apply_update(&mut live, u);
            }
            per_epoch.push(live.freeze().unwrap().lookup_batch_vec(&dests, &clues).0);
        }

        // Run the real concurrent driver; then spot-check that a
        // freshly pinned snapshot answers exactly like the last epoch.
        let report = run_churn(&sender, &receiver, &batches, &cfg, None).unwrap();
        assert_eq!(report.final_identical, Some(true));
        let end = end_state(&receiver, &batches);
        let fresh = ClueEngine::precomputed(&sender, &end, engine_config).freeze().unwrap();
        let (final_decisions, _) = fresh.lookup_batch_vec(&dests, &clues);
        assert_eq!(final_decisions, *per_epoch.last().unwrap());
    }

    #[test]
    fn telemetry_observes_the_run() {
        use clue_telemetry::Registry;
        let (sender, receiver) = pair();
        let batches = generate_churn(&receiver, &ChurnConfig::bgp(120, 9));
        let registry = Registry::new();
        let telemetry = ChurnTelemetry::registered(&registry, "clue_churn");
        let mut cfg = ChurnDriverConfig::new(2, 13);
        cfg.traffic = 256;
        cfg.chunk = 64;
        let report = run_churn(&sender, &receiver, &batches, &cfg, Some(&telemetry)).unwrap();
        assert_eq!(telemetry.updates_applied_total.get(), report.updates_applied);
        assert_eq!(report.rebuild_us.len() as u64, report.epochs);
        // Note: swaps/rebuild histogram are recorded by the
        // EpochEngine only when the bundle is attached to it — the
        // driver attaches it, so the counts line up with the epochs.
        assert!(registry.contains("clue_churn_swaps_total"));
    }
}
