//! Fault injection: the chaos side of the paper's robustness claim.
//!
//! Section 3 promises graceful degradation — in a heterogeneous
//! network a clue may arrive corrupted, truncated, stale, stripped by
//! a legacy hop, or not at all, and the *only* permitted consequence
//! is a slower lookup. This module makes that claim falsifiable. A
//! seeded [`FaultPlan`] assigns every simulated packet a
//! [`FaultClass`]; [`run_chaos`] builds honest clued IPv4 packets,
//! mutilates their wire image (or their decoded clue) accordingly,
//! pushes the survivors through the receiver pipeline — parse, decode,
//! then *both* the mutable scalar engine and the frozen batch engine —
//! and differentially checks every forwarding decision against the
//! clue-less baseline with [`clue_core::check_soundness`]. The same
//! plan drives a churn leg with an injected reader panic and a
//! watchdog-tripped rebuild, proving the serving loop degrades without
//! wedging.
//!
//! Everything is derived from the plan seed with per-packet SplitMix64
//! streams (the [`crate::run_workload_parallel`] idiom), so a chaos
//! run is exactly reproducible from its command line.

use std::time::Duration;

use clue_core::{
    check_soundness, ClueEngine, ClueHeader, Divergence, EngineConfig, EngineStats, Method,
};
use clue_lookup::Family;
use clue_tablegen::{
    derive_neighbor, end_state, generate, generate_churn, synthesize_ipv4, ChurnConfig,
    NeighborConfig, TrafficConfig,
};
use clue_telemetry::DegradationTelemetry;
use clue_trie::{BinaryTrie, Cost, Ip4, Prefix};
use clue_wire::{checksum, Ipv4Packet};

use crate::adversary::deepest_mismatch_clue;
use crate::churn::{run_churn, ChurnDriverConfig, ChurnError, ChurnReport};

/// One way a path can mistreat a packet or its clue. The classes cover
/// every degradation the paper's deployment story admits; `Clean`
/// rides along in every plan so the healthy path is exercised under
/// the same seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// No fault: the honest clued packet, end to end.
    Clean,
    /// A random bit flipped inside the clue option bytes (checksum
    /// re-fixed, so the corruption reaches the option parser).
    CorruptClue,
    /// The wire image cut short inside the header/options.
    TruncatedOption,
    /// The clue length byte rewritten past the address width
    /// (`raw >= 32` for IPv4) — rejected at parse as `BadClue`.
    OutOfRangeClue,
    /// A legacy (non-participating) hop stripped the clue option.
    CluelessHop,
    /// The clue is the sender's BMP from a superseded epoch's table —
    /// still a prefix of the destination, often unknown downstream.
    StaleClue,
    /// An adversarial clue that is *not* a prefix of the destination
    /// (unencodable on the wire, injected at the lookup boundary —
    /// the malformed-clue fallback path).
    AdversarialClue,
    /// A systematically lying neighbor: the deepest-mismatch
    /// *containing* clue for each destination, crafted against the
    /// victim's own table to maximize continuation cost
    /// ([`crate::deepest_mismatch_clue`]) — rides the wire like an
    /// honest clue.
    LyingNeighbor,
    /// The packet never arrives.
    Dropped,
    /// The packet arrives out of order (swapped with its predecessor).
    Reordered,
}

impl FaultClass {
    /// The canonical `(class, label)` table: the single source of
    /// truth for ordering, labels and parsing. `ALL`, [`Self::label`],
    /// [`Self::from_label`] and [`Self::index`] all derive from it, so
    /// adding a class is one row here (in declaration order — a test
    /// pins row position to the enum discriminant).
    const TABLE: [(FaultClass, &'static str); 10] = [
        (FaultClass::Clean, "clean"),
        (FaultClass::CorruptClue, "corrupt_clue"),
        (FaultClass::TruncatedOption, "truncated_option"),
        (FaultClass::OutOfRangeClue, "out_of_range_clue"),
        (FaultClass::CluelessHop, "clueless_hop"),
        (FaultClass::StaleClue, "stale_clue"),
        (FaultClass::AdversarialClue, "adversarial_clue"),
        (FaultClass::LyingNeighbor, "lying_neighbor"),
        (FaultClass::Dropped, "dropped"),
        (FaultClass::Reordered, "reordered"),
    ];

    /// Every class, in a stable order (the per-class report order) —
    /// derived from the canonical table.
    pub const ALL: [FaultClass; Self::TABLE.len()] = {
        let mut all = [FaultClass::Clean; Self::TABLE.len()];
        let mut i = 0;
        while i < Self::TABLE.len() {
            all[i] = Self::TABLE[i].0;
            i += 1;
        }
        all
    };

    /// The stable snake_case label (metric suffixes, CLI `--faults`).
    pub fn label(self) -> &'static str {
        Self::TABLE[self.index()].1
    }

    /// Parses a label back to its class.
    pub fn from_label(label: &str) -> Option<Self> {
        Self::TABLE.iter().find(|(_, l)| *l == label).map(|(c, _)| *c)
    }

    /// Position in [`Self::ALL`] (= the enum discriminant; the table
    /// is declared in the same order, pinned by a test).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A seeded, reproducible assignment of fault classes to packets.
///
/// The plan owns the run's randomness: `class_for(i)` and
/// `stream(i)` are pure functions of `(seed, i)`, so two runs with the
/// same plan inject byte-identical faults regardless of scheduling.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    classes: Vec<FaultClass>,
}

impl FaultPlan {
    /// A plan mixing every fault class (and clean packets) uniformly.
    pub fn uniform(seed: u64) -> Self {
        FaultPlan { seed, classes: FaultClass::ALL.to_vec() }
    }

    /// A plan over the given classes. `Clean` is always mixed in so
    /// the healthy path stays exercised; duplicates are dropped.
    pub fn with_classes(seed: u64, classes: &[FaultClass]) -> Self {
        let mut list = vec![FaultClass::Clean];
        for &c in classes {
            if !list.contains(&c) {
                list.push(c);
            }
        }
        FaultPlan { seed, classes: list }
    }

    /// Parses a CLI `--faults` spec: `"all"` or a comma-separated list
    /// of [`FaultClass::label`]s (`clean` implied).
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        if spec == "all" {
            return Ok(Self::uniform(seed));
        }
        let mut classes = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let class = FaultClass::from_label(part).ok_or_else(|| {
                let known: Vec<&str> = FaultClass::ALL.iter().map(|c| c.label()).collect();
                format!("unknown fault class {part:?} (known: {})", known.join(", "))
            })?;
            classes.push(class);
        }
        if classes.is_empty() {
            return Err("--faults needs \"all\" or at least one class".to_owned());
        }
        Ok(Self::with_classes(seed, &classes))
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The classes the plan draws from (always includes `Clean`).
    pub fn classes(&self) -> &[FaultClass] {
        &self.classes
    }

    /// The fault class assigned to packet `index`.
    pub fn class_for(&self, index: u64) -> FaultClass {
        let roll = splitmix64(self.seed ^ 0xFA17_C1A5_5EED_0001, index);
        self.classes[(roll % self.classes.len() as u64) as usize]
    }

    /// The per-packet randomness stream for packet `index` (which
    /// bit to flip, where to cut, …), independent of `class_for`.
    pub fn stream(&self, index: u64) -> u64 {
        splitmix64(self.seed ^ 0xFA17_57EA_4D00_0002, index)
    }
}

/// SplitMix64 finalizer over a (seed, index) pair — the same
/// per-packet derivation [`crate::run_workload_parallel`] uses.
pub(crate) fn splitmix64(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Budget-and-backoff policy for snapshot rebuilds in
/// [`run_churn`](crate::run_churn).
///
/// The watchdog bounds *acceptance*, not execution: a synchronous
/// freeze cannot be preempted, but one that comes back over budget is
/// discarded instead of published (its snapshot is already staler than
/// the budget allows), the builder backs off, and the rebuild is
/// retried. After `max_retries` over-budget attempts the epoch is
/// skipped — its updates stay applied to the live engine and ride the
/// next successful publish — so one slow or poisoned rebuild can delay
/// convergence but never wedge the serving loop.
#[derive(Debug, Clone, Copy)]
pub struct RebuildWatchdog {
    /// Wall-clock budget for one freeze attempt.
    pub budget: Duration,
    /// Over-budget attempts tolerated per epoch before it is skipped.
    pub max_retries: u32,
    /// Base backoff after a trip, doubled per further retry.
    pub backoff: Duration,
}

impl RebuildWatchdog {
    /// A watchdog with `budget` and defaults of 2 retries and a 1 ms
    /// base backoff.
    pub fn new(budget: Duration) -> Self {
        RebuildWatchdog { budget, max_retries: 2, backoff: Duration::from_millis(1) }
    }
}

/// Deterministic failures injected into a [`run_churn`] run by the
/// chaos harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChurnFaultPlan {
    /// This reader panics (while holding its `EpochGuard`) after its
    /// first served chunk; the driver must catch and attribute it.
    pub panic_reader: Option<usize>,
    /// The first freeze attempt of this epoch is stalled by
    /// [`Self::stall`], tripping the watchdog when one is configured.
    pub stall_epoch: Option<u64>,
    /// Length of the injected stall.
    pub stall: Duration,
}

/// Parameters of a chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Fault-injected packets pushed through the receiver pipeline.
    pub packets: usize,
    /// Seed for tables, traffic and the churn leg.
    pub seed: u64,
    /// Which faults to inject, and with what randomness.
    pub plan: FaultPlan,
    /// Sender table size (the receiver derives from it).
    pub table_size: usize,
    /// Route updates separating the stale-clue epoch from the serving
    /// epoch, and sizing the churn leg's stream.
    pub churn_updates: usize,
}

impl ChaosConfig {
    /// A config with `packets` over a uniform plan, tables and churn
    /// sized for the CLI smoke.
    pub fn new(packets: usize, seed: u64) -> Self {
        ChaosConfig {
            packets,
            seed,
            plan: FaultPlan::uniform(seed),
            table_size: 3_000,
            churn_updates: 200,
        }
    }
}

/// Per-fault-class outcome of a chaos run.
#[derive(Debug, Clone)]
pub struct ClassOutcome {
    /// The fault class.
    pub class: FaultClass,
    /// Packets assigned this class by the plan.
    pub injected: u64,
    /// Of those, packets that reached the lookup stage.
    pub delivered: u64,
    /// Wire images that no longer parsed (receiver fell back to a
    /// clue-less lookup).
    pub parse_errors: u64,
    /// Lookups degraded to the full common lookup: lost/stripped
    /// clues, malformed clues, clue-table misses.
    pub degraded: u64,
    /// Per-class engine stats (frozen batch; scalar agrees when
    /// [`ChaosReport::stats_parity`] holds).
    pub stats: EngineStats,
    /// Median extra memory references versus the clue-less baseline.
    pub overhead_p50: u64,
    /// 90th-percentile overhead.
    pub overhead_p90: u64,
    /// 99th-percentile overhead.
    pub overhead_p99: u64,
    /// Worst single-packet overhead.
    pub overhead_max: u64,
    /// Mean overhead across the class's delivered packets.
    pub overhead_mean: f64,
}

/// What a chaos run did and proved.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Packets generated (= plan assignments drawn).
    pub packets: u64,
    /// Packets that reached the lookup stage.
    pub delivered: u64,
    /// Packets dropped by the fault layer.
    pub dropped: u64,
    /// Packets delivered out of order.
    pub reordered: u64,
    /// Wire parse failures across all classes.
    pub parse_errors: u64,
    /// Forwarding decisions that differed from the clue-less baseline
    /// — the soundness invariant requires 0.
    pub divergences: u64,
    /// The first few divergences verbatim, for diagnostics.
    pub divergence_samples: Vec<Divergence<Ip4>>,
    /// Scalar == frozen per-class stats, each packet counted exactly
    /// once on both paths.
    pub stats_parity: bool,
    /// Per-class breakdown, in [`FaultClass::ALL`] order (only classes
    /// the plan draws from appear).
    pub by_class: Vec<ClassOutcome>,
    /// Aggregate scalar-engine stats across all delivered packets.
    pub scalar_stats: EngineStats,
    /// Aggregate frozen-batch stats across all delivered packets.
    pub frozen_stats: EngineStats,
    /// The fault-injected churn leg's report.
    pub churn: ChurnReport,
    /// The churn leg survived its injected reader panic and
    /// watchdog-tripped rebuild: caught exactly the planned panic,
    /// recovered the rebuild, and converged bit-identically.
    pub churn_survived: bool,
}

impl ChaosReport {
    /// The full soundness verdict `--check` asserts: zero divergences,
    /// scalar/frozen accounting parity, and a surviving churn leg.
    pub fn sound(&self) -> bool {
        self.divergences == 0 && self.stats_parity && self.churn_survived
    }
}

/// One packet after the fault layer: what the receiver's lookup sees.
struct DeliveredPacket {
    dest: Ip4,
    clue: Option<Prefix<Ip4>>,
    class: FaultClass,
    /// The wire image failed to parse (fallback to clue-less).
    parse_error: bool,
    /// The sender attached a clue but the lookup saw none.
    lost_clue: bool,
}

/// Runs the chaos harness (see the module docs): `config.packets`
/// fault-injected packets through parse → decode → scalar + frozen
/// lookup, differentially checked against the clue-less baseline,
/// followed by a churn leg with an injected reader panic and a
/// watchdog-tripped rebuild. Counters and the degraded-cost histogram
/// are recorded into `telemetry` when attached.
///
/// # Errors
/// Returns [`ChurnError::Freeze`] if the synthesized pair cannot be
/// frozen, or any other [`ChurnError`] surfaced by the churn leg.
pub fn run_chaos(
    config: &ChaosConfig,
    telemetry: Option<&DegradationTelemetry>,
) -> Result<ChaosReport, ChurnError> {
    // Two sender epochs: stale clues quote `sender_old`'s BMPs while
    // the receiver pipeline is built against the churned `sender_now`.
    let sender_old = synthesize_ipv4(config.table_size, config.seed);
    let sender_batches =
        generate_churn(&sender_old, &ChurnConfig::bgp(config.churn_updates, config.seed ^ 0x51A1));
    let sender_now = end_state(&sender_old, &sender_batches);
    let receiver = derive_neighbor(&sender_now, &NeighborConfig::same_isp(config.seed ^ 0x0EC3));

    // The Simple method: its clue-table entries are built with no
    // assumptions about the sender, so the soundness invariant holds
    // for ANY containing clue — stale, corrupted into a different
    // valid clue, whatever. The Advance method's Claim-1 pruning is
    // sound only for clues drawn from the sender table the engine was
    // precomputed against (the epoch-consistency the churn driver
    // maintains by construction); chaos deliberately breaks that, so
    // the robust configuration serves here. The trust boundary itself
    // is pinned by `advance_trusts_the_clue_epoch` in clue-core.
    let engine_config = EngineConfig::new(Family::Regular, Method::Simple);
    let mut engine = ClueEngine::precomputed(&sender_now, &receiver, engine_config);
    let frozen = engine.freeze().map_err(ChurnError::Freeze)?;

    let traffic = TrafficConfig {
        count: config.packets,
        ..TrafficConfig::paper(config.seed ^ 0x7AFF)
    };
    let dests = generate(&sender_now, &receiver, &traffic);
    let t1_now: BinaryTrie<Ip4, ()> = sender_now.iter().map(|p| (*p, ())).collect();
    let t1_old: BinaryTrie<Ip4, ()> = sender_old.iter().map(|p| (*p, ())).collect();

    let mut delivered: Vec<DeliveredPacket> = Vec::with_capacity(dests.len());
    let n_classes = config.plan.classes().len();
    let mut injected = vec![0u64; FaultClass::ALL.len()];
    let mut dropped = 0u64;
    let mut reordered = 0u64;
    let src: Ip4 = Ip4(0xC000_0201); // 192.0.2.1, TEST-NET
    debug_assert!(n_classes >= 1);

    for (i, &dest) in dests.iter().enumerate() {
        let class = config.plan.class_for(i as u64);
        let roll = config.plan.stream(i as u64);
        injected[class.index()] += 1;
        if let Some(t) = telemetry {
            t.injected_total.inc();
        }
        let honest = t1_now.lookup(dest).map(|r| t1_now.prefix(r)).filter(|c| !c.is_empty());

        match class {
            FaultClass::Dropped => {
                dropped += 1;
                continue;
            }
            FaultClass::AdversarialClue => {
                // Unencodable on the wire (a decoded wire clue always
                // contains the destination): injected at the lookup
                // boundary, the way a confused upstream engine would.
                let len = 8 + (roll % 17) as u8;
                let clue = Some(Prefix::new(Ip4(!dest.0), len));
                delivered.push(DeliveredPacket {
                    dest,
                    clue,
                    class,
                    parse_error: false,
                    lost_clue: false,
                });
                continue;
            }
            _ => {}
        }

        // Everything else rides the wire.
        let header = match class {
            FaultClass::CluelessHop => ClueHeader::none(),
            FaultClass::StaleClue => t1_old
                .lookup(dest)
                .map(|r| t1_old.prefix(r))
                .filter(|c| !c.is_empty())
                .map(|bmp| ClueHeader::with_clue(&bmp))
                .unwrap_or_else(ClueHeader::none),
            // Guarantee an option to mutilate even for uncovered dests.
            FaultClass::OutOfRangeClue => match &honest {
                Some(bmp) => ClueHeader::with_clue(bmp),
                None => ClueHeader::with_clue(&Prefix::new(dest, 8)),
            },
            // The systematic liar: a *containing* clue (it encodes and
            // parses like an honest one) priced against the victim's
            // own frozen engine to maximize continuation cost. The
            // soundness bound caps the damage at one wasted probe.
            FaultClass::LyingNeighbor => {
                let crafted = deepest_mismatch_clue(dest, |clue| {
                    let mut cost = Cost::new();
                    frozen.lookup(dest, clue, &mut cost);
                    cost.total()
                });
                ClueHeader::with_clue(&crafted)
            }
            _ => match &honest {
                Some(bmp) => ClueHeader::with_clue(bmp),
                None => ClueHeader::none(),
            },
        };
        let mut bytes = Ipv4Packet::new(src, dest, 6).with_clue(header).to_bytes();

        match class {
            FaultClass::CorruptClue if bytes.len() > 20 => {
                // Flip one bit somewhere in the clue option (kind,
                // length or value byte), then re-fix the checksum so
                // the corruption reaches the option parser instead of
                // dying at the checksum gate.
                let byte = 20 + (roll % 3) as usize;
                bytes[byte] ^= 1 << ((roll >> 8) % 8) as u8;
                fix_ipv4_checksum(&mut bytes);
            }
            FaultClass::OutOfRangeClue => {
                // Option layout: [kind, len, raw]; push raw past the
                // 5-bit IPv4 clue space, index flag clear.
                bytes[22] = 32 + (roll % 96) as u8;
                fix_ipv4_checksum(&mut bytes);
            }
            FaultClass::TruncatedOption => {
                let cut = if bytes.len() > 20 {
                    20 + (roll % (bytes.len() as u64 - 20)) as usize
                } else {
                    1 + (roll % 19) as usize
                };
                bytes.truncate(cut);
            }
            _ => {}
        }

        let (clue, parse_error) = match Ipv4Packet::parse(&bytes) {
            Ok(parsed) => {
                debug_assert_eq!(parsed.dst, dest);
                (parsed.clue.decode(parsed.dst).filter(|c| !c.is_empty()), false)
            }
            // Degradation, not failure: the receiver serves the packet
            // clue-less, exactly as a router must.
            Err(_) => (None, true),
        };
        let lost_clue = honest.is_some() && clue.is_none();
        delivered.push(DeliveredPacket { dest, clue, class, parse_error, lost_clue });
        if class == FaultClass::Reordered && delivered.len() >= 2 {
            let n = delivered.len();
            delivered.swap(n - 1, n - 2);
            reordered += 1;
        }
    }

    // The differential soundness pass, one batch per fault class so
    // overhead percentiles and accounting attribute per class.
    let mut by_class = Vec::new();
    let mut divergences = 0u64;
    let mut divergence_samples = Vec::new();
    let mut parse_errors_total = 0u64;
    let mut scalar_stats = EngineStats::default();
    let mut frozen_stats = EngineStats::default();
    let mut stats_parity = true;
    for &class in config.plan.classes() {
        if class == FaultClass::Dropped {
            by_class.push(empty_outcome(class, injected[class.index()]));
            continue;
        }
        let packets: Vec<&DeliveredPacket> =
            delivered.iter().filter(|p| p.class == class).collect();
        let class_dests: Vec<Ip4> = packets.iter().map(|p| p.dest).collect();
        let class_clues: Vec<Option<Prefix<Ip4>>> = packets.iter().map(|p| p.clue).collect();
        let report = check_soundness(&mut engine, &frozen, &class_dests, &class_clues);

        divergences += report.divergence_count;
        for d in &report.divergences {
            if divergence_samples.len() < 8 {
                divergence_samples.push(d.clone());
            }
        }
        stats_parity &= report.stats_parity();
        scalar_stats.merge(&report.scalar_stats);
        frozen_stats.merge(&report.frozen_stats);

        let parse_errors = packets.iter().filter(|p| p.parse_error).count() as u64;
        parse_errors_total += parse_errors;
        let lost = packets.iter().filter(|p| p.lost_clue).count() as u64;
        let stats = report.frozen_stats;
        let degraded = lost + stats.malformed + stats.misses;

        if let Some(t) = telemetry {
            if let Some(c) = t.class(class.label()) {
                c.add(injected[class.index()]);
            }
            t.parse_errors_total.add(parse_errors);
            t.degraded_lookups_total.add(degraded);
            t.divergences_total.add(report.divergence_count);
            if class != FaultClass::Clean {
                for &o in &report.overheads {
                    t.degraded_cost_overhead.observe(o);
                }
            }
        }

        let mut overheads = report.overheads;
        overheads.sort_unstable();
        let pct = |p: f64| -> u64 {
            if overheads.is_empty() {
                0
            } else {
                overheads[((overheads.len() - 1) as f64 * p) as usize]
            }
        };
        let mean = if overheads.is_empty() {
            0.0
        } else {
            report.overhead_total as f64 / overheads.len() as f64
        };
        by_class.push(ClassOutcome {
            class,
            injected: injected[class.index()],
            delivered: report.checked,
            parse_errors,
            degraded,
            stats,
            overhead_p50: pct(0.50),
            overhead_p90: pct(0.90),
            overhead_p99: pct(0.99),
            overhead_max: report.overhead_max,
            overhead_mean: mean,
        });
    }
    if let Some(t) = telemetry {
        if let Some(c) = t.class(FaultClass::Dropped.label()) {
            c.add(injected[FaultClass::Dropped.index()]);
        }
    }

    // The churn leg: serving must survive a reader panic and a
    // watchdog-tripped rebuild without wedging or diverging.
    let churn_batches =
        generate_churn(&receiver, &ChurnConfig::bgp(config.churn_updates, config.seed ^ 0xC4A0));
    let mut churn_cfg = ChurnDriverConfig::new(2, config.seed ^ 0x0DD5);
    churn_cfg.traffic = 1_024;
    churn_cfg.chunk = 128;
    churn_cfg.check = true;
    churn_cfg.watchdog = Some(RebuildWatchdog {
        budget: Duration::from_millis(50),
        max_retries: 2,
        backoff: Duration::from_micros(200),
    });
    churn_cfg.fault = Some(ChurnFaultPlan {
        panic_reader: Some(1),
        stall_epoch: Some(1),
        stall: Duration::from_millis(120),
    });
    let churn = run_churn(&sender_now, &receiver, &churn_batches, &churn_cfg, None, telemetry)?;
    let churn_survived = churn.reader_panics.len() == 1
        && churn.watchdog_trips >= 1
        && churn.recovered_rebuilds + churn.recovery_publishes >= 1
        && churn.final_identical == Some(true);

    Ok(ChaosReport {
        packets: dests.len() as u64,
        delivered: delivered.len() as u64,
        dropped,
        reordered,
        parse_errors: parse_errors_total,
        divergences,
        divergence_samples,
        stats_parity,
        by_class,
        scalar_stats,
        frozen_stats,
        churn,
        churn_survived,
    })
}

fn empty_outcome(class: FaultClass, injected: u64) -> ClassOutcome {
    ClassOutcome {
        class,
        injected,
        delivered: 0,
        parse_errors: 0,
        degraded: 0,
        stats: EngineStats::default(),
        overhead_p50: 0,
        overhead_p90: 0,
        overhead_p99: 0,
        overhead_max: 0,
        overhead_mean: 0.0,
    }
}

/// Recomputes the IPv4 header checksum in place after a mutation.
fn fix_ipv4_checksum(bytes: &mut [u8]) {
    let header_len = ((bytes[0] & 0x0F) as usize * 4).min(bytes.len());
    bytes[10] = 0;
    bytes[11] = 0;
    let sum = checksum(&bytes[..header_len]);
    bytes[10..12].copy_from_slice(&sum.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_core::ClueHeader;
    use clue_trie::Ip6;
    use clue_wire::{Ipv6Packet, WireError};

    #[test]
    fn plans_are_reproducible_and_cover_their_classes() {
        let plan = FaultPlan::uniform(7);
        let again = FaultPlan::uniform(7);
        let mut seen = std::collections::HashSet::new();
        for i in 0..4_096u64 {
            assert_eq!(plan.class_for(i), again.class_for(i));
            assert_eq!(plan.stream(i), again.stream(i));
            seen.insert(plan.class_for(i));
        }
        assert_eq!(seen.len(), FaultClass::ALL.len(), "uniform plan draws every class");
        let other = FaultPlan::uniform(8);
        assert!((0..64u64).any(|i| other.class_for(i) != plan.class_for(i)));
    }

    #[test]
    fn the_canonical_table_matches_the_enum_order() {
        // `index()` is the discriminant cast; the table must be
        // declared in the same order or labels would silently skew.
        for (i, &(class, label)) in FaultClass::TABLE.iter().enumerate() {
            assert_eq!(class as usize, i, "table row {i} out of declaration order");
            assert_eq!(class.index(), i);
            assert_eq!(class.label(), label);
            assert_eq!(FaultClass::from_label(label), Some(class));
            assert_eq!(FaultClass::ALL[i], class);
        }
        assert_eq!(FaultClass::ALL.len(), FaultClass::TABLE.len());
    }

    #[test]
    fn parse_accepts_labels_and_rejects_junk() {
        let plan = FaultPlan::parse("stale_clue,dropped", 1).unwrap();
        assert!(plan.classes().contains(&FaultClass::Clean), "clean is implied");
        assert!(plan.classes().contains(&FaultClass::StaleClue));
        assert!(plan.classes().contains(&FaultClass::Dropped));
        assert_eq!(plan.classes().len(), 3);
        assert_eq!(FaultPlan::parse("all", 1).unwrap().classes().len(), FaultClass::ALL.len());
        assert!(FaultPlan::parse("gremlins", 1).is_err());
        assert!(FaultPlan::parse("", 1).is_err());
        for class in FaultClass::ALL {
            assert_eq!(FaultClass::from_label(class.label()), Some(class));
        }
    }

    #[test]
    fn chaos_is_sound_across_every_class() {
        let mut config = ChaosConfig::new(4_000, 11);
        config.table_size = 400;
        config.churn_updates = 60;
        let report = run_chaos(&config, None).unwrap();
        assert_eq!(report.divergences, 0, "samples: {:?}", report.divergence_samples);
        assert!(report.stats_parity);
        assert!(report.churn_survived, "churn: {:?}", report.churn.reader_panics);
        assert!(report.sound());
        assert_eq!(report.packets, 4_000);
        assert_eq!(report.delivered + report.dropped, report.packets);
        for outcome in &report.by_class {
            assert!(outcome.injected > 0, "{:?} never drawn", outcome.class);
            match outcome.class {
                FaultClass::Dropped => assert_eq!(outcome.delivered, 0),
                _ => assert_eq!(outcome.delivered, outcome.injected),
            }
            match outcome.class {
                // Out-of-range and truncation always kill the parse.
                FaultClass::OutOfRangeClue | FaultClass::TruncatedOption => {
                    assert_eq!(outcome.parse_errors, outcome.delivered)
                }
                FaultClass::Clean
                | FaultClass::CluelessHop
                | FaultClass::StaleClue
                | FaultClass::LyingNeighbor => {
                    assert_eq!(outcome.parse_errors, 0)
                }
                _ => {}
            }
            if outcome.class == FaultClass::AdversarialClue {
                assert_eq!(
                    outcome.stats.malformed, outcome.delivered,
                    "every adversarial clue is malformed, counted exactly once"
                );
            }
            if outcome.class == FaultClass::LyingNeighbor {
                assert!(
                    outcome.overhead_max <= 1,
                    "even a table-aware liar cannot beat the soundness bound"
                );
                assert!(
                    outcome.overhead_mean > 0.5,
                    "the deepest-mismatch clue should land near the bound on most packets, \
                     got mean {}",
                    outcome.overhead_mean
                );
            }
        }
        // Exactly-once, across the whole run.
        assert_eq!(report.frozen_stats.total(), report.delivered);
        assert_eq!(report.scalar_stats, report.frozen_stats);
    }

    #[test]
    fn chaos_reports_reader_panic_and_watchdog_recovery() {
        let mut config = ChaosConfig::new(200, 3);
        config.table_size = 200;
        config.churn_updates = 40;
        let report = run_chaos(&config, None).unwrap();
        assert_eq!(report.churn.reader_panics.len(), 1);
        assert_eq!(report.churn.reader_panics[0].0, 1, "attributed to the injected reader");
        assert!(report.churn.reader_panics[0].1.contains("injected"));
        assert!(report.churn.watchdog_trips >= 1);
        assert!(report.churn.final_identical == Some(true));
    }

    #[test]
    fn telemetry_observes_the_chaos() {
        use clue_telemetry::Registry;
        let registry = Registry::new();
        let labels: Vec<&str> = FaultClass::ALL.iter().map(|c| c.label()).collect();
        let telemetry = DegradationTelemetry::registered(&registry, "clue_fault", &labels);
        let mut config = ChaosConfig::new(600, 5);
        config.table_size = 200;
        config.churn_updates = 40;
        let report = run_chaos(&config, Some(&telemetry)).unwrap();
        assert_eq!(telemetry.injected_total.get(), report.packets);
        assert_eq!(telemetry.divergences_total.get(), 0);
        assert_eq!(telemetry.parse_errors_total.get(), report.parse_errors);
        assert_eq!(telemetry.reader_panics_total.get(), 1);
        assert!(telemetry.watchdog_trips_total.get() >= 1);
        let by_counter: u64 = FaultClass::ALL
            .iter()
            .map(|c| telemetry.class(c.label()).unwrap().get())
            .sum();
        assert_eq!(by_counter, report.packets, "class counters partition the injections");
        assert!(registry.contains("clue_fault_degraded_cost_overhead"));
    }

    #[test]
    fn ipv6_option_truncation_degrades_not_panics() {
        // The v6 leg of the truncated-option fault class: every cut of
        // a clued hop-by-hop header parses to a typed error, never a
        // panic — the receiver's fallback is always available.
        let dst = Ip6(0x2001_0db8_0000_0000_0000_0000_0000_0001);
        let pkt = Ipv6Packet::new(Ip6(0x2001_0db8_ffff_0000_0000_0000_0000_0002), dst, 6)
            .with_clue(ClueHeader::with_clue(&Prefix::new(dst, 48)));
        let bytes = pkt.to_bytes();
        assert!(bytes.len() > 40, "clue rides an extension header");
        for cut in 0..bytes.len() {
            match Ipv6Packet::parse(&bytes[..cut]) {
                Err(WireError::Truncated { needed, got }) => {
                    assert_eq!(got, cut);
                    assert!(needed > got);
                }
                Err(_) => {}
                Ok(_) => panic!("a proper prefix of {cut} bytes must not parse"),
            }
        }
    }
}
