//! # clue-netsim
//!
//! A packet-level simulator for the network-wide behaviour of distributed
//! IP lookup:
//!
//! * [`Topology`] — lines, rings, stars, two-level ISP backbones and
//!   random connected graphs, with BFS route trees standing in for
//!   OSPF/BGP;
//! * [`Network`] — per-router FIBs built with distance-decaying detail
//!   (the BGP-aggregation structure behind the paper's Figure 1), and a
//!   [`clue_core::ClueEngine`] per incoming link whose clue set is
//!   exactly “the upstream router's prefixes routed through me”;
//! * [`Network::route_packet`] — end-to-end forwarding with clue
//!   piggybacking, heterogeneous participation (Section 5.3: clue-less
//!   routers relay clues) and the Section 5.4 load-shifting mode;
//! * [`run_workload`] — multi-packet runs with per-router / per-hop
//!   statistics (Figure 1's two curves fall straight out);
//! * [`run_workload_parallel`] — the same workload sharded over OS
//!   threads against a [`FrozenNetwork`], bit-identical for a given
//!   seed regardless of thread count;
//! * [`StrideNetwork`] / [`serve_lookups`] — the shared-nothing
//!   multi-core serving runtime: per-core stride-engine replicas fed
//!   over lock-free channels, bit-identical to the scalar reference at
//!   any core count, with barrier-free epoch-churn propagation;
//! * [`LabelSwitchedPath`] — the Figure 8 MPLS aggregation-point
//!   scenario, plain vs label-as-clue-index hybrid;
//! * [`PathVector`] — a BGP-like path-vector protocol run to
//!   convergence, with the paper's border-only aggregation policy: the
//!   distributed origin of the neighbor-table similarity the clue
//!   scheme exploits (Section 3.3.2);
//! * [`run_chaos`] — the fault-injection harness: seeded, reproducible
//!   corrupted/truncated/stale/adversarial clues, clue-less hops,
//!   drops, reorders, reader panics and stalled rebuilds, checked
//!   against the soundness invariant (any fault degrades cost, never
//!   the forwarding decision);
//! * [`adversary`] / [`run_scenario`] — systematic attackers beyond
//!   random faults (a table-aware lying neighbor, clue-flooding
//!   bursts, an oscillating liar) played against the
//!   `clue_core::reputation` quarantine, every batch differentially
//!   checked against the clue-less baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
mod churn;
mod faults;
mod fleet;
mod mpls_path;
mod network;
mod parallel;
mod pathvector;
mod runtime;
mod sim;
mod topology;

pub use adversary::{
    deepest_mismatch_clue, flood_clue, participation_sweep, run_scenario, AttackProfile,
    ScenarioBatch, ScenarioConfig, ScenarioReport, SweepPoint,
};
pub use churn::{run_churn, ChurnDriverConfig, ChurnError, ChurnReport};
pub use faults::{
    run_chaos, ChaosConfig, ChaosReport, ChurnFaultPlan, ClassOutcome, FaultClass, FaultPlan,
    RebuildWatchdog,
};
pub use fleet::{
    AdversaryRound, Fleet, FleetAdversaryConfig, FleetAdversaryReport, FleetChurnConfig,
    FleetChurnReport, FleetConfig, FleetRunReport, FleetStats, Flow, HopSavings, LinkStats,
    TopologyKind,
};
pub use mpls_path::{LabelSwitchedPath, LspHop};
pub use pathvector::{Aggregation, PathVector, Rib, Route};
pub use network::{
    DetailBands, Hop, HopRecord, Network, NetworkConfig, PathTrace, RouterNode,
};
pub use parallel::{run_workload_parallel, run_workload_per_packet, FrozenNetwork, PacketNetwork};
pub use runtime::{
    available_workers, serve_lookups, CompiledNetwork, CompressedNetwork, CoreStats,
    RuntimeConfig, RuntimeReport, ServeReport, StrideNetwork,
};
pub use sim::{export_cost_stats, run_workload, run_workload_instrumented, RunStats};
pub use topology::{EcmpTree, RouteTree, RouterId, Topology};
