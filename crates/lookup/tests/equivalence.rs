//! Property tests: every lookup family returns the identical best matching
//! prefix as the naive reference scan, for arbitrary tables and addresses.

use clue_lookup::{build_scheme, reference_bmp, Family};
use clue_trie::{Cost, Ip4, Ip6, Prefix};
use proptest::prelude::*;

/// Strategy: a plausible prefix — random bits, length biased toward the
/// 8..=28 range that real IPv4 tables use (plus occasional /0 and /32).
fn arb_prefix4() -> impl Strategy<Value = Prefix<Ip4>> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix::new(Ip4(bits), len))
}

fn arb_prefix6() -> impl Strategy<Value = Prefix<Ip6>> {
    (any::<u128>(), 0u8..=128).prop_map(|(bits, len)| Prefix::new(Ip6(bits), len))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_families_agree_with_reference_ip4(
        prefixes in proptest::collection::vec(arb_prefix4(), 1..80),
        addrs in proptest::collection::vec(any::<u32>(), 1..40),
    ) {
        let schemes: Vec<_> = Family::all_extended()
            .into_iter()
            .map(|f| build_scheme(f, &prefixes))
            .collect();
        for &raw in &addrs {
            let addr = Ip4(raw);
            let expected = reference_bmp(&prefixes, addr);
            for s in &schemes {
                let mut cost = Cost::new();
                let got = s.lookup(addr, &mut cost);
                prop_assert_eq!(
                    got, expected,
                    "family {} disagrees on {}", s.family(), addr
                );
            }
        }
    }

    #[test]
    fn all_families_agree_with_reference_ip6(
        prefixes in proptest::collection::vec(arb_prefix6(), 1..40),
        addrs in proptest::collection::vec(any::<u128>(), 1..20),
    ) {
        let schemes: Vec<_> = Family::all_extended()
            .into_iter()
            .map(|f| build_scheme(f, &prefixes))
            .collect();
        for &raw in &addrs {
            let addr = Ip6(raw);
            let expected = reference_bmp(&prefixes, addr);
            for s in &schemes {
                let mut cost = Cost::new();
                prop_assert_eq!(s.lookup(addr, &mut cost), expected);
            }
        }
    }

    #[test]
    fn lookups_of_covered_addresses_always_hit(
        prefixes in proptest::collection::vec(arb_prefix4(), 1..50),
    ) {
        // Probing the first address of each stored prefix must match at
        // least that prefix.
        let schemes: Vec<_> = Family::all_extended()
            .into_iter()
            .map(|f| build_scheme(f, &prefixes))
            .collect();
        for p in &prefixes {
            let addr = p.first_address();
            for s in &schemes {
                let mut cost = Cost::new();
                let got = s.lookup(addr, &mut cost);
                prop_assert!(got.is_some());
                prop_assert!(got.unwrap().len() >= p.len() || got.unwrap().contains(addr));
            }
        }
    }
}
