//! Baselines (3) and (4): search over the endpoints of prefix ranges.
//!
//! Following Lampson–Srinivasan–Varghese [19 in the paper], every prefix
//! is expanded to the address range it covers; the sorted multiset of
//! range endpoints partitions the address line into intervals on which the
//! best matching prefix is constant. A lookup is then a predecessor search
//! over the endpoint array:
//!
//! * **Binary** — classic binary search, one memory access per probe
//!   (`⌈log₂ N⌉` accesses);
//! * **B-way** — each probe fetches a cache line holding `B − 1`
//!   separators (the SDRAM trick of [11]), giving `⌈log_B N⌉` accesses.
//!   The paper uses `B = 6`.
//!
//! Both share one precomputed [`RangeIndex`].

use clue_trie::{Address, BinaryTrie, Cost, Prefix};

use crate::scheme::{Family, LookupScheme};

/// Sorted endpoint array with the precomputed BMP on and between
/// endpoints.
#[derive(Debug, Clone)]
pub struct RangeIndex<A: Address> {
    /// Distinct endpoint addresses, sorted ascending.
    keys: Vec<A>,
    /// BMP of an address equal to `keys[i]`.
    bmp_at: Vec<Option<Prefix<A>>>,
    /// BMP of any address strictly between `keys[i]` and `keys[i + 1]`.
    bmp_after: Vec<Option<Prefix<A>>>,
}

impl<A: Address> RangeIndex<A> {
    /// Builds the index from a set of prefixes.
    pub fn new<I: IntoIterator<Item = Prefix<A>>>(prefixes: I) -> Self {
        let trie: BinaryTrie<A, ()> = prefixes.into_iter().map(|p| (p, ())).collect();
        let mut keys: Vec<A> = Vec::with_capacity(trie.len() * 2);
        for (_, p, _) in trie.iter() {
            keys.push(p.first_address());
            keys.push(p.last_address());
        }
        keys.sort_unstable();
        keys.dedup();

        let bmp = |addr: A| trie.lookup(addr).map(|r| trie.prefix(r));
        let mut bmp_at = Vec::with_capacity(keys.len());
        let mut bmp_after = Vec::with_capacity(keys.len());
        let max = u128::MAX >> (128 - A::BITS as u32);
        for &k in &keys {
            bmp_at.push(bmp(k));
            let v = k.to_u128();
            // BMP is constant on the open interval after k; sample its
            // first point. When k is the top of the address space the
            // interval is empty and the slot is never consulted.
            bmp_after.push(if v >= max { None } else { bmp(A::from_u128(v + 1)) });
        }
        RangeIndex { keys, bmp_at, bmp_after }
    }

    /// Number of endpoints.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` iff the index holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    fn resolve(&self, idx: usize, addr: A) -> Option<Prefix<A>> {
        if self.keys[idx] == addr {
            self.bmp_at[idx]
        } else {
            self.bmp_after[idx]
        }
    }

    /// Predecessor search by classic binary search: one
    /// [`Cost::range_probe`] per midpoint comparison.
    pub fn lookup_binary(&self, addr: A, cost: &mut Cost) -> Option<Prefix<A>> {
        let (mut lo, mut hi) = (0usize, self.keys.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            cost.range_probe();
            if self.keys[mid] <= addr {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo == 0 {
            None // below every endpoint: no prefix covers addr
        } else {
            self.resolve(lo - 1, addr)
        }
    }

    /// Predecessor search by B-way search: each probe fetches one line of
    /// `b − 1` separators (one [`Cost::range_probe`]), narrowing the range
    /// by a factor of `b`; a final line fetch resolves ranges of up to
    /// `b − 1` keys.
    ///
    /// # Panics
    /// Panics if `b < 2`.
    pub fn lookup_bway(&self, addr: A, b: u8, cost: &mut Cost) -> Option<Prefix<A>> {
        assert!(b >= 2, "B-way search needs B >= 2");
        let b = b as usize;
        let (mut lo, mut hi) = (0usize, self.keys.len());
        // Greatest index known so far with keys[best] <= addr.
        let mut best: Option<usize> = None;
        while hi > lo {
            cost.range_probe();
            if hi - lo < b {
                // The whole remaining range fits in one line: scan it
                // within the single access just charged.
                for i in lo..hi {
                    if self.keys[i] <= addr {
                        best = Some(i);
                    } else {
                        break;
                    }
                }
                break;
            }
            // One access fetches b - 1 evenly spaced separators, which
            // are distinct because hi - lo >= b.
            let span = hi - lo;
            let mut taken = None;
            for k in 1..b {
                let sep = lo + k * span / b;
                if self.keys[sep] <= addr {
                    taken = Some(k);
                } else {
                    break;
                }
            }
            match taken {
                None => hi = lo + span / b, // below the first separator
                Some(k) => {
                    // Descend into the sub-range between separator k
                    // (exclusive on the left, it already matched) and
                    // separator k + 1 (or hi for the last sub-range).
                    let base = lo;
                    let sep = base + k * span / b;
                    best = Some(sep);
                    lo = sep + 1;
                    if k + 1 < b {
                        hi = base + (k + 1) * span / b;
                    }
                }
            }
        }
        best.and_then(|i| self.resolve(i, addr))
    }

    /// Approximate resident size in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.keys.len()
            * (core::mem::size_of::<A>() + 2 * core::mem::size_of::<Option<Prefix<A>>>())
    }
}

/// Baseline (3): binary search over range endpoints.
#[derive(Debug, Clone)]
pub struct BinaryScheme<A: Address> {
    index: RangeIndex<A>,
}

impl<A: Address> BinaryScheme<A> {
    /// Builds the scheme over the given prefixes.
    pub fn new<I: IntoIterator<Item = Prefix<A>>>(prefixes: I) -> Self {
        BinaryScheme { index: RangeIndex::new(prefixes) }
    }
}

impl<A: Address> LookupScheme<A> for BinaryScheme<A> {
    fn family(&self) -> Family {
        Family::Binary
    }

    fn lookup(&self, addr: A, cost: &mut Cost) -> Option<Prefix<A>> {
        self.index.lookup_binary(addr, cost)
    }

    fn memory_bytes(&self) -> usize {
        self.index.memory_bytes()
    }

    fn clone_box(&self) -> Box<dyn LookupScheme<A> + Send + Sync> {
        Box::new(self.clone())
    }
}

/// Baseline (4): B-way search over range endpoints (default B = 6).
#[derive(Debug, Clone)]
pub struct BWayScheme<A: Address> {
    index: RangeIndex<A>,
    b: u8,
}

impl<A: Address> BWayScheme<A> {
    /// Builds the scheme with branching factor `b` (the paper uses 6).
    pub fn new<I: IntoIterator<Item = Prefix<A>>>(prefixes: I, b: u8) -> Self {
        assert!(b >= 2, "B-way search needs B >= 2");
        BWayScheme { index: RangeIndex::new(prefixes), b }
    }
}

impl<A: Address> LookupScheme<A> for BWayScheme<A> {
    fn family(&self) -> Family {
        Family::BWay(self.b)
    }

    fn lookup(&self, addr: A, cost: &mut Cost) -> Option<Prefix<A>> {
        self.index.lookup_bway(addr, self.b, cost)
    }

    fn memory_bytes(&self) -> usize {
        self.index.memory_bytes()
    }

    fn clone_box(&self) -> Box<dyn LookupScheme<A> + Send + Sync> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::reference_bmp;
    use clue_trie::Ip4;

    fn prefixes() -> Vec<Prefix<Ip4>> {
        [
            "0.0.0.0/0",
            "10.0.0.0/8",
            "10.1.0.0/16",
            "10.1.2.0/24",
            "10.1.2.128/25",
            "172.16.0.0/12",
            "192.168.0.0/16",
            "192.168.1.0/24",
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect()
    }

    fn addrs() -> Vec<Ip4> {
        [
            "0.0.0.0",
            "9.255.255.255",
            "10.0.0.0",
            "10.1.2.3",
            "10.1.2.200",
            "10.1.255.255",
            "10.255.255.255",
            "11.0.0.0",
            "172.20.0.1",
            "192.168.1.77",
            "192.168.2.1",
            "255.255.255.255",
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect()
    }

    #[test]
    fn binary_agrees_with_reference() {
        let ps = prefixes();
        let s = BinaryScheme::new(ps.clone());
        for addr in addrs() {
            let mut c = Cost::new();
            assert_eq!(s.lookup(addr, &mut c), reference_bmp(&ps, addr), "addr {addr}");
            assert!(c.range_probes > 0);
        }
    }

    #[test]
    fn bway_agrees_with_reference_for_many_branchings() {
        let ps = prefixes();
        for b in [2u8, 3, 4, 6, 8, 16] {
            let s = BWayScheme::new(ps.clone(), b);
            for addr in addrs() {
                let mut c = Cost::new();
                assert_eq!(
                    s.lookup(addr, &mut c),
                    reference_bmp(&ps, addr),
                    "addr {addr} b {b}"
                );
            }
        }
    }

    #[test]
    fn bway_needs_fewer_probes_than_binary() {
        // Large synthetic table so the log factors separate.
        let ps: Vec<Prefix<Ip4>> =
            (0u32..2000).map(|i| Prefix::new(Ip4(i << 12), 24)).collect();
        let bin = BinaryScheme::new(ps.clone());
        let six = BWayScheme::new(ps.clone(), 6);
        let addr = Ip4(1000 << 12 | 55);
        let (mut cb, mut cs) = (Cost::new(), Cost::new());
        assert_eq!(bin.lookup(addr, &mut cb), six.lookup(addr, &mut cs));
        assert!(
            cs.range_probes < cb.range_probes,
            "6-way {} !< binary {}",
            cs.range_probes,
            cb.range_probes
        );
    }

    #[test]
    fn no_prefix_below_first_endpoint() {
        let ps: Vec<Prefix<Ip4>> = vec!["10.0.0.0/8".parse().unwrap()];
        let s = BinaryScheme::new(ps);
        let mut c = Cost::new();
        assert_eq!(s.lookup("1.2.3.4".parse().unwrap(), &mut c), None);
    }

    #[test]
    fn empty_index() {
        let s = BinaryScheme::<Ip4>::new([]);
        let mut c = Cost::new();
        assert_eq!(s.lookup(Ip4(42), &mut c), None);
        let s6 = BWayScheme::<Ip4>::new([], 6);
        assert_eq!(s6.lookup(Ip4(42), &mut c), None);
    }

    #[test]
    fn top_of_address_space() {
        let ps: Vec<Prefix<Ip4>> =
            vec!["255.255.255.255/32".parse().unwrap(), "255.0.0.0/8".parse().unwrap()];
        let s = BinaryScheme::new(ps.clone());
        let mut c = Cost::new();
        assert_eq!(
            s.lookup("255.255.255.255".parse().unwrap(), &mut c),
            reference_bmp(&ps, "255.255.255.255".parse().unwrap())
        );
    }
}
