//! Baseline (5): binary search over prefix *lengths* with marker hash
//! tables — Waldvogel, Varghese, Turner, Plattner (“Log W”, [26] in the
//! paper).
//!
//! One hash table per populated prefix length. A lookup binary-searches
//! the sorted list of lengths: probing length `l` hashes the destination's
//! leading `l` bits; a hit steers the search toward longer lengths, a miss
//! toward shorter ones. **Markers** — artificial entries left at the
//! levels a search would probe on its way to a longer prefix — make the
//! steering sound, and each marker precomputes the BMP of its own string
//! so that a failed excursion never needs to backtrack.
//!
//! The same structure, built over a *candidate set* `P(s, R1)` instead of
//! a full table, implements the paper's Section 4 “adapting the log W
//! method” clue continuation: the clue bounds the candidate lengths, so
//! the search runs over `log |lengths(P)|` levels instead of `log W`.

use std::collections::HashMap;

use clue_trie::{Address, BinaryTrie, Cost, Prefix};

use crate::scheme::{Family, LookupScheme};

#[derive(Debug, Clone)]
struct Entry<A: Address> {
    /// BMP of this entry's string within the built prefix set. For a real
    /// prefix this is the prefix itself; for a pure marker it is the
    /// longest real prefix of the marker string (possibly `None`).
    bmp: Option<Prefix<A>>,
}

/// Binary search over prefix lengths with markers.
#[derive(Debug, Clone)]
pub struct LengthBinarySearch<A: Address> {
    /// Sorted distinct prefix lengths that have a hash table.
    levels: Vec<u8>,
    /// One hash table per level, keyed by the masked leading bits.
    tables: Vec<HashMap<A, Entry<A>>>,
}

impl<A: Address> LengthBinarySearch<A> {
    /// Builds the structure (tables + markers + precomputed marker BMPs)
    /// over the given prefixes.
    pub fn new<I: IntoIterator<Item = Prefix<A>>>(prefixes: I) -> Self {
        let trie: BinaryTrie<A, ()> = prefixes.into_iter().map(|p| (p, ())).collect();
        let mut levels: Vec<u8> = trie.prefixes().map(|p| p.len()).collect();
        levels.sort_unstable();
        levels.dedup();
        let mut tables: Vec<HashMap<A, Entry<A>>> = vec![HashMap::new(); levels.len()];

        let level_index: HashMap<u8, usize> =
            levels.iter().enumerate().map(|(i, &l)| (l, i)).collect();

        for p in trie.prefixes() {
            // Real entry. Its BMP is itself.
            let li = level_index[&p.len()];
            tables[li].insert(p.bits(), Entry { bmp: Some(p) });

            // Markers along the binary-search probe path toward p's level.
            let (mut lo, mut hi) = (0usize, levels.len());
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                match levels[mid].cmp(&p.len()) {
                    core::cmp::Ordering::Less => {
                        let marker = p.truncate(levels[mid]);
                        let slot = tables[mid].entry(marker.bits()).or_insert_with(|| Entry {
                            bmp: trie
                                .best_match_of_prefix(&marker)
                                .map(|r| trie.prefix(r)),
                        });
                        // A real prefix may already sit here; keep its bmp.
                        let _ = slot;
                        lo = mid + 1;
                    }
                    core::cmp::Ordering::Equal => break,
                    core::cmp::Ordering::Greater => hi = mid,
                }
            }
        }
        LengthBinarySearch { levels, tables }
    }

    /// Longest-prefix match of `addr`: one [`Cost::hash_probe`] per level
    /// probed (`⌈log₂(#levels + 1)⌉` probes at most).
    pub fn lookup(&self, addr: A, cost: &mut Cost) -> Option<Prefix<A>> {
        let (mut lo, mut hi) = (0usize, self.levels.len());
        let mut best = None;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            cost.hash_probe();
            let key = addr.mask(self.levels[mid]);
            match self.tables[mid].get(&key) {
                Some(e) => {
                    if e.bmp.is_some() {
                        best = e.bmp;
                    }
                    lo = mid + 1;
                }
                None => hi = mid,
            }
        }
        best
    }

    /// The populated prefix lengths, sorted ascending.
    pub fn levels(&self) -> &[u8] {
        &self.levels
    }

    /// Total number of entries across all levels (real + markers) — the
    /// `O(N log W)` space the paper cites for this scheme.
    pub fn entry_count(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// Approximate resident size in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.entry_count()
            * (core::mem::size_of::<A>() + core::mem::size_of::<Entry<A>>())
            + self.levels.len() * core::mem::size_of::<u8>()
    }
}

/// Baseline (5) as a [`LookupScheme`].
#[derive(Debug, Clone)]
pub struct LogWScheme<A: Address> {
    search: LengthBinarySearch<A>,
}

impl<A: Address> LogWScheme<A> {
    /// Builds the scheme over the given prefixes.
    pub fn new<I: IntoIterator<Item = Prefix<A>>>(prefixes: I) -> Self {
        LogWScheme { search: LengthBinarySearch::new(prefixes) }
    }

    /// The underlying length-binary-search structure.
    pub fn search(&self) -> &LengthBinarySearch<A> {
        &self.search
    }
}

impl<A: Address> LookupScheme<A> for LogWScheme<A> {
    fn family(&self) -> Family {
        Family::LogW
    }

    fn lookup(&self, addr: A, cost: &mut Cost) -> Option<Prefix<A>> {
        self.search.lookup(addr, cost)
    }

    fn memory_bytes(&self) -> usize {
        self.search.memory_bytes()
    }

    fn clone_box(&self) -> Box<dyn LookupScheme<A> + Send + Sync> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::reference_bmp;
    use clue_trie::Ip4;

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    fn prefixes() -> Vec<Prefix<Ip4>> {
        [
            "0.0.0.0/0",
            "10.0.0.0/8",
            "10.1.0.0/16",
            "10.1.2.0/24",
            "10.1.2.128/25",
            "172.16.0.0/12",
            "192.168.0.0/16",
            "192.168.1.0/24",
            "192.168.1.128/26",
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect()
    }

    #[test]
    fn agrees_with_reference() {
        let ps = prefixes();
        let s = LogWScheme::new(ps.clone());
        for a in [
            "10.1.2.3",
            "10.1.2.200",
            "10.1.9.9",
            "10.2.0.1",
            "172.20.0.1",
            "192.168.1.150",
            "192.168.1.1",
            "8.8.8.8",
            "255.255.255.255",
        ] {
            let addr: Ip4 = a.parse().unwrap();
            let mut c = Cost::new();
            assert_eq!(s.lookup(addr, &mut c), reference_bmp(&ps, addr), "addr {a}");
        }
    }

    #[test]
    fn probe_count_is_logarithmic_in_levels() {
        let ps = prefixes(); // lengths {0, 8, 12, 16, 24, 25, 26} = 7 levels
        let s = LogWScheme::new(ps);
        assert_eq!(s.search().levels().len(), 7);
        let mut c = Cost::new();
        s.lookup("10.1.2.3".parse().unwrap(), &mut c);
        assert!(c.hash_probes <= 3, "expected <= ceil(log2(8)) probes, got {}", c.hash_probes);
        assert!(c.hash_probes >= 1);
    }

    #[test]
    fn markers_guide_search_to_deep_prefixes() {
        // Without the /8 and /16 markers, the search for 10.1.2.200 would
        // miss at the midpoint and never reach /25.
        let ps = vec![p("10.1.2.128/25"), p("77.0.0.0/8"), p("88.99.0.0/16")];
        let s = LogWScheme::new(ps.clone());
        let addr: Ip4 = "10.1.2.200".parse().unwrap();
        let mut c = Cost::new();
        assert_eq!(s.lookup(addr, &mut c), Some(p("10.1.2.128/25")));
        // And an address sharing the marker but not the prefix falls back
        // to the marker's precomputed BMP (here: none).
        let near: Ip4 = "10.1.2.1".parse().unwrap();
        let mut c2 = Cost::new();
        assert_eq!(s.lookup(near, &mut c2), reference_bmp(&ps, near));
    }

    #[test]
    fn marker_bmp_fallback_is_used() {
        // 10/8 is real; marker for /25 at /16 must carry bmp = 10/8 so a
        // destination matching the marker but not the /25 still gets /8.
        let ps = vec![p("10.0.0.0/8"), p("10.1.0.0/25"), p("99.0.0.0/8")];
        let s = LogWScheme::new(ps.clone());
        let addr: Ip4 = "10.1.0.200".parse().unwrap(); // matches /16 marker, not /25
        let mut c = Cost::new();
        assert_eq!(s.lookup(addr, &mut c), Some(p("10.0.0.0/8")));
    }

    #[test]
    fn empty_table() {
        let s = LogWScheme::<Ip4>::new([]);
        let mut c = Cost::new();
        assert_eq!(s.lookup(Ip4(7), &mut c), None);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn entry_count_includes_markers() {
        let ps = vec![p("10.1.2.128/25"), p("77.0.0.0/8"), p("88.99.0.0/16")];
        let s = LogWScheme::new(ps);
        assert!(s.search().entry_count() > 3, "markers should add entries");
    }

    #[test]
    fn single_level_needs_one_probe() {
        let ps: Vec<Prefix<Ip4>> = (0..64u32).map(|i| Prefix::new(Ip4(i << 24), 8)).collect();
        let s = LogWScheme::new(ps);
        let mut c = Cost::new();
        assert_eq!(s.lookup(Ip4(5 << 24 | 123), &mut c), Some(Prefix::new(Ip4(5 << 24), 8)));
        assert_eq!(c.hash_probes, 1);
    }
}
