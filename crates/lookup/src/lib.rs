//! # clue-lookup
//!
//! The five classic IP longest-prefix-match schemes the paper benchmarks
//! against (Section 6), behind one counted-lookup trait:
//!
//! | Paper name | Type | Accesses per lookup |
//! |------------|------|---------------------|
//! | Regular    | [`RegularScheme`]  — bit-by-bit trie walk | `O(W)` |
//! | Patricia   | [`PatriciaScheme`] — compressed-trie walk | branch points |
//! | Binary     | [`BinaryScheme`]   — search over range endpoints | `⌈log₂ 2N⌉` |
//! | 6-way      | [`BWayScheme`]     — B-way search (cache-line probes) | `⌈log_B 2N⌉` |
//! | Log W      | [`LogWScheme`]     — binary search over lengths | `⌈log₂ #levels⌉` |
//!
//! All schemes return bit-identical best matching prefixes (property-tested
//! against [`reference_bmp`]); they differ only in the memory accesses they
//! charge — the paper's evaluation metric.
//!
//! The building blocks are exported too, because the clue machinery in
//! `clue-core` re-uses them for the Section 4 continuations:
//! [`RangeIndex`] for clue-restricted binary/B-way searches and
//! [`LengthBinarySearch`] for the clue-restricted Log W search.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lenbs;
mod ranges;
mod scheme;
mod stride;
mod trie_schemes;

pub use lenbs::{LengthBinarySearch, LogWScheme};
pub use ranges::{BWayScheme, BinaryScheme, RangeIndex};
pub use scheme::{reference_bmp, Family, LookupScheme};
pub use stride::{default_strides, SNodeId, StrideScheme, StrideTrie};
pub use trie_schemes::{PatriciaScheme, RegularScheme};

use clue_trie::{Address, Prefix};

/// Builds the scheme of the given family over `prefixes`, boxed behind the
/// common trait — convenience for experiment harnesses that sweep the
/// paper's fifteen method combinations (or all eighteen with
/// [`Family::all_extended`]).
pub fn build_scheme<A: Address>(
    family: Family,
    prefixes: &[Prefix<A>],
) -> Box<dyn LookupScheme<A> + Send + Sync> {
    let it = prefixes.iter().copied();
    match family {
        Family::Regular => Box::new(RegularScheme::new(it)),
        Family::Patricia => Box::new(PatriciaScheme::new(it)),
        Family::Binary => Box::new(BinaryScheme::new(it)),
        Family::BWay(b) => Box::new(BWayScheme::new(it, b)),
        Family::LogW => Box::new(LogWScheme::new(it)),
        Family::Stride => Box::new(StrideScheme::new(it)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_trie::{Cost, Ip4};

    #[test]
    fn build_scheme_dispatches_every_family() {
        let ps: Vec<Prefix<Ip4>> =
            ["10.0.0.0/8", "10.1.0.0/16"].iter().map(|s| s.parse().unwrap()).collect();
        let addr: Ip4 = "10.1.2.3".parse().unwrap();
        for fam in Family::all() {
            let s = build_scheme(fam, &ps);
            assert_eq!(s.family(), fam);
            let mut c = Cost::new();
            assert_eq!(s.lookup(addr, &mut c), reference_bmp(&ps, addr), "family {fam}");
            assert!(s.memory_bytes() > 0);
        }
    }

    #[test]
    fn boxed_schemes_clone_into_independent_replicas() {
        let ps: Vec<Prefix<Ip4>> =
            ["10.0.0.0/8", "10.1.0.0/16"].iter().map(|s| s.parse().unwrap()).collect();
        let addr: Ip4 = "10.1.2.3".parse().unwrap();
        for fam in Family::all_extended() {
            let original = build_scheme(fam, &ps);
            let replica = original.clone();
            let (mut c1, mut c2) = (Cost::new(), Cost::new());
            assert_eq!(
                original.lookup(addr, &mut c1),
                replica.lookup(addr, &mut c2),
                "family {fam}"
            );
            assert_eq!(c1, c2, "replica charges identical accesses for {fam}");
            assert_eq!(original.family(), replica.family());
        }
    }
}
