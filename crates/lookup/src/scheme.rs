//! The common interface of all longest-prefix-match schemes.

use clue_trie::{Address, Cost, Prefix};

/// One of the five classic lookup families the paper benchmarks
/// (Section 6 calls them Regular, Patricia, Binary, 6-way and Log W).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Bit-by-bit walk of the binary trie (refs. 22, 23 in the paper).
    Regular,
    /// Path-compressed trie walk (refs. 22, 23 in the paper).
    Patricia,
    /// Binary search over the endpoints of prefix ranges (ref. 19).
    Binary,
    /// B-way search over the same endpoints, modelling one cache-line
    /// fetch per probe (ref. 11). The paper uses B = 6.
    BWay(u8),
    /// Binary search over prefix lengths with marker hash tables (ref. 26).
    LogW,
    /// Extension (not in the paper's tables): fixed-stride multibit trie
    /// — the “different jumps” direction of ref. 24, default 16-8-8
    /// strides.
    Stride,
}

impl Family {
    /// The five families at the paper's parameters, in the order its
    /// tables list them.
    pub fn all() -> [Family; 5] {
        [Family::Regular, Family::Patricia, Family::Binary, Family::BWay(6), Family::LogW]
    }

    /// The paper's five families plus this crate's extensions.
    pub fn all_extended() -> [Family; 6] {
        [
            Family::Regular,
            Family::Patricia,
            Family::Binary,
            Family::BWay(6),
            Family::LogW,
            Family::Stride,
        ]
    }

    /// The label used in the paper's tables.
    pub fn label(&self) -> String {
        match self {
            Family::Regular => "Regular".to_owned(),
            Family::Patricia => "Patricia".to_owned(),
            Family::Binary => "Binary".to_owned(),
            Family::BWay(b) => format!("{b}-way"),
            Family::LogW => "Log W".to_owned(),
            Family::Stride => "Stride".to_owned(),
        }
    }
}

impl core::fmt::Display for Family {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// A longest-prefix-match structure over a fixed set of prefixes.
///
/// Every scheme returns the **identical** best matching prefix for every
/// address (enforced by cross-scheme equality tests); they differ only in
/// the number of memory accesses charged to [`Cost`].
pub trait LookupScheme<A: Address> {
    /// The family this scheme implements.
    fn family(&self) -> Family;

    /// Longest-prefix match of `addr`, charging memory accesses to `cost`.
    fn lookup(&self, addr: A, cost: &mut Cost) -> Option<Prefix<A>>;

    /// Approximate resident size in bytes, for space comparisons.
    fn memory_bytes(&self) -> usize;

    /// A boxed deep copy of this scheme — the replica path used by the
    /// shared-nothing serving runtime, which hands every core its own
    /// private copy of a boxed scheme instead of sharing one behind a
    /// lock. Every scheme is a plain owned structure, so the copy
    /// shares no state with the original.
    fn clone_box(&self) -> Box<dyn LookupScheme<A> + Send + Sync>;
}

impl<A: Address> Clone for Box<dyn LookupScheme<A> + Send + Sync> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Reference implementation: a linear scan over all prefixes. Hopelessly
/// slow, obviously correct — the oracle all schemes are tested against.
pub fn reference_bmp<A: Address>(prefixes: &[Prefix<A>], addr: A) -> Option<Prefix<A>> {
    prefixes
        .iter()
        .filter(|p| p.contains(addr))
        .max_by_key(|p| p.len())
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_trie::Ip4;

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    #[test]
    fn reference_picks_longest() {
        let ps = vec![p("10.0.0.0/8"), p("10.1.0.0/16"), p("0.0.0.0/0")];
        assert_eq!(reference_bmp(&ps, "10.1.2.3".parse().unwrap()), Some(p("10.1.0.0/16")));
        assert_eq!(reference_bmp(&ps, "11.0.0.1".parse().unwrap()), Some(p("0.0.0.0/0")));
        assert_eq!(reference_bmp(&ps[..2], "11.0.0.1".parse().unwrap()), None);
    }

    #[test]
    fn family_labels() {
        assert_eq!(Family::BWay(6).label(), "6-way");
        assert_eq!(Family::LogW.to_string(), "Log W");
        assert_eq!(Family::all().len(), 5);
    }
}
