//! Baselines (1) and (2): the Regular bit-by-bit trie walk and the
//! Patricia walk, as thin [`LookupScheme`] wrappers over `clue-trie`.

use clue_trie::{Address, BinaryTrie, Cost, PatriciaTrie, Prefix};

use crate::scheme::{Family, LookupScheme};

/// Baseline (1): “Regular” — scan the destination bit by bit down the
/// binary trie. Worst case `O(W)` accesses (`W` = address width), the
/// standard scheme the paper reports ~22× slower than Advance.
#[derive(Debug, Clone)]
pub struct RegularScheme<A: Address> {
    trie: BinaryTrie<A, ()>,
}

impl<A: Address> RegularScheme<A> {
    /// Builds the scheme over the given prefixes.
    pub fn new<I: IntoIterator<Item = Prefix<A>>>(prefixes: I) -> Self {
        RegularScheme { trie: prefixes.into_iter().map(|p| (p, ())).collect() }
    }

    /// The underlying trie (shared with the clue machinery, which resumes
    /// walks from clue vertices).
    pub fn trie(&self) -> &BinaryTrie<A, ()> {
        &self.trie
    }
}

impl<A: Address> LookupScheme<A> for RegularScheme<A> {
    fn family(&self) -> Family {
        Family::Regular
    }

    fn lookup(&self, addr: A, cost: &mut Cost) -> Option<Prefix<A>> {
        self.trie.lookup_counted(addr, cost).map(|r| self.trie.prefix(r))
    }

    fn memory_bytes(&self) -> usize {
        self.trie.memory_bytes()
    }

    fn clone_box(&self) -> Box<dyn LookupScheme<A> + Send + Sync> {
        Box::new(self.clone())
    }
}

/// Baseline (2): the Patricia walk — one access per path-compressed vertex
/// visited.
#[derive(Debug, Clone)]
pub struct PatriciaScheme<A: Address> {
    trie: PatriciaTrie<A>,
}

impl<A: Address> PatriciaScheme<A> {
    /// Builds the scheme over the given prefixes.
    pub fn new<I: IntoIterator<Item = Prefix<A>>>(prefixes: I) -> Self {
        PatriciaScheme { trie: prefixes.into_iter().collect() }
    }

    /// The underlying compressed trie.
    pub fn trie(&self) -> &PatriciaTrie<A> {
        &self.trie
    }
}

impl<A: Address> LookupScheme<A> for PatriciaScheme<A> {
    fn family(&self) -> Family {
        Family::Patricia
    }

    fn lookup(&self, addr: A, cost: &mut Cost) -> Option<Prefix<A>> {
        self.trie.lookup_counted(addr, cost)
    }

    fn memory_bytes(&self) -> usize {
        self.trie.memory_bytes()
    }

    fn clone_box(&self) -> Box<dyn LookupScheme<A> + Send + Sync> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::reference_bmp;
    use clue_trie::Ip4;

    fn prefixes() -> Vec<Prefix<Ip4>> {
        ["10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "172.16.0.0/12", "0.0.0.0/0"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect()
    }

    #[test]
    fn regular_agrees_with_reference() {
        let ps = prefixes();
        let s = RegularScheme::new(ps.clone());
        for a in ["10.1.2.3", "10.1.3.4", "172.20.1.1", "8.8.8.8"] {
            let addr: Ip4 = a.parse().unwrap();
            let mut c = Cost::new();
            assert_eq!(s.lookup(addr, &mut c), reference_bmp(&ps, addr), "addr {a}");
            assert!(c.total() > 0);
        }
    }

    #[test]
    fn patricia_agrees_with_reference_and_is_cheaper() {
        let ps = prefixes();
        let reg = RegularScheme::new(ps.clone());
        let pat = PatriciaScheme::new(ps.clone());
        let addr: Ip4 = "10.1.2.3".parse().unwrap();
        let (mut cr, mut cp) = (Cost::new(), Cost::new());
        assert_eq!(reg.lookup(addr, &mut cr), pat.lookup(addr, &mut cp));
        assert!(cp.total() < cr.total());
    }

    #[test]
    fn families_report_correctly() {
        assert_eq!(RegularScheme::<Ip4>::new(prefixes()).family(), Family::Regular);
        assert_eq!(PatriciaScheme::<Ip4>::new(prefixes()).family(), Family::Patricia);
    }
}
