//! Extension family: the fixed-stride **multibit trie** — the “go over
//! the address in different jumps” direction the paper cites as [24]
//! (Section 2, software approach 2).
//!
//! The address is consumed `stride` bits at a time; each node is an
//! array of `2^stride` slots built by controlled prefix expansion, so a
//! full IPv4 lookup costs at most `#levels` memory accesses (3 with the
//! default 16-8-8 strides). The price is memory: expansion multiplies
//! entries.
//!
//! This family is *not* in the paper's Tables 4–9 (use
//! [`crate::Family::all`] for the paper's five); it is included because
//! the clue machinery composes with it exactly as with the others — a
//! clue lets the walk start at the deepest stride boundary the clue
//! covers — and it gives the ablation benches a “hardware-ish” baseline
//! that is already near one access per lookup.

use clue_trie::{Address, Cost, Prefix};

use crate::scheme::{Family, LookupScheme};

/// Index of a stride-trie node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SNodeId(u32);

#[derive(Debug, Clone)]
struct Slot<A: Address> {
    /// Longest original prefix covering this expanded slot.
    bmp: Option<Prefix<A>>,
    child: Option<SNodeId>,
}

#[derive(Debug, Clone)]
struct SNode<A: Address> {
    /// Bits consumed before this node (its depth in address bits).
    base: u8,
    /// This node's stride (slot count = `2^stride`).
    stride: u8,
    slots: Vec<Slot<A>>,
}

/// A fixed-stride multibit trie.
#[derive(Debug, Clone)]
pub struct StrideTrie<A: Address> {
    strides: Vec<u8>,
    nodes: Vec<SNode<A>>,
    len: usize,
}

/// The default stride plan: one 16-bit first level, then 8-bit levels to
/// the full width (16-8-8 for IPv4 — the classic DIR-24-ish layout).
pub fn default_strides(width: u8) -> Vec<u8> {
    let mut strides = vec![16u8.min(width)];
    let mut used = strides[0];
    while used < width {
        let s = 8u8.min(width - used);
        strides.push(s);
        used += s;
    }
    strides
}

impl<A: Address> StrideTrie<A> {
    /// Builds the trie over `prefixes` with the given stride plan.
    ///
    /// # Panics
    /// Panics if the strides do not sum to the address width or any
    /// stride is 0 or larger than 24 (slot arrays would explode).
    pub fn with_strides<I: IntoIterator<Item = Prefix<A>>>(prefixes: I, strides: Vec<u8>) -> Self {
        assert!(
            strides.iter().map(|&s| s as u32).sum::<u32>() == A::BITS as u32,
            "strides must cover the address width exactly"
        );
        assert!(strides.iter().all(|&s| s > 0 && s <= 24), "stride out of range");

        let mut trie = StrideTrie { strides: strides.clone(), nodes: Vec::new(), len: 0 };
        trie.alloc_node(0, strides[0]);

        // Insert in increasing length order so longer prefixes override
        // shorter ones in the expanded slots (controlled prefix
        // expansion).
        let mut sorted: Vec<Prefix<A>> = prefixes.into_iter().collect();
        sorted.sort_by_key(|p| p.len());
        for p in sorted {
            trie.insert(p);
        }
        trie
    }

    /// Builds with [`default_strides`].
    pub fn new<I: IntoIterator<Item = Prefix<A>>>(prefixes: I) -> Self {
        Self::with_strides(prefixes, default_strides(A::BITS))
    }

    fn alloc_node(&mut self, base: u8, stride: u8) -> SNodeId {
        let id = SNodeId(u32::try_from(self.nodes.len()).expect("stride trie too large"));
        self.nodes.push(SNode {
            base,
            stride,
            slots: vec![Slot { bmp: None, child: None }; 1usize << stride],
        });
        id
    }

    fn level_of(&self, base: u8) -> usize {
        let mut acc = 0u8;
        for (i, &s) in self.strides.iter().enumerate() {
            if acc == base {
                return i;
            }
            acc += s;
        }
        panic!("base {base} is not a stride boundary");
    }

    /// Bits `[from, from+width)` of `addr` as a slot index.
    fn chunk(addr: A, from: u8, width: u8) -> usize {
        let mut idx = 0usize;
        for i in 0..width {
            idx = (idx << 1) | addr.bit(from + i) as usize;
        }
        idx
    }

    fn insert(&mut self, p: Prefix<A>) {
        self.len += 1;
        // Descend to the level whose boundary first reaches p's length,
        // creating nodes on p's path.
        let mut node = SNodeId(0);
        loop {
            let (base, stride) = {
                let n = &self.nodes[node.0 as usize];
                (n.base, n.stride)
            };
            let end = base + stride;
            if p.len() <= end {
                // Expand p across the slots it covers at this level.
                let fixed = p.len() - base; // leading bits of the index
                let free = stride - fixed;
                let high = Self::chunk(p.bits(), base, fixed) << free;
                for low in 0..(1usize << free) {
                    let slot = &mut self.nodes[node.0 as usize].slots[high | low];
                    let replace = match slot.bmp {
                        None => true,
                        Some(old) => old.len() <= p.len(),
                    };
                    if replace {
                        slot.bmp = Some(p);
                    }
                }
                return;
            }
            // Descend (create the child if needed).
            let idx = Self::chunk(p.bits(), base, stride);
            let child = self.nodes[node.0 as usize].slots[idx].child;
            node = match child {
                Some(c) => c,
                None => {
                    let level = self.level_of(base);
                    let next_stride = self.strides[level + 1];
                    let c = self.alloc_node(end, next_stride);
                    self.nodes[node.0 as usize].slots[idx].child = Some(c);
                    c
                }
            };
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of allocated nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Longest-prefix match: one memory access per level visited.
    pub fn lookup_counted(&self, addr: A, cost: &mut Cost) -> Option<Prefix<A>> {
        let mut node = SNodeId(0);
        let mut best = None;
        loop {
            cost.trie_node();
            let n = &self.nodes[node.0 as usize];
            let idx = Self::chunk(addr, n.base, n.stride);
            let slot = &n.slots[idx];
            if slot.bmp.is_some() {
                best = slot.bmp;
            }
            match slot.child {
                Some(c) => node = c,
                None => return best,
            }
        }
    }

    /// Uncounted lookup.
    pub fn lookup(&self, addr: A) -> Option<Prefix<A>> {
        self.lookup_counted(addr, &mut Cost::new())
    }

    /// The node on `clue`'s path at the deepest stride boundary at or
    /// below `clue.len()` bits, for clue continuations: the walk can
    /// resume there, skipping the levels the clue already determines.
    /// Returns `None` when the clue is shorter than the first stride
    /// (resume from the root).
    pub fn node_at_clue(&self, clue: &Prefix<A>) -> Option<SNodeId> {
        let mut node = SNodeId(0);
        let mut deepest = None;
        loop {
            let n = &self.nodes[node.0 as usize];
            let end = n.base + n.stride;
            if end > clue.len() {
                return deepest;
            }
            let idx = Self::chunk(clue.bits(), n.base, n.stride);
            match n.slots[idx].child {
                Some(c) => {
                    node = c;
                    deepest = Some(c);
                }
                None => return deepest,
            }
        }
    }

    /// Resumes a lookup at `start` (from [`Self::node_at_clue`]); the
    /// caller merges the result with the clue entry's FD.
    pub fn lookup_from(&self, start: SNodeId, addr: A, cost: &mut Cost) -> Option<Prefix<A>> {
        let mut node = start;
        let mut best = None;
        loop {
            cost.trie_node();
            let n = &self.nodes[node.0 as usize];
            let idx = Self::chunk(addr, n.base, n.stride);
            let slot = &n.slots[idx];
            if slot.bmp.is_some() {
                best = slot.bmp;
            }
            match slot.child {
                Some(c) => node = c,
                None => return best,
            }
        }
    }

    /// Approximate resident size in bytes (the cost of expansion).
    pub fn memory_bytes(&self) -> usize {
        self.nodes.iter().map(|n| n.slots.len() * core::mem::size_of::<Slot<A>>()).sum()
    }
}

/// The multibit-stride family as a [`LookupScheme`].
#[derive(Debug, Clone)]
pub struct StrideScheme<A: Address> {
    trie: StrideTrie<A>,
}

impl<A: Address> StrideScheme<A> {
    /// Builds with the default 16-8-8… stride plan.
    pub fn new<I: IntoIterator<Item = Prefix<A>>>(prefixes: I) -> Self {
        StrideScheme { trie: StrideTrie::new(prefixes) }
    }

    /// The underlying stride trie.
    pub fn trie(&self) -> &StrideTrie<A> {
        &self.trie
    }
}

impl<A: Address> LookupScheme<A> for StrideScheme<A> {
    fn family(&self) -> Family {
        Family::Stride
    }

    fn lookup(&self, addr: A, cost: &mut Cost) -> Option<Prefix<A>> {
        self.trie.lookup_counted(addr, cost)
    }

    fn memory_bytes(&self) -> usize {
        self.trie.memory_bytes()
    }

    fn clone_box(&self) -> Box<dyn LookupScheme<A> + Send + Sync> {
        Box::new(self.clone())
    }
}

/// Reference check helper used by the tests: compares against the
/// pruned binary trie.
#[cfg(test)]
fn reference<A: Address>(prefixes: &[Prefix<A>], addr: A) -> Option<Prefix<A>> {
    use clue_trie::BinaryTrie;
    let t: BinaryTrie<A, ()> = prefixes.iter().map(|p| (*p, ())).collect();
    t.lookup(addr).map(|r| t.prefix(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_trie::{Ip4, Ip6};

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    fn sample() -> Vec<Prefix<Ip4>> {
        [
            "0.0.0.0/0",
            "10.0.0.0/8",
            "10.1.0.0/16",
            "10.1.2.0/24",
            "10.1.2.128/25",
            "172.16.0.0/12",
            "192.168.0.0/16",
            "192.168.1.0/24",
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect()
    }

    #[test]
    fn default_stride_plan_covers_width() {
        assert_eq!(default_strides(32), vec![16, 8, 8]);
        assert_eq!(default_strides(128).iter().map(|&s| s as u32).sum::<u32>(), 128);
        assert_eq!(default_strides(8), vec![8]);
    }

    #[test]
    fn agrees_with_reference() {
        let ps = sample();
        let t = StrideTrie::new(ps.iter().copied());
        for a in [
            "10.1.2.3",
            "10.1.2.200",
            "10.1.9.9",
            "10.99.0.1",
            "172.20.0.1",
            "192.168.1.77",
            "192.168.2.1",
            "8.8.8.8",
            "255.255.255.255",
        ] {
            let addr: Ip4 = a.parse().unwrap();
            assert_eq!(t.lookup(addr), reference(&ps, addr), "addr {a}");
        }
    }

    #[test]
    fn lookup_cost_is_bounded_by_levels() {
        let t = StrideTrie::new(sample());
        let mut c = Cost::new();
        t.lookup_counted("10.1.2.200".parse().unwrap(), &mut c);
        assert!(c.trie_nodes <= 3, "16-8-8 plan must finish in 3 accesses");
        let mut c2 = Cost::new();
        t.lookup_counted("8.8.8.8".parse().unwrap(), &mut c2);
        assert_eq!(c2.trie_nodes, 1, "a first-level miss costs one access");
    }

    #[test]
    fn expansion_prefers_longer_prefixes() {
        // /25 must beat /24 inside the shared expanded range.
        let t = StrideTrie::new(vec![p("10.1.2.0/24"), p("10.1.2.128/25")]);
        assert_eq!(t.lookup("10.1.2.129".parse().unwrap()), Some(p("10.1.2.128/25")));
        assert_eq!(t.lookup("10.1.2.1".parse().unwrap()), Some(p("10.1.2.0/24")));
    }

    #[test]
    fn clue_continuation_skips_determined_levels() {
        let ps = sample();
        let t = StrideTrie::new(ps.iter().copied());
        // Clue 10.1/16: the first 16-bit level is fully determined.
        let start = t.node_at_clue(&p("10.1.0.0/16")).expect("path exists");
        let addr: Ip4 = "10.1.2.200".parse().unwrap();
        let mut c = Cost::new();
        let got = t.lookup_from(start, addr, &mut c);
        assert_eq!(got, Some(p("10.1.2.128/25")));
        assert!(c.trie_nodes <= 2, "one level skipped");
        // A clue shorter than the first stride resumes from the root.
        assert!(t.node_at_clue(&p("10.0.0.0/8")).is_none());
    }

    #[test]
    fn randomized_against_reference() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let ps: Vec<Prefix<Ip4>> = (0..300)
            .map(|_| {
                let len = *[0u8, 8, 12, 15, 16, 17, 22, 24, 28, 32]
                    .get(rng.random_range(0..10usize))
                    .unwrap();
                Prefix::new(Ip4(rng.random()), len)
            })
            .collect();
        let t = StrideTrie::new(ps.iter().copied());
        for _ in 0..500 {
            let addr = Ip4(rng.random());
            assert_eq!(t.lookup(addr), reference(&ps, addr), "addr {addr}");
        }
    }

    #[test]
    fn ipv6_strides_work() {
        let ps: Vec<Prefix<Ip6>> =
            vec!["2001:db8::/32".parse().unwrap(), "2001:db8:1::/48".parse().unwrap()];
        let t = StrideTrie::new(ps.iter().copied());
        let a: Ip6 = "2001:db8:1::42".parse().unwrap();
        assert_eq!(t.lookup(a), Some("2001:db8:1::/48".parse().unwrap()));
        let mut c = Cost::new();
        t.lookup_counted(a, &mut c);
        assert!(c.trie_nodes <= default_strides(128).len() as u64);
    }

    #[test]
    fn memory_reflects_expansion() {
        let small = StrideTrie::new(vec![p("10.0.0.0/8")]);
        let big = StrideTrie::new(sample());
        assert!(big.memory_bytes() >= small.memory_bytes());
        assert!(small.memory_bytes() > 0);
        assert_eq!(big.len(), 8);
        assert!(!big.is_empty());
        assert!(big.node_count() >= 3);
    }

    #[test]
    #[should_panic(expected = "strides must cover")]
    fn bad_stride_plan_panics() {
        let _ = StrideTrie::<Ip4>::with_strides(vec![], vec![16, 8]);
    }
}
