//! Path-compressed (Patricia) trie, the paper's baseline (2).
//!
//! The classic refinement of the binary trie [22, 23 in the paper]: every
//! internal unmarked vertex with a single child is contracted, so each
//! surviving vertex is either marked or has two children. A lookup visits
//! one vertex per *branching point* instead of one per bit; the paper's
//! cost model charges one memory access per vertex visited, which is what
//! [`PatriciaTrie::lookup_counted`] counts.
//!
//! For clue continuations (Section 4, “Adapting Patricia”) the clue string
//! may name a vertex that was contracted away; [`PatriciaTrie::locate`]
//! distinguishes the three situations (at a vertex / inside a compressed
//! edge / absent) and [`PatriciaTrie::lookup_from`] resumes the walk from
//! any of them.

use crate::addr::Address;
use crate::cost::Cost;
use crate::prefix::Prefix;

/// Identifier of a Patricia vertex.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct PNodeId(u32);

impl PNodeId {
    /// The arena index (for per-node side tables such as the Claim 1
    /// booleans of Section 4).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct PNode<A: Address> {
    prefix: Prefix<A>,
    marked: bool,
    children: [Option<PNodeId>; 2],
    parent: Option<PNodeId>,
    alive: bool,
}

/// Where a string sits relative to the compressed structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// The string is exactly the label of this vertex.
    AtNode(PNodeId),
    /// The string lies strictly inside the compressed edge from `above`
    /// to `below` (it is a strict extension of `above`'s label and a
    /// strict prefix of `below`'s).
    OnEdge {
        /// The vertex whose label is the longest vertex-label prefix of
        /// the string.
        above: PNodeId,
        /// The vertex terminating the compressed edge the string lies on.
        below: PNodeId,
    },
    /// The string is not in the (conceptual) trie at all; `nearest` is the
    /// deepest vertex whose label is a prefix of the string.
    Absent {
        /// Deepest vertex above the missing string.
        nearest: PNodeId,
    },
}

/// A set of prefixes in a path-compressed trie.
///
/// ```
/// use clue_trie::{Cost, Ip4, PatriciaTrie, Prefix};
///
/// let t: PatriciaTrie<Ip4> = ["10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"]
///     .iter()
///     .map(|s| s.parse::<Prefix<Ip4>>().unwrap())
///     .collect();
/// let mut cost = Cost::new();
/// let bmp = t.lookup_counted("10.1.2.3".parse().unwrap(), &mut cost).unwrap();
/// assert_eq!(bmp.to_string(), "10.1.2.0/24");
/// assert!(cost.trie_nodes <= 4); // far fewer than the 25 bit-by-bit visits
/// ```
#[derive(Debug, Clone)]
pub struct PatriciaTrie<A: Address> {
    nodes: Vec<PNode<A>>,
    free: Vec<PNodeId>,
    len: usize,
}

impl<A: Address> Default for PatriciaTrie<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Address> PatriciaTrie<A> {
    /// Creates an empty trie (just the unmarked root).
    pub fn new() -> Self {
        PatriciaTrie {
            nodes: vec![PNode {
                prefix: Prefix::ROOT,
                marked: false,
                children: [None, None],
                parent: None,
                alive: true,
            }],
            free: Vec::new(),
            len: 0,
        }
    }

    /// The root vertex (empty label).
    pub fn root(&self) -> PNodeId {
        PNodeId(0)
    }

    /// Number of marked prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of live vertices including the root.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    fn node(&self, id: PNodeId) -> &PNode<A> {
        let n = &self.nodes[id.0 as usize];
        debug_assert!(n.alive, "dangling PNodeId {id:?}");
        n
    }

    fn node_mut(&mut self, id: PNodeId) -> &mut PNode<A> {
        let n = &mut self.nodes[id.0 as usize];
        debug_assert!(n.alive, "dangling PNodeId {id:?}");
        n
    }

    fn alloc(&mut self, prefix: Prefix<A>, marked: bool, parent: Option<PNodeId>) -> PNodeId {
        let fresh = PNode { prefix, marked, children: [None, None], parent, alive: true };
        match self.free.pop() {
            Some(id) => {
                self.nodes[id.0 as usize] = fresh;
                id
            }
            None => {
                let id = PNodeId(u32::try_from(self.nodes.len()).expect("trie too large"));
                self.nodes.push(fresh);
                id
            }
        }
    }

    /// The label of a vertex.
    pub fn node_prefix(&self, id: PNodeId) -> Prefix<A> {
        self.node(id).prefix
    }

    /// `true` iff the vertex carries a stored prefix.
    pub fn is_marked(&self, id: PNodeId) -> bool {
        self.node(id).marked
    }

    /// The two children of a vertex.
    pub fn children(&self, id: PNodeId) -> [Option<PNodeId>; 2] {
        self.node(id).children
    }

    /// The parent of a vertex (`None` for the root).
    pub fn parent(&self, id: PNodeId) -> Option<PNodeId> {
        self.node(id).parent
    }

    /// Inserts a prefix; returns `false` if it was already present.
    pub fn insert(&mut self, p: Prefix<A>) -> bool {
        let mut cur = self.root();
        loop {
            let cur_prefix = self.node(cur).prefix;
            if cur_prefix == p {
                let n = self.node_mut(cur);
                if n.marked {
                    return false;
                }
                n.marked = true;
                self.len += 1;
                return true;
            }
            debug_assert!(cur_prefix.is_strict_prefix_of(&p));
            let side = p.bit(cur_prefix.len()) as usize;
            match self.node(cur).children[side] {
                None => {
                    let leaf = self.alloc(p, true, Some(cur));
                    self.node_mut(cur).children[side] = Some(leaf);
                    self.len += 1;
                    return true;
                }
                Some(c) => {
                    let cp = self.node(c).prefix;
                    let common = p.common(&cp);
                    if common == cp {
                        cur = c; // p extends the child's label: descend
                    } else if common == p {
                        // p lies inside the edge: splice a marked vertex in.
                        let mid = self.alloc(p, true, Some(cur));
                        let c_side = cp.bit(p.len()) as usize;
                        self.node_mut(mid).children[c_side] = Some(c);
                        self.node_mut(c).parent = Some(mid);
                        self.node_mut(cur).children[side] = Some(mid);
                        self.len += 1;
                        return true;
                    } else {
                        // p diverges inside the edge: add a branch vertex.
                        let branch = self.alloc(common, false, Some(cur));
                        let c_side = cp.bit(common.len()) as usize;
                        let p_side = p.bit(common.len()) as usize;
                        debug_assert_ne!(c_side, p_side);
                        let leaf = self.alloc(p, true, Some(branch));
                        self.node_mut(branch).children[c_side] = Some(c);
                        self.node_mut(branch).children[p_side] = Some(leaf);
                        self.node_mut(c).parent = Some(branch);
                        self.node_mut(cur).children[side] = Some(branch);
                        self.len += 1;
                        return true;
                    }
                }
            }
        }
    }

    /// Splices out `id` if it is an unmarked non-root vertex with exactly
    /// one child, re-compressing the path.
    fn maybe_splice(&mut self, id: PNodeId) {
        if id == self.root() {
            return;
        }
        let n = self.node(id);
        if n.marked {
            return;
        }
        let kids: Vec<PNodeId> = n.children.iter().flatten().copied().collect();
        let prefix = n.prefix;
        let parent = n.parent;
        match kids.len() {
            0 => {
                // Unmarked leaf: detach entirely.
                let parent = parent.expect("non-root has parent");
                let side = prefix.bit(self.node(parent).prefix.len()) as usize;
                self.node_mut(parent).children[side] = None;
                self.nodes[id.0 as usize].alive = false;
                self.free.push(id);
                self.maybe_splice(parent);
            }
            1 => {
                let only = kids[0];
                let parent = parent.expect("non-root has parent");
                let side = prefix.bit(self.node(parent).prefix.len()) as usize;
                self.node_mut(parent).children[side] = Some(only);
                self.node_mut(only).parent = Some(parent);
                self.nodes[id.0 as usize].alive = false;
                self.free.push(id);
            }
            _ => {}
        }
    }

    /// Removes a prefix; returns `false` if it was not present.
    pub fn remove(&mut self, p: &Prefix<A>) -> bool {
        let id = match self.locate(p) {
            Location::AtNode(id) if self.node(id).marked => id,
            _ => return false,
        };
        self.node_mut(id).marked = false;
        self.len -= 1;
        self.maybe_splice(id);
        true
    }

    /// `true` iff the prefix is stored.
    pub fn contains(&self, p: &Prefix<A>) -> bool {
        matches!(self.locate(p), Location::AtNode(id) if self.node(id).marked)
    }

    /// Classifies where the string `s` sits in the compressed structure
    /// (used by clue continuations; uncounted pre-processing).
    pub fn locate(&self, s: &Prefix<A>) -> Location {
        let mut cur = self.root();
        loop {
            let cp = self.node(cur).prefix;
            debug_assert!(cp.is_prefix_of(s));
            if cp == *s {
                return Location::AtNode(cur);
            }
            let side = s.bit(cp.len()) as usize;
            match self.node(cur).children[side] {
                None => return Location::Absent { nearest: cur },
                Some(c) => {
                    let child_prefix = self.node(c).prefix;
                    let common = s.common(&child_prefix);
                    if common == child_prefix {
                        cur = c; // s extends the child's label
                    } else if common == *s {
                        return Location::OnEdge { above: cur, below: c };
                    } else {
                        return Location::Absent { nearest: cur };
                    }
                }
            }
        }
    }

    /// The longest stored prefix of the string `s` (its BMP in this trie),
    /// uncounted — used when precomputing clue-table FD fields.
    pub fn best_match_of_prefix(&self, s: &Prefix<A>) -> Option<Prefix<A>> {
        let mut cur = self.root();
        let mut best = None;
        loop {
            let n = self.node(cur);
            if n.marked {
                best = Some(n.prefix);
            }
            if n.prefix.len() >= s.len() {
                return best;
            }
            let side = s.bit(n.prefix.len()) as usize;
            match n.children[side] {
                Some(c) if self.node(c).prefix.is_prefix_of(s) => cur = c,
                _ => return best,
            }
        }
    }

    /// Longest-prefix match of an address, uncounted.
    pub fn lookup(&self, addr: A) -> Option<Prefix<A>> {
        self.best_match_of_prefix(&Prefix::of_address(addr, A::BITS))
    }

    /// Longest-prefix match with the paper's Patricia cost model: one
    /// memory access per vertex visited, root included.
    pub fn lookup_counted(&self, addr: A, cost: &mut Cost) -> Option<Prefix<A>> {
        cost.trie_node();
        let mut cur = self.root();
        let mut best = if self.node(cur).marked { Some(self.node(cur).prefix) } else { None };
        loop {
            let n = self.node(cur);
            if n.prefix.len() >= A::BITS {
                return best;
            }
            let side = addr.bit(n.prefix.len()) as usize;
            let Some(c) = n.children[side] else { return best };
            cost.trie_node();
            let cn = self.node(c);
            if !cn.prefix.contains(addr) {
                // Mismatch inside the compressed edge: the walk is over.
                return best;
            }
            if cn.marked {
                best = Some(cn.prefix);
            }
            cur = c;
        }
    }

    /// Continues a lookup from the clue's [`Location`], counting one
    /// access per vertex visited below the clue. Returns the best marked
    /// prefix found **at or below the clue string**; the caller falls back
    /// to the clue entry's FD when this is `None`.
    pub fn lookup_from(&self, loc: Location, addr: A, cost: &mut Cost) -> Option<Prefix<A>> {
        let (start, mut best) = match loc {
            Location::AtNode(id) => {
                cost.trie_node();
                let n = self.node(id);
                debug_assert!(n.prefix.contains(addr));
                (id, if n.marked { Some(n.prefix) } else { None })
            }
            Location::OnEdge { below, .. } => {
                // One access to read the edge's terminating vertex and
                // compare the compressed bits against the destination.
                cost.trie_node();
                let bn = self.node(below);
                if !bn.prefix.contains(addr) {
                    return None; // destination diverges inside the edge
                }
                (below, if bn.marked { Some(bn.prefix) } else { None })
            }
            Location::Absent { .. } => return None,
        };
        let mut cur = start;
        loop {
            let n = self.node(cur);
            if n.prefix.len() >= A::BITS {
                return best;
            }
            let side = addr.bit(n.prefix.len()) as usize;
            let Some(c) = n.children[side] else { return best };
            cost.trie_node();
            let cn = self.node(c);
            if !cn.prefix.contains(addr) {
                return best;
            }
            if cn.marked {
                best = Some(cn.prefix);
            }
            cur = c;
        }
    }

    /// Iterates over all stored prefixes (pre-order).
    pub fn prefixes(&self) -> Vec<Prefix<A>> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            let n = self.node(id);
            if n.marked {
                out.push(n.prefix);
            }
            for c in n.children.into_iter().flatten() {
                stack.push(c);
            }
        }
        out
    }

    /// Checks the Patricia structural invariant: every non-root vertex is
    /// marked or has two children, and child labels extend parent labels.
    /// Test/diagnostic helper.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            let n = self.node(id);
            let kid_count = n.children.iter().flatten().count();
            if id != self.root() && !n.marked && kid_count < 2 {
                return Err(format!("vertex {} is unmarked with {kid_count} children", n.prefix));
            }
            for (side, c) in n.children.iter().enumerate() {
                if let Some(c) = *c {
                    let cn = self.node(c);
                    if !n.prefix.is_strict_prefix_of(&cn.prefix) {
                        return Err(format!("child {} does not extend {}", cn.prefix, n.prefix));
                    }
                    if cn.prefix.bit(n.prefix.len()) as usize != side {
                        return Err(format!("child {} on wrong side of {}", cn.prefix, n.prefix));
                    }
                    if cn.parent != Some(id) {
                        return Err(format!("broken parent link at {}", cn.prefix));
                    }
                    stack.push(c);
                }
            }
        }
        Ok(())
    }

    /// Approximate resident size in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.nodes.len() * core::mem::size_of::<PNode<A>>()
    }
}

impl<A: Address> FromIterator<Prefix<A>> for PatriciaTrie<A> {
    fn from_iter<I: IntoIterator<Item = Prefix<A>>>(iter: I) -> Self {
        let mut t = PatriciaTrie::new();
        for p in iter {
            t.insert(p);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ip4;

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ip4 {
        s.parse().unwrap()
    }

    fn sample() -> PatriciaTrie<Ip4> {
        ["10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "10.128.0.0/9", "192.168.0.0/16"]
            .iter()
            .map(|s| p(s))
            .collect()
    }

    #[test]
    fn invariants_hold_after_building() {
        let t = sample();
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn lookup_matches_longest() {
        let t = sample();
        assert_eq!(t.lookup(a("10.1.2.3")), Some(p("10.1.2.0/24")));
        assert_eq!(t.lookup(a("10.1.9.9")), Some(p("10.1.0.0/16")));
        assert_eq!(t.lookup(a("10.200.0.1")), Some(p("10.128.0.0/9")));
        assert_eq!(t.lookup(a("10.2.0.1")), Some(p("10.0.0.0/8")));
        assert_eq!(t.lookup(a("11.0.0.1")), None);
    }

    #[test]
    fn counted_lookup_visits_few_nodes() {
        let t = sample();
        let mut c = Cost::new();
        assert_eq!(t.lookup_counted(a("10.1.2.3"), &mut c), Some(p("10.1.2.0/24")));
        // Root, 10/8, 10.1/16 (via branch?), 10.1.2/24 — at most a handful.
        assert!(c.trie_nodes <= 6, "visited {} nodes", c.trie_nodes);
        assert!(c.trie_nodes >= 4);
    }

    #[test]
    fn counted_lookup_edge_mismatch_costs_one_probe() {
        let t: PatriciaTrie<Ip4> = [p("10.1.2.0/24")].into_iter().collect();
        let mut c = Cost::new();
        // 10.9.9.9 shares the first bits with 10.1.2/24 but diverges inside
        // the single compressed edge: root + the leaf probe.
        assert_eq!(t.lookup_counted(a("10.9.9.9"), &mut c), None);
        assert_eq!(c.trie_nodes, 2);
    }

    #[test]
    fn insert_splits_edges() {
        let mut t = PatriciaTrie::new();
        assert!(t.insert(p("10.1.2.0/24")));
        assert!(t.insert(p("10.1.0.0/16"))); // on the existing edge
        assert!(t.insert(p("10.2.0.0/16"))); // diverging branch
        assert!(!t.insert(p("10.1.0.0/16"))); // duplicate
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.lookup(a("10.1.77.1")), Some(p("10.1.0.0/16")));
        assert_eq!(t.lookup(a("10.2.0.1")), Some(p("10.2.0.0/16")));
    }

    #[test]
    fn remove_recompresses() {
        let mut t = sample();
        assert!(t.remove(&p("10.1.0.0/16")));
        assert!(!t.remove(&p("10.1.0.0/16")));
        t.check_invariants().unwrap();
        assert_eq!(t.lookup(a("10.1.9.9")), Some(p("10.0.0.0/8")));
        assert_eq!(t.lookup(a("10.1.2.3")), Some(p("10.1.2.0/24")));
    }

    #[test]
    fn remove_branch_keeps_structure() {
        let mut t = sample();
        for q in t.prefixes() {
            assert!(t.contains(&q));
        }
        assert!(t.remove(&p("10.0.0.0/8")));
        t.check_invariants().unwrap();
        assert_eq!(t.lookup(a("10.2.0.1")), None);
        assert_eq!(t.lookup(a("10.1.2.3")), Some(p("10.1.2.0/24")));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn locate_distinguishes_cases() {
        let t = sample();
        assert!(matches!(t.locate(&p("10.1.0.0/16")), Location::AtNode(_)));
        // 10.1.2.0/20 sits inside the compressed edge 10.1/16 → 10.1.2/24.
        assert!(matches!(t.locate(&p("10.1.0.0/20")), Location::OnEdge { .. }));
        // 77/8 diverges at the root.
        assert!(matches!(t.locate(&p("77.0.0.0/8")), Location::Absent { .. }));
        // 10.1.64.0/18 diverges inside the 16→24 edge.
        assert!(matches!(t.locate(&p("10.1.64.0/18")), Location::Absent { .. }));
    }

    #[test]
    fn lookup_from_node_location() {
        let t = sample();
        let loc = t.locate(&p("10.1.0.0/16"));
        let mut c = Cost::new();
        assert_eq!(t.lookup_from(loc, a("10.1.2.3"), &mut c), Some(p("10.1.2.0/24")));
        assert!(c.trie_nodes <= 3);
        let mut c2 = Cost::new();
        assert_eq!(t.lookup_from(loc, a("10.1.99.1"), &mut c2), Some(p("10.1.0.0/16")));
    }

    #[test]
    fn lookup_from_edge_location() {
        let t = sample();
        let loc = t.locate(&p("10.1.0.0/20")); // on the 16→24 edge
        let mut c = Cost::new();
        assert_eq!(t.lookup_from(loc, a("10.1.2.3"), &mut c), Some(p("10.1.2.0/24")));
        // Destination diverging inside the edge finds nothing below.
        let mut c2 = Cost::new();
        assert_eq!(t.lookup_from(loc, a("10.1.8.1"), &mut c2), None);
        assert_eq!(c2.trie_nodes, 1);
    }

    #[test]
    fn best_match_of_prefix_bounded() {
        let t = sample();
        assert_eq!(t.best_match_of_prefix(&p("10.1.2.0/20")), Some(p("10.1.0.0/16")));
        assert_eq!(t.best_match_of_prefix(&p("10.1.2.0/24")), Some(p("10.1.2.0/24")));
        assert_eq!(t.best_match_of_prefix(&p("11.0.0.0/8")), None);
    }

    #[test]
    fn prefixes_roundtrip() {
        let t = sample();
        let mut got: Vec<String> = t.prefixes().iter().map(|q| q.to_string()).collect();
        got.sort();
        assert_eq!(
            got,
            vec!["10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "10.128.0.0/9", "192.168.0.0/16"]
        );
    }

    #[test]
    fn root_prefix_is_storable() {
        let mut t = sample();
        assert!(t.insert(p("0.0.0.0/0")));
        t.check_invariants().unwrap();
        assert_eq!(t.lookup(a("11.0.0.1")), Some(p("0.0.0.0/0")));
        assert!(t.remove(&p("0.0.0.0/0")));
        assert_eq!(t.lookup(a("11.0.0.1")), None);
    }
}
