//! Prefixes: the strings stored in forwarding tables and sent as clues.

use core::cmp::Ordering;
use core::fmt;
use core::str::FromStr;

use crate::addr::{Address, ParseAddressError};

/// A prefix of an address: the `len` leading bits of `bits`.
///
/// The stored address is always kept in canonical (masked) form, so two
/// prefixes compare equal iff they denote the same bit string.
///
/// ```
/// use clue_trie::{Ip4, Prefix};
/// let p: Prefix<Ip4> = "192.168.0.0/16".parse().unwrap();
/// assert_eq!(p.len(), 16);
/// assert!(p.contains("192.168.12.34".parse().unwrap()));
/// assert!(!p.contains("192.169.0.0".parse().unwrap()));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct Prefix<A: Address> {
    bits: A,
    len: u8,
}

impl<A: Address> Prefix<A> {
    /// The empty prefix (length 0), which matches every address. It plays
    /// the role of the default route and of the trie root.
    pub const ROOT: Self = Prefix { bits: A::ZERO, len: 0 };

    /// Creates a prefix from an address and a length, masking away any bits
    /// beyond `len`.
    ///
    /// # Panics
    /// Panics if `len > A::BITS`.
    pub fn new(bits: A, len: u8) -> Self {
        assert!(len <= A::BITS, "prefix length {len} exceeds address width");
        Prefix { bits: bits.mask(len), len }
    }

    /// The canonical (masked) address carrying the prefix bits.
    #[inline]
    pub fn bits(&self) -> A {
        self.bits
    }

    /// The prefix length in bits.
    #[inline]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// `true` iff this is the empty (length-0) prefix.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` iff `addr` starts with this prefix.
    #[inline]
    pub fn contains(&self, addr: A) -> bool {
        addr.mask(self.len) == self.bits
    }

    /// `true` iff `self` is a (non-strict) prefix of `other`.
    #[inline]
    pub fn is_prefix_of(&self, other: &Self) -> bool {
        self.len <= other.len && other.bits.mask(self.len) == self.bits
    }

    /// `true` iff `self` is a strict (shorter) prefix of `other`.
    #[inline]
    pub fn is_strict_prefix_of(&self, other: &Self) -> bool {
        self.len < other.len && other.bits.mask(self.len) == self.bits
    }

    /// The immediate parent (one bit shorter), or `None` for the root.
    pub fn parent(&self) -> Option<Self> {
        if self.len == 0 {
            None
        } else {
            Some(Prefix::new(self.bits, self.len - 1))
        }
    }

    /// The child prefix extended with the given bit.
    ///
    /// # Panics
    /// Panics if the prefix is already full-length.
    pub fn child(&self, bit: bool) -> Self {
        assert!(self.len < A::BITS, "cannot extend a full-length prefix");
        Prefix { bits: self.bits.with_bit(self.len, bit), len: self.len + 1 }
    }

    /// Bit `index` of the prefix (must be `< len`).
    #[inline]
    pub fn bit(&self, index: u8) -> bool {
        assert!(index < self.len, "bit index {index} beyond prefix length {}", self.len);
        self.bits.bit(index)
    }

    /// The last bit of the prefix (`None` for the root).
    pub fn last_bit(&self) -> Option<bool> {
        if self.len == 0 {
            None
        } else {
            Some(self.bits.bit(self.len - 1))
        }
    }

    /// Truncates to the first `len` bits.
    ///
    /// # Panics
    /// Panics if `len > self.len()`.
    pub fn truncate(&self, len: u8) -> Self {
        assert!(len <= self.len, "cannot truncate {self} to longer length {len}");
        Prefix::new(self.bits, len)
    }

    /// The longest common prefix of two prefixes.
    pub fn common(&self, other: &Self) -> Self {
        let l = self
            .bits
            .common_prefix_len(other.bits)
            .min(self.len)
            .min(other.len);
        Prefix::new(self.bits, l)
    }

    /// The prefix formed by the first `len` bits of `addr`.
    pub fn of_address(addr: A, len: u8) -> Self {
        Prefix::new(addr, len)
    }

    /// Smallest address covered by this prefix (the canonical bits).
    #[inline]
    pub fn first_address(&self) -> A {
        self.bits
    }

    /// Largest address covered by this prefix (all trailing bits set).
    pub fn last_address(&self) -> A {
        let width = A::BITS as u32;
        let span = (A::BITS - self.len) as u32;
        let hi = self.bits.to_u128();
        let fill = if span == 0 {
            0
        } else if span == width {
            // Whole address space: avoid the shift-overflow corner.
            u128::MAX >> (128 - width)
        } else {
            (1u128 << span) - 1
        };
        A::from_u128(hi | fill)
    }

    /// `true` iff the two prefixes are disjoint (neither contains the other).
    pub fn is_disjoint(&self, other: &Self) -> bool {
        !self.is_prefix_of(other) && !other.is_prefix_of(self)
    }
}

/// Prefixes order first by bits, then by length — i.e. lexicographic order
/// of the underlying bit strings with shorter strings first among equals.
/// This is the order used by range-based binary search schemes.
impl<A: Address> Ord for Prefix<A> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bits
            .cmp(&other.bits)
            .then_with(|| self.len.cmp(&other.len))
    }
}

impl<A: Address> PartialOrd for Prefix<A> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<A: Address> fmt::Display for Prefix<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.bits, self.len)
    }
}

impl<A: Address> fmt::Debug for Prefix<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl<A: Address + FromStr<Err = ParseAddressError>> FromStr for Prefix<A> {
    type Err = ParseAddressError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason| ParseAddressError { input: s.to_owned(), reason };
        let (addr, len) = match s.rsplit_once('/') {
            Some((a, l)) => {
                let len: u8 = l.parse().map_err(|_| err("bad prefix length"))?;
                (a, len)
            }
            None => (s, A::BITS),
        };
        if len > A::BITS {
            return Err(err("prefix length exceeds address width"));
        }
        let bits: A = addr.parse()?;
        Ok(Prefix::new(bits, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Ip4, Ip6};

    fn p4(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    #[test]
    fn canonical_masking() {
        let p = Prefix::new(Ip4(0xC0A8_1234), 16);
        assert_eq!(p.bits(), Ip4(0xC0A8_0000));
        assert_eq!(p, p4("192.168.18.52/16"));
    }

    #[test]
    fn containment() {
        let p = p4("10.0.0.0/8");
        assert!(p.contains(Ip4(0x0A01_0203)));
        assert!(!p.contains(Ip4(0x0B00_0000)));
        assert!(Prefix::<Ip4>::ROOT.contains(Ip4(u32::MAX)));
    }

    #[test]
    fn prefix_of_relations() {
        let a = p4("10.0.0.0/8");
        let b = p4("10.1.0.0/16");
        assert!(a.is_prefix_of(&b));
        assert!(a.is_strict_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(a.is_prefix_of(&a));
        assert!(!a.is_strict_prefix_of(&a));
        assert!(a.is_disjoint(&p4("11.0.0.0/8")));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn parent_child_roundtrip() {
        let p = p4("128.0.0.0/1");
        assert_eq!(p.parent(), Some(Prefix::ROOT));
        assert_eq!(Prefix::<Ip4>::ROOT.child(true), p);
        assert_eq!(p.child(false), p4("128.0.0.0/2"));
        assert_eq!(p.last_bit(), Some(true));
        assert_eq!(Prefix::<Ip4>::ROOT.last_bit(), None);
    }

    #[test]
    fn truncate_and_common() {
        let p = p4("192.168.128.0/20");
        assert_eq!(p.truncate(16), p4("192.168.0.0/16"));
        let q = p4("192.168.0.0/24");
        // p has bit 16 set (128.0 in the third octet), q does not.
        assert_eq!(p.common(&q), p4("192.168.0.0/16"));
        let r = p4("192.168.192.0/24");
        // 128 = 0b1000_0000 and 192 = 0b1100_0000 agree only on bit 16.
        assert_eq!(p.common(&r), p4("192.168.128.0/17"));
    }

    #[test]
    fn address_range() {
        let p = p4("10.0.0.0/8");
        assert_eq!(p.first_address(), Ip4(0x0A00_0000));
        assert_eq!(p.last_address(), Ip4(0x0AFF_FFFF));
        assert_eq!(Prefix::<Ip4>::ROOT.last_address(), Ip4(u32::MAX));
        let h = p4("1.2.3.4/32");
        assert_eq!(h.first_address(), h.last_address());
    }

    #[test]
    fn range_for_ip6_root() {
        assert_eq!(Prefix::<Ip6>::ROOT.last_address(), Ip6(u128::MAX));
    }

    #[test]
    fn ordering_is_bits_then_length() {
        let mut v = vec![p4("10.0.0.0/16"), p4("10.0.0.0/8"), p4("9.0.0.0/8")];
        v.sort();
        assert_eq!(v, vec![p4("9.0.0.0/8"), p4("10.0.0.0/8"), p4("10.0.0.0/16")]);
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.168.1.0/24", "1.2.3.4/32"] {
            assert_eq!(p4(s).to_string(), s);
        }
        let bare: Prefix<Ip4> = "1.2.3.4".parse().unwrap();
        assert_eq!(bare.len(), 32);
        assert!("1.2.3.4/33".parse::<Prefix<Ip4>>().is_err());
    }

    #[test]
    fn ip6_prefix_basics() {
        let p: Prefix<Ip6> = "2001:db8::/32".parse().unwrap();
        assert!(p.contains("2001:db8::1".parse().unwrap()));
        assert!(!p.contains("2001:db9::1".parse().unwrap()));
    }

    #[test]
    #[should_panic(expected = "cannot extend")]
    fn child_of_full_length_panics() {
        let _ = p4("1.2.3.4/32").child(false);
    }
}
