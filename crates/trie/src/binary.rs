//! The binary (1-bit) trie over prefixes — the paper's `t1`/`t2` model.
//!
//! Every vertex represents the binary string spelled by the path from the
//! root (left edge = 0, right edge = 1). Vertices that carry a forwarding
//! entry are *marked*; unmarked vertices with no marked descendants are
//! pruned, so every leaf is marked (Section 3.1 of the paper).
//!
//! The trie is arena-allocated (`Vec` of nodes addressed by [`NodeId`]) and
//! stores parent links, so both the downward walks used by lookups and the
//! upward walks used by least-marked-ancestor queries are cheap.
//!
//! The bit-by-bit walk of this structure **is** the paper's “Regular”
//! baseline; each vertex visited costs one memory access.

use std::collections::HashMap;

use crate::addr::Address;
use crate::cost::Cost;
use crate::prefix::Prefix;

/// Identifier of a trie vertex. Stable for the lifetime of the vertex
/// (slots are recycled through a free list only after removal).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

/// Identifier of a route (a marked prefix and its payload). Stable across
/// unrelated insertions and removals; reused only if the same prefix is
/// re-inserted after removal freed its slot.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct RouteId(pub(crate) u32);

impl NodeId {
    /// The arena index (useful for building per-node side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RouteId {
    /// The arena index (useful for building per-route side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct Node<A: Address> {
    prefix: Prefix<A>,
    parent: Option<NodeId>,
    children: [Option<NodeId>; 2],
    route: Option<RouteId>,
    /// Slot-recycling chain; `Some` only for freed slots.
    next_free: Option<NodeId>,
    alive: bool,
}

#[derive(Debug, Clone)]
struct RouteSlot<A: Address, T> {
    prefix: Prefix<A>,
    value: Option<T>,
    node: NodeId,
}

/// A binary trie mapping [`Prefix`]es to route payloads `T`.
///
/// ```
/// use clue_trie::{BinaryTrie, Cost, Ip4, Prefix};
///
/// let mut t: BinaryTrie<Ip4, &str> = BinaryTrie::new();
/// t.insert("10.0.0.0/8".parse().unwrap(), "coarse");
/// t.insert("10.1.0.0/16".parse().unwrap(), "fine");
///
/// let mut cost = Cost::new();
/// let hit = t.lookup_counted("10.1.2.3".parse().unwrap(), &mut cost).unwrap();
/// assert_eq!(*t.value(hit), "fine");
/// assert!(cost.trie_nodes >= 16); // bit-by-bit walk
/// ```
#[derive(Debug, Clone)]
pub struct BinaryTrie<A: Address, T> {
    nodes: Vec<Node<A>>,
    routes: Vec<RouteSlot<A, T>>,
    free_nodes: Option<NodeId>,
    free_routes: Vec<RouteId>,
    route_count: usize,
    /// Prefix → RouteId for O(1) exact-prefix queries.
    by_prefix: HashMap<Prefix<A>, RouteId>,
}

impl<A: Address, T> Default for BinaryTrie<A, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Address, T> BinaryTrie<A, T> {
    /// Creates an empty trie (just the unmarked root vertex).
    pub fn new() -> Self {
        BinaryTrie {
            nodes: vec![Node {
                prefix: Prefix::ROOT,
                parent: None,
                children: [None, None],
                route: None,
                next_free: None,
                alive: true,
            }],
            routes: Vec::new(),
            free_nodes: None,
            free_routes: Vec::new(),
            route_count: 0,
            by_prefix: HashMap::new(),
        }
    }

    /// The root vertex (the empty prefix).
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of routes (marked prefixes) stored.
    pub fn len(&self) -> usize {
        self.route_count
    }

    /// `true` iff no routes are stored.
    pub fn is_empty(&self) -> bool {
        self.route_count == 0
    }

    /// Number of live vertices, including the root.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Arena slots allocated (alive or dead), in O(1) — the
    /// denominator for mean-bytes-per-vertex accounting on hot paths,
    /// where [`Self::node_count`]'s full arena walk would dominate the
    /// very lookups being measured.
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    fn node(&self, id: NodeId) -> &Node<A> {
        let n = &self.nodes[id.0 as usize];
        debug_assert!(n.alive, "dangling NodeId {id:?}");
        n
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node<A> {
        let n = &mut self.nodes[id.0 as usize];
        debug_assert!(n.alive, "dangling NodeId {id:?}");
        n
    }

    fn alloc_node(&mut self, prefix: Prefix<A>, parent: NodeId) -> NodeId {
        let fresh = Node {
            prefix,
            parent: Some(parent),
            children: [None, None],
            route: None,
            next_free: None,
            alive: true,
        };
        match self.free_nodes {
            Some(id) => {
                self.free_nodes = self.nodes[id.0 as usize].next_free;
                self.nodes[id.0 as usize] = fresh;
                id
            }
            None => {
                let id = NodeId(u32::try_from(self.nodes.len()).expect("trie too large"));
                self.nodes.push(fresh);
                id
            }
        }
    }

    fn free_node(&mut self, id: NodeId) {
        let n = &mut self.nodes[id.0 as usize];
        n.alive = false;
        n.children = [None, None];
        n.route = None;
        n.next_free = self.free_nodes;
        self.free_nodes = Some(id);
    }

    /// Inserts (or replaces) a route. Returns its [`RouteId`] and, when the
    /// prefix was already present, the previous payload.
    pub fn insert(&mut self, prefix: Prefix<A>, value: T) -> (RouteId, Option<T>) {
        // Descend, creating vertices as needed.
        let mut cur = self.root();
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            cur = match self.node(cur).children[b] {
                Some(c) => c,
                None => {
                    let child_prefix = self.node(cur).prefix.child(prefix.bit(i));
                    let c = self.alloc_node(child_prefix, cur);
                    self.node_mut(cur).children[b] = Some(c);
                    c
                }
            };
        }
        if let Some(rid) = self.node(cur).route {
            let old = self.routes[rid.0 as usize].value.replace(value);
            return (rid, old);
        }
        let rid = match self.free_routes.pop() {
            Some(rid) => {
                self.routes[rid.0 as usize] =
                    RouteSlot { prefix, value: Some(value), node: cur };
                rid
            }
            None => {
                let rid = RouteId(u32::try_from(self.routes.len()).expect("too many routes"));
                self.routes.push(RouteSlot { prefix, value: Some(value), node: cur });
                rid
            }
        };
        self.node_mut(cur).route = Some(rid);
        self.by_prefix.insert(prefix, rid);
        self.route_count += 1;
        (rid, None)
    }

    /// Removes a route, pruning any unmarked vertices left without marked
    /// descendants. Returns the payload if the prefix was present.
    pub fn remove(&mut self, prefix: &Prefix<A>) -> Option<T> {
        let rid = self.by_prefix.remove(prefix)?;
        let node = self.routes[rid.0 as usize].node;
        let value = self.routes[rid.0 as usize].value.take();
        self.free_routes.push(rid);
        self.node_mut(node).route = None;
        self.route_count -= 1;

        // Prune upward: drop unmarked childless vertices (except the root).
        let mut cur = node;
        while cur != self.root() {
            let n = self.node(cur);
            if n.route.is_some() || n.children[0].is_some() || n.children[1].is_some() {
                break;
            }
            let parent = n.parent.expect("non-root vertex has a parent");
            let side = n.prefix.last_bit().expect("non-root vertex has a last bit") as usize;
            self.node_mut(parent).children[side] = None;
            self.free_node(cur);
            cur = parent;
        }
        value
    }

    /// The route stored exactly at `prefix`, if any.
    pub fn get(&self, prefix: &Prefix<A>) -> Option<RouteId> {
        self.by_prefix.get(prefix).copied()
    }

    /// The prefix of a route.
    ///
    /// # Panics
    /// Panics if `rid` does not refer to a live route.
    pub fn prefix(&self, rid: RouteId) -> Prefix<A> {
        let slot = &self.routes[rid.0 as usize];
        assert!(slot.value.is_some(), "dangling RouteId {rid:?}");
        slot.prefix
    }

    /// The payload of a route.
    ///
    /// # Panics
    /// Panics if `rid` does not refer to a live route.
    pub fn value(&self, rid: RouteId) -> &T {
        self.routes[rid.0 as usize]
            .value
            .as_ref()
            .expect("dangling RouteId")
    }

    /// Mutable payload access.
    pub fn value_mut(&mut self, rid: RouteId) -> &mut T {
        self.routes[rid.0 as usize]
            .value
            .as_mut()
            .expect("dangling RouteId")
    }

    /// The vertex at which a route is marked.
    pub fn node_of_route(&self, rid: RouteId) -> NodeId {
        let slot = &self.routes[rid.0 as usize];
        assert!(slot.value.is_some(), "dangling RouteId {rid:?}");
        slot.node
    }

    /// The vertex representing `prefix`, if that string lies in the trie.
    ///
    /// This is the test “vertex `s` exists in the trie of R2” from the
    /// paper's Case 1. It costs nothing (pre-processing only); counted
    /// variants live on the lookup paths.
    pub fn node_of_prefix(&self, prefix: &Prefix<A>) -> Option<NodeId> {
        let mut cur = self.root();
        for i in 0..prefix.len() {
            cur = self.node(cur).children[prefix.bit(i) as usize]?;
        }
        Some(cur)
    }

    /// The string a vertex represents.
    pub fn node_prefix(&self, id: NodeId) -> Prefix<A> {
        self.node(id).prefix
    }

    /// The route marked at a vertex, if any.
    pub fn route_at(&self, id: NodeId) -> Option<RouteId> {
        self.node(id).route
    }

    /// `true` iff the vertex is marked (carries a route).
    pub fn is_marked(&self, id: NodeId) -> bool {
        self.node(id).route.is_some()
    }

    /// The two children of a vertex (`[zero-child, one-child]`).
    pub fn children(&self, id: NodeId) -> [Option<NodeId>; 2] {
        self.node(id).children
    }

    /// `true` iff the vertex has at least one child. Because unmarked
    /// childless vertices are pruned, a vertex with a child always has a
    /// marked strict descendant — the Simple method's continuation test.
    pub fn has_descendants(&self, id: NodeId) -> bool {
        let c = self.node(id).children;
        c[0].is_some() || c[1].is_some()
    }

    /// The parent vertex (`None` for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// The nearest marked ancestor of a vertex, **including the vertex
    /// itself** — i.e. the BMP of the vertex's string in this trie.
    pub fn nearest_marked_at_or_above(&self, id: NodeId) -> Option<RouteId> {
        let mut cur = Some(id);
        while let Some(c) = cur {
            if let Some(r) = self.node(c).route {
                return Some(r);
            }
            cur = self.node(c).parent;
        }
        None
    }

    /// The nearest marked **strict** ancestor of a vertex.
    pub fn nearest_marked_above(&self, id: NodeId) -> Option<RouteId> {
        self.parent(id).and_then(|p| self.nearest_marked_at_or_above(p))
    }

    /// Best matching prefix of an arbitrary *string* (not only a full
    /// address): the longest marked prefix of `prefix` in this trie.
    /// Uncounted — used in pre-processing (clue-table construction).
    pub fn best_match_of_prefix(&self, prefix: &Prefix<A>) -> Option<RouteId> {
        let mut cur = self.root();
        let mut best = self.node(cur).route;
        for i in 0..prefix.len() {
            match self.node(cur).children[prefix.bit(i) as usize] {
                Some(c) => {
                    cur = c;
                    if let Some(r) = self.node(cur).route {
                        best = Some(r);
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Longest-prefix match of `addr`, uncounted (for correctness checks
    /// and pre-processing).
    pub fn lookup(&self, addr: A) -> Option<RouteId> {
        self.best_match_of_prefix(&Prefix::of_address(addr, A::BITS))
    }

    /// Every route whose prefix contains `addr`, shortest first, with
    /// one counted access per vertex visited — the walk a classifier
    /// uses to collect all matching destination buckets.
    pub fn matching_routes(&self, addr: A, cost: &mut Cost) -> Vec<RouteId> {
        let mut out = Vec::new();
        let mut cur = self.root();
        cost.trie_node();
        if let Some(r) = self.node(cur).route {
            out.push(r);
        }
        for i in 0..A::BITS {
            match self.node(cur).children[addr.bit(i) as usize] {
                Some(c) => {
                    cur = c;
                    cost.trie_node();
                    if let Some(r) = self.node(cur).route {
                        out.push(r);
                    }
                }
                None => break,
            }
        }
        out
    }

    /// Longest-prefix match of `addr` with the paper's “Regular” cost
    /// model: one memory access per vertex visited, root included.
    pub fn lookup_counted(&self, addr: A, cost: &mut Cost) -> Option<RouteId> {
        let mut cur = self.root();
        cost.trie_node();
        let mut best = self.node(cur).route;
        for i in 0..A::BITS {
            match self.node(cur).children[addr.bit(i) as usize] {
                Some(c) => {
                    cur = c;
                    cost.trie_node();
                    if let Some(r) = self.node(cur).route {
                        best = Some(r);
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Continues a longest-prefix match **from** vertex `start` (the clue
    /// vertex), as in the Simple/Advance continuation of Section 3.
    ///
    /// Returns the best marked vertex found at or below `start` along the
    /// path spelled by `addr`, or `None` if none is marked there (the
    /// caller then falls back to the clue entry's FD field). Counts one
    /// access for reading `start` and one per vertex descended into.
    ///
    /// # Panics
    /// Panics (in debug builds) if `addr` does not start with `start`'s
    /// string — such a call would be a protocol violation: the clue is by
    /// construction a prefix of the destination address.
    pub fn lookup_from(&self, start: NodeId, addr: A, cost: &mut Cost) -> Option<RouteId> {
        let s = self.node(start);
        debug_assert!(
            s.prefix.contains(addr),
            "clue {} is not a prefix of destination {}",
            s.prefix,
            addr
        );
        cost.trie_node();
        let mut cur = start;
        let mut best = s.route;
        for i in s.prefix.len()..A::BITS {
            match self.node(cur).children[addr.bit(i) as usize] {
                Some(c) => {
                    cur = c;
                    cost.trie_node();
                    if let Some(r) = self.node(cur).route {
                        best = Some(r);
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Depth-first pre-order traversal of the subtree rooted at `start`
    /// (inclusive). `visit` returns whether to descend into the vertex's
    /// children — the pruned DFS used by the Claim 1 classifier.
    pub fn walk_subtree<F: FnMut(NodeId) -> bool>(&self, start: NodeId, mut visit: F) {
        let mut stack = vec![start];
        while let Some(id) = stack.pop() {
            if visit(id) {
                let [l, r] = self.node(id).children;
                if let Some(r) = r {
                    stack.push(r);
                }
                if let Some(l) = l {
                    stack.push(l);
                }
            }
        }
    }

    /// Iterates over all routes as `(RouteId, Prefix, &T)`, in arena order.
    pub fn iter(&self) -> impl Iterator<Item = (RouteId, Prefix<A>, &T)> + '_ {
        self.routes.iter().enumerate().filter_map(|(i, slot)| {
            slot.value
                .as_ref()
                .map(|v| (RouteId(i as u32), slot.prefix, v))
        })
    }

    /// Iterates over all marked prefixes.
    pub fn prefixes(&self) -> impl Iterator<Item = Prefix<A>> + '_ {
        self.iter().map(|(_, p, _)| p)
    }

    /// `true` iff `prefix` is marked in this trie.
    pub fn contains_prefix(&self, prefix: &Prefix<A>) -> bool {
        self.by_prefix.contains_key(prefix)
    }

    /// Approximate resident size in bytes (vertex array + route array),
    /// used by the Section 3.5 space-accounting experiment.
    pub fn memory_bytes(&self) -> usize {
        self.nodes.len() * core::mem::size_of::<Node<A>>()
            + self.routes.len() * core::mem::size_of::<RouteSlot<A, T>>()
    }
}

impl<A: Address, T> FromIterator<(Prefix<A>, T)> for BinaryTrie<A, T> {
    fn from_iter<I: IntoIterator<Item = (Prefix<A>, T)>>(iter: I) -> Self {
        let mut t = BinaryTrie::new();
        for (p, v) in iter {
            t.insert(p, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ip4;

    fn p(s: &str) -> Prefix<Ip4> {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ip4 {
        s.parse().unwrap()
    }

    fn sample() -> BinaryTrie<Ip4, u32> {
        let mut t = BinaryTrie::new();
        for (i, s) in ["10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "192.168.0.0/16"]
            .iter()
            .enumerate()
        {
            t.insert(p(s), i as u32);
        }
        t
    }

    #[test]
    fn lookup_finds_longest_match() {
        let t = sample();
        assert_eq!(*t.value(t.lookup(a("10.1.2.3")).unwrap()), 2);
        assert_eq!(*t.value(t.lookup(a("10.1.3.4")).unwrap()), 1);
        assert_eq!(*t.value(t.lookup(a("10.9.9.9")).unwrap()), 0);
        assert_eq!(*t.value(t.lookup(a("192.168.77.1")).unwrap()), 3);
        assert!(t.lookup(a("11.0.0.1")).is_none());
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = sample();
        t.insert(p("0.0.0.0/0"), 99);
        assert_eq!(*t.value(t.lookup(a("11.0.0.1")).unwrap()), 99);
        assert_eq!(*t.value(t.lookup(a("10.1.2.3")).unwrap()), 2);
    }

    #[test]
    fn counted_lookup_costs_path_length() {
        let t = sample();
        let mut c = Cost::new();
        let r = t.lookup_counted(a("10.1.2.3"), &mut c).unwrap();
        assert_eq!(t.prefix(r), p("10.1.2.0/24"));
        // Root + 24 bits of path = 25 vertices.
        assert_eq!(c.trie_nodes, 25);
    }

    #[test]
    fn counted_lookup_stops_at_dead_end() {
        let t = sample();
        let mut c = Cost::new();
        // 11.x diverges from 10/8 at bit 7 (0000101x); walk follows the
        // shared 0000101? no — 11 = 00001011, 10 = 00001010: they share
        // seven bits, so we visit root + 7 vertices before the dead end.
        assert!(t.lookup_counted(a("11.0.0.1"), &mut c).is_none());
        assert_eq!(c.trie_nodes, 8);
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut t = sample();
        let (rid1, old) = t.insert(p("10.0.0.0/8"), 42);
        assert_eq!(old, Some(0));
        assert_eq!(*t.value(rid1), 42);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn remove_prunes_chains() {
        let mut t = sample();
        let nodes_before = t.node_count();
        assert_eq!(t.remove(&p("10.1.2.0/24")), Some(2));
        assert_eq!(t.len(), 3);
        assert!(t.node_count() < nodes_before);
        assert_eq!(*t.value(t.lookup(a("10.1.2.3")).unwrap()), 1);
        // All leaves are marked after pruning.
        let root = t.root();
        t.walk_subtree(root, |n| {
            if !t.has_descendants(n) && n != root {
                assert!(t.is_marked(n), "unmarked leaf survived pruning");
            }
            true
        });
    }

    #[test]
    fn remove_then_reinsert() {
        let mut t = sample();
        t.remove(&p("10.1.0.0/16"));
        assert!(t.lookup(a("10.1.3.4")).is_some());
        let (rid, old) = t.insert(p("10.1.0.0/16"), 7);
        assert_eq!(old, None);
        assert_eq!(*t.value(rid), 7);
        assert_eq!(*t.value(t.lookup(a("10.1.3.4")).unwrap()), 7);
    }

    #[test]
    fn node_of_prefix_exists_only_on_paths() {
        let t = sample();
        assert!(t.node_of_prefix(&p("10.1.0.0/16")).is_some());
        // 10.1.0.0/12 lies on the path to 10.1/16.
        assert!(t.node_of_prefix(&p("10.1.0.0/12")).is_some());
        assert!(t.node_of_prefix(&p("77.0.0.0/8")).is_none());
    }

    #[test]
    fn nearest_marked_ancestors() {
        let t = sample();
        let n24 = t.node_of_prefix(&p("10.1.2.0/24")).unwrap();
        let bmp = t.nearest_marked_at_or_above(n24).unwrap();
        assert_eq!(t.prefix(bmp), p("10.1.2.0/24"));
        let above = t.nearest_marked_above(n24).unwrap();
        assert_eq!(t.prefix(above), p("10.1.0.0/16"));
        let n12 = t.node_of_prefix(&p("10.1.0.0/12")).unwrap();
        let bmp12 = t.nearest_marked_at_or_above(n12).unwrap();
        assert_eq!(t.prefix(bmp12), p("10.0.0.0/8"));
    }

    #[test]
    fn lookup_from_clue_vertex() {
        let t = sample();
        let s = t.node_of_prefix(&p("10.1.0.0/16")).unwrap();
        let mut c = Cost::new();
        let r = t.lookup_from(s, a("10.1.2.3"), &mut c).unwrap();
        assert_eq!(t.prefix(r), p("10.1.2.0/24"));
        // Start vertex + 8 more bits.
        assert_eq!(c.trie_nodes, 9);

        let mut c2 = Cost::new();
        let r2 = t.lookup_from(s, a("10.1.99.1"), &mut c2).unwrap();
        assert_eq!(t.prefix(r2), p("10.1.0.0/16"));
        assert!(c2.trie_nodes < c.trie_nodes);
    }

    #[test]
    fn matching_routes_returns_all_containing_prefixes() {
        let t = sample();
        let mut c = Cost::new();
        let hits: Vec<String> = t
            .matching_routes(a("10.1.2.3"), &mut c)
            .iter()
            .map(|&r| t.prefix(r).to_string())
            .collect();
        assert_eq!(hits, vec!["10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"]);
        assert!(c.trie_nodes >= 25);
        let none = t.matching_routes(a("11.0.0.1"), &mut Cost::new());
        assert!(none.is_empty());
    }

    #[test]
    fn best_match_of_prefix_is_bounded_by_len() {
        let t = sample();
        let r = t.best_match_of_prefix(&p("10.1.2.0/20")).unwrap();
        assert_eq!(t.prefix(r), p("10.1.0.0/16"));
    }

    #[test]
    fn walk_subtree_prunes() {
        let t = sample();
        let root = t.root();
        let mut visited = 0;
        t.walk_subtree(root, |_| {
            visited += 1;
            false // never descend
        });
        assert_eq!(visited, 1);
        let mut all = 0;
        t.walk_subtree(root, |_| {
            all += 1;
            true
        });
        assert_eq!(all, t.node_count());
    }

    #[test]
    fn iter_yields_all_routes() {
        let t = sample();
        let mut ps: Vec<_> = t.prefixes().map(|p| p.to_string()).collect();
        ps.sort();
        assert_eq!(ps, vec!["10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "192.168.0.0/16"]);
    }

    #[test]
    fn from_iterator() {
        let t: BinaryTrie<Ip4, ()> =
            [(p("1.0.0.0/8"), ()), (p("2.0.0.0/8"), ())].into_iter().collect();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn memory_accounting_positive() {
        let t = sample();
        assert!(t.memory_bytes() > 0);
    }
}
