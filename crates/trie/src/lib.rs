//! # clue-trie
//!
//! Address, prefix and trie substrates for the *Routing with a Clue*
//! reproduction (Afek, Bremler-Barr, Har-Peled — SIGCOMM 1999).
//!
//! This crate provides the foundations every other crate in the workspace
//! builds on:
//!
//! * [`Address`] — a fixed-width bit string, with [`Ip4`] and [`Ip6`]
//!   implementations (the paper's 5-bit vs 7-bit clue encodings follow
//!   from the width);
//! * [`Prefix`] — the strings stored in forwarding tables and sent as
//!   clues;
//! * [`BinaryTrie`] — the paper's trie model `t1`/`t2` (bit-by-bit walk =
//!   the “Regular” baseline), with the ancestor and subtree queries the
//!   clue machinery needs;
//! * [`PatriciaTrie`] — the path-compressed variant (baseline 2), with
//!   [`PatriciaTrie::locate`]/[`PatriciaTrie::lookup_from`] supporting
//!   clue continuations even when the clue vertex was contracted away;
//! * [`Cost`] / [`CostStats`] — memory-access accounting, the unit of the
//!   paper's evaluation.
//!
//! ## Example
//!
//! ```
//! use clue_trie::{BinaryTrie, Cost, Ip4, Prefix};
//!
//! let mut fib: BinaryTrie<Ip4, &str> = BinaryTrie::new();
//! fib.insert("10.0.0.0/8".parse().unwrap(), "port-1");
//! fib.insert("10.1.0.0/16".parse().unwrap(), "port-2");
//!
//! let mut cost = Cost::new();
//! let bmp = fib.lookup_counted("10.1.2.3".parse().unwrap(), &mut cost).unwrap();
//! assert_eq!(fib.prefix(bmp).to_string(), "10.1.0.0/16");
//! assert_eq!(*fib.value(bmp), "port-2");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod binary;
mod cost;
mod patricia;
mod prefix;

pub use addr::{Address, Ip4, Ip6, ParseAddressError};
pub use binary::{BinaryTrie, NodeId, RouteId};
pub use cost::{Cost, CostStats};
pub use patricia::{Location, PNodeId, PatriciaTrie};
pub use prefix::Prefix;
