//! Memory-access accounting.
//!
//! The paper's evaluation metric is the **number of memory accesses**
//! (“to a table or the trie”) a lookup performs. Every search structure in
//! this workspace takes a `&mut Cost` and ticks the matching category once
//! per access, so experiment harnesses can report both the total and a
//! breakdown.

use core::fmt;
use core::ops::AddAssign;

/// Counter of memory accesses, broken down by the kind of structure
/// touched. The paper reports only the total; the breakdown is useful when
/// analysing *where* a scheme spends its accesses (e.g. the mandatory clue
/// table consult vs. the continued trie walk).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Cost {
    /// Visits to binary-trie or Patricia vertices.
    pub trie_nodes: u64,
    /// Probes of a hash table (clue tables, Log W length tables).
    pub hash_probes: u64,
    /// Probes in a sorted-array binary / B-way search.
    pub range_probes: u64,
    /// Reads of a directly-indexed table (the paper's “indexing technique”).
    pub indexed_reads: u64,
    /// Reads served from a fast on-chip cache in front of the clue table
    /// (Section 3.5's “parts of the clues hash table can be cached”).
    pub cache_reads: u64,
}

impl Cost {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total memory accesses across all categories — the unit of the
    /// paper's Tables 4–9.
    #[inline]
    pub fn total(&self) -> u64 {
        self.trie_nodes + self.hash_probes + self.range_probes + self.indexed_reads
            + self.cache_reads
    }

    /// Accesses that reach slow (off-chip) memory — everything except
    /// cache reads. The quantity a cached deployment optimises.
    #[inline]
    pub fn slow_total(&self) -> u64 {
        self.trie_nodes + self.hash_probes + self.range_probes + self.indexed_reads
    }

    /// Record one trie-node visit.
    #[inline]
    pub fn trie_node(&mut self) {
        self.trie_nodes += 1;
    }

    /// Record one hash-table probe.
    #[inline]
    pub fn hash_probe(&mut self) {
        self.hash_probes += 1;
    }

    /// Record one probe of a sorted range array.
    #[inline]
    pub fn range_probe(&mut self) {
        self.range_probes += 1;
    }

    /// Record one directly-indexed table read.
    #[inline]
    pub fn indexed_read(&mut self) {
        self.indexed_reads += 1;
    }

    /// Record one fast cache read.
    #[inline]
    pub fn cache_read(&mut self) {
        self.cache_reads += 1;
    }

    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Self) {
        self.trie_nodes += rhs.trie_nodes;
        self.hash_probes += rhs.hash_probes;
        self.range_probes += rhs.range_probes;
        self.indexed_reads += rhs.indexed_reads;
        self.cache_reads += rhs.cache_reads;
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses (trie {}, hash {}, range {}, indexed {}, cache {})",
            self.total(),
            self.trie_nodes,
            self.hash_probes,
            self.range_probes,
            self.indexed_reads,
            self.cache_reads
        )
    }
}

/// Accumulates per-lookup costs into an average, the statistic the paper's
/// Tables 4–9 report (“average number of memory accesses over 10,000
/// packets”).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CostStats {
    samples: u64,
    total: u64,
    max: u64,
    sum: Cost,
}

impl CostStats {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the cost of one lookup.
    pub fn record(&mut self, cost: Cost) {
        self.record_with_total(cost, cost.total());
    }

    /// As [`Self::record`] with the total precomputed — for hot
    /// callers that already computed `cost.total()` for their own
    /// accounting and record the same cost into several accumulators.
    ///
    /// # Panics
    /// Debug-asserts that `total == cost.total()`.
    #[inline]
    pub fn record_with_total(&mut self, cost: Cost, total: u64) {
        debug_assert_eq!(total, cost.total());
        self.samples += 1;
        self.total += total;
        self.max = self.max.max(total);
        self.sum += cost;
    }

    /// Number of recorded lookups.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Mean total accesses per lookup (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total as f64 / self.samples as f64
        }
    }

    /// Worst single lookup observed.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Folds another accumulator into this one (e.g. aggregating
    /// per-hop-position statistics into a steady-state figure).
    pub fn merge(&mut self, other: &CostStats) {
        self.samples += other.samples;
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Sum of all recorded costs, by category.
    pub fn sum(&self) -> Cost {
        self.sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_categories() {
        let mut c = Cost::new();
        c.trie_node();
        c.trie_node();
        c.hash_probe();
        c.range_probe();
        c.indexed_read();
        assert_eq!(c.total(), 5);
        assert_eq!(c.trie_nodes, 2);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = Cost::new();
        a.trie_node();
        let mut b = Cost::new();
        b.hash_probe();
        b.hash_probe();
        a += b;
        assert_eq!(a.total(), 3);
        assert_eq!(a.hash_probes, 2);
    }

    #[test]
    fn stats_mean_and_max() {
        let mut s = CostStats::new();
        assert_eq!(s.mean(), 0.0);
        let mut c1 = Cost::new();
        c1.trie_node();
        let mut c2 = Cost::new();
        for _ in 0..3 {
            c2.hash_probe();
        }
        s.record(c1);
        s.record(c2);
        assert_eq!(s.samples(), 2);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.max(), 3);
        assert_eq!(s.sum().hash_probes, 3);
    }

    #[test]
    fn merge_combines_accumulators() {
        let (mut a, mut b) = (CostStats::new(), CostStats::new());
        let mut c1 = Cost::new();
        c1.trie_node();
        a.record(c1);
        let mut c2 = Cost::new();
        for _ in 0..5 {
            c2.hash_probe();
        }
        b.record(c2);
        a.merge(&b);
        assert_eq!(a.samples(), 2);
        assert_eq!(a.mean(), 3.0);
        assert_eq!(a.max(), 5);
        assert_eq!(a.sum().hash_probes, 5);
    }

    #[test]
    fn slow_total_excludes_cache_reads() {
        let mut c = Cost::new();
        c.cache_read();
        c.cache_read();
        c.hash_probe();
        assert_eq!(c.total(), 3);
        assert_eq!(c.slow_total(), 1);
        assert_eq!(c.cache_reads, 2);
    }

    #[test]
    fn reset_zeroes() {
        let mut c = Cost::new();
        c.trie_node();
        c.reset();
        assert_eq!(c, Cost::new());
    }

    #[test]
    fn display_contains_total() {
        let mut c = Cost::new();
        c.trie_node();
        c.hash_probe();
        assert!(c.to_string().starts_with("2 accesses"));
    }
}
