//! Address families.
//!
//! Everything in this workspace is generic over an [`Address`]: a fixed-width
//! bit string read most-significant-bit first, exactly the way an IP
//! destination address is consumed by a longest-prefix-match. Two concrete
//! families are provided: [`Ip4`] (32 bits) and [`Ip6`] (128 bits).
//!
//! The paper encodes a clue as a *pointer into the destination address*: the
//! number of leading bits of the destination that form the upstream router's
//! best matching prefix. That number needs 5 bits for IPv4 and 7 bits for
//! IPv6 (lengths `1..=W` encoded as `len - 1`); the per-family constant is
//! [`Address::CLUE_BITS`].

use core::fmt;
use core::hash::Hash;
use core::str::FromStr;

/// A fixed-width address, treated as a bit string indexed from the most
/// significant bit (index 0) to the least significant (index `BITS - 1`).
///
/// Implementations must be cheap to copy; all trie and lookup structures
/// store addresses by value.
pub trait Address:
    Copy + Clone + Eq + Ord + Hash + fmt::Debug + fmt::Display + Send + Sync + 'static
{
    /// Width of the address in bits (32 for IPv4, 128 for IPv6).
    const BITS: u8;

    /// Number of header bits needed to encode a clue (a prefix length in
    /// `1..=BITS`, encoded as `len - 1`): 5 for IPv4, 7 for IPv6.
    const CLUE_BITS: u8;

    /// The all-zero address.
    const ZERO: Self;

    /// Returns bit `index`, where index 0 is the most significant bit.
    ///
    /// # Panics
    /// Panics if `index >= Self::BITS`.
    fn bit(self, index: u8) -> bool;

    /// Returns a copy of `self` with bit `index` set to `value`.
    ///
    /// # Panics
    /// Panics if `index >= Self::BITS`.
    fn with_bit(self, index: u8, value: bool) -> Self;

    /// Keeps the `len` most significant bits and zeroes the rest.
    ///
    /// # Panics
    /// Panics if `len > Self::BITS`.
    fn mask(self, len: u8) -> Self;

    /// Builds an address from the low `BITS` bits of `value`
    /// (the bit at position `BITS - 1` of `value` becomes the MSB).
    fn from_u128(value: u128) -> Self;

    /// The address as an unsigned integer in the low `BITS` bits.
    fn to_u128(self) -> u128;

    /// Length of the longest common prefix of `self` and `other`, in bits
    /// (`0..=BITS`).
    fn common_prefix_len(self, other: Self) -> u8;
}

/// A 32-bit IPv4 address.
///
/// Stored as a plain `u32` in network bit order (MSB = first bit on the
/// wire). Displays in dotted-quad notation and parses from it.
///
/// ```
/// use clue_trie::{Address, Ip4};
/// let a: Ip4 = "192.168.0.1".parse().unwrap();
/// assert_eq!(a.to_u128(), 0xC0A8_0001);
/// assert!(a.bit(0)); // 192 = 0b1100_0000
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ip4(pub u32);

/// A 128-bit IPv6 address.
///
/// Stored as a plain `u128`. Displays in RFC 5952 canonical form (the
/// longest zero run compressed with `::`) and parses from full or
/// compressed notation.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ip6(pub u128);

impl Address for Ip4 {
    const BITS: u8 = 32;
    const CLUE_BITS: u8 = 5;
    const ZERO: Self = Ip4(0);

    #[inline]
    fn bit(self, index: u8) -> bool {
        assert!(index < Self::BITS, "bit index {index} out of range for Ip4");
        (self.0 >> (31 - index)) & 1 == 1
    }

    #[inline]
    fn with_bit(self, index: u8, value: bool) -> Self {
        assert!(index < Self::BITS, "bit index {index} out of range for Ip4");
        let m = 1u32 << (31 - index);
        Ip4(if value { self.0 | m } else { self.0 & !m })
    }

    #[inline]
    fn mask(self, len: u8) -> Self {
        assert!(len <= Self::BITS, "mask length {len} out of range for Ip4");
        if len == 0 {
            Ip4(0)
        } else {
            Ip4(self.0 & (u32::MAX << (32 - len)))
        }
    }

    #[inline]
    fn from_u128(value: u128) -> Self {
        Ip4(value as u32)
    }

    #[inline]
    fn to_u128(self) -> u128 {
        self.0 as u128
    }

    #[inline]
    fn common_prefix_len(self, other: Self) -> u8 {
        (self.0 ^ other.0).leading_zeros().min(32) as u8
    }
}

impl Address for Ip6 {
    const BITS: u8 = 128;
    const CLUE_BITS: u8 = 7;
    const ZERO: Self = Ip6(0);

    #[inline]
    fn bit(self, index: u8) -> bool {
        assert!(index < Self::BITS, "bit index {index} out of range for Ip6");
        (self.0 >> (127 - index)) & 1 == 1
    }

    #[inline]
    fn with_bit(self, index: u8, value: bool) -> Self {
        assert!(index < Self::BITS, "bit index {index} out of range for Ip6");
        let m = 1u128 << (127 - index);
        Ip6(if value { self.0 | m } else { self.0 & !m })
    }

    #[inline]
    fn mask(self, len: u8) -> Self {
        assert!(len <= Self::BITS, "mask length {len} out of range for Ip6");
        if len == 0 {
            Ip6(0)
        } else {
            Ip6(self.0 & (u128::MAX << (128 - len)))
        }
    }

    #[inline]
    fn from_u128(value: u128) -> Self {
        Ip6(value)
    }

    #[inline]
    fn to_u128(self) -> u128 {
        self.0
    }

    #[inline]
    fn common_prefix_len(self, other: Self) -> u8 {
        (self.0 ^ other.0).leading_zeros().min(128) as u8
    }
}

impl fmt::Display for Ip4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.0.to_be_bytes();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Debug for Ip4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ip4({self})")
    }
}

impl fmt::Display for Ip6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let groups: [u16; 8] = core::array::from_fn(|i| (self.0 >> (112 - 16 * i)) as u16);
        // RFC 5952: compress the longest run of zero groups (length ≥ 2,
        // leftmost on ties) with `::`.
        let (mut best_start, mut best_len) = (0usize, 0usize);
        let mut i = 0;
        while i < 8 {
            if groups[i] == 0 {
                let start = i;
                while i < 8 && groups[i] == 0 {
                    i += 1;
                }
                if i - start > best_len {
                    best_start = start;
                    best_len = i - start;
                }
            } else {
                i += 1;
            }
        }
        if best_len < 2 {
            for (i, g) in groups.iter().enumerate() {
                if i > 0 {
                    write!(f, ":")?;
                }
                write!(f, "{g:x}")?;
            }
            return Ok(());
        }
        for (i, g) in groups.iter().enumerate().take(best_start) {
            if i > 0 {
                write!(f, ":")?;
            }
            write!(f, "{g:x}")?;
        }
        write!(f, "::")?;
        for (i, g) in groups.iter().enumerate().skip(best_start + best_len) {
            if i > best_start + best_len {
                write!(f, ":")?;
            }
            write!(f, "{g:x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Ip6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ip6({self})")
    }
}

/// Error returned when parsing an address or prefix from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAddressError {
    /// The text that failed to parse.
    pub input: String,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl fmt::Display for ParseAddressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address {:?}: {}", self.input, self.reason)
    }
}

impl std::error::Error for ParseAddressError {}

impl FromStr for Ip4 {
    type Err = ParseAddressError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason| ParseAddressError { input: s.to_owned(), reason };
        let mut parts = s.split('.');
        let mut bytes = [0u8; 4];
        for slot in &mut bytes {
            let part = parts.next().ok_or_else(|| err("expected four dotted octets"))?;
            *slot = part.parse().map_err(|_| err("octet out of range"))?;
        }
        if parts.next().is_some() {
            return Err(err("too many octets"));
        }
        Ok(Ip4(u32::from_be_bytes(bytes)))
    }
}

impl FromStr for Ip6 {
    type Err = ParseAddressError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason| ParseAddressError { input: s.to_owned(), reason };
        let parse_groups = |txt: &str| -> Result<Vec<u16>, ParseAddressError> {
            if txt.is_empty() {
                return Ok(Vec::new());
            }
            txt.split(':')
                .map(|g| u16::from_str_radix(g, 16).map_err(|_| err("bad hex group")))
                .collect()
        };
        let groups: Vec<u16> = match s.find("::") {
            Some(pos) => {
                let head = parse_groups(&s[..pos])?;
                let tail = parse_groups(&s[pos + 2..])?;
                if head.len() + tail.len() > 7 {
                    return Err(err("'::' must elide at least one group"));
                }
                let mut all = head;
                all.resize(8 - tail.len(), 0);
                all.extend(tail);
                all
            }
            None => parse_groups(s)?,
        };
        if groups.len() != 8 {
            return Err(err("expected eight groups"));
        }
        let mut v: u128 = 0;
        for g in groups {
            v = (v << 16) | g as u128;
        }
        Ok(Ip6(v))
    }
}

impl From<[u8; 4]> for Ip4 {
    fn from(b: [u8; 4]) -> Self {
        Ip4(u32::from_be_bytes(b))
    }
}

impl From<u32> for Ip4 {
    fn from(v: u32) -> Self {
        Ip4(v)
    }
}

impl From<u128> for Ip6 {
    fn from(v: u128) -> Self {
        Ip6(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip4_bit_indexing_is_msb_first() {
        let a = Ip4(0x8000_0001);
        assert!(a.bit(0));
        assert!(!a.bit(1));
        assert!(!a.bit(30));
        assert!(a.bit(31));
    }

    #[test]
    fn ip4_with_bit_roundtrip() {
        let mut a = Ip4::ZERO;
        a = a.with_bit(0, true);
        a = a.with_bit(31, true);
        assert_eq!(a, Ip4(0x8000_0001));
        a = a.with_bit(0, false);
        assert_eq!(a, Ip4(0x0000_0001));
    }

    #[test]
    fn ip4_mask() {
        let a = Ip4(0xFFFF_FFFF);
        assert_eq!(a.mask(0), Ip4(0));
        assert_eq!(a.mask(8), Ip4(0xFF00_0000));
        assert_eq!(a.mask(32), a);
    }

    #[test]
    fn ip4_common_prefix_len() {
        assert_eq!(Ip4(0).common_prefix_len(Ip4(0)), 32);
        assert_eq!(Ip4(0x8000_0000).common_prefix_len(Ip4(0)), 0);
        assert_eq!(Ip4(0xC0A8_0000).common_prefix_len(Ip4(0xC0A8_FFFF)), 16);
    }

    #[test]
    fn ip4_display_and_parse() {
        let a: Ip4 = "10.1.2.3".parse().unwrap();
        assert_eq!(a.to_string(), "10.1.2.3");
        assert!("10.1.2".parse::<Ip4>().is_err());
        assert!("10.1.2.3.4".parse::<Ip4>().is_err());
        assert!("10.1.2.256".parse::<Ip4>().is_err());
    }

    #[test]
    fn ip6_bit_indexing_is_msb_first() {
        let a = Ip6(1u128 << 127 | 1);
        assert!(a.bit(0));
        assert!(a.bit(127));
        assert!(!a.bit(64));
    }

    #[test]
    fn ip6_mask_and_common_prefix() {
        let a = Ip6(u128::MAX);
        assert_eq!(a.mask(0), Ip6(0));
        assert_eq!(a.mask(64), Ip6(u128::MAX << 64));
        assert_eq!(Ip6(0).common_prefix_len(Ip6(0)), 128);
        assert_eq!(Ip6(1).common_prefix_len(Ip6(0)), 127);
    }

    #[test]
    fn ip6_parse_full_and_compressed() {
        let a: Ip6 = "2001:db8:0:0:0:0:0:1".parse().unwrap();
        let b: Ip6 = "2001:db8::1".parse().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_u128() >> 96, 0x2001_0db8);
        assert!("::1::2".parse::<Ip6>().is_err());
        assert!("1:2:3".parse::<Ip6>().is_err());
    }

    #[test]
    fn ip6_display_roundtrip() {
        let a = Ip6(0x2001_0db8_0000_0000_0000_0000_0000_0001);
        let s = a.to_string();
        assert_eq!(s, "2001:db8::1");
        let back: Ip6 = s.parse().unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn ip6_display_compression_rules() {
        assert_eq!(Ip6(0).to_string(), "::");
        assert_eq!(Ip6(1).to_string(), "::1");
        assert_eq!(Ip6(1u128 << 112).to_string(), "1::");
        // Longest run wins; leftmost on ties.
        let a: Ip6 = "1:0:0:2:0:0:0:3".parse().unwrap();
        assert_eq!(a.to_string(), "1:0:0:2::3");
        let b: Ip6 = "1:0:0:2:3:0:0:4".parse().unwrap();
        assert_eq!(b.to_string(), "1::2:3:0:0:4");
        // A single zero group is not compressed.
        let c: Ip6 = "1:0:2:3:4:5:6:7".parse().unwrap();
        assert_eq!(c.to_string(), "1:0:2:3:4:5:6:7");
    }

    #[test]
    fn ip6_display_parse_roundtrip_fuzzish() {
        for v in [
            0u128,
            1,
            u128::MAX,
            0x2001_0db8_0000_0000_0000_0000_0000_0001,
            0x0000_0000_ffff_0000_0000_0000_0000_1234,
        ] {
            let a = Ip6(v);
            let back: Ip6 = a.to_string().parse().unwrap();
            assert_eq!(a, back, "value {v:#x}");
        }
    }

    #[test]
    fn from_u128_truncates_for_ip4() {
        let a = Ip4::from_u128(0x1_FFFF_FFFF);
        assert_eq!(a, Ip4(0xFFFF_FFFF));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ip4_bit_out_of_range_panics() {
        let _ = Ip4::ZERO.bit(32);
    }
}
