//! The trie substrates over 128-bit addresses: everything that the IPv4
//! unit tests check must hold at W = 128 too (the paper's IPv6 scaling
//! argument rests on it).

use clue_trie::{BinaryTrie, Cost, Ip6, PatriciaTrie, Prefix};

fn p(s: &str) -> Prefix<Ip6> {
    s.parse().unwrap()
}

fn a(s: &str) -> Ip6 {
    s.parse().unwrap()
}

fn sample() -> Vec<Prefix<Ip6>> {
    vec![
        p("2001:db8::/32"),
        p("2001:db8:1::/48"),
        p("2001:db8:1:2::/64"),
        p("2001:db8:8000::/33"),
        p("fd00::/8"),
    ]
}

#[test]
fn binary_trie_lookup_at_128_bits() {
    let t: BinaryTrie<Ip6, ()> = sample().into_iter().map(|q| (q, ())).collect();
    assert_eq!(t.lookup(a("2001:db8:1:2::42")).map(|r| t.prefix(r)), Some(p("2001:db8:1:2::/64")));
    assert_eq!(t.lookup(a("2001:db8:1:3::42")).map(|r| t.prefix(r)), Some(p("2001:db8:1::/48")));
    // 2001:db8:9:: has bit 33 clear: only the /32 covers it.
    assert_eq!(t.lookup(a("2001:db8:9::1")).map(|r| t.prefix(r)), Some(p("2001:db8::/32")));
    // 2001:db8:8001:: has bit 33 set: the /33 wins.
    assert_eq!(
        t.lookup(a("2001:db8:8001::1")).map(|r| t.prefix(r)),
        Some(p("2001:db8:8000::/33"))
    );
    assert_eq!(t.lookup(a("fd12::1")).map(|r| t.prefix(r)), Some(p("fd00::/8")));
    assert_eq!(t.lookup(a("2002::1")), None);

    let mut cost = Cost::new();
    t.lookup_counted(a("2001:db8:1:2::42"), &mut cost);
    assert_eq!(cost.trie_nodes, 65, "root + 64 bits of path");
}

#[test]
fn patricia_compression_pays_off_at_128_bits() {
    let pt: PatriciaTrie<Ip6> = sample().into_iter().collect();
    pt.check_invariants().unwrap();
    let bt: BinaryTrie<Ip6, ()> = sample().into_iter().map(|q| (q, ())).collect();
    for addr in ["2001:db8:1:2::42", "2001:db8:ffff::1", "fd00::7", "::1"] {
        let addr: Ip6 = addr.parse().unwrap();
        let (mut cb, mut cp) = (Cost::new(), Cost::new());
        assert_eq!(
            bt.lookup_counted(addr, &mut cb).map(|r| bt.prefix(r)),
            pt.lookup_counted(addr, &mut cp)
        );
        // 128-bit chains make compression dramatic: a handful of
        // branch points instead of a 48-65 vertex walk.
        if cb.trie_nodes > 10 {
            assert!(cp.trie_nodes * 5 <= cb.trie_nodes, "{} vs {}", cp.trie_nodes, cb.trie_nodes);
        }
    }
}

#[test]
fn removal_and_reinsert_at_128_bits() {
    let mut t: BinaryTrie<Ip6, u32> =
        sample().into_iter().enumerate().map(|(i, q)| (q, i as u32)).collect();
    assert_eq!(t.remove(&p("2001:db8:1:2::/64")), Some(2));
    assert_eq!(t.lookup(a("2001:db8:1:2::42")).map(|r| t.prefix(r)), Some(p("2001:db8:1::/48")));
    t.insert(p("2001:db8:1:2::/64"), 9);
    assert_eq!(t.lookup(a("2001:db8:1:2::42")).map(|r| *t.value(r)), Some(9));
}

#[test]
fn full_length_host_routes() {
    let host = p("2001:db8::1/128");
    let mut t: BinaryTrie<Ip6, ()> = BinaryTrie::new();
    t.insert(host, ());
    t.insert(p("2001:db8::/32"), ());
    assert_eq!(t.lookup(a("2001:db8::1")).map(|r| t.prefix(r)), Some(host));
    assert_eq!(t.lookup(a("2001:db8::2")).map(|r| t.prefix(r)), Some(p("2001:db8::/32")));
    let mut pt: PatriciaTrie<Ip6> = PatriciaTrie::new();
    pt.insert(host);
    pt.insert(p("2001:db8::/32"));
    pt.check_invariants().unwrap();
    assert_eq!(pt.lookup(a("2001:db8::1")), Some(host));
}
