//! Model-based property tests: the tries against a naive reference
//! implementation (a sorted map scanned linearly), under arbitrary
//! insert/remove interleavings.

use std::collections::BTreeMap;

use clue_trie::{BinaryTrie, Cost, Ip4, PatriciaTrie, Prefix};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(Prefix<Ip4>, u32),
    Remove(Prefix<Ip4>),
    Lookup(Ip4),
}

fn arb_prefix() -> impl Strategy<Value = Prefix<Ip4>> {
    // A narrow bit pool makes collisions (and hence removes/overwrites)
    // common.
    (0u32..64, prop_oneof![Just(4u8), Just(8), Just(12), Just(16), Just(24), Just(32)])
        .prop_map(|(bits, len)| Prefix::new(Ip4(bits << 24 | bits << 8), len))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_prefix(), any::<u32>()).prop_map(|(p, v)| Op::Insert(p, v)),
        arb_prefix().prop_map(Op::Remove),
        any::<u32>().prop_map(|a| Op::Lookup(Ip4(a))),
    ]
}

fn model_bmp(model: &BTreeMap<Prefix<Ip4>, u32>, addr: Ip4) -> Option<(Prefix<Ip4>, u32)> {
    model
        .iter()
        .filter(|(p, _)| p.contains(addr))
        .max_by_key(|(p, _)| p.len())
        .map(|(p, v)| (*p, *v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The binary trie behaves exactly like a map + linear scan under
    /// arbitrary operation sequences.
    #[test]
    fn binary_trie_matches_model(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let mut trie: BinaryTrie<Ip4, u32> = BinaryTrie::new();
        let mut model: BTreeMap<Prefix<Ip4>, u32> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(p, v) => {
                    let (_, old) = trie.insert(p, v);
                    prop_assert_eq!(old, model.insert(p, v));
                }
                Op::Remove(p) => {
                    prop_assert_eq!(trie.remove(&p), model.remove(&p));
                }
                Op::Lookup(addr) => {
                    let got = trie.lookup(addr).map(|r| (trie.prefix(r), *trie.value(r)));
                    prop_assert_eq!(got, model_bmp(&model, addr));
                }
            }
            prop_assert_eq!(trie.len(), model.len());
        }
    }

    /// The Patricia trie stays structurally valid and agrees with the
    /// binary trie on every lookup, under arbitrary churn.
    #[test]
    fn patricia_matches_binary_under_churn(
        ops in proptest::collection::vec(arb_op(), 1..120),
        probes in proptest::collection::vec(any::<u32>(), 8),
    ) {
        let mut bin: BinaryTrie<Ip4, ()> = BinaryTrie::new();
        let mut pat: PatriciaTrie<Ip4> = PatriciaTrie::new();
        for op in ops {
            match op {
                Op::Insert(p, _) => {
                    bin.insert(p, ());
                    pat.insert(p);
                }
                Op::Remove(p) => {
                    let a = bin.remove(&p).is_some();
                    let b = pat.remove(&p);
                    prop_assert_eq!(a, b);
                }
                Op::Lookup(addr) => {
                    let a = Ip4(addr.0);
                    prop_assert_eq!(
                        bin.lookup(a).map(|r| bin.prefix(r)),
                        pat.lookup(a)
                    );
                }
            }
            pat.check_invariants().map_err(TestCaseError::fail)?;
            prop_assert_eq!(bin.len(), pat.len());
        }
        for raw in probes {
            let addr = Ip4(raw);
            let (mut cb, mut cp) = (Cost::new(), Cost::new());
            prop_assert_eq!(
                bin.lookup_counted(addr, &mut cb).map(|r| bin.prefix(r)),
                pat.lookup_counted(addr, &mut cp)
            );
            // Compression can only reduce the number of visited vertices.
            prop_assert!(cp.trie_nodes <= cb.trie_nodes);
        }
    }

    /// `lookup_from` a vertex equals a full lookup whenever the full
    /// lookup's answer lies at or below that vertex.
    #[test]
    fn lookup_from_is_consistent_with_full_lookup(
        prefixes in proptest::collection::vec(arb_prefix(), 1..40),
        raw in any::<u32>(),
    ) {
        let trie: BinaryTrie<Ip4, ()> = prefixes.iter().map(|p| (*p, ())).collect();
        let addr = Ip4(raw);
        let full = trie.lookup(addr).map(|r| trie.prefix(r));
        if let Some(bmp) = full {
            // Start from every ancestor vertex of the BMP on the path.
            for len in 0..=bmp.len() {
                let anchor = Prefix::of_address(bmp.bits(), len);
                if let Some(node) = trie.node_of_prefix(&anchor) {
                    let mut c = Cost::new();
                    let from = trie.lookup_from(node, addr, &mut c).map(|r| trie.prefix(r));
                    // The walk below the anchor finds the BMP iff the BMP
                    // is at or below the anchor; it is, by construction.
                    prop_assert_eq!(from, Some(bmp));
                }
            }
        }
    }

    /// `best_match_of_prefix` is the BMP of the prefix's first address,
    /// truncated search — i.e. it never returns anything longer than the
    /// query and always a stored prefix of it.
    #[test]
    fn best_match_of_prefix_contract(
        prefixes in proptest::collection::vec(arb_prefix(), 1..40),
        query in arb_prefix(),
    ) {
        let trie: BinaryTrie<Ip4, ()> = prefixes.iter().map(|p| (*p, ())).collect();
        if let Some(r) = trie.best_match_of_prefix(&query) {
            let got = trie.prefix(r);
            prop_assert!(got.len() <= query.len());
            prop_assert!(got.is_prefix_of(&query));
            // Nothing longer qualifies.
            for p in &prefixes {
                if p.is_prefix_of(&query) {
                    prop_assert!(p.len() <= got.len());
                }
            }
        } else {
            for p in &prefixes {
                prop_assert!(!p.is_prefix_of(&query));
            }
        }
    }
}
