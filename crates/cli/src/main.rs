//! `clue` — command-line front end for the *Routing with a Clue*
//! workspace.
//!
//! ```text
//! clue stats  <table.txt>                       table statistics
//! clue pair   <sender.txt> <receiver.txt>       pair stats + 15-method matrix
//! clue lookup <table.txt> <addr> [clue-prefix]  one lookup, per-family costs
//! clue synth  <count> [seed]                    emit a synthetic table
//! clue metrics [packets] [seed] [--prom|--json] instrumented workload dump
//! ```
//!
//! Tables are plain text, one `A.B.C.D/len` per line (`#` comments,
//! optional next-hop token) — convert any real RIB dump to this format.

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
