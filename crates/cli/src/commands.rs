//! Sub-command implementations.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::sync::Arc;

use clue_core::{ClueEngine, CompiledBackend, CramReport, EngineConfig, Method, Stage, StageProfiler};
use clue_lookup::{reference_bmp, Family};
use clue_tablegen::{
    derive_neighbor, export_length_histogram, format_prefixes, generate, length_histogram,
    minimize, parse_prefixes, parse_table, synthesize_ipv4, NeighborConfig, PairStats,
    TrafficConfig,
};
use clue_telemetry::{Histogram, HistogramSnapshot, Registry, ScrapeServer};
use clue_trie::{BinaryTrie, Cost, CostStats, Ip4, Prefix};

/// Top-level usage text.
pub const USAGE: &str = "\
usage:
  clue stats  <table.txt>                        table statistics
  clue pair   <sender.txt> <receiver.txt> [n]    pair stats + method matrix
                                                 (n packets, default 10000)
  clue lookup <table.txt> <addr> [clue-prefix]   one lookup, per-family costs
  clue synth  <count> [seed] [--modern]          emit a synthetic table
                                                 (--modern: contemporary
                                                 DFZ length mix, capacity-
                                                 aware at 1M-10M prefixes)
  clue minimize <table.txt>                      ORTC-minimize (next hops
                                                 read from the 2nd column)
  clue metrics [packets] [seed] [--prom|--json]  run an instrumented workload
                                                 and dump the telemetry
                                                 registry (default: both
                                                 formats)
  clue profile [packets] [seed] [--table P] [--stride BITS] [--json PATH]
               [--serve ADDR] [--check]         per-stage lookup profiler:
                                                 attributes predicted Cost
                                                 ticks, measured nanoseconds
                                                 and touched record bytes to
                                                 the root/inner/clue-probe/
                                                 continuation/cache stages of
                                                 the scalar, frozen and
                                                 stride paths (plus the
                                                 network driver), reporting
                                                 ns/lookup percentiles and
                                                 the predicted-vs-measured
                                                 correlation; --check proves
                                                 profiling is semantically
                                                 inert
  clue bench-diff <baseline.json> <fresh.json> [--tolerance PCT]
                  [--time-tolerance PCT] [--min KEY=FLOOR] [--max KEY=CEIL]
                                                 compare two BENCH_*.json
                                                 exports key by key: booleans
                                                 and strings exactly, numbers
                                                 within a relative tolerance
                                                 (timing- and run-variable
                                                 keys get the wider
                                                 --time-tolerance; defaults
                                                 10 / 100); --min (repeatable)
                                                 also requires the fresh
                                                 run's KEY to be >= FLOOR,
                                                 --max (repeatable) to be
                                                 <= CEIL
  clue throughput [packets] [seed] [--threads N] [--table P] [--stride BITS]
                  [--prefetch G] [--backend B] [--runtime] [--json PATH]
                  [--serve ADDR] [--check]       packets/sec for the scalar,
                                                 batched-frozen, stride-
                                                 compiled (initial stride BITS,
                                                 prefetch interleave G; G<=1
                                                 disables prefetch) and
                                                 entropy-compressed pipelines
                                                 and the multi-core network
                                                 runtime over a P-prefix
                                                 table (N worker cores,
                                                 default: all; tables of
                                                 >= 200000 prefixes use the
                                                 modern DFZ generator), each
                                                 backend with a CRAM-style
                                                 bytes-per-prefix and
                                                 expected-cache-miss block;
                                                 --backend frozen|stride|
                                                 compressed benchmarks one
                                                 compiled backend against the
                                                 scalar reference (skipping
                                                 the network legs — the
                                                 1M-10M single-engine matrix);
                                                 --runtime adds the engine-
                                                 level serving leg over an
                                                 epoch cell; --check verifies
                                                 result equivalence; --serve
                                                 ADDR exposes /metrics and
                                                 /metrics.json live during
                                                 the run (also on churn,
                                                 chaos and profile)
  clue churn [updates] [seed] [--readers N] [--json PATH] [--serve ADDR]
             [--check]
                                                 live-churn serving: a builder
                                                 applies a BGP-style update
                                                 stream and republishes frozen
                                                 snapshots while N reader
                                                 threads serve lookups from
                                                 epoch-pinned snapshots;
                                                 --check proves the final
                                                 snapshot bit-identical to a
                                                 from-scratch rebuild
  clue fleet [flows] [seed] [--routers N] [--topology transit-stub|preferential]
             [--origins N] [--participation F] [--threads N] [--churn EVENTS]
             [--adversaries N] [--attack lying|flooding|oscillating]
             [--json PATH] [--serve ADDR] [--check]
                                                 fleet-scale simulator: an
                                                 internet-like topology of N
                                                 routers (default 1024), every
                                                 router a stride-compiled
                                                 engine bundle behind an epoch
                                                 cell, ECMP flows with Zipf
                                                 destination locality routed
                                                 over the shared-nothing
                                                 runtime; reports per-link
                                                 clue hit/problematic/clueless
                                                 rates and per-hop memory-
                                                 reference savings vs a
                                                 clue-less baseline; --churn
                                                 applies EVENTS origin
                                                 re-advertisements while
                                                 serving workers keep routing;
                                                 --adversaries plants N
                                                 attacking routers (--attack
                                                 profile, default lying) and
                                                 plays them against the
                                                 reputation quarantine, plus a
                                                 0..100% participation sweep;
                                                 --check proves the sharded
                                                 run bit-identical to the
                                                 sequential reference at
                                                 1/2/4/8 workers, and with
                                                 --adversaries also that the
                                                 soundness bound held on every
                                                 packet, quarantine engaged
                                                 within the window and savings
                                                 reconverged to the honest
                                                 fleet
  clue chaos [packets] [seed] [--faults SPEC] [--json PATH] [--serve ADDR]
             [--check]
                                                 fault-injection harness:
                                                 corrupted/truncated/stale/
                                                 adversarial clues, clueless
                                                 hops, drops, reorders, plus a
                                                 churn leg with a reader panic
                                                 and a stalled rebuild; SPEC is
                                                 \"all\" or comma-separated
                                                 fault classes; --check fails
                                                 unless forwarding stayed
                                                 bit-identical to the clue-less
                                                 baseline and serving survived";

/// Entry point: dispatches on the first argument.
pub fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("stats") => stats(args.get(1).ok_or("stats needs a table file")?),
        Some("pair") => pair(
            args.get(1).ok_or("pair needs a sender file")?,
            args.get(2).ok_or("pair needs a receiver file")?,
            args.get(3).map(String::as_str),
        ),
        Some("lookup") => lookup(
            args.get(1).ok_or("lookup needs a table file")?,
            args.get(2).ok_or("lookup needs an address")?,
            args.get(3).map(String::as_str),
        ),
        Some("synth") => synth(&args[1..]),
        Some("minimize") => minimize_cmd(args.get(1).ok_or("minimize needs a table file")?),
        Some("metrics") => metrics(&args[1..]),
        Some("profile") => profile(&args[1..]),
        Some("bench-diff") => bench_diff(&args[1..]),
        Some("throughput") => throughput(&args[1..]),
        Some("churn") => churn(&args[1..]),
        Some("chaos") => chaos(&args[1..]),
        Some("fleet") => fleet(&args[1..]),
        Some(other) => Err(format!("unknown command {other:?}")),
        None => Err("no command given".to_owned()),
    }
}

fn load(path: &str) -> Result<Vec<Prefix<Ip4>>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_prefixes::<Ip4>(&text).map_err(|e| format!("{path}: {e}"))
}

fn stats(path: &str) -> Result<(), String> {
    let table = load(path)?;
    println!("table: {path}");
    println!("prefixes: {}", table.len());
    let hist = length_histogram(&table);
    println!("\nlength histogram:");
    let max = hist.iter().copied().max().unwrap_or(1).max(1);
    for (len, &n) in hist.iter().enumerate() {
        if n > 0 {
            let bar = "#".repeat((n * 40).div_ceil(max));
            println!("  /{len:<3} {n:>8}  {bar}");
        }
    }
    let trie: BinaryTrie<Ip4, ()> = table.iter().map(|p| (*p, ())).collect();
    println!("\ntrie vertices: {}", trie.node_count());
    println!("trie memory:   {} bytes", trie.memory_bytes());
    let nested = table
        .iter()
        .filter(|p| table.iter().any(|q| q.is_strict_prefix_of(p)))
        .count();
    println!("nested prefixes (have a shorter covering prefix): {nested}");
    // How close the length mix sits to each generator preset (L1
    // distance over the capacity-clamped configured distribution,
    // 0 = exact match, 2 = disjoint) — the knob for checking that a
    // synthesized table kept its configured shape.
    let d1999 =
        clue_tablegen::length_l1_distance(&table, &clue_tablegen::SynthConfig::ipv4(table.len(), 0));
    let dmodern = clue_tablegen::length_l1_distance(
        &table,
        &clue_tablegen::SynthConfig::ipv4_modern(table.len(), 0),
    );
    println!("length-histogram L1 distance: {d1999:.4} vs 1999 preset, {dmodern:.4} vs modern");
    Ok(())
}

fn pair(sender_path: &str, receiver_path: &str, packets: Option<&str>) -> Result<(), String> {
    let sender = load(sender_path)?;
    let receiver = load(receiver_path)?;
    let n: usize = packets.unwrap_or("10000").parse().map_err(|_| "bad packet count")?;

    let ps = PairStats::compute(&sender, &receiver);
    println!("sender:    {sender_path} ({} prefixes)", ps.sender_size);
    println!("receiver:  {receiver_path} ({} prefixes)", ps.receiver_size);
    println!(
        "intersection: {} ({:.1}%); problematic clues: {} ({:.2}%)",
        ps.intersection,
        ps.similarity() * 100.0,
        ps.problematic,
        ps.problematic_fraction() * 100.0
    );

    let dests = generate(&sender, &receiver, &TrafficConfig { count: n, ..TrafficConfig::paper(1) });
    let t1: BinaryTrie<Ip4, ()> = sender.iter().map(|p| (*p, ())).collect();
    let clues: Vec<Option<Prefix<Ip4>>> = dests
        .iter()
        .map(|&d| t1.lookup(d).map(|r| t1.prefix(r)).filter(|c| !c.is_empty()))
        .collect();

    println!("\naverage memory accesses over {} packets:", dests.len());
    println!("{:<10} {:>10} {:>10} {:>10}", "family", "common", "Simple", "Advance");
    for family in Family::all_extended() {
        let mut row = format!("{:<10}", family.label());
        for method in Method::all() {
            let mut engine =
                ClueEngine::precomputed(&sender, &receiver, EngineConfig::new(family, method));
            let mut acc = CostStats::new();
            for (&dest, &clue) in dests.iter().zip(&clues) {
                let mut cost = Cost::new();
                engine.lookup(dest, clue, None, &mut cost);
                acc.record(cost);
            }
            write!(row, " {:>10.2}", acc.mean()).expect("write to string");
        }
        println!("{row}");
    }
    Ok(())
}

fn lookup(path: &str, addr: &str, clue: Option<&str>) -> Result<(), String> {
    let table = load(path)?;
    let dest: Ip4 = addr.parse().map_err(|e| format!("{addr}: {e}"))?;
    let clue: Option<Prefix<Ip4>> = match clue {
        Some(c) => Some(c.parse().map_err(|e| format!("{c}: {e}"))?),
        None => None,
    };
    if let Some(c) = &clue {
        if !c.contains(dest) {
            return Err(format!("clue {c} is not a prefix of {dest}"));
        }
    }
    let want = reference_bmp(&table, dest);
    println!("destination: {dest}");
    match want {
        Some(b) => println!("best matching prefix: {b}"),
        None => println!("best matching prefix: (none)"),
    }
    if let Some(c) = &clue {
        println!("clue: {c}");
    }
    println!("\nper-family cost (memory accesses):");
    println!("{:<10} {:>10} {:>12}", "family", "clue-less", "with clue");
    for family in Family::all_extended() {
        let mut engine = ClueEngine::precomputed(
            &table, // standalone: assume the sender has the same table
            &table,
            EngineConfig::new(family, Method::Advance),
        );
        let mut c0 = Cost::new();
        let r0 = engine.common_lookup(dest, &mut c0);
        if r0 != want {
            return Err(format!("{family} disagrees with the reference"));
        }
        let with = match clue {
            Some(cl) => {
                let mut c1 = Cost::new();
                let r1 = engine.lookup(dest, Some(cl), None, &mut c1);
                if r1 != want {
                    return Err(format!("{family} with clue disagrees with the reference"));
                }
                format!("{:>12}", c1.total())
            }
            None => format!("{:>12}", "-"),
        };
        println!("{:<10} {:>10} {with}", family.label(), c0.total());
    }
    Ok(())
}

fn synth(args: &[String]) -> Result<(), String> {
    let mut modern = false;
    let mut positional: Vec<&str> = Vec::new();
    for a in args {
        match a.as_str() {
            "--modern" => modern = true,
            other => positional.push(other),
        }
    }
    let count = positional.first().ok_or("synth needs a prefix count")?;
    let n: usize = count.parse().map_err(|_| "bad prefix count")?;
    let seed: u64 = positional.get(1).unwrap_or(&"0").parse().map_err(|_| "bad seed")?;
    if positional.len() > 2 {
        return Err(format!("unexpected argument {:?}", positional[2]));
    }
    let table = if modern {
        clue_tablegen::synthesize_ipv4_modern(n, seed)
    } else {
        synthesize_ipv4(n, seed)
    };
    print!("{}", format_prefixes(&table));
    Ok(())
}

fn minimize_cmd(path: &str) -> Result<(), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let lines = parse_table::<Ip4>(&text).map_err(|e| format!("{path}: {e}"))?;
    // Next hops: the optional second column, hashed to a small id space;
    // rows without one share a single implicit hop.
    let mut hop_ids: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
    let entries: Vec<(Prefix<Ip4>, u32)> = lines
        .iter()
        .map(|l| {
            let hop = match &l.next_hop {
                Some(h) => {
                    let next = hop_ids.len() as u32 + 1;
                    *hop_ids.entry(h.clone()).or_insert(next)
                }
                None => 0,
            };
            (l.prefix, hop)
        })
        .collect();
    let id_to_hop: std::collections::HashMap<u32, &String> =
        hop_ids.iter().map(|(k, v)| (*v, k)).collect();
    let min = minimize(&entries);
    eprintln!("{} prefixes -> {} after ORTC", entries.len(), min.len());
    for (p, hop) in min {
        match id_to_hop.get(&hop) {
            Some(h) => println!("{p} {h}"),
            None => println!("{p}"),
        }
    }
    Ok(())
}

/// Runs a synthetic sender→receiver workload with telemetry enabled and
/// dumps the whole registry: Prometheus text exposition, JSON, or both.
fn metrics(args: &[String]) -> Result<(), String> {
    let mut packets = 10_000usize;
    let mut seed = 1u64;
    let (mut prom, mut json) = (true, true);
    let mut positional = 0;
    for a in args {
        match a.as_str() {
            "--prom" => json = false,
            "--json" => prom = false,
            other => {
                match positional {
                    0 => packets = other.parse().map_err(|_| "bad packet count")?,
                    1 => seed = other.parse().map_err(|_| "bad seed")?,
                    _ => return Err(format!("unexpected argument {other:?}")),
                }
                positional += 1;
            }
        }
    }
    if !prom && !json {
        return Err("--prom and --json are mutually exclusive".to_owned());
    }

    let registry = Registry::new();

    // Table build: a synthetic sender and a same-ISP receiver, with the
    // pair statistics mirrored into the registry.
    let sender = synthesize_ipv4(4000, seed);
    let receiver = derive_neighbor(&sender, &NeighborConfig::same_isp(seed.wrapping_add(1)));
    PairStats::compute(&sender, &receiver).export_into(&registry);
    export_length_histogram(&registry, "clue_tablegen_sender_length", &sender);
    export_length_histogram(&registry, "clue_tablegen_receiver_length", &receiver);

    // Instrumented engine with the presence cache in front of the clue
    // table, driven by paper-style traffic carrying real clues.
    let mut engine = ClueEngine::precomputed(
        &sender,
        &receiver,
        EngineConfig::new(Family::Regular, Method::Advance),
    );
    engine.instrument(&registry);
    engine.enable_cache(256);
    let dests = generate(
        &sender,
        &receiver,
        &TrafficConfig { count: packets, ..TrafficConfig::paper(seed) },
    );
    let t1: BinaryTrie<Ip4, ()> = sender.iter().map(|p| (*p, ())).collect();
    let clues: Vec<Option<Prefix<Ip4>>> = dests
        .iter()
        .map(|&d| t1.lookup(d).map(|r| t1.prefix(r)).filter(|c| !c.is_empty()))
        .collect();
    for (&dest, &clue) in dests.iter().zip(&clues) {
        let mut cost = Cost::new();
        engine.lookup(dest, clue, None, &mut cost);
    }

    // The compiled fast path and the resilience families are part of
    // the default dump: the same stream drives a stride batch so its
    // counters are live, and the churn/degradation families register
    // their full schema (zero until their workloads run) so one scrape
    // shows every metric the suite can emit.
    let frozen = ClueEngine::precomputed(
        &sender,
        &receiver,
        EngineConfig::new(Family::Regular, Method::Advance),
    )
    .freeze()
    .map_err(|e| format!("cannot freeze the engine ({} blocks it): {e}", e.feature()))?;
    let mut stride = frozen
        .compile_stride(clue_core::StrideConfig::default())
        .map_err(|e| e.to_string())?;
    stride.attach_stride_telemetry(clue_telemetry::StrideTelemetry::registered(
        &registry,
        "clue_stride",
    ));
    let mut out = vec![clue_core::Decision::default(); dests.len()];
    let _ = stride.lookup_batch_interleaved(&dests, &clues, &mut out, clue_core::DEFAULT_INTERLEAVE);

    // The multi-core serving runtime, driven over the same stream so
    // its clue_runtime_* series are live in the dump: two worker cores,
    // each a private replica of the stride engine behind an epoch cell.
    let runtime_telemetry = clue_telemetry::RuntimeTelemetry::registered(&registry, "clue_runtime");
    let cell = clue_core::EpochCell::new(stride.replicate());
    let runtime_cfg = clue_netsim::RuntimeConfig {
        workers: 2,
        batch: 256,
        ..clue_netsim::RuntimeConfig::default()
    };
    let mut served = Vec::new();
    let _ =
        clue_netsim::serve_lookups(&cell, &dests, &clues, &mut served, &runtime_cfg, Some(&runtime_telemetry));

    let plan = clue_netsim::FaultPlan::parse("all", seed)?;
    let labels: Vec<&str> = plan.classes().iter().map(|c| c.label()).collect();
    let _ = clue_telemetry::DegradationTelemetry::registered(&registry, "clue_fault", &labels);
    let _ = clue_telemetry::ChurnTelemetry::registered(&registry, "clue_churn");

    // The adversarial layer: a short lying-neighbor scenario against
    // the reputation quarantine drives the clue_adversary_* and
    // clue_reputation_* series live in the same dump.
    let adversary_telemetry =
        clue_telemetry::AdversaryTelemetry::registered(&registry, "clue_adversary");
    let reputation_telemetry =
        clue_telemetry::ReputationTelemetry::registered(&registry, "clue_reputation");
    let mut scenario =
        clue_netsim::ScenarioConfig::new(clue_netsim::AttackProfile::Lying, seed);
    scenario.table_size = 200;
    scenario.batches = 8;
    scenario.attack_batches = 3;
    scenario.packets_per_batch = 128;
    clue_netsim::run_scenario(&scenario, Some(&adversary_telemetry), Some(&reputation_telemetry))
        .map_err(|e| format!("adversarial scenario: {e}"))?;

    if prom {
        print!("{}", registry.to_prometheus());
    }
    if prom && json {
        println!();
    }
    if json {
        println!("{}", registry.to_json());
    }
    Ok(())
}

/// Starts the zero-dependency scrape server on `addr` and announces
/// the endpoint; the returned guard keeps it serving until dropped.
/// Parses and validates the value of a `--threads N` flag — shared by
/// every subcommand with a worker pool (`throughput --runtime`,
/// `fleet`), so the validation rules can't drift apart.
fn parse_threads(it: &mut std::slice::Iter<'_, String>) -> Result<usize, String> {
    let threads: usize =
        it.next().ok_or("--threads needs a value")?.parse().map_err(|_| "bad thread count")?;
    if threads == 0 {
        return Err("--threads must be at least 1".to_owned());
    }
    Ok(threads)
}

fn start_scrape(addr: &str, registry: &Arc<Registry>) -> Result<ScrapeServer, String> {
    let server =
        ScrapeServer::start(addr, registry.clone()).map_err(|e| format!("--serve {addr}: {e}"))?;
    println!("serving metrics on http://{}/metrics (and /metrics.json)", server.addr());
    Ok(server)
}

/// `{:.2}`-formats an optional statistic, `-` when undefined.
/// One backend's row of the human-readable CRAM table: arena bytes per
/// receiver prefix, the byte split, and the model's expected per-lookup
/// references and cache misses.
fn print_cram(name: &str, prefixes: usize, r: &CramReport) {
    println!(
        "  {name:<11} {:>8.2} B/pfx  arena {:>12}  buckets {:>12}  dict {:>10}  \
         refs {:>6.2}  miss L1 {:.3} L2 {:.3} L3 {:.3}",
        r.arena_bytes as f64 / prefixes.max(1) as f64,
        r.arena_bytes,
        r.bucket_bytes,
        r.dict_bytes,
        r.expected_refs,
        r.expected_l1_misses,
        r.expected_l2_misses,
        r.expected_l3_misses
    );
}

/// The same CRAM block as flat `BENCH_*.json` keys (appended to an
/// open JSON object). Everything here is a pure function of the seeded
/// layout, so bench-diff compares these keys at the strict tolerance.
fn cram_json(json: &mut String, name: &str, prefixes: usize, r: &CramReport) {
    let _ = write!(
        json,
        ",\n  \"{name}_bytes_per_prefix\": {:.3},\n  \
         \"cram_{name}_arena_bytes\": {},\n  \
         \"cram_{name}_bucket_bytes\": {},\n  \
         \"cram_{name}_dict_bytes\": {},\n  \
         \"cram_{name}_levels\": {},\n  \
         \"cram_{name}_expected_refs\": {:.4},\n  \
         \"cram_{name}_l1_miss\": {:.4},\n  \
         \"cram_{name}_l2_miss\": {:.4},\n  \
         \"cram_{name}_l3_miss\": {:.4}",
        r.arena_bytes as f64 / prefixes.max(1) as f64,
        r.arena_bytes,
        r.bucket_bytes,
        r.dict_bytes,
        r.levels.len(),
        r.expected_refs,
        r.expected_l1_misses,
        r.expected_l2_misses,
        r.expected_l3_misses
    );
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_owned(), |x| format!("{x:.2}"))
}

/// JSON-formats an optional statistic, `null` when undefined.
fn json_opt(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.4}"),
        _ => "null".to_owned(),
    }
}

/// Prints one profiled path's per-stage attribution table and its
/// summary line.
fn print_profile_path(name: &str, prof: &StageProfiler, snap: &HistogramSnapshot) {
    println!("path: {name}");
    println!(
        "  {:<13} {:>9} {:>10} {:>9} {:>12} {:>9} {:>7}",
        "stage", "visits", "ticks", "t/visit", "bytes", "ns/tick", "corr"
    );
    for stage in Stage::all() {
        let s = prof.stage(stage);
        if s.visits == 0 {
            continue;
        }
        println!(
            "  {:<13} {:>9} {:>10} {:>9} {:>12} {:>9} {:>7}",
            stage.label(),
            s.visits,
            s.ticks,
            fmt_opt(s.ticks_per_visit()),
            s.bytes,
            fmt_opt(s.ns_per_tick()),
            fmt_opt(s.correlation()),
        );
    }
    println!(
        "  lookups {}, ns/lookup p50 {:.0} p90 {:.0} p99 {:.0}, bytes/lookup {}, \
         cost-vs-time r {}",
        prof.lookups(),
        snap.p50(),
        snap.p90(),
        snap.p99(),
        fmt_opt(prof.bytes_per_lookup()),
        fmt_opt(prof.lookup_correlation()),
    );
}

/// One profiled path as a `BENCH_profile.json` object body.
fn profile_path_json(prof: &StageProfiler, snap: &HistogramSnapshot) -> String {
    let mut stages = String::new();
    let live: Vec<Stage> = Stage::all().into_iter().filter(|s| prof.stage(*s).visits > 0).collect();
    for (i, stage) in live.iter().enumerate() {
        let s = prof.stage(*stage);
        let sep = if i + 1 < live.len() { "," } else { "" };
        write!(
            stages,
            "\n      \"{}\": {{\"visits\": {}, \"ticks\": {}, \"bytes\": {}, \"nanos\": {}, \
             \"ticks_per_visit\": {}, \"ns_per_tick\": {}, \"correlation\": {}}}{sep}",
            stage.label(),
            s.visits,
            s.ticks,
            s.bytes,
            s.nanos,
            json_opt(s.ticks_per_visit()),
            json_opt(s.ns_per_tick()),
            json_opt(s.correlation()),
        )
        .expect("write to string");
    }
    format!(
        "{{\n    \"lookups\": {}, \"total_ticks\": {}, \"total_bytes\": {}, \
         \"total_nanos\": {},\n    \"ns_p50\": {:.1}, \"ns_p90\": {:.1}, \"ns_p99\": {:.1},\n    \
         \"bytes_per_lookup\": {}, \"cost_time_correlation\": {},\n    \"stages\": {{{stages}\n    \
         }}\n  }}",
        prof.lookups(),
        prof.total_ticks(),
        prof.total_bytes(),
        prof.total_nanos(),
        snap.p50(),
        snap.p90(),
        snap.p99(),
        json_opt(prof.bytes_per_lookup()),
        json_opt(prof.lookup_correlation()),
    )
}

/// Runs the per-stage lookup profiler over the scalar, frozen and
/// stride paths (plus the sharded network driver), cross-validating
/// the paper's predicted [`Cost`] ticks against measured nanoseconds
/// stage by stage. Every packet runs through both the plain and the
/// profiled variant of each path; `--check` fails unless they agree
/// bit-for-bit (BMP, class, per-packet `Cost`, engine stats) — the
/// profiler's "semantically inert" contract. `--json PATH` exports
/// the attribution for the `BENCH_*.json` trajectory; `--serve ADDR`
/// exposes the per-path latency histograms live while the run is hot.
fn profile(args: &[String]) -> Result<(), String> {
    let mut packets = 20_000usize;
    let mut seed = 1u64;
    let mut table = 40_000usize;
    let mut stride_bits = clue_core::DEFAULT_INITIAL_BITS;
    let mut json_path: Option<String> = None;
    let mut serve: Option<String> = None;
    let mut check = false;
    let mut positional = 0;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--table" => {
                table = it
                    .next()
                    .ok_or("--table needs a prefix count")?
                    .parse()
                    .map_err(|_| "bad table size")?;
                if table == 0 {
                    return Err("--table must be at least 1".to_owned());
                }
            }
            "--stride" => {
                stride_bits = it
                    .next()
                    .ok_or("--stride needs a bit count")?
                    .parse()
                    .map_err(|_| "bad stride bit count")?;
            }
            "--json" => json_path = Some(it.next().ok_or("--json needs a path")?.clone()),
            "--serve" => serve = Some(it.next().ok_or("--serve needs an address")?.clone()),
            "--check" => check = true,
            other => {
                match positional {
                    0 => packets = other.parse().map_err(|_| "bad packet count")?,
                    1 => seed = other.parse().map_err(|_| "bad seed")?,
                    _ => return Err(format!("unexpected argument {other:?}")),
                }
                positional += 1;
            }
        }
    }
    if packets == 0 {
        return Err("packet count must be at least 1".to_owned());
    }

    // Same table/traffic shape as `clue throughput`, so the profile
    // explains the numbers that command reports. The scalar pair
    // carries the Section 3.5 presence cache so the Cache stage is
    // exercised; freezing rejects caches, so the frozen/stride paths
    // compile from an uncached twin.
    let sender = synthesize_ipv4(table, seed);
    let receiver = derive_neighbor(&sender, &NeighborConfig::same_isp(seed.wrapping_add(1)));
    let cfg = || EngineConfig::new(Family::Regular, Method::Advance);
    let mut scalar_plain = ClueEngine::precomputed(&sender, &receiver, cfg());
    let mut scalar_prof = ClueEngine::precomputed(&sender, &receiver, cfg());
    scalar_plain.enable_cache(256);
    scalar_prof.enable_cache(256);
    let frozen = ClueEngine::precomputed(&sender, &receiver, cfg())
        .freeze()
        .map_err(|e| format!("cannot freeze the engine ({} blocks it): {e}", e.feature()))?;
    let stride = frozen
        .compile_stride(clue_core::StrideConfig::new(stride_bits, clue_core::DEFAULT_INNER_BITS))
        .map_err(|e| format!("--stride: {e}"))?;
    let dests = generate(
        &sender,
        &receiver,
        &TrafficConfig { count: packets, ..TrafficConfig::paper(seed) },
    );
    let t1: BinaryTrie<Ip4, ()> = sender.iter().map(|p| (*p, ())).collect();
    let clues: Vec<Option<Prefix<Ip4>>> = dests
        .iter()
        .map(|&d| t1.lookup(d).map(|r| t1.prefix(r)).filter(|c| !c.is_empty()))
        .collect();

    let registry = Arc::new(Registry::new());
    let hist = |path: &str| -> Histogram {
        registry.histogram(
            &format!("clue_profile_{path}_lookup_nanos"),
            "Measured wall-clock nanoseconds per profiled lookup",
            clue_telemetry::LOOKUP_NANOS_BOUNDS,
        )
    };
    let (h_scalar, h_frozen, h_stride) = (hist("scalar"), hist("frozen"), hist("stride"));
    let lookups_total =
        registry.counter("clue_profile_lookups_total", "Profiled lookups across all paths");
    let _server = match &serve {
        Some(addr) => Some(start_scrape(addr, &registry)?),
        None => None,
    };

    let mut inert = true;

    // Scalar: twin engines so learning/cache/stats mutate identically.
    let mut prof_scalar = StageProfiler::new();
    for (&dest, &clue) in dests.iter().zip(&clues) {
        let mut c0 = Cost::new();
        let r0 = scalar_plain.lookup(dest, clue, None, &mut c0);
        let t0 = std::time::Instant::now();
        let mut c1 = Cost::new();
        let r1 = scalar_prof.lookup_profiled(dest, clue, None, &mut c1, &mut prof_scalar);
        h_scalar.observe(t0.elapsed().as_nanos() as u64);
        lookups_total.inc();
        if r0 != r1 || c0 != c1 {
            inert = false;
        }
    }
    if scalar_plain.stats() != scalar_prof.stats() {
        inert = false;
    }

    let mut prof_frozen = StageProfiler::new();
    for (&dest, &clue) in dests.iter().zip(&clues) {
        let mut c0 = Cost::new();
        let r0 = frozen.lookup(dest, clue, &mut c0);
        let t0 = std::time::Instant::now();
        let mut c1 = Cost::new();
        let r1 = frozen.lookup_profiled(dest, clue, &mut c1, &mut prof_frozen);
        h_frozen.observe(t0.elapsed().as_nanos() as u64);
        lookups_total.inc();
        if r0 != r1 || c0 != c1 {
            inert = false;
        }
    }

    let mut prof_stride = StageProfiler::new();
    for (&dest, &clue) in dests.iter().zip(&clues) {
        let mut c0 = Cost::new();
        let r0 = stride.lookup(dest, clue, &mut c0);
        let t0 = std::time::Instant::now();
        let mut c1 = Cost::new();
        let r1 = stride.lookup_profiled(dest, clue, &mut c1, &mut prof_stride);
        h_stride.observe(t0.elapsed().as_nanos() as u64);
        lookups_total.inc();
        if r0 != r1 || c0 != c1 {
            inert = false;
        }
    }

    // Network leg: the sharded driver with per-thread profilers merged
    // in order — stats must match the unprofiled driver exactly.
    let (topo, edges) = clue_netsim::Topology::backbone(4, 2);
    let mut net_cfg = clue_netsim::NetworkConfig::new(edges.clone(), cfg());
    net_cfg.seed = seed;
    let net: clue_netsim::Network<Ip4> = clue_netsim::Network::build(topo, net_cfg);
    let net_packets = packets.min(5_000);
    let frozen_net = clue_netsim::FrozenNetwork::freeze(&net)
        .map_err(|e| format!("cannot freeze the network ({} blocks it): {e}", e.feature()))?;
    let plain_stats = frozen_net.run_workload(&edges, net_packets, seed, 2);
    let (profiled_stats, prof_net) = frozen_net.profile_workload(&edges, net_packets, seed, 2);
    if profiled_stats != plain_stats {
        inert = false;
    }
    let h_net = hist("network");
    // The network driver times whole lookups inside the profiler; the
    // histogram gets a per-hop mean so the scrape shows all four paths.
    if prof_net.lookups() > 0 {
        h_net.observe(prof_net.total_nanos() / prof_net.lookups());
    }

    println!(
        "profile workload: {packets} packets (sender {table} prefixes, seed {seed}), \
         network {net_packets} packets over a 4x2 backbone"
    );
    print_profile_path("scalar (presence cache 256)", &prof_scalar, &h_scalar.snapshot());
    print_profile_path("frozen", &prof_frozen, &h_frozen.snapshot());
    print_profile_path(
        &format!("stride (initial {stride_bits} bits)"),
        &prof_stride,
        &h_stride.snapshot(),
    );
    print_profile_path("network (per hop)", &prof_net, &h_net.snapshot());
    if check {
        if !inert {
            return Err(
                "profile check failed: a profiled path diverged from its unprofiled twin"
                    .to_owned(),
            );
        }
        println!("check: profiled paths semantically inert (bmp, class, cost, stats parity)");
    }

    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"packets\": {packets},\n  \"net_packets\": {net_packets},\n  \
             \"seed\": {seed},\n  \"table\": {table},\n  \"stride_bits\": {stride_bits},\n  \
             \"checked\": {check},\n  \"inert\": {inert},\n  \"paths\": {{\n  \
             \"scalar\": {},\n  \"frozen\": {},\n  \"stride\": {},\n  \"network\": {}\n  }}\n}}\n",
            profile_path_json(&prof_scalar, &h_scalar.snapshot()),
            profile_path_json(&prof_frozen, &h_frozen.snapshot()),
            profile_path_json(&prof_stride, &h_stride.snapshot()),
            profile_path_json(&prof_net, &h_net.snapshot()),
        );
        fs::write(&path, json).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// A flattened JSON scalar, as produced by [`flatten_json`].
#[derive(Debug, Clone, PartialEq)]
enum JsonVal {
    Num(f64),
    Bool(bool),
    Str(String),
    Null,
}

/// Flattens a JSON document into `path.to.key` → scalar pairs (array
/// elements keyed by index). A minimal recursive-descent parser — the
/// BENCH_*.json exports are machine-written by this binary, so the
/// grammar is plain JSON with no surprises, and pulling in a parser
/// dependency for that would be absurd.
fn flatten_json(text: &str) -> Result<BTreeMap<String, JsonVal>, String> {
    struct P<'a> {
        s: &'a [u8],
        i: usize,
    }
    impl P<'_> {
        fn ws(&mut self) {
            while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }
        fn peek(&mut self) -> Result<u8, String> {
            self.ws();
            self.s.get(self.i).copied().ok_or_else(|| "unexpected end of input".to_owned())
        }
        fn eat(&mut self, c: u8) -> Result<(), String> {
            if self.peek()? == c {
                self.i += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at byte {}", c as char, self.i))
            }
        }
        fn string(&mut self) -> Result<String, String> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                let c = *self.s.get(self.i).ok_or("unterminated string")?;
                self.i += 1;
                match c {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let e = *self.s.get(self.i).ok_or("unterminated escape")?;
                        self.i += 1;
                        match e {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'u' => {
                                let hex = self
                                    .s
                                    .get(self.i..self.i + 4)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                    16,
                                )
                                .map_err(|_| "bad \\u escape")?;
                                self.i += 4;
                                out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            }
                            other => return Err(format!("bad escape \\{}", other as char)),
                        }
                    }
                    other => out.push(other as char),
                }
            }
        }
        fn value(
            &mut self,
            path: &str,
            out: &mut BTreeMap<String, JsonVal>,
        ) -> Result<(), String> {
            match self.peek()? {
                b'{' => {
                    self.eat(b'{')?;
                    if self.peek()? == b'}' {
                        return self.eat(b'}');
                    }
                    loop {
                        let key = self.string()?;
                        self.eat(b':')?;
                        let sub = if path.is_empty() { key } else { format!("{path}.{key}") };
                        self.value(&sub, out)?;
                        match self.peek()? {
                            b',' => self.eat(b',')?,
                            b'}' => return self.eat(b'}'),
                            c => return Err(format!("expected , or }} got {:?}", c as char)),
                        }
                    }
                }
                b'[' => {
                    self.eat(b'[')?;
                    if self.peek()? == b']' {
                        return self.eat(b']');
                    }
                    let mut idx = 0usize;
                    loop {
                        self.value(&format!("{path}.{idx}"), out)?;
                        idx += 1;
                        match self.peek()? {
                            b',' => self.eat(b',')?,
                            b']' => return self.eat(b']'),
                            c => return Err(format!("expected , or ] got {:?}", c as char)),
                        }
                    }
                }
                b'"' => {
                    let s = self.string()?;
                    out.insert(path.to_owned(), JsonVal::Str(s));
                    Ok(())
                }
                b't' | b'f' | b'n' => {
                    for (lit, val) in [
                        ("true", Some(JsonVal::Bool(true))),
                        ("false", Some(JsonVal::Bool(false))),
                        ("null", Some(JsonVal::Null)),
                    ] {
                        if self.s[self.i..].starts_with(lit.as_bytes()) {
                            self.i += lit.len();
                            out.insert(path.to_owned(), val.expect("literal value"));
                            return Ok(());
                        }
                    }
                    Err(format!("bad literal at byte {}", self.i))
                }
                _ => {
                    let start = self.i;
                    while self
                        .s
                        .get(self.i)
                        .is_some_and(|c| c.is_ascii_digit() || b"+-.eE".contains(c))
                    {
                        self.i += 1;
                    }
                    let text = std::str::from_utf8(&self.s[start..self.i])
                        .expect("ascii number bytes");
                    let n: f64 =
                        text.parse().map_err(|_| format!("bad number {text:?} at {start}"))?;
                    out.insert(path.to_owned(), JsonVal::Num(n));
                    Ok(())
                }
            }
        }
    }
    let mut p = P { s: text.as_bytes(), i: 0 };
    let mut out = BTreeMap::new();
    p.value("", &mut out)?;
    p.ws();
    if p.i != text.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(out)
}

/// Keys whose values are timing-derived or run-variable rather than
/// seed-deterministic: measured rates/latencies, correlations and
/// scheduler-dependent counts. They get `--time-tolerance` instead of
/// the strict `--tolerance`.
fn is_noisy_key(key: &str) -> bool {
    const NOISY: &[&str] = &[
        "pps", "_ms", "_us", "nanos", "ns_p", "ns_per", "speedup", "correlation", "freeze",
        "rebuild", "stale", "lookups_total", "epochs", "swaps", "retired", "reclaimed",
    ];
    NOISY.iter().any(|p| key.contains(p))
}

/// Compares two `BENCH_*.json` exports key by key: every baseline key
/// must exist in the fresh run; booleans and strings must match
/// exactly; numbers must agree within a relative tolerance —
/// seed-deterministic keys (packet counts, predicted ticks, bytes)
/// under `--tolerance`, timing-derived/run-variable keys (pps,
/// latencies, correlations) under the wider `--time-tolerance`. `null`
/// on either side is a wildcard (an undefined statistic such as a
/// constant-series correlation). `--min KEY=FLOOR` / `--max KEY=CEIL`
/// (both repeatable) additionally require the fresh run's `KEY` to be
/// a number `>= FLOOR` / `<= CEIL` — absolute quality bounds on top of
/// the relative drift check (a ceiling is how the compressed backend's
/// bytes-per-prefix budget is enforced). The perf-regression gate in
/// `scripts/verify.sh` is built on this.
fn bench_diff(args: &[String]) -> Result<(), String> {
    let mut tolerance = 10.0f64;
    let mut time_tolerance = 100.0f64;
    let mut floors: Vec<(String, f64)> = Vec::new();
    let mut ceilings: Vec<(String, f64)> = Vec::new();
    let mut paths: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                tolerance = it
                    .next()
                    .ok_or("--tolerance needs a percentage")?
                    .parse()
                    .map_err(|_| "bad tolerance")?;
            }
            "--time-tolerance" => {
                time_tolerance = it
                    .next()
                    .ok_or("--time-tolerance needs a percentage")?
                    .parse()
                    .map_err(|_| "bad time tolerance")?;
            }
            "--min" => {
                let spec = it.next().ok_or("--min needs KEY=FLOOR")?;
                let (key, floor) = spec.split_once('=').ok_or("--min needs KEY=FLOOR")?;
                let floor: f64 =
                    floor.parse().map_err(|_| format!("bad --min floor in {spec:?}"))?;
                floors.push((key.to_owned(), floor));
            }
            "--max" => {
                let spec = it.next().ok_or("--max needs KEY=CEIL")?;
                let (key, ceil) = spec.split_once('=').ok_or("--max needs KEY=CEIL")?;
                let ceil: f64 =
                    ceil.parse().map_err(|_| format!("bad --max ceiling in {spec:?}"))?;
                ceilings.push((key.to_owned(), ceil));
            }
            _ => paths.push(a),
        }
    }
    let [baseline_path, fresh_path] = paths[..] else {
        return Err("bench-diff needs exactly two files: <baseline.json> <fresh.json>".to_owned());
    };
    let read = |p: &str| -> Result<BTreeMap<String, JsonVal>, String> {
        flatten_json(&fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?)
            .map_err(|e| format!("{p}: {e}"))
    };
    let baseline = read(baseline_path)?;
    let fresh = read(fresh_path)?;

    let mut compared = 0usize;
    let mut worst: Option<(f64, String)> = None;
    let mut failures: Vec<String> = Vec::new();
    for (key, b) in &baseline {
        let Some(f) = fresh.get(key) else {
            failures.push(format!("{key}: present in baseline, missing in fresh run"));
            continue;
        };
        match (b, f) {
            (JsonVal::Null, _) | (_, JsonVal::Null) => {}
            (JsonVal::Bool(x), JsonVal::Bool(y)) => {
                compared += 1;
                if x != y {
                    failures.push(format!("{key}: {x} -> {y}"));
                }
            }
            (JsonVal::Str(x), JsonVal::Str(y)) => {
                compared += 1;
                if x != y {
                    failures.push(format!("{key}: {x:?} -> {y:?}"));
                }
            }
            (JsonVal::Num(x), JsonVal::Num(y)) => {
                compared += 1;
                let tol = if is_noisy_key(key) { time_tolerance } else { tolerance };
                let drift = (x - y).abs() / x.abs().max(y.abs()).max(1e-9) * 100.0;
                if worst.as_ref().is_none_or(|(w, _)| drift > *w) {
                    worst = Some((drift, key.clone()));
                }
                if drift > tol {
                    failures.push(format!("{key}: {x} -> {y} ({drift:.1}% > {tol}%)"));
                }
            }
            _ => failures.push(format!("{key}: type changed")),
        }
    }
    for (key, floor) in &floors {
        match fresh.get(key) {
            Some(JsonVal::Num(v)) if v >= floor => {
                println!("  floor ok: {key} = {v} (>= {floor})");
            }
            Some(JsonVal::Num(v)) => {
                failures.push(format!("{key}: {v} below the --min floor {floor}"));
            }
            Some(_) => failures.push(format!("{key}: --min floor needs a numeric value")),
            None => failures.push(format!("{key}: --min floor set but key missing in fresh run")),
        }
    }
    for (key, ceil) in &ceilings {
        match fresh.get(key) {
            Some(JsonVal::Num(v)) if v <= ceil => {
                println!("  ceiling ok: {key} = {v} (<= {ceil})");
            }
            Some(JsonVal::Num(v)) => {
                failures.push(format!("{key}: {v} above the --max ceiling {ceil}"));
            }
            Some(_) => failures.push(format!("{key}: --max ceiling needs a numeric value")),
            None => failures.push(format!("{key}: --max ceiling set but key missing in fresh run")),
        }
    }
    let extra = fresh.keys().filter(|k| !baseline.contains_key(k.as_str())).count();
    println!(
        "bench-diff: {compared} keys compared ({} baseline, {extra} new in fresh), \
         tolerance {tolerance}% / {time_tolerance}% (timing), {} floor(s), {} ceiling(s)",
        baseline.len(),
        floors.len(),
        ceilings.len()
    );
    if let Some((drift, key)) = &worst {
        println!("  worst numeric drift: {key} ({drift:.1}%)");
    }
    if !failures.is_empty() {
        return Err(format!(
            "bench-diff failed: {} key(s) out of tolerance:\n  {}",
            failures.len(),
            failures.join("\n  ")
        ));
    }
    println!("  all keys within tolerance");
    Ok(())
}

/// Times `f` `reps` times and keeps the best run — the standard
/// treatment against scheduler noise on a shared (often single-CPU)
/// box. Only used for the stateless read-only pipelines, where a
/// repeat is the identical computation.
fn best_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best.max(1e-9)
}

/// Benchmarks the four lookup pipelines — mutable scalar engine,
/// frozen batch API, stride-compiled prefetched batch, and the
/// shared-nothing multi-core network runtime — and optionally
/// (`--check`) proves they return identical results before reporting
/// any numbers. `--runtime` adds the engine-level serving leg
/// ([`clue_netsim::serve_lookups`] over an epoch cell). `--json PATH`
/// exports the measurements for the `BENCH_*.json` trajectory.
fn throughput(args: &[String]) -> Result<(), String> {
    let mut packets = 20_000usize;
    let mut seed = 1u64;
    let mut threads = clue_netsim::available_workers();
    let mut table = 40_000usize;
    let mut stride_bits = clue_core::DEFAULT_INITIAL_BITS;
    let mut prefetch = clue_core::DEFAULT_INTERLEAVE;
    let mut json_path: Option<String> = None;
    let mut serve: Option<String> = None;
    let mut check = false;
    let mut runtime_leg = false;
    let mut backend: Option<clue_core::BackendKind> = None;
    let mut positional = 0;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--runtime" => runtime_leg = true,
            "--backend" => {
                backend = Some(it.next().ok_or("--backend needs a name")?.parse()?);
            }
            "--threads" => threads = parse_threads(&mut it)?,
            "--table" => {
                table = it
                    .next()
                    .ok_or("--table needs a prefix count")?
                    .parse()
                    .map_err(|_| "bad table size")?;
                if table == 0 {
                    return Err("--table must be at least 1".to_owned());
                }
            }
            "--stride" => {
                stride_bits = it
                    .next()
                    .ok_or("--stride needs a bit count")?
                    .parse()
                    .map_err(|_| "bad stride bit count")?;
            }
            "--prefetch" => {
                prefetch = it
                    .next()
                    .ok_or("--prefetch needs a group size")?
                    .parse()
                    .map_err(|_| "bad prefetch group")?;
            }
            "--json" => json_path = Some(it.next().ok_or("--json needs a path")?.clone()),
            "--serve" => serve = Some(it.next().ok_or("--serve needs an address")?.clone()),
            "--check" => check = true,
            other => {
                match positional {
                    0 => packets = other.parse().map_err(|_| "bad packet count")?,
                    1 => seed = other.parse().map_err(|_| "bad seed")?,
                    _ => return Err(format!("unexpected argument {other:?}")),
                }
                positional += 1;
            }
        }
    }
    if packets == 0 {
        return Err("packet count must be at least 1".to_owned());
    }
    if backend.is_some() && runtime_leg {
        return Err("--backend benchmarks one engine; it has no --runtime leg".to_owned());
    }

    // Stage 1 — single receiver, paper-style traffic with honest clues:
    // the scalar engine vs its frozen batch compilation vs the
    // stride-compiled prefetched batch vs the entropy-compressed
    // arena. The default table is paper-scale (the Mae-East snapshot
    // the paper measures is ~40k prefixes) — at toy sizes every
    // structure is cache-resident and the layouts can't be told apart.
    // From 200k prefixes up the 1999 histogram is no longer a
    // plausible table shape (and its short lengths saturate), so big
    // tables switch to the modern default-free-zone generator.
    const MODERN_TABLE_FLOOR: usize = 200_000;
    let sender = if table >= MODERN_TABLE_FLOOR {
        clue_tablegen::synthesize_ipv4_modern(table, seed)
    } else {
        synthesize_ipv4(table, seed)
    };
    let receiver = derive_neighbor(&sender, &NeighborConfig::same_isp(seed.wrapping_add(1)));
    let mut scalar = ClueEngine::precomputed(
        &sender,
        &receiver,
        EngineConfig::new(Family::Regular, Method::Advance),
    );
    let frozen = scalar
        .freeze()
        .map_err(|e| format!("cannot freeze the engine ({} blocks it): {e}", e.feature()))?;
    let stride_cfg = clue_core::StrideConfig::new(stride_bits, clue_core::DEFAULT_INNER_BITS);
    // In the single-backend matrix mode only the requested backend is
    // compiled (plus frozen, which every compiled layout derives
    // from); the full run compiles all three.
    let need_stride = backend.is_none_or(|k| k == clue_core::BackendKind::Stride);
    let need_compressed = backend.is_none_or(|k| k == clue_core::BackendKind::Compressed);
    let mut stride = need_stride
        .then(|| frozen.compile_stride(stride_cfg).map_err(|e| format!("--stride: {e}")))
        .transpose()?;
    let mut compressed =
        need_compressed.then(|| frozen.compile_compressed(clue_core::CompressedConfig));
    // With a live scrape endpoint the scalar engine and the compiled
    // batches are instrumented — the counters cost a few sharded
    // fetch_adds per packet, paid only when someone asked to watch.
    let registry = Arc::new(Registry::new());
    let _server = match &serve {
        Some(addr) => {
            scalar.instrument(&registry);
            if let Some(stride) = &mut stride {
                stride.attach_stride_telemetry(clue_telemetry::StrideTelemetry::registered(
                    &registry,
                    "clue_stride",
                ));
            }
            if let Some(compressed) = &mut compressed {
                compressed.attach_compressed_telemetry(
                    clue_telemetry::CompressedTelemetry::registered(&registry, "clue_compressed"),
                );
            }
            Some(start_scrape(addr, &registry)?)
        }
        None => None,
    };
    let dests = generate(
        &sender,
        &receiver,
        &TrafficConfig { count: packets, ..TrafficConfig::paper(seed) },
    );
    let t1: BinaryTrie<Ip4, ()> = sender.iter().map(|p| (*p, ())).collect();
    let clues: Vec<Option<Prefix<Ip4>>> = dests
        .iter()
        .map(|&d| t1.lookup(d).map(|r| t1.prefix(r)).filter(|c| !c.is_empty()))
        .collect();

    // The scalar engine learns through `&mut self`, so it is timed on
    // its single authoritative pass; the frozen/stride pipelines are
    // stateless and take a best-of-3 to shed scheduler noise.
    let t0 = std::time::Instant::now();
    let mut scalar_results = Vec::with_capacity(dests.len());
    for (&dest, &clue) in dests.iter().zip(&clues) {
        let mut cost = Cost::new();
        scalar_results.push((scalar.lookup(dest, clue, None, &mut cost), cost));
    }
    let scalar_pps = packets as f64 / t0.elapsed().as_secs_f64().max(1e-9);

    // Single-backend matrix mode: one compiled backend timed against
    // the scalar reference, CRAM layout analysis, no network legs (the
    // 1M–10M tables this mode exists for would dwarf the network-stage
    // setup many times over).
    if let Some(kind) = backend {
        let receiver_len = receiver.len();
        let mut out = vec![clue_core::Decision::default(); dests.len()];
        let (pps, cram) = match kind {
            clue_core::BackendKind::Frozen => {
                let pps = packets as f64
                    / best_secs(3, || {
                        let _ = frozen.lookup_batch(&dests, &clues, &mut out);
                    });
                (pps, frozen.cram())
            }
            clue_core::BackendKind::Stride => {
                let stride = stride.as_ref().expect("compiled for this mode");
                let pps = packets as f64
                    / best_secs(3, || {
                        let _ =
                            stride.lookup_batch_interleaved(&dests, &clues, &mut out, prefetch);
                    });
                (pps, stride.cram())
            }
            clue_core::BackendKind::Compressed => {
                let compressed = compressed.as_ref().expect("compiled for this mode");
                let pps = packets as f64
                    / best_secs(3, || {
                        let _ = compressed
                            .lookup_batch_interleaved(&dests, &clues, &mut out, prefetch);
                    });
                (pps, compressed.cram())
            }
        };
        let mut equivalent = true;
        if check {
            for (d, &(bmp, cost)) in out.iter().zip(&scalar_results) {
                if d.bmp != bmp || d.cost != cost {
                    equivalent = false;
                }
            }
            if !equivalent {
                return Err(format!(
                    "equivalence check failed: the {} backend disagrees with the scalar engine",
                    kind.name()
                ));
            }
        }
        let name = kind.name();
        let speedup = pps / scalar_pps.max(1e-9);
        println!("engine workload: {packets} packets (sender {table} prefixes, seed {seed})");
        println!("  scalar engine:  {scalar_pps:>12.0} pkts/s");
        println!(
            "  {name:<15} {pps:>12.0} pkts/s  ({speedup:.2}x scalar; prefetch group {prefetch})"
        );
        println!("memory layout (CRAM cache model, receiver {receiver_len} prefixes):");
        print_cram(name, receiver_len, &cram);
        if check {
            println!("equivalence: OK ({name} == scalar)");
        }
        if let Some(path) = json_path {
            let mut json = format!(
                "{{\n  \"packets\": {packets},\n  \"seed\": {seed},\n  \"table\": {table},\n  \
                 \"backend\": \"{name}\",\n  \"prefetch_group\": {prefetch},\n  \
                 \"scalar_pps\": {scalar_pps:.1},\n  \"{name}_pps\": {pps:.1},\n  \
                 \"{name}_speedup_vs_scalar\": {speedup:.3}"
            );
            cram_json(&mut json, name, receiver_len, &cram);
            let _ = write!(json, ",\n  \"checked\": {check},\n  \"equivalent\": {equivalent}\n}}\n");
            fs::write(&path, json).map_err(|e| format!("{path}: {e}"))?;
            println!("wrote {path}");
        }
        return Ok(());
    }
    let stride = stride.as_ref().expect("compiled in full-matrix mode");
    let compressed = compressed.as_ref().expect("compiled in full-matrix mode");

    let mut out = vec![clue_core::Decision::default(); dests.len()];
    let batch_pps = packets as f64
        / best_secs(3, || {
            let _ = frozen.lookup_batch(&dests, &clues, &mut out);
        });

    let mut stride_out = vec![clue_core::Decision::default(); dests.len()];
    let stride_pps = packets as f64
        / best_secs(3, || {
            let _ = stride.lookup_batch_interleaved(&dests, &clues, &mut stride_out, prefetch);
        });

    let mut compressed_out = vec![clue_core::Decision::default(); dests.len()];
    let compressed_pps = packets as f64
        / best_secs(3, || {
            let _ = compressed.lookup_batch_interleaved(
                &dests,
                &clues,
                &mut compressed_out,
                prefetch,
            );
        });

    let mut equivalent = true;
    if check {
        for (((d, s), c), &(bmp, cost)) in
            out.iter().zip(&stride_out).zip(&compressed_out).zip(&scalar_results)
        {
            if d.bmp != bmp || d.cost != cost || s != d || c != d {
                equivalent = false;
            }
        }
    }

    // Stage 2 — the network workload: sequential per-packet reference
    // vs the shared-nothing multi-core runtime over `threads` worker
    // cores. The stride compile is one-off setup and happens outside
    // the timed region; the per-run replica priming is hoisted out of
    // the runtime's own clock too and reported as replica_clone_ms.
    let (topo, edges) = clue_netsim::Topology::backbone(4, 2);
    let mut net_cfg = clue_netsim::NetworkConfig::new(
        edges.clone(),
        EngineConfig::new(Family::Regular, Method::Advance),
    );
    net_cfg.seed = seed;
    let mut net: clue_netsim::Network<Ip4> = clue_netsim::Network::build(topo, net_cfg);
    // Long enough that the runtime's fixed costs (thread spawn, lane
    // priming, the final drain barrier) amortize to noise; both legs
    // route the identical workload.
    let net_packets = packets.min(50_000);

    let t0 = std::time::Instant::now();
    let seq = clue_netsim::run_workload_per_packet(&mut net, &edges, net_packets, seed);
    let seq_pps = net_packets as f64 / t0.elapsed().as_secs_f64().max(1e-9);

    let t0 = std::time::Instant::now();
    let stride_net = clue_netsim::StrideNetwork::freeze(&net, stride_cfg)
        .map_err(|e| format!("cannot stride-compile the network: {e}"))?;
    let freeze_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Best-of-3 on the runtime's own steady-state clock (replica
    // priming excluded); the report picked is the fastest run's.
    // Batch so each worker sees a handful of jobs: long jobs keep the
    // lane-interleaved walk out of the dispatcher, a handful (rather
    // than one) of them per core lets the feed stay primed.
    let runtime_cfg = clue_netsim::RuntimeConfig {
        workers: threads,
        batch: (net_packets / threads.max(1) / 4).max(512),
        prefetch,
        ..clue_netsim::RuntimeConfig::default()
    };
    let mut best: Option<(clue_netsim::RunStats, clue_netsim::RuntimeReport)> = None;
    for _ in 0..3 {
        let (stats, report) =
            stride_net.run_workload_timed(&edges, net_packets, seed, &runtime_cfg, None);
        if best.as_ref().is_none_or(|(_, b)| report.pps() > b.pps()) {
            best = Some((stats, report));
        }
    }
    let (par, report) = best.expect("ran at least once");
    let par_pps = report.pps();
    let per_core_pps = report.per_core_pps();
    let replica_clone_ms = report.replica_clone_ns as f64 / 1e6;

    if check && par != seq {
        equivalent = false;
    }

    // Optional engine-level serving leg: the stage-1 stride engine
    // published into an epoch cell and served by per-core replicas.
    let mut serve_report = None;
    if runtime_leg {
        let cell = clue_core::EpochCell::new(stride.replicate());
        let mut best: Option<(Vec<clue_core::Decision<Ip4>>, clue_netsim::ServeReport)> = None;
        for _ in 0..3 {
            let mut out = Vec::new();
            let r = clue_netsim::serve_lookups(&cell, &dests, &clues, &mut out, &runtime_cfg, None);
            if best.as_ref().is_none_or(|(_, b)| r.pps() > b.pps()) {
                best = Some((out, r));
            }
        }
        let (decisions, r) = best.expect("ran at least once");
        if check && decisions != stride_out {
            equivalent = false;
        }
        serve_report = Some(r);
    }
    if check && !equivalent {
        return Err("equivalence check failed: pipelines disagree".to_owned());
    }

    let batch_speedup = batch_pps / scalar_pps.max(1e-9);
    let stride_speedup = stride_pps / batch_pps.max(1e-9);
    let compressed_speedup = compressed_pps / batch_pps.max(1e-9);
    let par_speedup = par_pps / seq_pps.max(1e-9);
    let stride_beats_batch = stride_pps > batch_pps;
    let parallel_scales = par_speedup > 1.0;
    let receiver_len = receiver.len();
    let cram_frozen = frozen.cram();
    let cram_stride = stride.cram();
    let cram_compressed = compressed.cram();
    println!("engine workload: {packets} packets (sender {table} prefixes, seed {seed})");
    println!("  scalar engine:  {scalar_pps:>12.0} pkts/s");
    println!("  frozen batch:   {batch_pps:>12.0} pkts/s  ({batch_speedup:.2}x scalar)");
    println!(
        "  stride batch:   {stride_pps:>12.0} pkts/s  ({stride_speedup:.2}x batch; \
         initial stride {stride_bits}, prefetch group {prefetch})"
    );
    println!(
        "  compressed:     {compressed_pps:>12.0} pkts/s  ({compressed_speedup:.2}x batch; \
         prefetch group {prefetch})"
    );
    println!("memory layout (CRAM cache model, receiver {receiver_len} prefixes):");
    print_cram("frozen", receiver_len, &cram_frozen);
    print_cram("stride", receiver_len, &cram_stride);
    print_cram("compressed", receiver_len, &cram_compressed);
    println!("network workload: {net_packets} packets over a 4x2 backbone");
    println!("  per-packet seq: {seq_pps:>12.0} pkts/s");
    println!("  freeze (setup): {freeze_ms:>12.2} ms (outside the timed runs)");
    println!(
        "  runtime x{threads}:     {par_pps:>12.0} pkts/s  ({par_speedup:.2}x; \
         replica clones {replica_clone_ms:.2} ms, outside the timed region)"
    );
    if let Some(r) = &serve_report {
        println!(
            "engine serving x{threads}: {:>10.0} pkts/s  (replica clones {:.2} ms)",
            r.pps(),
            r.replica_clone_ns as f64 / 1e6
        );
    }
    if check {
        println!(
            "equivalence: OK (batch == stride == compressed == scalar, runtime == sequential)"
        );
    }

    if let Some(path) = json_path {
        let fmt_pps = |values: &[f64]| {
            let cells: Vec<String> = values.iter().map(|v| format!("{v:.1}")).collect();
            format!("[{}]", cells.join(", "))
        };
        let per_core = fmt_pps(&per_core_pps);
        let mut json = format!(
            "{{\n  \"packets\": {packets},\n  \"net_packets\": {net_packets},\n  \
             \"seed\": {seed},\n  \"threads\": {threads},\n  \"table\": {table},\n  \
             \"stride_bits\": {stride_bits},\n  \"prefetch_group\": {prefetch},\n  \
             \"scalar_pps\": {scalar_pps:.1},\n  \"batch_pps\": {batch_pps:.1},\n  \
             \"batch_speedup\": {batch_speedup:.3},\n  \
             \"stride_pps\": {stride_pps:.1},\n  \"stride_speedup\": {stride_speedup:.3},\n  \
             \"stride_beats_batch\": {stride_beats_batch},\n  \
             \"compressed_pps\": {compressed_pps:.1},\n  \
             \"compressed_speedup\": {compressed_speedup:.3},\n  \
             \"seq_pps\": {seq_pps:.1},\n  \"freeze_ms\": {freeze_ms:.2},\n  \
             \"replica_clone_ms\": {replica_clone_ms:.3},\n  \
             \"per_core_pps\": {per_core},\n  \
             \"parallel_pps\": {par_pps:.1},\n  \
             \"parallel_speedup\": {par_speedup:.3},\n  \
             \"parallel_scales\": {parallel_scales},\n  \
             \"checked\": {check},\n  \"equivalent\": {equivalent}"
        );
        cram_json(&mut json, "frozen", receiver_len, &cram_frozen);
        cram_json(&mut json, "stride", receiver_len, &cram_stride);
        cram_json(&mut json, "compressed", receiver_len, &cram_compressed);
        if let Some(r) = &serve_report {
            let _ = write!(
                json,
                ",\n  \"runtime_pps\": {:.1},\n  \"runtime_per_core_pps\": {},\n  \
                 \"runtime_replica_clone_ms\": {:.3}",
                r.pps(),
                fmt_pps(&r.per_core_pps()),
                r.replica_clone_ns as f64 / 1e6
            );
        }
        json.push_str("\n}\n");
        fs::write(&path, json).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Runs the live-churn workload: a builder thread applies a BGP-style
/// update stream to the mutable engine and republishes a frozen
/// snapshot per batch, while `--readers` threads serve lookups from
/// epoch-pinned snapshots. `--check` proves the final snapshot is
/// bit-identical to freezing the end-state table from scratch;
/// `--json PATH` exports the run for the `BENCH_*.json` trajectory.
fn churn(args: &[String]) -> Result<(), String> {
    let mut updates = 2_000usize;
    let mut seed = 1u64;
    let mut readers = 4usize;
    let mut json_path: Option<String> = None;
    let mut serve: Option<String> = None;
    let mut check = false;
    let mut positional = 0;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--readers" => {
                readers = it
                    .next()
                    .ok_or("--readers needs a value")?
                    .parse()
                    .map_err(|_| "bad reader count")?;
                if readers == 0 {
                    return Err("--readers must be at least 1".to_owned());
                }
            }
            "--json" => json_path = Some(it.next().ok_or("--json needs a path")?.clone()),
            "--serve" => serve = Some(it.next().ok_or("--serve needs an address")?.clone()),
            "--check" => check = true,
            other => {
                match positional {
                    0 => updates = other.parse().map_err(|_| "bad update count")?,
                    1 => seed = other.parse().map_err(|_| "bad seed")?,
                    _ => return Err(format!("unexpected argument {other:?}")),
                }
                positional += 1;
            }
        }
    }
    if updates == 0 {
        return Err("update count must be at least 1".to_owned());
    }

    let sender = synthesize_ipv4(3000, seed);
    let receiver = derive_neighbor(&sender, &NeighborConfig::same_isp(seed.wrapping_add(1)));
    let stream = clue_tablegen::generate_churn(
        &receiver,
        &clue_tablegen::ChurnConfig::bgp(updates, seed.wrapping_add(2)),
    );

    let registry = Arc::new(Registry::new());
    let telemetry = clue_telemetry::ChurnTelemetry::registered(&registry, "clue_churn");
    let _server = match &serve {
        Some(addr) => Some(start_scrape(addr, &registry)?),
        None => None,
    };
    let mut cfg = clue_netsim::ChurnDriverConfig::new(readers, seed);
    cfg.check = check;
    let report = clue_netsim::run_churn(&sender, &receiver, &stream, &cfg, Some(&telemetry), None)
        .map_err(|e| e.to_string())?;
    if check && report.final_identical != Some(true) {
        return Err("churn check failed: final snapshot differs from a from-scratch rebuild"
            .to_owned());
    }

    println!(
        "churn workload: {updates} updates in {} batches (receiver {} prefixes, seed {seed})",
        report.epochs,
        receiver.len()
    );
    println!(
        "  rebuilds:   {} epochs, {:.0} us mean, {} us max",
        report.epochs,
        report.mean_rebuild_us(),
        report.max_rebuild_us()
    );
    println!(
        "  lookups:    {} served by {readers} readers ({} stale, {:.2}%, max lag {} epochs)",
        report.lookups_total,
        report.stale_lookups,
        report.stale_fraction() * 100.0,
        report.max_staleness
    );
    println!(
        "  snapshots:  {} swaps, {} reclaimed, {} left retired",
        telemetry.swaps_total.get(),
        telemetry.reclaimed_total.get(),
        report.retired_after
    );
    if check {
        println!("check: final snapshot bit-identical to from-scratch rebuild");
    }

    if let Some(path) = json_path {
        let identical = report.final_identical == Some(true);
        let json = format!(
            "{{\n  \"updates\": {updates},\n  \"seed\": {seed},\n  \"readers\": {readers},\n  \
             \"epochs\": {},\n  \"swaps\": {},\n  \
             \"mean_rebuild_us\": {:.1},\n  \"max_rebuild_us\": {},\n  \
             \"lookups_total\": {},\n  \"stale_lookups\": {},\n  \
             \"stale_fraction\": {:.4},\n  \"max_staleness\": {},\n  \
             \"retired_after\": {},\n  \
             \"checked\": {check},\n  \"identical\": {identical}\n}}\n",
            report.epochs,
            telemetry.swaps_total.get(),
            report.mean_rebuild_us(),
            report.max_rebuild_us(),
            report.lookups_total,
            report.stale_lookups,
            report.stale_fraction(),
            report.max_staleness,
            report.retired_after,
        );
        fs::write(&path, json).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Runs the fault-injection harness: seeded reproducible faults
/// (corrupted/truncated/out-of-range/stale/adversarial clues, clueless
/// hops, drops, reorders) through the receiver pipeline, every
/// forwarding decision differentially checked against the clue-less
/// baseline, plus a churn leg that must survive an injected reader
/// panic and a watchdog-tripped rebuild. `--check` fails unless the
/// run is sound; `--json PATH` exports per-class counts and
/// degraded-cost percentiles for the `BENCH_*.json` trajectory.
fn chaos(args: &[String]) -> Result<(), String> {
    let mut packets = 1_000_000usize;
    let mut seed = 1u64;
    let mut spec = "all".to_owned();
    let mut json_path: Option<String> = None;
    let mut serve: Option<String> = None;
    let mut check = false;
    let mut positional = 0;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--faults" => spec = it.next().ok_or("--faults needs a spec")?.clone(),
            "--json" => json_path = Some(it.next().ok_or("--json needs a path")?.clone()),
            "--serve" => serve = Some(it.next().ok_or("--serve needs an address")?.clone()),
            "--check" => check = true,
            other => {
                match positional {
                    0 => packets = other.parse().map_err(|_| "bad packet count")?,
                    1 => seed = other.parse().map_err(|_| "bad seed")?,
                    _ => return Err(format!("unexpected argument {other:?}")),
                }
                positional += 1;
            }
        }
    }
    if packets == 0 {
        return Err("packet count must be at least 1".to_owned());
    }

    let plan = clue_netsim::FaultPlan::parse(&spec, seed)?;
    let registry = Arc::new(Registry::new());
    let labels: Vec<&str> = plan.classes().iter().map(|c| c.label()).collect();
    let telemetry =
        clue_telemetry::DegradationTelemetry::registered(&registry, "clue_fault", &labels);
    let _server = match &serve {
        Some(addr) => Some(start_scrape(addr, &registry)?),
        None => None,
    };
    let mut config = clue_netsim::ChaosConfig::new(packets, seed);
    config.plan = plan;
    let report = clue_netsim::run_chaos(&config, Some(&telemetry)).map_err(|e| e.to_string())?;

    println!(
        "chaos workload: {} packets, seed {seed}, faults \"{spec}\" \
         ({} delivered, {} dropped, {} reordered, {} parse errors)",
        report.packets, report.delivered, report.dropped, report.reordered, report.parse_errors
    );
    println!(
        "{:<18} {:>9} {:>9} {:>7} {:>9} {:>5} {:>5} {:>5} {:>5}",
        "fault class", "injected", "delivered", "parse", "degraded", "p50", "p90", "p99", "max"
    );
    for o in &report.by_class {
        println!(
            "{:<18} {:>9} {:>9} {:>7} {:>9} {:>5} {:>5} {:>5} {:>5}",
            o.class.label(),
            o.injected,
            o.delivered,
            o.parse_errors,
            o.degraded,
            o.overhead_p50,
            o.overhead_p90,
            o.overhead_p99,
            o.overhead_max,
        );
    }
    println!(
        "soundness: {} divergences over {} delivered packets; accounting parity: {}",
        report.divergences,
        report.delivered,
        if report.stats_parity { "OK" } else { "BROKEN" }
    );
    println!(
        "churn leg: {} (caught panics: {}, watchdog trips: {}, retries: {}, recoveries: {})",
        if report.churn_survived { "survived" } else { "DID NOT SURVIVE" },
        report.churn.reader_panics.len(),
        report.churn.watchdog_trips,
        report.churn.backoff_retries,
        report.churn.recovered_rebuilds + report.churn.recovery_publishes,
    );

    if let Some(path) = &json_path {
        let mut by_class = String::new();
        for (i, o) in report.by_class.iter().enumerate() {
            let sep = if i + 1 < report.by_class.len() { "," } else { "" };
            write!(
                by_class,
                "\n    {{\"class\": \"{}\", \"injected\": {}, \"delivered\": {}, \
                 \"parse_errors\": {}, \"degraded\": {}, \"overhead_p50\": {}, \
                 \"overhead_p90\": {}, \"overhead_p99\": {}, \"overhead_max\": {}, \
                 \"overhead_mean\": {:.3}}}{sep}",
                o.class.label(),
                o.injected,
                o.delivered,
                o.parse_errors,
                o.degraded,
                o.overhead_p50,
                o.overhead_p90,
                o.overhead_p99,
                o.overhead_max,
                o.overhead_mean,
            )
            .expect("write to string");
        }
        let sound = report.sound();
        let json = format!(
            "{{\n  \"packets\": {},\n  \"seed\": {seed},\n  \"faults\": \"{spec}\",\n  \
             \"delivered\": {},\n  \"dropped\": {},\n  \"reordered\": {},\n  \
             \"parse_errors\": {},\n  \"divergences\": {},\n  \"stats_parity\": {},\n  \
             \"reader_panics\": {},\n  \"watchdog_trips\": {},\n  \
             \"backoff_retries\": {},\n  \"recovered_rebuilds\": {},\n  \
             \"recovery_publishes\": {},\n  \"churn_survived\": {},\n  \
             \"checked\": {check},\n  \"sound\": {sound},\n  \"by_class\": [{by_class}\n  ]\n}}\n",
            report.packets,
            report.delivered,
            report.dropped,
            report.reordered,
            report.parse_errors,
            report.divergences,
            report.stats_parity,
            report.churn.reader_panics.len(),
            report.churn.watchdog_trips,
            report.churn.backoff_retries,
            report.churn.recovered_rebuilds,
            report.churn.recovery_publishes,
            report.churn_survived,
        );
        fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }

    if check && !report.sound() {
        return Err(format!(
            "chaos check failed: {} divergences, parity {}, churn survived {} \
             (first divergences: {:?})",
            report.divergences, report.stats_parity, report.churn_survived,
            report.divergence_samples,
        ));
    }
    Ok(())
}

/// Fleet-scale topology simulator with clue-coverage analytics: builds
/// an internet-like topology with every router a stride-compiled
/// engine bundle behind an epoch cell, routes ECMP flows with Zipf
/// destination locality over the shared-nothing runtime, and reports
/// per-link clue outcome rates and per-hop memory-reference savings
/// against a clue-less baseline. `--churn` adds the live leg: origin
/// re-advertisements republished fleet-wide while serving workers keep
/// routing. `--check` proves the sharded run bit-identical to the
/// sequential reference at 1/2/4/8 workers.
fn fleet(args: &[String]) -> Result<(), String> {
    let mut flows = 20_000usize;
    let mut seed = 1u64;
    let mut routers = 1_024usize;
    let mut topology = clue_netsim::TopologyKind::TransitStub;
    let mut origins: Option<usize> = None;
    let mut participation = 1.0f64;
    let mut threads = clue_netsim::available_workers();
    let mut churn_events = 0usize;
    let mut adversaries = 0usize;
    let mut attack = clue_netsim::AttackProfile::Lying;
    let mut json_path: Option<String> = None;
    let mut serve: Option<String> = None;
    let mut check = false;
    let mut positional = 0;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--routers" => {
                routers = it
                    .next()
                    .ok_or("--routers needs a count")?
                    .parse()
                    .map_err(|_| "bad router count")?;
                if routers < 2 {
                    return Err("--routers must be at least 2".to_owned());
                }
            }
            "--topology" => {
                topology = match it.next().ok_or("--topology needs a kind")?.as_str() {
                    "transit-stub" => clue_netsim::TopologyKind::TransitStub,
                    "preferential" => clue_netsim::TopologyKind::Preferential,
                    other => {
                        return Err(format!(
                            "unknown topology {other:?} (transit-stub | preferential)"
                        ))
                    }
                };
            }
            "--origins" => {
                let o: usize = it
                    .next()
                    .ok_or("--origins needs a count")?
                    .parse()
                    .map_err(|_| "bad origin count")?;
                if o == 0 {
                    return Err("--origins must be at least 1".to_owned());
                }
                origins = Some(o);
            }
            "--participation" => {
                participation = it
                    .next()
                    .ok_or("--participation needs a fraction")?
                    .parse()
                    .map_err(|_| "bad participation fraction")?;
                if !(0.0..=1.0).contains(&participation) {
                    return Err("--participation must be in 0..=1".to_owned());
                }
            }
            "--threads" => threads = parse_threads(&mut it)?,
            "--churn" => {
                churn_events = it
                    .next()
                    .ok_or("--churn needs an event count")?
                    .parse()
                    .map_err(|_| "bad churn event count")?;
                if churn_events == 0 {
                    return Err("--churn needs at least 1 event".to_owned());
                }
            }
            "--adversaries" => {
                adversaries = it
                    .next()
                    .ok_or("--adversaries needs a count")?
                    .parse()
                    .map_err(|_| "bad adversary count")?;
                if adversaries == 0 {
                    return Err("--adversaries needs at least 1 router".to_owned());
                }
            }
            "--attack" => {
                let label = it.next().ok_or("--attack needs a profile")?;
                attack = clue_netsim::AttackProfile::parse(label).ok_or_else(|| {
                    format!("unknown attack {label:?} (lying | flooding | oscillating)")
                })?;
            }
            "--json" => json_path = Some(it.next().ok_or("--json needs a path")?.clone()),
            "--serve" => serve = Some(it.next().ok_or("--serve needs an address")?.clone()),
            "--check" => check = true,
            other => {
                match positional {
                    0 => flows = other.parse().map_err(|_| "bad flow count")?,
                    1 => seed = other.parse().map_err(|_| "bad seed")?,
                    _ => return Err(format!("unexpected argument {other:?}")),
                }
                positional += 1;
            }
        }
    }
    if flows == 0 {
        return Err("flow count must be at least 1".to_owned());
    }

    let registry = Arc::new(Registry::new());
    let telemetry = clue_telemetry::FleetTelemetry::registered(&registry, "clue_fleet");
    let _server = match &serve {
        Some(addr) => Some(start_scrape(addr, &registry)?),
        None => None,
    };

    let mut config = clue_netsim::FleetConfig::new(routers, seed);
    config.topology = topology;
    config.participation = participation;
    if let Some(o) = origins {
        config.origins = o;
    }
    if adversaries > 0 && config.engine.method != Method::Simple {
        // The adversarial trust boundary: Method::Advance trusts the
        // clue epoch, so it is only sound for clues drawn from the
        // sender table it was precomputed against. An adversarial run
        // must use the method that is sound for ANY clue.
        config.engine.method = Method::Simple;
        println!("adversarial run: engine method forced to simple (sound for any clue)");
    }
    let topo_label = match topology {
        clue_netsim::TopologyKind::TransitStub => "transit-stub",
        clue_netsim::TopologyKind::Preferential => "preferential",
    };

    let t0 = std::time::Instant::now();
    let fleet = clue_netsim::Fleet::build(config).map_err(|e| format!("fleet build: {e:?}"))?;
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    telemetry.routers.set(fleet.router_count() as f64);
    telemetry.links.set(fleet.link_count() as f64);
    println!(
        "fleet: {} routers, {} links ({} directed), {} origins, {topo_label} topology, \
         built in {build_ms:.0} ms",
        fleet.router_count(),
        fleet.link_count(),
        fleet.directed_link_count(),
        fleet.origin_routers().len(),
    );

    let run = fleet.run_flows(flows, threads);
    let stats = &run.stats;
    let route_ms = run.elapsed_ns as f64 / 1e6;
    let flows_pps = flows as f64 / (run.elapsed_ns.max(1) as f64 / 1e9);

    if check {
        let reference = fleet.run_flows_sequential(flows);
        for workers in [1usize, 2, 4, 8] {
            let sharded = fleet.run_flows(flows, workers);
            if sharded.stats != reference {
                return Err(format!(
                    "fleet check failed: {workers}-worker run diverged from the \
                     sequential reference"
                ));
            }
        }
        if *stats != reference {
            return Err(format!(
                "fleet check failed: {threads}-worker run diverged from the \
                 sequential reference"
            ));
        }
        println!("determinism check: sequential == 1/2/4/8 workers (bit-identical)");
    }

    let clued = stats.link_hits() + stats.link_problematic() + stats.link_misses();
    println!(
        "flows: {} routed x{threads} in {route_ms:.0} ms ({flows_pps:.0} flows/s), \
         {} delivered, {} dropped, {} hops ({} clued)",
        stats.flows, stats.delivered, stats.dropped, stats.hops, stats.clue_hops,
    );
    if clued > 0 {
        println!(
            "clue outcomes: {} hits ({:.1}%), {} problematic ({:.1}%), {} misses ({:.1}%), \
             {} clueless link crossings",
            stats.link_hits(),
            stats.link_hits() as f64 * 100.0 / clued as f64,
            stats.link_problematic(),
            stats.link_problematic() as f64 * 100.0 / clued as f64,
            stats.link_misses(),
            stats.link_misses() as f64 * 100.0 / clued as f64,
            stats.link_clueless(),
        );
    }
    println!(
        "memory references: {} with clues vs {} baseline -> {:.1}% saved end to end",
        stats.clue_refs,
        stats.baseline_refs,
        stats.savings() * 100.0,
    );
    for (pos, h) in stats.per_hop.iter().take(8).enumerate() {
        println!(
            "  hop {pos}: {:>9} lookups, {:>6.2} refs/lookup vs {:>6.2} baseline \
             ({:>5.1}% saved)",
            h.hops,
            h.clue_refs as f64 / h.hops.max(1) as f64,
            h.base_refs as f64 / h.hops.max(1) as f64,
            h.savings() * 100.0,
        );
    }

    let churn_report = if churn_events > 0 {
        let mut churn_config = clue_netsim::FleetChurnConfig::new(seed ^ 0xC4A1);
        churn_config.events = churn_events;
        churn_config.workers = threads.min(4);
        let report = fleet.run_churn(&churn_config);
        println!(
            "churn: {} events, {} bundles republished ({} reclaimed) in {:.0} ms; \
             served {} flows live, max staleness {} epochs, {} stale-snapshot hops",
            report.events,
            report.republished,
            report.reclaimed,
            report.rebuild_ns as f64 / 1e6,
            report.stats.flows,
            report.stats.max_staleness,
            report.stats.lagged_hops,
        );
        Some(report)
    } else {
        None
    };

    let adversarial = if adversaries > 0 {
        let adversary_telemetry =
            clue_telemetry::AdversaryTelemetry::registered(&registry, "clue_adversary");
        let reputation_telemetry =
            clue_telemetry::ReputationTelemetry::registered(&registry, "clue_reputation");
        let degradation_telemetry = clue_telemetry::DegradationTelemetry::registered(
            &registry,
            "clue_fault",
            &["lying_neighbor", "adversarial_clue"],
        );
        let adv_config = clue_netsim::FleetAdversaryConfig::new(attack, adversaries);
        let t0 = std::time::Instant::now();
        let report = fleet.run_adversarial(
            &adv_config,
            Some(&adversary_telemetry),
            Some(&reputation_telemetry),
            Some(&degradation_telemetry),
        );
        let adversary_ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "adversary: {} {} routers for {}/{} rounds in {adversary_ms:.0} ms; \
             soundness bound held: {} (overhead max {}, {} divergences, {} violations)",
            report.adversaries.len(),
            report.attack.label(),
            adv_config.attack_rounds,
            adv_config.rounds,
            report.sound(),
            report.overhead_max(),
            report.divergences,
            report.bound_violations,
        );
        println!(
            "reputation: quarantine at round {}, re-admission by round {} \
             ({} quarantines, {} probations, {} readmissions)",
            report.quarantine_round.map_or_else(|| "-".to_owned(), |q| q.to_string()),
            report.readmit_round.map_or_else(|| "-".to_owned(), |r| r.to_string()),
            report.quarantines,
            report.probations,
            report.readmissions,
        );
        println!(
            "savings: final window {:.1}% vs honest fleet {:.1}%",
            report.final_savings() * 100.0,
            report.honest_final_savings() * 100.0,
        );

        // The partial-deployment sweep runs on a smaller fleet: five
        // participation steps, each a fresh build plus a full
        // adversarial run, is the expensive part of the leg.
        let mut sweep_base = clue_netsim::FleetConfig::new(routers.min(256), seed);
        sweep_base.topology = topology;
        let mut sweep_adv = adv_config;
        sweep_adv.rounds = 8;
        sweep_adv.attack_rounds = 3;
        sweep_adv.flows_per_round = 500;
        sweep_adv.window = 3;
        let steps = [0.0, 0.25, 0.5, 0.75, 1.0];
        let t0 = std::time::Instant::now();
        let sweep = clue_netsim::participation_sweep(&sweep_base, &sweep_adv, &steps)
            .map_err(|e| format!("sweep fleet build: {e:?}"))?;
        let sweep_ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "participation sweep ({} routers, {} adversaries, {sweep_ms:.0} ms):",
            sweep_base.routers, sweep_adv.adversaries,
        );
        for p in &sweep {
            println!(
                "  {:>3.0}% deployed: honest {:>5.1}% saved, attacked {:>5.1}%, \
                 final {:>5.1}%, worst overhead {}, quarantine round {}",
                p.participation * 100.0,
                p.honest_savings * 100.0,
                p.attacked_savings * 100.0,
                p.final_savings * 100.0,
                p.worst_overhead,
                p.quarantine_round.map_or_else(|| "-".to_owned(), |q| q.to_string()),
            );
        }

        if check {
            if !report.sound() {
                return Err(format!(
                    "adversary check failed: {} divergences, {} bound violations",
                    report.divergences, report.bound_violations,
                ));
            }
            let q = report
                .quarantine_round
                .ok_or("adversary check failed: quarantine never engaged")?;
            if q > 3 {
                return Err(format!(
                    "adversary check failed: quarantine engaged at round {q}, window is 3"
                ));
            }
            if report.readmit_round.is_none() {
                return Err(
                    "adversary check failed: quarantined links never re-admitted".to_owned()
                );
            }
            if !report.reconverged(0.05) {
                return Err(format!(
                    "adversary check failed: final savings {:.4} vs honest {:.4} \
                     differ by more than 5%",
                    report.final_savings(),
                    report.honest_final_savings(),
                ));
            }
            if let Some(bad) = sweep.iter().find(|p| !p.sound || p.worst_overhead > 1) {
                return Err(format!(
                    "adversary check failed: sweep point at participation {} broke the \
                     bound (sound {}, worst overhead {})",
                    bad.participation, bad.sound, bad.worst_overhead,
                ));
            }
            println!(
                "adversary check: bound held on every packet, quarantine within window, \
                 savings reconverged to honest fleet"
            );
        }
        Some((adv_config, report, sweep, adversary_ms, sweep_ms))
    } else {
        None
    };

    fleet.record(stats, churn_report.as_ref(), &telemetry);

    if let Some(path) = &json_path {
        let mut per_hop = String::new();
        for (pos, h) in stats.per_hop.iter().enumerate() {
            let sep = if pos + 1 < stats.per_hop.len() { "," } else { "" };
            write!(
                per_hop,
                "\n    {{\"hop\": {pos}, \"lookups\": {}, \"clue_refs\": {}, \
                 \"base_refs\": {}, \"savings\": {:.4}}}{sep}",
                h.hops, h.clue_refs, h.base_refs, h.savings(),
            )
            .expect("write to string");
        }
        let churn_json = match &churn_report {
            Some(c) => format!(
                ",\n  \"churn_events\": {},\n  \"churn_republished\": {},\n  \
                 \"churn_reclaimed\": {},\n  \"churn_rebuild_ms\": {:.1},\n  \
                 \"churn_max_staleness\": {},\n  \"churn_stale_hops\": {},\n  \
                 \"churn_served_lookups_total\": {}",
                c.events,
                c.republished,
                c.reclaimed,
                c.rebuild_ns as f64 / 1e6,
                c.stats.max_staleness,
                c.stats.lagged_hops,
                c.stats.flows,
            ),
            None => String::new(),
        };
        let adversary_json = match &adversarial {
            Some((cfg, report, sweep, adversary_ms, sweep_ms)) => {
                let mut sweep_rows = String::new();
                for (i, p) in sweep.iter().enumerate() {
                    let sep = if i + 1 < sweep.len() { "," } else { "" };
                    write!(
                        sweep_rows,
                        "\n    {{\"participation\": {}, \"honest_savings\": {:.4}, \
                         \"attacked_savings\": {:.4}, \"final_savings\": {:.4}, \
                         \"worst_overhead\": {}, \"quarantine_round\": {}, \
                         \"sound\": {}}}{sep}",
                        p.participation,
                        p.honest_savings,
                        p.attacked_savings,
                        p.final_savings,
                        p.worst_overhead,
                        p.quarantine_round.map_or_else(|| "null".to_owned(), |q| q.to_string()),
                        p.sound,
                    )
                    .expect("write to string");
                }
                format!(
                    ",\n  \"attack\": \"{}\",\n  \"adversaries\": {},\n  \
                     \"adversary_rounds\": {},\n  \"attack_rounds\": {},\n  \
                     \"sound\": {},\n  \"adversary_divergences\": {},\n  \
                     \"adversary_bound_violations\": {},\n  \
                     \"adversary_overhead_max\": {},\n  \"quarantine_round\": {},\n  \
                     \"readmit_round\": {},\n  \"quarantines\": {},\n  \
                     \"probations\": {},\n  \"readmissions\": {},\n  \
                     \"final_savings\": {:.4},\n  \"honest_final_savings\": {:.4},\n  \
                     \"adversary_ms\": {:.1},\n  \"sweep_ms\": {:.1},\n  \
                     \"sweep\": [{sweep_rows}\n  ]",
                    report.attack.label(),
                    report.adversaries.len(),
                    cfg.rounds,
                    cfg.attack_rounds,
                    report.sound(),
                    report.divergences,
                    report.bound_violations,
                    report.overhead_max(),
                    report.quarantine_round.map_or_else(|| "null".to_owned(), |q| q.to_string()),
                    report.readmit_round.map_or_else(|| "null".to_owned(), |r| r.to_string()),
                    report.quarantines,
                    report.probations,
                    report.readmissions,
                    report.final_savings(),
                    report.honest_final_savings(),
                    adversary_ms,
                    sweep_ms,
                )
            }
            None => String::new(),
        };
        let json = format!(
            "{{\n  \"routers\": {},\n  \"links\": {},\n  \"directed_links\": {},\n  \
             \"origins\": {},\n  \"topology\": \"{topo_label}\",\n  \"flows\": {},\n  \
             \"seed\": {seed},\n  \"participation\": {participation},\n  \
             \"delivered\": {},\n  \"dropped\": {},\n  \"hops\": {},\n  \
             \"clue_hops\": {},\n  \"link_hits\": {},\n  \"link_problematic\": {},\n  \
             \"link_misses\": {},\n  \"link_clueless\": {},\n  \"clue_refs\": {},\n  \
             \"baseline_refs\": {},\n  \"savings\": {:.4},\n  \"checked\": {check},\n  \
             \"build_ms\": {build_ms:.1},\n  \"route_ms\": {route_ms:.1},\n  \
             \"flows_pps\": {flows_pps:.0}{churn_json}{adversary_json},\n  \
             \"per_hop\": [{per_hop}\n  ]\n}}\n",
            fleet.router_count(),
            fleet.link_count(),
            fleet.directed_link_count(),
            fleet.origin_routers().len(),
            stats.flows,
            stats.delivered,
            stats.dropped,
            stats.hops,
            stats.clue_hops,
            stats.link_hits(),
            stats.link_problematic(),
            stats.link_misses(),
            stats.link_clueless(),
            stats.clue_refs,
            stats.baseline_refs,
            stats.savings(),
        );
        fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn missing_arguments_are_errors() {
        assert!(run(&s(&["stats"])).is_err());
        assert!(run(&s(&["pair", "only-one"])).is_err());
        assert!(run(&s(&["lookup", "table"])).is_err());
        assert!(run(&s(&["synth"])).is_err());
    }

    #[test]
    fn synth_and_stats_roundtrip() {
        let dir = std::env::temp_dir().join("clue-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.txt");
        std::fs::write(&path, format_prefixes(&synthesize_ipv4(100, 1))).unwrap();
        let p = path.to_str().unwrap().to_owned();
        run(&s(&["stats", &p])).unwrap();
        run(&s(&["lookup", &p, "10.1.2.3"])).unwrap();
    }

    #[test]
    fn pair_runs_on_small_tables() {
        let dir = std::env::temp_dir().join("clue-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.txt");
        let b = dir.join("b.txt");
        let base = synthesize_ipv4(150, 2);
        std::fs::write(&a, format_prefixes(&base)).unwrap();
        let nb = clue_tablegen::derive_neighbor(
            &base,
            &clue_tablegen::NeighborConfig::same_isp(3),
        );
        std::fs::write(&b, format_prefixes(&nb)).unwrap();
        run(&s(&[
            "pair",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "200",
        ]))
        .unwrap();
    }

    #[test]
    fn minimize_runs_on_a_table_file() {
        let dir = std::env::temp_dir().join("clue-cli-test4");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.txt");
        std::fs::write(&path, "10.0.0.0/8 a
10.1.0.0/16 a
10.2.0.0/16 b
").unwrap();
        run(&s(&["minimize", path.to_str().unwrap()])).unwrap();
        assert!(run(&s(&["minimize"])).is_err());
    }

    #[test]
    fn metrics_runs_and_validates_args() {
        run(&s(&["metrics", "200", "3"])).unwrap();
        run(&s(&["metrics", "200", "3", "--json"])).unwrap();
        assert!(run(&s(&["metrics", "not-a-number"])).is_err());
        assert!(run(&s(&["metrics", "--prom", "--json"])).is_err());
        assert!(run(&s(&["metrics", "1", "2", "3"])).is_err());
    }

    #[test]
    fn throughput_runs_checks_and_exports() {
        let dir = std::env::temp_dir().join("clue-cli-test5");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("bench.json");
        let j = json.to_str().unwrap().to_owned();
        run(&s(&[
            "throughput", "300", "3", "--threads", "2", "--table", "900", "--stride", "10",
            "--prefetch", "4", "--check", "--json", &j,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&json).unwrap();
        assert!(text.contains("\"equivalent\": true"), "bad export: {text}");
        assert!(text.contains("\"threads\": 2"));
        assert!(text.contains("\"table\": 900"));
        assert!(text.contains("\"stride_bits\": 10"));
        assert!(text.contains("\"prefetch_group\": 4"));
        assert!(text.contains("\"stride_pps\""));
        assert!(text.contains("\"freeze_ms\""));
        // Prefetch off (group 1) must still check out — interleave is
        // a latency knob, not a semantic one.
        run(&s(&["throughput", "200", "3", "--table", "600", "--prefetch", "1", "--check"]))
            .unwrap();
        assert!(run(&s(&["throughput", "--table", "0"])).is_err());
        assert!(run(&s(&["throughput", "--table"])).is_err());
        assert!(run(&s(&["throughput", "0"])).is_err());
        assert!(run(&s(&["throughput", "--threads", "0"])).is_err());
        assert!(run(&s(&["throughput", "--threads"])).is_err());
        assert!(run(&s(&["throughput", "--stride", "0"])).is_err());
        assert!(run(&s(&["throughput", "--stride", "32"])).is_err());
        assert!(run(&s(&["throughput", "--stride"])).is_err());
        assert!(run(&s(&["throughput", "--prefetch"])).is_err());
        assert!(run(&s(&["throughput", "1", "2", "3"])).is_err());
    }

    #[test]
    fn throughput_backend_matrix_runs_checks_and_exports() {
        let dir = std::env::temp_dir().join("clue-cli-test11");
        std::fs::create_dir_all(&dir).unwrap();
        for backend in ["frozen", "stride", "compressed"] {
            let json = dir.join(format!("{backend}.json"));
            let j = json.to_str().unwrap().to_owned();
            run(&s(&[
                "throughput", "300", "3", "--table", "900", "--backend", backend, "--check",
                "--json", &j,
            ]))
            .unwrap();
            let text = std::fs::read_to_string(&json).unwrap();
            assert!(text.contains("\"equivalent\": true"), "bad export: {text}");
            assert!(text.contains(&format!("\"backend\": \"{backend}\"")));
            assert!(text.contains(&format!("\"{backend}_pps\"")));
            assert!(text.contains(&format!("\"{backend}_bytes_per_prefix\"")));
            assert!(text.contains(&format!("\"cram_{backend}_arena_bytes\"")));
            assert!(text.contains(&format!("\"cram_{backend}_l1_miss\"")));
            // No network legs in matrix mode.
            assert!(!text.contains("\"parallel_pps\""), "bad export: {text}");
        }
        assert!(run(&s(&["throughput", "--backend", "planb"])).is_err());
        assert!(run(&s(&["throughput", "--backend"])).is_err());
        assert!(run(&s(&["throughput", "--backend", "frozen", "--runtime"])).is_err());
    }

    #[test]
    fn default_throughput_exports_cram_blocks_for_every_backend() {
        let dir = std::env::temp_dir().join("clue-cli-test12");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("bench.json");
        let j = json.to_str().unwrap().to_owned();
        run(&s(&["throughput", "250", "3", "--threads", "2", "--table", "800", "--json", &j]))
            .unwrap();
        let text = std::fs::read_to_string(&json).unwrap();
        for backend in ["frozen", "stride", "compressed"] {
            assert!(text.contains(&format!("\"{backend}_bytes_per_prefix\"")), "{text}");
            assert!(text.contains(&format!("\"cram_{backend}_expected_refs\"")), "{text}");
        }
        assert!(text.contains("\"compressed_pps\""));
        assert!(text.contains("\"parallel_pps\""));
    }

    #[test]
    fn synth_modern_emits_a_modern_table() {
        let dir = std::env::temp_dir().join("clue-cli-test13");
        std::fs::create_dir_all(&dir).unwrap();
        run(&s(&["synth", "500", "7", "--modern"])).unwrap();
        assert!(run(&s(&["synth", "500", "7", "--modern", "extra"])).is_err());
        // Modern output differs from the 1999 preset at the same seed.
        assert_ne!(
            clue_tablegen::synthesize_ipv4_modern(500, 7),
            clue_tablegen::synthesize_ipv4(500, 7)
        );
    }

    #[test]
    fn churn_runs_checks_and_exports() {
        let dir = std::env::temp_dir().join("clue-cli-test6");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("churn.json");
        let j = json.to_str().unwrap().to_owned();
        run(&s(&["churn", "150", "3", "--readers", "2", "--check", "--json", &j])).unwrap();
        let text = std::fs::read_to_string(&json).unwrap();
        assert!(text.contains("\"identical\": true"), "bad export: {text}");
        assert!(text.contains("\"checked\": true"));
        assert!(text.contains("\"readers\": 2"));
        assert!(run(&s(&["churn", "0"])).is_err());
        assert!(run(&s(&["churn", "--readers", "0"])).is_err());
        assert!(run(&s(&["churn", "--readers"])).is_err());
        assert!(run(&s(&["churn", "1", "2", "3"])).is_err());
        assert!(run(&s(&["churn", "not-a-number"])).is_err());
    }

    #[test]
    fn chaos_runs_checks_and_exports() {
        let dir = std::env::temp_dir().join("clue-cli-test7");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("chaos.json");
        let j = json.to_str().unwrap().to_owned();
        run(&s(&["chaos", "800", "3", "--check", "--json", &j])).unwrap();
        let text = std::fs::read_to_string(&json).unwrap();
        assert!(text.contains("\"divergences\": 0"), "bad export: {text}");
        assert!(text.contains("\"churn_survived\": true"), "bad export: {text}");
        assert!(text.contains("\"sound\": true"));
        assert!(text.contains("\"class\": \"adversarial_clue\""));
        run(&s(&["chaos", "400", "3", "--faults", "stale_clue,dropped"])).unwrap();
        assert!(run(&s(&["chaos", "0"])).is_err());
        assert!(run(&s(&["chaos", "--faults", "gremlins"])).is_err());
        assert!(run(&s(&["chaos", "--faults"])).is_err());
        assert!(run(&s(&["chaos", "1", "2", "3"])).is_err());
    }

    #[test]
    fn fleet_runs_checks_and_exports() {
        let dir = std::env::temp_dir().join("clue-cli-test10");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("fleet.json");
        let j = json.to_str().unwrap().to_owned();
        run(&s(&[
            "fleet", "400", "3", "--routers", "72", "--origins", "8", "--threads", "2",
            "--churn", "2", "--check", "--json", &j,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&json).unwrap();
        assert!(text.contains("\"checked\": true"), "bad export: {text}");
        assert!(text.contains("\"dropped\": 0"), "bad export: {text}");
        assert!(text.contains("\"topology\": \"transit-stub\""));
        assert!(text.contains("\"savings\""));
        assert!(text.contains("\"link_hits\""));
        assert!(text.contains("\"per_hop\""));
        assert!(text.contains("\"flows_pps\""));
        assert!(text.contains("\"churn_events\": 2"));
        assert!(text.contains("\"churn_rebuild_ms\""));
        run(&s(&["fleet", "200", "3", "--routers", "48", "--topology", "preferential"]))
            .unwrap();
        assert!(run(&s(&["fleet", "0"])).is_err());
        assert!(run(&s(&["fleet", "--routers", "1"])).is_err());
        assert!(run(&s(&["fleet", "--routers"])).is_err());
        assert!(run(&s(&["fleet", "--topology", "torus"])).is_err());
        assert!(run(&s(&["fleet", "--threads", "0"])).is_err());
        assert!(run(&s(&["fleet", "--participation", "1.5"])).is_err());
        assert!(run(&s(&["fleet", "--origins", "0"])).is_err());
        assert!(run(&s(&["fleet", "--churn", "0"])).is_err());
        assert!(run(&s(&["fleet", "1", "2", "3"])).is_err());
    }

    #[test]
    fn profile_runs_checks_and_exports() {
        let dir = std::env::temp_dir().join("clue-cli-test8");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("profile.json");
        let j = json.to_str().unwrap().to_owned();
        run(&s(&[
            "profile", "400", "3", "--table", "900", "--stride", "10", "--check", "--json", &j,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&json).unwrap();
        assert!(text.contains("\"inert\": true"), "bad export: {text}");
        assert!(text.contains("\"checked\": true"));
        for path in ["scalar", "frozen", "stride", "network"] {
            assert!(text.contains(&format!("\"{path}\"")), "missing path {path}: {text}");
        }
        assert!(text.contains("\"clue_probe\""));
        assert!(text.contains("\"ns_p50\""));
        assert!(text.contains("\"cost_time_correlation\""));
        assert!(run(&s(&["profile", "0"])).is_err());
        assert!(run(&s(&["profile", "--table", "0"])).is_err());
        assert!(run(&s(&["profile", "--stride"])).is_err());
        assert!(run(&s(&["profile", "--serve"])).is_err());
        assert!(run(&s(&["profile", "1", "2", "3"])).is_err());
    }

    #[test]
    fn bench_diff_compares_exports() {
        let dir = std::env::temp_dir().join("clue-cli-test9");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        std::fs::write(
            &a,
            "{\"packets\": 100, \"scalar_pps\": 1000.0, \"equivalent\": true, \"corr\": null}\n",
        )
        .unwrap();
        std::fs::write(
            &b,
            "{\"packets\": 100, \"scalar_pps\": 1400.0, \"equivalent\": true, \"corr\": 0.5, \
             \"extra\": 1}\n",
        )
        .unwrap();
        let (pa, pb) = (a.to_str().unwrap().to_owned(), b.to_str().unwrap().to_owned());
        // pps is a timing key: a 40% drift sits inside the default
        // 100% time tolerance, and null is a wildcard.
        run(&s(&["bench-diff", &pa, &pb])).unwrap();
        // A tight time tolerance trips on the same drift.
        assert!(run(&s(&["bench-diff", &pa, &pb, "--time-tolerance", "10"])).is_err());
        // A baseline key missing from the fresh run fails regardless.
        std::fs::write(&b, "{\"packets\": 100}\n").unwrap();
        assert!(run(&s(&["bench-diff", &pa, &pb, "--time-tolerance", "1e9"])).is_err());
        // Booleans compare exactly, no tolerance.
        std::fs::write(
            &b,
            "{\"packets\": 100, \"scalar_pps\": 1000.0, \"equivalent\": false, \"corr\": null}\n",
        )
        .unwrap();
        assert!(run(&s(&["bench-diff", &pa, &pb])).is_err());
        assert!(run(&s(&["bench-diff", &pa])).is_err());
        assert!(run(&s(&["bench-diff", &pa, "/nonexistent/x.json"])).is_err());
        assert!(run(&s(&["bench-diff", &pa, &pb, "--tolerance"])).is_err());
    }

    #[test]
    fn bench_diff_enforces_ceilings() {
        let dir = std::env::temp_dir().join("clue-cli-test14");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        std::fs::write(&a, "{\"compressed_bytes_per_prefix\": 3.5}\n").unwrap();
        std::fs::write(&b, "{\"compressed_bytes_per_prefix\": 3.6}\n").unwrap();
        let (pa, pb) = (a.to_str().unwrap().to_owned(), b.to_str().unwrap().to_owned());
        run(&s(&["bench-diff", &pa, &pb, "--max", "compressed_bytes_per_prefix=8"])).unwrap();
        // Above the ceiling fails even though the drift is in tolerance.
        assert!(run(&s(&[
            "bench-diff", &pa, &pb, "--max", "compressed_bytes_per_prefix=3.55"
        ]))
        .is_err());
        // A missing ceiling key fails.
        assert!(run(&s(&["bench-diff", &pa, &pb, "--max", "nonexistent=1"])).is_err());
        assert!(run(&s(&["bench-diff", &pa, &pb, "--max", "junk"])).is_err());
        assert!(run(&s(&["bench-diff", &pa, &pb, "--max"])).is_err());
    }

    #[test]
    fn serve_flag_wires_the_scrape_server() {
        // An ephemeral port proves the wiring end to end without
        // colliding with anything; the live-scrape protocol itself is
        // pinned by the telemetry server tests and the verify.sh smoke.
        run(&s(&["throughput", "200", "3", "--table", "600", "--serve", "127.0.0.1:0"]))
            .unwrap();
        run(&s(&["churn", "120", "3", "--readers", "2", "--serve", "127.0.0.1:0"])).unwrap();
        assert!(run(&s(&["churn", "120", "3", "--serve"])).is_err());
        assert!(run(&s(&["throughput", "100", "--serve", "not-an-addr"])).is_err());
    }

    #[test]
    fn lookup_rejects_malformed_clue() {
        let dir = std::env::temp_dir().join("clue-cli-test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.txt");
        std::fs::write(&path, "10.0.0.0/8\n").unwrap();
        let p = path.to_str().unwrap().to_owned();
        assert!(run(&s(&["lookup", &p, "10.1.2.3", "20.0.0.0/8"])).is_err());
        assert!(run(&s(&["lookup", &p, "not-an-addr"])).is_err());
    }
}
