//! Sub-command implementations.

use std::fmt::Write as _;
use std::fs;

use clue_core::{ClueEngine, EngineConfig, Method};
use clue_lookup::{reference_bmp, Family};
use clue_tablegen::{
    derive_neighbor, export_length_histogram, format_prefixes, generate, length_histogram,
    minimize, parse_prefixes, parse_table, synthesize_ipv4, NeighborConfig, PairStats,
    TrafficConfig,
};
use clue_telemetry::Registry;
use clue_trie::{BinaryTrie, Cost, CostStats, Ip4, Prefix};

/// Top-level usage text.
pub const USAGE: &str = "\
usage:
  clue stats  <table.txt>                        table statistics
  clue pair   <sender.txt> <receiver.txt> [n]    pair stats + method matrix
                                                 (n packets, default 10000)
  clue lookup <table.txt> <addr> [clue-prefix]   one lookup, per-family costs
  clue synth  <count> [seed]                     emit a synthetic table
  clue minimize <table.txt>                      ORTC-minimize (next hops
                                                 read from the 2nd column)
  clue metrics [packets] [seed] [--prom|--json]  run an instrumented workload
                                                 and dump the telemetry
                                                 registry (default: both
                                                 formats)
  clue throughput [packets] [seed] [--threads N] [--table P] [--stride BITS]
                  [--prefetch G] [--json PATH] [--check]
                                                 packets/sec for the scalar,
                                                 batched-frozen, stride-
                                                 compiled (initial stride BITS,
                                                 prefetch interleave G; G<=1
                                                 disables prefetch) and
                                                 sharded-parallel pipelines
                                                 over a P-prefix table;
                                                 --check verifies result
                                                 equivalence
  clue churn [updates] [seed] [--readers N] [--json PATH] [--check]
                                                 live-churn serving: a builder
                                                 applies a BGP-style update
                                                 stream and republishes frozen
                                                 snapshots while N reader
                                                 threads serve lookups from
                                                 epoch-pinned snapshots;
                                                 --check proves the final
                                                 snapshot bit-identical to a
                                                 from-scratch rebuild
  clue chaos [packets] [seed] [--faults SPEC] [--json PATH] [--check]
                                                 fault-injection harness:
                                                 corrupted/truncated/stale/
                                                 adversarial clues, clueless
                                                 hops, drops, reorders, plus a
                                                 churn leg with a reader panic
                                                 and a stalled rebuild; SPEC is
                                                 \"all\" or comma-separated
                                                 fault classes; --check fails
                                                 unless forwarding stayed
                                                 bit-identical to the clue-less
                                                 baseline and serving survived";

/// Entry point: dispatches on the first argument.
pub fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("stats") => stats(args.get(1).ok_or("stats needs a table file")?),
        Some("pair") => pair(
            args.get(1).ok_or("pair needs a sender file")?,
            args.get(2).ok_or("pair needs a receiver file")?,
            args.get(3).map(String::as_str),
        ),
        Some("lookup") => lookup(
            args.get(1).ok_or("lookup needs a table file")?,
            args.get(2).ok_or("lookup needs an address")?,
            args.get(3).map(String::as_str),
        ),
        Some("synth") => synth(
            args.get(1).ok_or("synth needs a prefix count")?,
            args.get(2).map(String::as_str),
        ),
        Some("minimize") => minimize_cmd(args.get(1).ok_or("minimize needs a table file")?),
        Some("metrics") => metrics(&args[1..]),
        Some("throughput") => throughput(&args[1..]),
        Some("churn") => churn(&args[1..]),
        Some("chaos") => chaos(&args[1..]),
        Some(other) => Err(format!("unknown command {other:?}")),
        None => Err("no command given".to_owned()),
    }
}

fn load(path: &str) -> Result<Vec<Prefix<Ip4>>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_prefixes::<Ip4>(&text).map_err(|e| format!("{path}: {e}"))
}

fn stats(path: &str) -> Result<(), String> {
    let table = load(path)?;
    println!("table: {path}");
    println!("prefixes: {}", table.len());
    let hist = length_histogram(&table);
    println!("\nlength histogram:");
    let max = hist.iter().copied().max().unwrap_or(1).max(1);
    for (len, &n) in hist.iter().enumerate() {
        if n > 0 {
            let bar = "#".repeat((n * 40).div_ceil(max));
            println!("  /{len:<3} {n:>8}  {bar}");
        }
    }
    let trie: BinaryTrie<Ip4, ()> = table.iter().map(|p| (*p, ())).collect();
    println!("\ntrie vertices: {}", trie.node_count());
    println!("trie memory:   {} bytes", trie.memory_bytes());
    let nested = table
        .iter()
        .filter(|p| table.iter().any(|q| q.is_strict_prefix_of(p)))
        .count();
    println!("nested prefixes (have a shorter covering prefix): {nested}");
    Ok(())
}

fn pair(sender_path: &str, receiver_path: &str, packets: Option<&str>) -> Result<(), String> {
    let sender = load(sender_path)?;
    let receiver = load(receiver_path)?;
    let n: usize = packets.unwrap_or("10000").parse().map_err(|_| "bad packet count")?;

    let ps = PairStats::compute(&sender, &receiver);
    println!("sender:    {sender_path} ({} prefixes)", ps.sender_size);
    println!("receiver:  {receiver_path} ({} prefixes)", ps.receiver_size);
    println!(
        "intersection: {} ({:.1}%); problematic clues: {} ({:.2}%)",
        ps.intersection,
        ps.similarity() * 100.0,
        ps.problematic,
        ps.problematic_fraction() * 100.0
    );

    let dests = generate(&sender, &receiver, &TrafficConfig { count: n, ..TrafficConfig::paper(1) });
    let t1: BinaryTrie<Ip4, ()> = sender.iter().map(|p| (*p, ())).collect();
    let clues: Vec<Option<Prefix<Ip4>>> = dests
        .iter()
        .map(|&d| t1.lookup(d).map(|r| t1.prefix(r)).filter(|c| !c.is_empty()))
        .collect();

    println!("\naverage memory accesses over {} packets:", dests.len());
    println!("{:<10} {:>10} {:>10} {:>10}", "family", "common", "Simple", "Advance");
    for family in Family::all_extended() {
        let mut row = format!("{:<10}", family.label());
        for method in Method::all() {
            let mut engine =
                ClueEngine::precomputed(&sender, &receiver, EngineConfig::new(family, method));
            let mut acc = CostStats::new();
            for (&dest, &clue) in dests.iter().zip(&clues) {
                let mut cost = Cost::new();
                engine.lookup(dest, clue, None, &mut cost);
                acc.record(cost);
            }
            write!(row, " {:>10.2}", acc.mean()).expect("write to string");
        }
        println!("{row}");
    }
    Ok(())
}

fn lookup(path: &str, addr: &str, clue: Option<&str>) -> Result<(), String> {
    let table = load(path)?;
    let dest: Ip4 = addr.parse().map_err(|e| format!("{addr}: {e}"))?;
    let clue: Option<Prefix<Ip4>> = match clue {
        Some(c) => Some(c.parse().map_err(|e| format!("{c}: {e}"))?),
        None => None,
    };
    if let Some(c) = &clue {
        if !c.contains(dest) {
            return Err(format!("clue {c} is not a prefix of {dest}"));
        }
    }
    let want = reference_bmp(&table, dest);
    println!("destination: {dest}");
    match want {
        Some(b) => println!("best matching prefix: {b}"),
        None => println!("best matching prefix: (none)"),
    }
    if let Some(c) = &clue {
        println!("clue: {c}");
    }
    println!("\nper-family cost (memory accesses):");
    println!("{:<10} {:>10} {:>12}", "family", "clue-less", "with clue");
    for family in Family::all_extended() {
        let mut engine = ClueEngine::precomputed(
            &table, // standalone: assume the sender has the same table
            &table,
            EngineConfig::new(family, Method::Advance),
        );
        let mut c0 = Cost::new();
        let r0 = engine.common_lookup(dest, &mut c0);
        if r0 != want {
            return Err(format!("{family} disagrees with the reference"));
        }
        let with = match clue {
            Some(cl) => {
                let mut c1 = Cost::new();
                let r1 = engine.lookup(dest, Some(cl), None, &mut c1);
                if r1 != want {
                    return Err(format!("{family} with clue disagrees with the reference"));
                }
                format!("{:>12}", c1.total())
            }
            None => format!("{:>12}", "-"),
        };
        println!("{:<10} {:>10} {with}", family.label(), c0.total());
    }
    Ok(())
}

fn synth(count: &str, seed: Option<&str>) -> Result<(), String> {
    let n: usize = count.parse().map_err(|_| "bad prefix count")?;
    let seed: u64 = seed.unwrap_or("0").parse().map_err(|_| "bad seed")?;
    print!("{}", format_prefixes(&synthesize_ipv4(n, seed)));
    Ok(())
}

fn minimize_cmd(path: &str) -> Result<(), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let lines = parse_table::<Ip4>(&text).map_err(|e| format!("{path}: {e}"))?;
    // Next hops: the optional second column, hashed to a small id space;
    // rows without one share a single implicit hop.
    let mut hop_ids: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
    let entries: Vec<(Prefix<Ip4>, u32)> = lines
        .iter()
        .map(|l| {
            let hop = match &l.next_hop {
                Some(h) => {
                    let next = hop_ids.len() as u32 + 1;
                    *hop_ids.entry(h.clone()).or_insert(next)
                }
                None => 0,
            };
            (l.prefix, hop)
        })
        .collect();
    let id_to_hop: std::collections::HashMap<u32, &String> =
        hop_ids.iter().map(|(k, v)| (*v, k)).collect();
    let min = minimize(&entries);
    eprintln!("{} prefixes -> {} after ORTC", entries.len(), min.len());
    for (p, hop) in min {
        match id_to_hop.get(&hop) {
            Some(h) => println!("{p} {h}"),
            None => println!("{p}"),
        }
    }
    Ok(())
}

/// Runs a synthetic sender→receiver workload with telemetry enabled and
/// dumps the whole registry: Prometheus text exposition, JSON, or both.
fn metrics(args: &[String]) -> Result<(), String> {
    let mut packets = 10_000usize;
    let mut seed = 1u64;
    let (mut prom, mut json) = (true, true);
    let mut positional = 0;
    for a in args {
        match a.as_str() {
            "--prom" => json = false,
            "--json" => prom = false,
            other => {
                match positional {
                    0 => packets = other.parse().map_err(|_| "bad packet count")?,
                    1 => seed = other.parse().map_err(|_| "bad seed")?,
                    _ => return Err(format!("unexpected argument {other:?}")),
                }
                positional += 1;
            }
        }
    }
    if !prom && !json {
        return Err("--prom and --json are mutually exclusive".to_owned());
    }

    let registry = Registry::new();

    // Table build: a synthetic sender and a same-ISP receiver, with the
    // pair statistics mirrored into the registry.
    let sender = synthesize_ipv4(4000, seed);
    let receiver = derive_neighbor(&sender, &NeighborConfig::same_isp(seed.wrapping_add(1)));
    PairStats::compute(&sender, &receiver).export_into(&registry);
    export_length_histogram(&registry, "clue_tablegen_sender_length", &sender);
    export_length_histogram(&registry, "clue_tablegen_receiver_length", &receiver);

    // Instrumented engine with the presence cache in front of the clue
    // table, driven by paper-style traffic carrying real clues.
    let mut engine = ClueEngine::precomputed(
        &sender,
        &receiver,
        EngineConfig::new(Family::Regular, Method::Advance),
    );
    engine.instrument(&registry);
    engine.enable_cache(256);
    let dests = generate(
        &sender,
        &receiver,
        &TrafficConfig { count: packets, ..TrafficConfig::paper(seed) },
    );
    let t1: BinaryTrie<Ip4, ()> = sender.iter().map(|p| (*p, ())).collect();
    for &dest in &dests {
        let clue = t1.lookup(dest).map(|r| t1.prefix(r)).filter(|c| !c.is_empty());
        let mut cost = Cost::new();
        engine.lookup(dest, clue, None, &mut cost);
    }

    if prom {
        print!("{}", registry.to_prometheus());
    }
    if prom && json {
        println!();
    }
    if json {
        println!("{}", registry.to_json());
    }
    Ok(())
}

/// Times `f` `reps` times and keeps the best run — the standard
/// treatment against scheduler noise on a shared (often single-CPU)
/// box. Only used for the stateless read-only pipelines, where a
/// repeat is the identical computation.
fn best_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best.max(1e-9)
}

/// Benchmarks the four lookup pipelines — mutable scalar engine,
/// frozen batch API, stride-compiled prefetched batch, sharded
/// parallel network driver — and optionally (`--check`) proves they
/// return identical results before reporting any numbers.
/// `--json PATH` exports the measurements for the `BENCH_*.json`
/// trajectory.
fn throughput(args: &[String]) -> Result<(), String> {
    let mut packets = 20_000usize;
    let mut seed = 1u64;
    let mut threads = 4usize;
    let mut table = 40_000usize;
    let mut stride_bits = clue_core::DEFAULT_INITIAL_BITS;
    let mut prefetch = clue_core::DEFAULT_INTERLEAVE;
    let mut json_path: Option<String> = None;
    let mut check = false;
    let mut positional = 0;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|_| "bad thread count")?;
                if threads == 0 {
                    return Err("--threads must be at least 1".to_owned());
                }
            }
            "--table" => {
                table = it
                    .next()
                    .ok_or("--table needs a prefix count")?
                    .parse()
                    .map_err(|_| "bad table size")?;
                if table == 0 {
                    return Err("--table must be at least 1".to_owned());
                }
            }
            "--stride" => {
                stride_bits = it
                    .next()
                    .ok_or("--stride needs a bit count")?
                    .parse()
                    .map_err(|_| "bad stride bit count")?;
            }
            "--prefetch" => {
                prefetch = it
                    .next()
                    .ok_or("--prefetch needs a group size")?
                    .parse()
                    .map_err(|_| "bad prefetch group")?;
            }
            "--json" => json_path = Some(it.next().ok_or("--json needs a path")?.clone()),
            "--check" => check = true,
            other => {
                match positional {
                    0 => packets = other.parse().map_err(|_| "bad packet count")?,
                    1 => seed = other.parse().map_err(|_| "bad seed")?,
                    _ => return Err(format!("unexpected argument {other:?}")),
                }
                positional += 1;
            }
        }
    }
    if packets == 0 {
        return Err("packet count must be at least 1".to_owned());
    }

    // Stage 1 — single receiver, paper-style traffic with honest clues:
    // the scalar engine vs its frozen batch compilation vs the
    // stride-compiled prefetched batch. The default table is
    // paper-scale (the Mae-East snapshot the paper measures is ~40k
    // prefixes) — at toy sizes every structure is cache-resident and
    // the layouts can't be told apart.
    let sender = synthesize_ipv4(table, seed);
    let receiver = derive_neighbor(&sender, &NeighborConfig::same_isp(seed.wrapping_add(1)));
    let mut scalar = ClueEngine::precomputed(
        &sender,
        &receiver,
        EngineConfig::new(Family::Regular, Method::Advance),
    );
    let frozen = scalar
        .freeze()
        .map_err(|e| format!("cannot freeze the engine ({} blocks it): {e}", e.feature()))?;
    let stride_cfg = clue_core::StrideConfig::new(stride_bits, clue_core::DEFAULT_INNER_BITS);
    let stride = frozen.compile_stride(stride_cfg).map_err(|e| format!("--stride: {e}"))?;
    let dests = generate(
        &sender,
        &receiver,
        &TrafficConfig { count: packets, ..TrafficConfig::paper(seed) },
    );
    let t1: BinaryTrie<Ip4, ()> = sender.iter().map(|p| (*p, ())).collect();
    let clues: Vec<Option<Prefix<Ip4>>> = dests
        .iter()
        .map(|&d| t1.lookup(d).map(|r| t1.prefix(r)).filter(|c| !c.is_empty()))
        .collect();

    // The scalar engine learns through `&mut self`, so it is timed on
    // its single authoritative pass; the frozen/stride pipelines are
    // stateless and take a best-of-3 to shed scheduler noise.
    let t0 = std::time::Instant::now();
    let mut scalar_results = Vec::with_capacity(dests.len());
    for (&dest, &clue) in dests.iter().zip(&clues) {
        let mut cost = Cost::new();
        scalar_results.push((scalar.lookup(dest, clue, None, &mut cost), cost));
    }
    let scalar_pps = packets as f64 / t0.elapsed().as_secs_f64().max(1e-9);

    let mut out = vec![clue_core::Decision::default(); dests.len()];
    let batch_pps = packets as f64
        / best_secs(3, || {
            let _ = frozen.lookup_batch(&dests, &clues, &mut out);
        });

    let mut stride_out = vec![clue_core::Decision::default(); dests.len()];
    let stride_pps = packets as f64
        / best_secs(3, || {
            let _ = stride.lookup_batch_interleaved(&dests, &clues, &mut stride_out, prefetch);
        });

    let mut equivalent = true;
    if check {
        for ((d, s), &(bmp, cost)) in out.iter().zip(&stride_out).zip(&scalar_results) {
            if d.bmp != bmp || d.cost != cost || s != d {
                equivalent = false;
            }
        }
    }

    // Stage 2 — the network workload: sequential per-packet reference
    // vs the frozen driver sharded over `threads`. The freeze is
    // one-off compilation, not forwarding — it happens outside the
    // timed region (hoisting it is what `FrozenNetwork::run_workload`
    // is for).
    let (topo, edges) = clue_netsim::Topology::backbone(4, 2);
    let mut net_cfg = clue_netsim::NetworkConfig::new(
        edges.clone(),
        EngineConfig::new(Family::Regular, Method::Advance),
    );
    net_cfg.seed = seed;
    let mut net: clue_netsim::Network<Ip4> = clue_netsim::Network::build(topo, net_cfg);
    let net_packets = packets.min(5_000);

    let t0 = std::time::Instant::now();
    let seq = clue_netsim::run_workload_per_packet(&mut net, &edges, net_packets, seed);
    let seq_pps = net_packets as f64 / t0.elapsed().as_secs_f64().max(1e-9);

    let t0 = std::time::Instant::now();
    let frozen_net = clue_netsim::FrozenNetwork::freeze(&net)
        .map_err(|e| format!("cannot freeze the network ({} blocks it): {e}", e.feature()))?;
    let freeze_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut par = None;
    let par_pps = net_packets as f64
        / best_secs(3, || par = Some(frozen_net.run_workload(&edges, net_packets, seed, threads)));
    let par = par.expect("best_secs ran at least once");

    if check && par != seq {
        equivalent = false;
    }
    if check && !equivalent {
        return Err("equivalence check failed: pipelines disagree".to_owned());
    }

    let batch_speedup = batch_pps / scalar_pps.max(1e-9);
    let stride_speedup = stride_pps / batch_pps.max(1e-9);
    let par_speedup = par_pps / seq_pps.max(1e-9);
    let stride_beats_batch = stride_pps > batch_pps;
    let parallel_scales = par_speedup > 1.0;
    println!("engine workload: {packets} packets (sender {table} prefixes, seed {seed})");
    println!("  scalar engine:  {scalar_pps:>12.0} pkts/s");
    println!("  frozen batch:   {batch_pps:>12.0} pkts/s  ({batch_speedup:.2}x scalar)");
    println!(
        "  stride batch:   {stride_pps:>12.0} pkts/s  ({stride_speedup:.2}x batch; \
         initial stride {stride_bits}, prefetch group {prefetch})"
    );
    println!("network workload: {net_packets} packets over a 4x2 backbone");
    println!("  per-packet seq: {seq_pps:>12.0} pkts/s");
    println!("  freeze (setup): {freeze_ms:>12.2} ms (outside the timed runs)");
    println!("  parallel x{threads}:    {par_pps:>12.0} pkts/s  ({par_speedup:.2}x)");
    if check {
        println!("equivalence: OK (batch == stride == scalar, parallel == sequential)");
    }

    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"packets\": {packets},\n  \"net_packets\": {net_packets},\n  \
             \"seed\": {seed},\n  \"threads\": {threads},\n  \"table\": {table},\n  \
             \"stride_bits\": {stride_bits},\n  \"prefetch_group\": {prefetch},\n  \
             \"scalar_pps\": {scalar_pps:.1},\n  \"batch_pps\": {batch_pps:.1},\n  \
             \"batch_speedup\": {batch_speedup:.3},\n  \
             \"stride_pps\": {stride_pps:.1},\n  \"stride_speedup\": {stride_speedup:.3},\n  \
             \"stride_beats_batch\": {stride_beats_batch},\n  \
             \"seq_pps\": {seq_pps:.1},\n  \"freeze_ms\": {freeze_ms:.2},\n  \
             \"parallel_pps\": {par_pps:.1},\n  \
             \"parallel_speedup\": {par_speedup:.3},\n  \
             \"parallel_scales\": {parallel_scales},\n  \
             \"checked\": {check},\n  \"equivalent\": {equivalent}\n}}\n"
        );
        fs::write(&path, json).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Runs the live-churn workload: a builder thread applies a BGP-style
/// update stream to the mutable engine and republishes a frozen
/// snapshot per batch, while `--readers` threads serve lookups from
/// epoch-pinned snapshots. `--check` proves the final snapshot is
/// bit-identical to freezing the end-state table from scratch;
/// `--json PATH` exports the run for the `BENCH_*.json` trajectory.
fn churn(args: &[String]) -> Result<(), String> {
    let mut updates = 2_000usize;
    let mut seed = 1u64;
    let mut readers = 4usize;
    let mut json_path: Option<String> = None;
    let mut check = false;
    let mut positional = 0;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--readers" => {
                readers = it
                    .next()
                    .ok_or("--readers needs a value")?
                    .parse()
                    .map_err(|_| "bad reader count")?;
                if readers == 0 {
                    return Err("--readers must be at least 1".to_owned());
                }
            }
            "--json" => json_path = Some(it.next().ok_or("--json needs a path")?.clone()),
            "--check" => check = true,
            other => {
                match positional {
                    0 => updates = other.parse().map_err(|_| "bad update count")?,
                    1 => seed = other.parse().map_err(|_| "bad seed")?,
                    _ => return Err(format!("unexpected argument {other:?}")),
                }
                positional += 1;
            }
        }
    }
    if updates == 0 {
        return Err("update count must be at least 1".to_owned());
    }

    let sender = synthesize_ipv4(3000, seed);
    let receiver = derive_neighbor(&sender, &NeighborConfig::same_isp(seed.wrapping_add(1)));
    let stream = clue_tablegen::generate_churn(
        &receiver,
        &clue_tablegen::ChurnConfig::bgp(updates, seed.wrapping_add(2)),
    );

    let registry = Registry::new();
    let telemetry = clue_telemetry::ChurnTelemetry::registered(&registry, "clue_churn");
    let mut cfg = clue_netsim::ChurnDriverConfig::new(readers, seed);
    cfg.check = check;
    let report = clue_netsim::run_churn(&sender, &receiver, &stream, &cfg, Some(&telemetry), None)
        .map_err(|e| e.to_string())?;
    if check && report.final_identical != Some(true) {
        return Err("churn check failed: final snapshot differs from a from-scratch rebuild"
            .to_owned());
    }

    println!(
        "churn workload: {updates} updates in {} batches (receiver {} prefixes, seed {seed})",
        report.epochs,
        receiver.len()
    );
    println!(
        "  rebuilds:   {} epochs, {:.0} us mean, {} us max",
        report.epochs,
        report.mean_rebuild_us(),
        report.max_rebuild_us()
    );
    println!(
        "  lookups:    {} served by {readers} readers ({} stale, {:.2}%, max lag {} epochs)",
        report.lookups_total,
        report.stale_lookups,
        report.stale_fraction() * 100.0,
        report.max_staleness
    );
    println!(
        "  snapshots:  {} swaps, {} reclaimed, {} left retired",
        telemetry.swaps_total.get(),
        telemetry.reclaimed_total.get(),
        report.retired_after
    );
    if check {
        println!("check: final snapshot bit-identical to from-scratch rebuild");
    }

    if let Some(path) = json_path {
        let identical = report.final_identical == Some(true);
        let json = format!(
            "{{\n  \"updates\": {updates},\n  \"seed\": {seed},\n  \"readers\": {readers},\n  \
             \"epochs\": {},\n  \"swaps\": {},\n  \
             \"mean_rebuild_us\": {:.1},\n  \"max_rebuild_us\": {},\n  \
             \"lookups_total\": {},\n  \"stale_lookups\": {},\n  \
             \"stale_fraction\": {:.4},\n  \"max_staleness\": {},\n  \
             \"retired_after\": {},\n  \
             \"checked\": {check},\n  \"identical\": {identical}\n}}\n",
            report.epochs,
            telemetry.swaps_total.get(),
            report.mean_rebuild_us(),
            report.max_rebuild_us(),
            report.lookups_total,
            report.stale_lookups,
            report.stale_fraction(),
            report.max_staleness,
            report.retired_after,
        );
        fs::write(&path, json).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Runs the fault-injection harness: seeded reproducible faults
/// (corrupted/truncated/out-of-range/stale/adversarial clues, clueless
/// hops, drops, reorders) through the receiver pipeline, every
/// forwarding decision differentially checked against the clue-less
/// baseline, plus a churn leg that must survive an injected reader
/// panic and a watchdog-tripped rebuild. `--check` fails unless the
/// run is sound; `--json PATH` exports per-class counts and
/// degraded-cost percentiles for the `BENCH_*.json` trajectory.
fn chaos(args: &[String]) -> Result<(), String> {
    let mut packets = 1_000_000usize;
    let mut seed = 1u64;
    let mut spec = "all".to_owned();
    let mut json_path: Option<String> = None;
    let mut check = false;
    let mut positional = 0;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--faults" => spec = it.next().ok_or("--faults needs a spec")?.clone(),
            "--json" => json_path = Some(it.next().ok_or("--json needs a path")?.clone()),
            "--check" => check = true,
            other => {
                match positional {
                    0 => packets = other.parse().map_err(|_| "bad packet count")?,
                    1 => seed = other.parse().map_err(|_| "bad seed")?,
                    _ => return Err(format!("unexpected argument {other:?}")),
                }
                positional += 1;
            }
        }
    }
    if packets == 0 {
        return Err("packet count must be at least 1".to_owned());
    }

    let plan = clue_netsim::FaultPlan::parse(&spec, seed)?;
    let registry = Registry::new();
    let labels: Vec<&str> = plan.classes().iter().map(|c| c.label()).collect();
    let telemetry =
        clue_telemetry::DegradationTelemetry::registered(&registry, "clue_fault", &labels);
    let mut config = clue_netsim::ChaosConfig::new(packets, seed);
    config.plan = plan;
    let report = clue_netsim::run_chaos(&config, Some(&telemetry)).map_err(|e| e.to_string())?;

    println!(
        "chaos workload: {} packets, seed {seed}, faults \"{spec}\" \
         ({} delivered, {} dropped, {} reordered, {} parse errors)",
        report.packets, report.delivered, report.dropped, report.reordered, report.parse_errors
    );
    println!(
        "{:<18} {:>9} {:>9} {:>7} {:>9} {:>5} {:>5} {:>5} {:>5}",
        "fault class", "injected", "delivered", "parse", "degraded", "p50", "p90", "p99", "max"
    );
    for o in &report.by_class {
        println!(
            "{:<18} {:>9} {:>9} {:>7} {:>9} {:>5} {:>5} {:>5} {:>5}",
            o.class.label(),
            o.injected,
            o.delivered,
            o.parse_errors,
            o.degraded,
            o.overhead_p50,
            o.overhead_p90,
            o.overhead_p99,
            o.overhead_max,
        );
    }
    println!(
        "soundness: {} divergences over {} delivered packets; accounting parity: {}",
        report.divergences,
        report.delivered,
        if report.stats_parity { "OK" } else { "BROKEN" }
    );
    println!(
        "churn leg: {} (caught panics: {}, watchdog trips: {}, retries: {}, recoveries: {})",
        if report.churn_survived { "survived" } else { "DID NOT SURVIVE" },
        report.churn.reader_panics.len(),
        report.churn.watchdog_trips,
        report.churn.backoff_retries,
        report.churn.recovered_rebuilds + report.churn.recovery_publishes,
    );

    if let Some(path) = &json_path {
        let mut by_class = String::new();
        for (i, o) in report.by_class.iter().enumerate() {
            let sep = if i + 1 < report.by_class.len() { "," } else { "" };
            write!(
                by_class,
                "\n    {{\"class\": \"{}\", \"injected\": {}, \"delivered\": {}, \
                 \"parse_errors\": {}, \"degraded\": {}, \"overhead_p50\": {}, \
                 \"overhead_p90\": {}, \"overhead_p99\": {}, \"overhead_max\": {}, \
                 \"overhead_mean\": {:.3}}}{sep}",
                o.class.label(),
                o.injected,
                o.delivered,
                o.parse_errors,
                o.degraded,
                o.overhead_p50,
                o.overhead_p90,
                o.overhead_p99,
                o.overhead_max,
                o.overhead_mean,
            )
            .expect("write to string");
        }
        let sound = report.sound();
        let json = format!(
            "{{\n  \"packets\": {},\n  \"seed\": {seed},\n  \"faults\": \"{spec}\",\n  \
             \"delivered\": {},\n  \"dropped\": {},\n  \"reordered\": {},\n  \
             \"parse_errors\": {},\n  \"divergences\": {},\n  \"stats_parity\": {},\n  \
             \"reader_panics\": {},\n  \"watchdog_trips\": {},\n  \
             \"backoff_retries\": {},\n  \"recovered_rebuilds\": {},\n  \
             \"recovery_publishes\": {},\n  \"churn_survived\": {},\n  \
             \"checked\": {check},\n  \"sound\": {sound},\n  \"by_class\": [{by_class}\n  ]\n}}\n",
            report.packets,
            report.delivered,
            report.dropped,
            report.reordered,
            report.parse_errors,
            report.divergences,
            report.stats_parity,
            report.churn.reader_panics.len(),
            report.churn.watchdog_trips,
            report.churn.backoff_retries,
            report.churn.recovered_rebuilds,
            report.churn.recovery_publishes,
            report.churn_survived,
        );
        fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }

    if check && !report.sound() {
        return Err(format!(
            "chaos check failed: {} divergences, parity {}, churn survived {} \
             (first divergences: {:?})",
            report.divergences, report.stats_parity, report.churn_survived,
            report.divergence_samples,
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn missing_arguments_are_errors() {
        assert!(run(&s(&["stats"])).is_err());
        assert!(run(&s(&["pair", "only-one"])).is_err());
        assert!(run(&s(&["lookup", "table"])).is_err());
        assert!(run(&s(&["synth"])).is_err());
    }

    #[test]
    fn synth_and_stats_roundtrip() {
        let dir = std::env::temp_dir().join("clue-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.txt");
        std::fs::write(&path, format_prefixes(&synthesize_ipv4(100, 1))).unwrap();
        let p = path.to_str().unwrap().to_owned();
        run(&s(&["stats", &p])).unwrap();
        run(&s(&["lookup", &p, "10.1.2.3"])).unwrap();
    }

    #[test]
    fn pair_runs_on_small_tables() {
        let dir = std::env::temp_dir().join("clue-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.txt");
        let b = dir.join("b.txt");
        let base = synthesize_ipv4(150, 2);
        std::fs::write(&a, format_prefixes(&base)).unwrap();
        let nb = clue_tablegen::derive_neighbor(
            &base,
            &clue_tablegen::NeighborConfig::same_isp(3),
        );
        std::fs::write(&b, format_prefixes(&nb)).unwrap();
        run(&s(&[
            "pair",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "200",
        ]))
        .unwrap();
    }

    #[test]
    fn minimize_runs_on_a_table_file() {
        let dir = std::env::temp_dir().join("clue-cli-test4");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.txt");
        std::fs::write(&path, "10.0.0.0/8 a
10.1.0.0/16 a
10.2.0.0/16 b
").unwrap();
        run(&s(&["minimize", path.to_str().unwrap()])).unwrap();
        assert!(run(&s(&["minimize"])).is_err());
    }

    #[test]
    fn metrics_runs_and_validates_args() {
        run(&s(&["metrics", "200", "3"])).unwrap();
        run(&s(&["metrics", "200", "3", "--json"])).unwrap();
        assert!(run(&s(&["metrics", "not-a-number"])).is_err());
        assert!(run(&s(&["metrics", "--prom", "--json"])).is_err());
        assert!(run(&s(&["metrics", "1", "2", "3"])).is_err());
    }

    #[test]
    fn throughput_runs_checks_and_exports() {
        let dir = std::env::temp_dir().join("clue-cli-test5");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("bench.json");
        let j = json.to_str().unwrap().to_owned();
        run(&s(&[
            "throughput", "300", "3", "--threads", "2", "--table", "900", "--stride", "10",
            "--prefetch", "4", "--check", "--json", &j,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&json).unwrap();
        assert!(text.contains("\"equivalent\": true"), "bad export: {text}");
        assert!(text.contains("\"threads\": 2"));
        assert!(text.contains("\"table\": 900"));
        assert!(text.contains("\"stride_bits\": 10"));
        assert!(text.contains("\"prefetch_group\": 4"));
        assert!(text.contains("\"stride_pps\""));
        assert!(text.contains("\"freeze_ms\""));
        // Prefetch off (group 1) must still check out — interleave is
        // a latency knob, not a semantic one.
        run(&s(&["throughput", "200", "3", "--table", "600", "--prefetch", "1", "--check"]))
            .unwrap();
        assert!(run(&s(&["throughput", "--table", "0"])).is_err());
        assert!(run(&s(&["throughput", "--table"])).is_err());
        assert!(run(&s(&["throughput", "0"])).is_err());
        assert!(run(&s(&["throughput", "--threads", "0"])).is_err());
        assert!(run(&s(&["throughput", "--threads"])).is_err());
        assert!(run(&s(&["throughput", "--stride", "0"])).is_err());
        assert!(run(&s(&["throughput", "--stride", "32"])).is_err());
        assert!(run(&s(&["throughput", "--stride"])).is_err());
        assert!(run(&s(&["throughput", "--prefetch"])).is_err());
        assert!(run(&s(&["throughput", "1", "2", "3"])).is_err());
    }

    #[test]
    fn churn_runs_checks_and_exports() {
        let dir = std::env::temp_dir().join("clue-cli-test6");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("churn.json");
        let j = json.to_str().unwrap().to_owned();
        run(&s(&["churn", "150", "3", "--readers", "2", "--check", "--json", &j])).unwrap();
        let text = std::fs::read_to_string(&json).unwrap();
        assert!(text.contains("\"identical\": true"), "bad export: {text}");
        assert!(text.contains("\"checked\": true"));
        assert!(text.contains("\"readers\": 2"));
        assert!(run(&s(&["churn", "0"])).is_err());
        assert!(run(&s(&["churn", "--readers", "0"])).is_err());
        assert!(run(&s(&["churn", "--readers"])).is_err());
        assert!(run(&s(&["churn", "1", "2", "3"])).is_err());
        assert!(run(&s(&["churn", "not-a-number"])).is_err());
    }

    #[test]
    fn chaos_runs_checks_and_exports() {
        let dir = std::env::temp_dir().join("clue-cli-test7");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("chaos.json");
        let j = json.to_str().unwrap().to_owned();
        run(&s(&["chaos", "800", "3", "--check", "--json", &j])).unwrap();
        let text = std::fs::read_to_string(&json).unwrap();
        assert!(text.contains("\"divergences\": 0"), "bad export: {text}");
        assert!(text.contains("\"churn_survived\": true"), "bad export: {text}");
        assert!(text.contains("\"sound\": true"));
        assert!(text.contains("\"class\": \"adversarial_clue\""));
        run(&s(&["chaos", "400", "3", "--faults", "stale_clue,dropped"])).unwrap();
        assert!(run(&s(&["chaos", "0"])).is_err());
        assert!(run(&s(&["chaos", "--faults", "gremlins"])).is_err());
        assert!(run(&s(&["chaos", "--faults"])).is_err());
        assert!(run(&s(&["chaos", "1", "2", "3"])).is_err());
    }

    #[test]
    fn lookup_rejects_malformed_clue() {
        let dir = std::env::temp_dir().join("clue-cli-test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.txt");
        std::fs::write(&path, "10.0.0.0/8\n").unwrap();
        let p = path.to_str().unwrap().to_owned();
        assert!(run(&s(&["lookup", &p, "10.1.2.3", "20.0.0.0/8"])).is_err());
        assert!(run(&s(&["lookup", &p, "not-an-addr"])).is_err());
    }
}
