//! Telemetry for the fault-injection / graceful-degradation layer.
//!
//! The paper's robustness claim is that a wrong, stale or corrupted
//! clue can only make a lookup *slower*, never change its answer. The
//! chaos harness (`clue_netsim::run_chaos`) injects such faults on
//! purpose; [`DegradationTelemetry`] names what it observes, following
//! the workspace `clue_<component>_<metric>` convention under the
//! `clue_fault` prefix: how many faults of each class were injected,
//! how many packets degraded to the clue-less fallback, how much extra
//! lookup cost the degradation charged, and how the serving loop
//! recovered from reader panics and watchdog-tripped rebuilds.

use crate::registry::{Counter, Histogram, Registry};
use crate::DEGRADED_COST_BOUNDS;

/// Telemetry for fault injection and graceful degradation.
///
/// Like [`crate::ChurnTelemetry`], a bundle is either *detached* (live
/// cells, nothing exported) or *registered* into a shared [`Registry`];
/// cloning shares the underlying cells. Per-fault-class counters are
/// named at construction (`{prefix}_{class}_injected_total`), so the
/// bundle stays independent of any particular fault taxonomy.
#[derive(Debug, Clone)]
pub struct DegradationTelemetry {
    /// Faults injected, all classes (clean packets included when the
    /// plan mixes them in).
    pub injected_total: Counter,
    /// Packets whose wire image no longer parsed (truncation,
    /// corruption, out-of-range clue) — the receiver fell back to a
    /// clue-less lookup.
    pub parse_errors_total: Counter,
    /// Lookups that degraded to the full common lookup (malformed,
    /// unknown or missing clue).
    pub degraded_lookups_total: Counter,
    /// Forwarding decisions that differed from the clue-less baseline.
    /// The soundness invariant says this stays 0; anything else is a
    /// bug, not a degradation.
    pub divergences_total: Counter,
    /// Reader threads that panicked and were caught + attributed by
    /// the churn driver.
    pub reader_panics_total: Counter,
    /// Rebuilds whose freeze exceeded the watchdog budget.
    pub watchdog_trips_total: Counter,
    /// Backoff-then-retry cycles the watchdog scheduled after a trip.
    pub backoff_retries_total: Counter,
    /// Recoveries: rebuilds that succeeded within budget after at
    /// least one watchdog trip, plus deferred convergence publishes.
    pub recoveries_total: Counter,
    /// Extra memory references a degraded lookup paid versus the
    /// clue-less baseline for the same destination (0 = the fault cost
    /// nothing).
    pub degraded_cost_overhead: Histogram,
    /// `(label, counter)` per fault class, in construction order.
    classes: Vec<(String, Counter)>,
}

impl Default for DegradationTelemetry {
    fn default() -> Self {
        Self::detached(&[])
    }
}

impl DegradationTelemetry {
    /// A detached bundle with per-class counters for `class_labels`.
    pub fn detached(class_labels: &[&str]) -> Self {
        DegradationTelemetry {
            injected_total: Counter::new(),
            parse_errors_total: Counter::new(),
            degraded_lookups_total: Counter::new(),
            divergences_total: Counter::new(),
            reader_panics_total: Counter::new(),
            watchdog_trips_total: Counter::new(),
            backoff_retries_total: Counter::new(),
            recoveries_total: Counter::new(),
            degraded_cost_overhead: Histogram::new(DEGRADED_COST_BOUNDS),
            classes: class_labels
                .iter()
                .map(|l| (l.to_string(), Counter::new()))
                .collect(),
        }
    }

    /// A bundle registered into `registry` under `prefix` (the
    /// workspace uses `clue_fault`), creating or sharing:
    ///
    /// * `{prefix}_injected_total`
    /// * `{prefix}_{class}_injected_total` per label in `class_labels`
    /// * `{prefix}_parse_errors_total`
    /// * `{prefix}_degraded_lookups_total`
    /// * `{prefix}_divergences_total`
    /// * `{prefix}_reader_panics_total`
    /// * `{prefix}_watchdog_trips_total`
    /// * `{prefix}_backoff_retries_total`
    /// * `{prefix}_recoveries_total`
    /// * `{prefix}_degraded_cost_overhead` (histogram)
    pub fn registered(registry: &Registry, prefix: &str, class_labels: &[&str]) -> Self {
        DegradationTelemetry {
            injected_total: registry
                .counter(&format!("{prefix}_injected_total"), "Faults injected, all classes"),
            parse_errors_total: registry.counter(
                &format!("{prefix}_parse_errors_total"),
                "Packets whose faulted wire image no longer parsed",
            ),
            degraded_lookups_total: registry.counter(
                &format!("{prefix}_degraded_lookups_total"),
                "Lookups degraded to the full common lookup",
            ),
            divergences_total: registry.counter(
                &format!("{prefix}_divergences_total"),
                "Forwarding decisions differing from the clue-less baseline (must stay 0)",
            ),
            reader_panics_total: registry.counter(
                &format!("{prefix}_reader_panics_total"),
                "Reader threads that panicked and were caught",
            ),
            watchdog_trips_total: registry.counter(
                &format!("{prefix}_watchdog_trips_total"),
                "Rebuilds exceeding the watchdog budget",
            ),
            backoff_retries_total: registry.counter(
                &format!("{prefix}_backoff_retries_total"),
                "Backoff-then-retry cycles after a watchdog trip",
            ),
            recoveries_total: registry.counter(
                &format!("{prefix}_recoveries_total"),
                "Rebuilds recovered after a trip, plus convergence publishes",
            ),
            degraded_cost_overhead: registry.histogram(
                &format!("{prefix}_degraded_cost_overhead"),
                "Extra memory references versus the clue-less baseline",
                DEGRADED_COST_BOUNDS,
            ),
            classes: class_labels
                .iter()
                .map(|l| {
                    let c = registry.counter(
                        &format!("{prefix}_{l}_injected_total"),
                        "Faults of this class injected",
                    );
                    (l.to_string(), c)
                })
                .collect(),
        }
    }

    /// The per-class counter at construction index `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range for the labels the bundle was
    /// built with.
    pub fn class_at(&self, i: usize) -> &Counter {
        &self.classes[i].1
    }

    /// The per-class counter for `label`, if the bundle knows it.
    pub fn class(&self, label: &str) -> Option<&Counter> {
        self.classes.iter().find(|(l, _)| l == label).map(|(_, c)| c)
    }

    /// The class labels, in construction order.
    pub fn class_labels(&self) -> impl Iterator<Item = &str> {
        self.classes.iter().map(|(l, _)| l.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_names_follow_the_convention() {
        let registry = Registry::new();
        let t = DegradationTelemetry::registered(
            &registry,
            "clue_fault",
            &["corrupt_clue", "stale_clue"],
        );
        for name in [
            "clue_fault_injected_total",
            "clue_fault_corrupt_clue_injected_total",
            "clue_fault_stale_clue_injected_total",
            "clue_fault_parse_errors_total",
            "clue_fault_degraded_lookups_total",
            "clue_fault_divergences_total",
            "clue_fault_reader_panics_total",
            "clue_fault_watchdog_trips_total",
            "clue_fault_backoff_retries_total",
            "clue_fault_recoveries_total",
            "clue_fault_degraded_cost_overhead",
        ] {
            assert!(registry.contains(name), "missing {name}");
        }
        t.injected_total.inc();
        t.class_at(0).add(3);
        t.degraded_cost_overhead.observe(7);
        // Registered handles share cells with the registry.
        let again = DegradationTelemetry::registered(
            &registry,
            "clue_fault",
            &["corrupt_clue", "stale_clue"],
        );
        assert_eq!(again.injected_total.get(), 1);
        assert_eq!(again.class("corrupt_clue").unwrap().get(), 3);
        assert_eq!(again.degraded_cost_overhead.count(), 1);
        assert!(again.class("no_such_class").is_none());
    }

    #[test]
    fn detached_cells_are_live_and_shared_by_clones() {
        let t = DegradationTelemetry::detached(&["dropped"]);
        t.reader_panics_total.inc();
        t.watchdog_trips_total.add(2);
        t.class_at(0).inc();
        let clone = t.clone();
        clone.reader_panics_total.inc();
        assert_eq!(t.reader_panics_total.get(), 2, "clones share cells");
        assert_eq!(t.watchdog_trips_total.get(), 2);
        assert_eq!(t.class("dropped").unwrap().get(), 1);
        assert_eq!(t.class_labels().collect::<Vec<_>>(), vec!["dropped"]);
    }
}
