//! A zero-dependency HTTP scrape endpoint over std's `TcpListener`.
//!
//! The observatory's live window: while a `clue throughput` / `churn` /
//! `chaos` run executes, a scraper (curl, Prometheus) can GET
//!
//! * `/metrics` — the registry in Prometheus text-exposition format;
//! * `/metrics.json` — the same snapshot as JSON.
//!
//! Every response is rendered from a fresh [`Registry::snapshot`], so
//! scrapes observe the workload *live* — and thanks to the snapshot
//! consistency fix, a mid-run histogram scrape is still internally
//! coherent (`Σ buckets == count`).
//!
//! The protocol is deliberately minimal — `HTTP/1.0`-style one request
//! per connection, `Connection: close`, GET only — because the peer is
//! a scraper, not a browser. The accept loop runs on one background
//! thread in nonblocking mode with a short sleep, so shutdown (an
//! `AtomicBool`, checked each iteration) needs no self-connect trick
//! and the server adds no load while idle.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::Registry;

/// How long the accept loop sleeps when no connection is pending —
/// also the shutdown-latency bound.
const IDLE_POLL: Duration = Duration::from_millis(10);

/// A live metrics endpoint serving a shared [`Registry`]; see the
/// module docs. Shuts down on [`ScrapeServer::shutdown`] or drop.
#[derive(Debug)]
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ScrapeServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9100"`; port 0 picks a free
    /// port) and starts serving `registry` on a background thread.
    pub fn start<A: ToSocketAddrs>(addr: A, registry: Arc<Registry>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("clue-scrape".into())
                .spawn(move || serve_loop(listener, registry, stop))?
        };
        Ok(ScrapeServer { addr, stop, thread: Some(thread) })
    }

    /// The bound address — what to point `curl` at (useful when the
    /// caller bound port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_loop(listener: TcpListener, registry: Arc<Registry>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Scrapers are few and requests tiny: serving inline on
                // the accept thread keeps the server single-threaded
                // and bounds its footprint at one connection.
                let _ = handle_connection(stream, &registry);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(IDLE_POLL);
            }
            Err(_) => std::thread::sleep(IDLE_POLL),
        }
    }
}

fn handle_connection(mut stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;

    // Read until the end of the request head (CRLFCRLF) or a bounded
    // amount — a scrape GET has no body worth waiting for.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }

    let request_line = std::str::from_utf8(&buf)
        .ok()
        .and_then(|s| s.lines().next())
        .unwrap_or("")
        .to_owned();
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));

    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => ("200 OK", "text/plain; version=0.0.4", registry.to_prometheus()),
        ("GET", "/metrics.json") => ("200 OK", "application/json", registry.to_json()),
        ("GET", _) => ("404 Not Found", "text/plain; version=0.0.4", "not found\n".to_owned()),
        _ => ("405 Method Not Allowed", "text/plain; version=0.0.4", "GET only\n".to_owned()),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::parse_prometheus;

    /// Minimal test-side HTTP GET; returns (status line, body).
    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect to scrape server");
        write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").expect("response has a head");
        (head.lines().next().unwrap_or("").to_owned(), body.to_owned())
    }

    fn test_registry() -> Arc<Registry> {
        let reg = Arc::new(Registry::new());
        reg.counter("clue_test_lookups_total", "Lookups").add(7);
        let h = reg.histogram("clue_test_ns", "Latency", &[10, 100]);
        h.observe(5);
        h.observe(50);
        reg
    }

    #[test]
    fn serves_prometheus_and_json_live() {
        let reg = test_registry();
        let server = ScrapeServer::start("127.0.0.1:0", reg.clone()).unwrap();

        let (status, body) = http_get(server.addr(), "/metrics");
        assert!(status.contains("200"), "got {status}");
        let doc = parse_prometheus(&body).expect("served /metrics must parse");
        assert_eq!(doc.sample("clue_test_lookups_total"), Some(7.0));
        assert_eq!(doc.types["clue_test_ns"], "histogram");

        // The endpoint is live: a second scrape sees new increments.
        reg.counter("clue_test_lookups_total", "").add(3);
        let (_, body) = http_get(server.addr(), "/metrics");
        let doc = parse_prometheus(&body).unwrap();
        assert_eq!(doc.sample("clue_test_lookups_total"), Some(10.0));

        let (status, body) = http_get(server.addr(), "/metrics.json");
        assert!(status.contains("200"));
        assert!(body.contains("\"clue_test_lookups_total\": {\"type\": \"counter\", \"value\": 10}"));
        assert!(body.trim_end().starts_with('{') && body.trim_end().ends_with('}'));
    }

    #[test]
    fn unknown_paths_get_404_and_non_get_405() {
        let server = ScrapeServer::start("127.0.0.1:0", test_registry()).unwrap();
        let (status, _) = http_get(server.addr(), "/nope");
        assert!(status.contains("404"), "got {status}");

        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 405"), "got {response}");
    }

    #[test]
    fn shutdown_is_prompt_and_idempotent() {
        let mut server = ScrapeServer::start("127.0.0.1:0", test_registry()).unwrap();
        let addr = server.addr();
        server.shutdown();
        server.shutdown();
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may accept briefly after close; a request must
                // at least go unanswered.
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_millis(100))).unwrap();
                write!(s, "GET /metrics HTTP/1.0\r\n\r\n").unwrap();
                let mut out = String::new();
                s.read_to_string(&mut out).unwrap_or(0) == 0
            },
            "server must stop serving after shutdown"
        );
    }

    #[test]
    fn mid_run_scrapes_see_consistent_histograms() {
        let reg = Arc::new(Registry::new());
        let h = reg.histogram("clue_test_live", "", &[1, 2, 4, 8]);
        let server = ScrapeServer::start("127.0.0.1:0", reg).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let h = h.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    h.observe(i % 10);
                    i += 1;
                }
            })
        };
        for _ in 0..5 {
            let (_, body) = http_get(server.addr(), "/metrics");
            let doc = parse_prometheus(&body).unwrap();
            let count = doc.sample("clue_test_live_count").unwrap();
            let inf = doc.sample("clue_test_live_bucket{le=\"+Inf\"}").unwrap();
            assert_eq!(count, inf, "scraped histogram must be internally consistent");
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }
}
