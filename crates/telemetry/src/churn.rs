//! Telemetry for the live-churn serving path.
//!
//! A churn deployment has one builder thread applying route updates
//! and republishing frozen snapshots while reader threads keep
//! serving lookups from pinned snapshots. The interesting numbers are
//! on the *boundary* between the two: how often the snapshot swaps,
//! how long a rebuild takes, and how far behind the freshest snapshot
//! the readers are allowed to fall. [`ChurnTelemetry`] names them
//! once, following the workspace `clue_<component>_<metric>`
//! convention under the `clue_churn` prefix.

use crate::registry::{Counter, Gauge, Histogram, Registry};
use crate::REBUILD_LATENCY_BOUNDS_US;

/// Telemetry for an epoch-swapped engine under a route-update stream.
///
/// Like [`crate::LookupTelemetry`], a bundle is either *detached*
/// (live cells, nothing exported) or *registered* into a shared
/// [`Registry`]; cloning shares the underlying cells, so the builder
/// and every reader thread can hold the same bundle.
#[derive(Debug, Clone)]
pub struct ChurnTelemetry {
    /// Snapshots published (epoch swaps) since start.
    pub swaps_total: Counter,
    /// Route updates (announce/withdraw/modify) applied by the builder.
    pub updates_applied_total: Counter,
    /// Microseconds to re-freeze and publish one snapshot.
    pub rebuild_latency_us: Histogram,
    /// Epochs the most recently observed reader batch lagged behind
    /// the freshest published snapshot (0 = fully current).
    pub staleness: Gauge,
    /// Lookups answered from snapshot N while snapshot N+1 existed.
    pub stale_lookups_total: Counter,
    /// Retired snapshots reclaimed after their grace period expired.
    pub reclaimed_total: Counter,
}

impl Default for ChurnTelemetry {
    fn default() -> Self {
        Self::detached()
    }
}

impl ChurnTelemetry {
    /// A detached bundle.
    pub fn detached() -> Self {
        ChurnTelemetry {
            swaps_total: Counter::new(),
            updates_applied_total: Counter::new(),
            rebuild_latency_us: Histogram::new(REBUILD_LATENCY_BOUNDS_US),
            staleness: Gauge::new(),
            stale_lookups_total: Counter::new(),
            reclaimed_total: Counter::new(),
        }
    }

    /// A bundle registered into `registry` under `prefix` (the
    /// workspace uses `clue_churn`), creating or sharing:
    ///
    /// * `{prefix}_swaps_total`
    /// * `{prefix}_updates_applied_total`
    /// * `{prefix}_rebuild_latency_us` (histogram)
    /// * `{prefix}_staleness` (gauge, epochs behind)
    /// * `{prefix}_stale_lookups_total`
    /// * `{prefix}_reclaimed_total`
    pub fn registered(registry: &Registry, prefix: &str) -> Self {
        ChurnTelemetry {
            swaps_total: registry.counter(
                &format!("{prefix}_swaps_total"),
                "Frozen snapshots published (epoch swaps)",
            ),
            updates_applied_total: registry.counter(
                &format!("{prefix}_updates_applied_total"),
                "Route updates applied to the live engine",
            ),
            rebuild_latency_us: registry.histogram(
                &format!("{prefix}_rebuild_latency_us"),
                "Microseconds to re-freeze and publish one snapshot",
                REBUILD_LATENCY_BOUNDS_US,
            ),
            staleness: registry.gauge(
                &format!("{prefix}_staleness"),
                "Epochs the last observed reader batch lagged the freshest snapshot",
            ),
            stale_lookups_total: registry.counter(
                &format!("{prefix}_stale_lookups_total"),
                "Lookups answered from a superseded snapshot",
            ),
            reclaimed_total: registry.counter(
                &format!("{prefix}_reclaimed_total"),
                "Retired snapshots freed after their grace period",
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_names_follow_the_convention() {
        let registry = Registry::new();
        let t = ChurnTelemetry::registered(&registry, "clue_churn");
        for name in [
            "clue_churn_swaps_total",
            "clue_churn_updates_applied_total",
            "clue_churn_rebuild_latency_us",
            "clue_churn_staleness",
            "clue_churn_stale_lookups_total",
            "clue_churn_reclaimed_total",
        ] {
            assert!(registry.contains(name), "missing {name}");
        }
        t.swaps_total.inc();
        t.rebuild_latency_us.observe(180);
        t.staleness.set(2.0);
        // Registered handles share cells with the registry: a second
        // bundle under the same prefix sees the same values.
        let again = ChurnTelemetry::registered(&registry, "clue_churn");
        assert_eq!(again.swaps_total.get(), 1);
        assert_eq!(again.rebuild_latency_us.count(), 1);
        assert_eq!(again.staleness.get(), 2.0);
    }

    #[test]
    fn detached_cells_are_live() {
        let t = ChurnTelemetry::detached();
        t.updates_applied_total.add(7);
        t.stale_lookups_total.inc();
        t.reclaimed_total.inc();
        assert_eq!(t.updates_applied_total.get(), 7);
        assert_eq!(t.stale_lookups_total.get(), 1);
        assert_eq!(t.reclaimed_total.get(), 1);
        let clone = t.clone();
        clone.updates_applied_total.add(3);
        assert_eq!(t.updates_applied_total.get(), 10, "clones share cells");
    }
}
