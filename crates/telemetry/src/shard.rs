//! Cacheline-sharded atomic cells — the contention treatment under
//! every hot-path metric.
//!
//! A single shared `AtomicU64` is lock-free but not contention-free:
//! when N cores increment the same counter, the cacheline holding it
//! ping-pongs between their private caches and the "relaxed add" costs
//! a coherence round-trip per increment. That is exactly the
//! shared-nothing serving runtime's failure mode (ROADMAP item 1:
//! "per-core telemetry aggregated at scrape time").
//!
//! [`ShardedU64`] splits one logical cell into [`SHARDS`] physical
//! cells, each alone on its cacheline. A writer picks its shard once
//! per thread (round-robin at first touch, cached in a thread-local)
//! and increments only that cell, so steady-state recording never
//! writes a line another recording thread reads. Readers merge the
//! shards — scrape-time work, off the hot path.
//!
//! The memory trade is explicit: one sharded cell is `SHARDS` × 64 B
//! (1 KiB at 16 shards) instead of 8 B. Metric handles are few and
//! long-lived, so the workspace buys contention-freedom with kilobytes.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of physical cells per logical cell. 16 covers the core
/// counts this workspace targets; more threads than shards simply
/// share (round-robin), degrading gracefully toward the old behavior.
pub(crate) const SHARDS: usize = 16;

/// A `u64` cell alone on its cacheline, so two shards never share one.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCell(AtomicU64);

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard, assigned round-robin at first metric touch.
    static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

/// The shard index the calling thread records into.
#[inline]
pub(crate) fn shard_index() -> usize {
    SHARD.with(|s| *s)
}

/// One logical `u64` counter cell, physically sharded; see the module
/// docs. All write operations touch only the calling thread's shard.
#[derive(Debug, Default)]
pub(crate) struct ShardedU64 {
    cells: [PaddedCell; SHARDS],
}

impl ShardedU64 {
    /// Adds `n` to the calling thread's shard.
    #[inline]
    pub(crate) fn add(&self, n: u64) {
        self.cells[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The merged value across all shards.
    pub(crate) fn sum(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    /// Zeroes every shard.
    pub(crate) fn reset(&self) {
        for c in &self.cells {
            c.0.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_index_is_stable_per_thread() {
        let a = shard_index();
        let b = shard_index();
        assert_eq!(a, b);
        assert!(a < SHARDS);
    }

    #[test]
    fn adds_from_many_threads_merge_exactly() {
        let cell = std::sync::Arc::new(ShardedU64::default());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cell = cell.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        cell.add(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.sum(), 80_000);
        cell.reset();
        assert_eq!(cell.sum(), 0);
    }

    #[test]
    fn shards_do_not_share_cachelines() {
        assert_eq!(core::mem::size_of::<PaddedCell>(), 64);
        assert_eq!(core::mem::align_of::<PaddedCell>(), 64);
    }
}
