//! Pre-named metric bundles for the workspace's hot paths.
//!
//! Components don't invent metric names ad hoc: they hold a
//! [`LookupTelemetry`] (per-lookup classification, memory references,
//! search depth) or a [`CacheTelemetry`] (hits/misses/evictions/
//! invalidations), constructed either *detached* — standalone atomic
//! cells, nothing exported — or *registered* into a shared
//! [`Registry`] under the workspace naming convention
//! `clue_<component>_<metric>`.
//!
//! Because handles share their cells with the registry, a component
//! recording into a registered bundle is automatically visible to
//! every exporter with no copying or locking.

use std::sync::Arc;

use crate::registry::{Counter, Histogram, Registry};
use crate::trace::{LookupClass, LookupEvent, Subscriber};
use crate::{MEMORY_REFERENCE_BOUNDS, PREFIX_LENGTH_BOUNDS, SEARCH_DEPTH_BOUNDS};

/// Telemetry for one lookup path (an engine, a simulator, a CLI run).
///
/// Recording one [`LookupEvent`] costs a handful of relaxed atomic
/// adds; cloning shares the underlying cells.
#[derive(Clone)]
pub struct LookupTelemetry {
    /// Every lookup observed.
    pub lookups_total: Counter,
    /// Lookups by resolution class, indexed like [`LookupClass::all`].
    pub by_class: [Counter; 5],
    /// Total memory references per lookup.
    pub memory_references: Histogram,
    /// Continued-search depth per lookup (0 for final hits).
    pub search_depth: Histogram,
    /// Length of the clue carried, for clue-bearing lookups.
    pub clue_length: Histogram,
    subscriber: Option<Arc<dyn Subscriber>>,
}

impl std::fmt::Debug for LookupTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LookupTelemetry")
            .field("lookups_total", &self.lookups_total.get())
            .field("has_subscriber", &self.subscriber.is_some())
            .finish()
    }
}

impl Default for LookupTelemetry {
    fn default() -> Self {
        Self::detached()
    }
}

impl LookupTelemetry {
    /// A detached bundle: live cells, no registry, no subscriber.
    pub fn detached() -> Self {
        LookupTelemetry {
            lookups_total: Counter::new(),
            by_class: Default::default(),
            memory_references: Histogram::new(MEMORY_REFERENCE_BOUNDS),
            search_depth: Histogram::new(SEARCH_DEPTH_BOUNDS),
            clue_length: Histogram::new(PREFIX_LENGTH_BOUNDS),
            subscriber: None,
        }
    }

    /// A bundle registered into `registry` under `prefix` (e.g.
    /// `clue_core`), creating or sharing:
    ///
    /// * `{prefix}_lookups_total`
    /// * `{prefix}_lookups_{clueless,final,continued,miss,malformed}_total`
    /// * `{prefix}_memory_references` (histogram)
    /// * `{prefix}_search_depth` (histogram)
    /// * `{prefix}_clue_length` (histogram)
    pub fn registered(registry: &Registry, prefix: &str) -> Self {
        let lookups_total = registry.counter(
            &format!("{prefix}_lookups_total"),
            "Total lookups performed",
        );
        let by_class = LookupClass::all().map(|class| {
            registry.counter(
                &format!("{prefix}_lookups_{}_total", class.label()),
                match class {
                    LookupClass::Clueless => "Lookups that arrived without a usable clue",
                    LookupClass::Final => "Clue hits resolved by the FD alone",
                    LookupClass::Continued => "Clue hits that ran a continued search",
                    LookupClass::Miss => "Clue-table misses (full lookup)",
                    LookupClass::Malformed => "Clues ignored as not a prefix of the destination",
                },
            )
        });
        LookupTelemetry {
            lookups_total,
            by_class,
            memory_references: registry.histogram(
                &format!("{prefix}_memory_references"),
                "Memory references per lookup",
                MEMORY_REFERENCE_BOUNDS,
            ),
            search_depth: registry.histogram(
                &format!("{prefix}_search_depth"),
                "Continued-search depth per lookup",
                SEARCH_DEPTH_BOUNDS,
            ),
            clue_length: registry.histogram(
                &format!("{prefix}_clue_length"),
                "Length of the clue carried by the packet",
                PREFIX_LENGTH_BOUNDS,
            ),
            subscriber: None,
        }
    }

    /// Attaches a trace subscriber; every recorded event is forwarded.
    pub fn with_subscriber(mut self, subscriber: Arc<dyn Subscriber>) -> Self {
        self.subscriber = Some(subscriber);
        self
    }

    /// The attached subscriber, if any.
    pub fn subscriber(&self) -> Option<&Arc<dyn Subscriber>> {
        self.subscriber.as_ref()
    }

    /// Records one lookup.
    #[inline]
    pub fn record(&self, event: &LookupEvent) {
        self.lookups_total.inc();
        let idx = LookupClass::all()
            .iter()
            .position(|c| *c == event.class)
            .expect("all classes enumerated");
        self.by_class[idx].inc();
        self.memory_references.observe(event.memory_references);
        self.search_depth.observe(event.search_depth);
        if let Some(len) = event.clue_len {
            self.clue_length.observe(len as u64);
        }
        if let Some(sub) = &self.subscriber {
            sub.record(event);
        }
    }

    /// The count recorded for `class`.
    pub fn class_count(&self, class: LookupClass) -> u64 {
        let idx = LookupClass::all()
            .iter()
            .position(|c| *c == class)
            .expect("all classes enumerated");
        self.by_class[idx].get()
    }

    /// Resets every cell (e.g. after a warm-up phase).
    pub fn reset(&self) {
        self.lookups_total.reset();
        for c in &self.by_class {
            c.reset();
        }
        self.memory_references.reset();
        self.search_depth.reset();
        self.clue_length.reset();
    }
}

/// Telemetry for an LRU cache.
#[derive(Debug, Clone, Default)]
pub struct CacheTelemetry {
    /// Lookups served from the cache.
    pub hits: Counter,
    /// Lookups that fell through to the backing store.
    pub misses: Counter,
    /// Entries evicted to make room.
    pub evictions: Counter,
    /// Entries dropped by explicit invalidation.
    pub invalidations: Counter,
}

impl CacheTelemetry {
    /// A detached bundle.
    pub fn detached() -> Self {
        Self::default()
    }

    /// A bundle registered into `registry` under `prefix` (the
    /// workspace uses `clue_cache`), creating or sharing
    /// `{prefix}_{hits,misses,evictions,invalidations}_total`.
    pub fn registered(registry: &Registry, prefix: &str) -> Self {
        CacheTelemetry {
            hits: registry
                .counter(&format!("{prefix}_hits_total"), "Cache lookups served from the cache"),
            misses: registry.counter(
                &format!("{prefix}_misses_total"),
                "Cache lookups that fell through to the backing store",
            ),
            evictions: registry
                .counter(&format!("{prefix}_evictions_total"), "Entries evicted to make room"),
            invalidations: registry.counter(
                &format!("{prefix}_invalidations_total"),
                "Entries dropped by explicit invalidation",
            ),
        }
    }

    /// Hit rate in `[0, 1]` (0 when no lookups recorded).
    pub fn hit_rate(&self) -> f64 {
        let n = self.hits.get() + self.misses.get();
        if n == 0 {
            0.0
        } else {
            self.hits.get() as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RingBufferSubscriber;

    fn ev(class: LookupClass, refs: u64) -> LookupEvent {
        LookupEvent {
            clue_len: Some(20),
            class,
            search_depth: if class == LookupClass::Continued { 3 } else { 0 },
            cache_hit: None,
            memory_references: refs,
        }
    }

    #[test]
    fn record_updates_totals_classes_and_histograms() {
        let t = LookupTelemetry::detached();
        t.record(&ev(LookupClass::Final, 1));
        t.record(&ev(LookupClass::Final, 1));
        t.record(&ev(LookupClass::Continued, 4));
        t.record(&LookupEvent::clueless(13));
        assert_eq!(t.lookups_total.get(), 4);
        assert_eq!(t.class_count(LookupClass::Final), 2);
        assert_eq!(t.class_count(LookupClass::Continued), 1);
        assert_eq!(t.class_count(LookupClass::Clueless), 1);
        assert_eq!(t.class_count(LookupClass::Miss), 0);
        assert_eq!(t.memory_references.count(), 4);
        assert_eq!(t.memory_references.sum(), 19);
        // The clueless event has no clue, so only 3 lengths recorded.
        assert_eq!(t.clue_length.count(), 3);
        t.reset();
        assert_eq!(t.lookups_total.get(), 0);
        assert_eq!(t.memory_references.count(), 0);
    }

    #[test]
    fn registered_bundle_is_visible_through_the_registry() {
        let reg = Registry::new();
        let t = LookupTelemetry::registered(&reg, "clue_core");
        t.record(&ev(LookupClass::Final, 1));
        assert!(reg.contains("clue_core_lookups_total"));
        assert!(reg.contains("clue_core_lookups_final_total"));
        assert!(reg.contains("clue_core_memory_references"));
        let prom = reg.to_prometheus();
        assert!(prom.contains("clue_core_lookups_total 1"));
        assert!(prom.contains("clue_core_lookups_final_total 1"));
        assert!(prom.contains("clue_core_memory_references_bucket{le=\"1\"} 1"));
    }

    #[test]
    fn two_registered_bundles_share_cells() {
        let reg = Registry::new();
        let a = LookupTelemetry::registered(&reg, "clue_core");
        let b = LookupTelemetry::registered(&reg, "clue_core");
        a.record(&ev(LookupClass::Miss, 9));
        assert_eq!(b.lookups_total.get(), 1);
        assert_eq!(b.class_count(LookupClass::Miss), 1);
    }

    #[test]
    fn subscriber_receives_every_event() {
        let ring = Arc::new(RingBufferSubscriber::new(8));
        let t = LookupTelemetry::detached().with_subscriber(ring.clone());
        t.record(&ev(LookupClass::Continued, 5));
        t.record(&ev(LookupClass::Final, 1));
        assert_eq!(ring.seen(), 2);
        assert_eq!(ring.events()[0].class, LookupClass::Continued);
        assert!(t.subscriber().is_some());
    }

    #[test]
    fn cache_telemetry_hit_rate() {
        let reg = Registry::new();
        let c = CacheTelemetry::registered(&reg, "clue_cache");
        c.hits.add(3);
        c.misses.inc();
        c.evictions.inc();
        c.invalidations.inc();
        assert_eq!(c.hit_rate(), 0.75);
        assert!(reg.contains("clue_cache_hits_total"));
        assert!(reg.contains("clue_cache_evictions_total"));
        assert_eq!(CacheTelemetry::detached().hit_rate(), 0.0);
    }
}
