//! Metric bundle for the fleet-scale topology simulator
//! (`clue_fleet_*`).
//!
//! The fleet run is two legs: a deterministic packet leg (flows routed
//! over the multi-core runtime, bit-identical at any worker count) and
//! a live churn leg (a builder republishing per-router engine bundles
//! through `EpochCell`s while serving workers keep routing). Both legs
//! accumulate plain integers locally and flush here once at the end of
//! a leg — nothing in this bundle is touched per packet — so the
//! series answer the deployment questions (how much did clues save
//! fleet-wide, how do the per-link hit rates distribute, how stale did
//! churn make the fleet) without taxing the loops they observe.

use crate::registry::{Counter, Gauge, Histogram, Registry};

/// Bucket bounds for per-link clue hit rate, in percent of the link's
/// clued lookups.
const LINK_HIT_RATE_BOUNDS: [u64; 9] = [10, 25, 50, 70, 80, 90, 95, 99, 100];

/// Bucket bounds for per-router engine-bundle rebuild latency in
/// microseconds (a fleet rebuild recompiles every engine of a router).
const REBUILD_US_BOUNDS: [u64; 8] = [100, 250, 500, 1_000, 2_500, 5_000, 20_000, 100_000];

/// Bucket bounds for churn staleness (epochs a pinned router snapshot
/// lagged the writer when a flow routed through it).
const STALENESS_BOUNDS: [u64; 6] = [0, 1, 2, 4, 8, 16];

/// Telemetry for the fleet-scale simulator (`clue_fleet_*`).
#[derive(Clone, Debug)]
pub struct FleetTelemetry {
    /// Routers in the generated topology.
    pub routers: Gauge,
    /// Undirected links in the generated topology.
    pub links: Gauge,
    /// Flows routed (each flow is one end-to-end walk).
    pub flows_total: Counter,
    /// Packets represented (flows weighted by their packet counts).
    pub packets_total: Counter,
    /// Router-hops walked across all flows.
    pub hops_total: Counter,
    /// Hops that resolved through a per-link clue engine.
    pub clue_hops_total: Counter,
    /// Flows delivered to the router originating their destination.
    pub delivered_total: Counter,
    /// Clued hops whose clue-table hit was final (Case 2 / Claim 1).
    pub link_hits_total: Counter,
    /// Clued hops that hit a problematic clue and ran a continuation
    /// (Case 3).
    pub link_problematic_total: Counter,
    /// Clued hops whose clue missed the table (Case 1: absent vertex).
    pub link_misses_total: Counter,
    /// Hops through a clue-capable link that carried no usable clue.
    pub link_clueless_total: Counter,
    /// Memory references spent by the clue deployment.
    pub clue_refs_total: Counter,
    /// Memory references the clue-less baseline would have spent on
    /// the identical hops.
    pub baseline_refs_total: Counter,
    /// Fleet-wide savings: `1 - clue_refs / baseline_refs`.
    pub savings_ratio: Gauge,
    /// Distribution of per-link clue hit rates (percent), one sample
    /// per directed link with clued traffic.
    pub link_hit_rate_pct: Histogram,
    /// Churn events applied by the fleet builder.
    pub churn_events_total: Counter,
    /// Per-router engine-bundle publishes triggered by churn.
    pub republished_total: Counter,
    /// Per-router bundle rebuild latency (microseconds).
    pub rebuild_us: Histogram,
    /// Epochs a pinned router snapshot lagged the writer per routed
    /// hop during churn (0 = current).
    pub staleness_epochs: Histogram,
}

impl Default for FleetTelemetry {
    fn default() -> Self {
        FleetTelemetry {
            routers: Gauge::new(),
            links: Gauge::new(),
            flows_total: Counter::new(),
            packets_total: Counter::new(),
            hops_total: Counter::new(),
            clue_hops_total: Counter::new(),
            delivered_total: Counter::new(),
            link_hits_total: Counter::new(),
            link_problematic_total: Counter::new(),
            link_misses_total: Counter::new(),
            link_clueless_total: Counter::new(),
            clue_refs_total: Counter::new(),
            baseline_refs_total: Counter::new(),
            savings_ratio: Gauge::new(),
            link_hit_rate_pct: Histogram::new(&LINK_HIT_RATE_BOUNDS),
            churn_events_total: Counter::new(),
            republished_total: Counter::new(),
            rebuild_us: Histogram::new(&REBUILD_US_BOUNDS),
            staleness_epochs: Histogram::new(&STALENESS_BOUNDS),
        }
    }
}

impl FleetTelemetry {
    /// A detached bundle: live cells, no registry.
    pub fn detached() -> Self {
        Self::default()
    }

    /// A bundle registered into `registry` under `prefix` (e.g.
    /// `clue_fleet`), creating or sharing the `{prefix}_*` series
    /// named after this struct's fields.
    pub fn registered(registry: &Registry, prefix: &str) -> Self {
        FleetTelemetry {
            routers: registry
                .gauge(&format!("{prefix}_routers"), "Routers in the generated fleet topology"),
            links: registry.gauge(
                &format!("{prefix}_links"),
                "Undirected links in the generated fleet topology",
            ),
            flows_total: registry
                .counter(&format!("{prefix}_flows_total"), "Flows routed end to end"),
            packets_total: registry.counter(
                &format!("{prefix}_packets_total"),
                "Packets represented (flows weighted by packet count)",
            ),
            hops_total: registry
                .counter(&format!("{prefix}_hops_total"), "Router-hops walked across all flows"),
            clue_hops_total: registry.counter(
                &format!("{prefix}_clue_hops_total"),
                "Hops resolved through a per-link clue engine",
            ),
            delivered_total: registry.counter(
                &format!("{prefix}_delivered_total"),
                "Flows delivered to their destination's origin router",
            ),
            link_hits_total: registry.counter(
                &format!("{prefix}_link_hits_total"),
                "Clued hops resolved final by the clue table (Case 2)",
            ),
            link_problematic_total: registry.counter(
                &format!("{prefix}_link_problematic_total"),
                "Clued hops that ran a problematic-clue continuation (Case 3)",
            ),
            link_misses_total: registry.counter(
                &format!("{prefix}_link_misses_total"),
                "Clued hops whose clue was absent from the link's table (Case 1)",
            ),
            link_clueless_total: registry.counter(
                &format!("{prefix}_link_clueless_total"),
                "Hops through a clue-capable link that carried no usable clue",
            ),
            clue_refs_total: registry.counter(
                &format!("{prefix}_clue_refs_total"),
                "Memory references spent by the clue deployment",
            ),
            baseline_refs_total: registry.counter(
                &format!("{prefix}_baseline_refs_total"),
                "Memory references the clue-less baseline needs for the same hops",
            ),
            savings_ratio: registry.gauge(
                &format!("{prefix}_savings_ratio"),
                "Fleet-wide memory-reference savings (1 - clue/baseline)",
            ),
            link_hit_rate_pct: registry.histogram(
                &format!("{prefix}_link_hit_rate_pct"),
                "Per-link clue hit rate in percent of clued lookups",
                &LINK_HIT_RATE_BOUNDS,
            ),
            churn_events_total: registry.counter(
                &format!("{prefix}_churn_events_total"),
                "Churn events applied by the fleet builder",
            ),
            republished_total: registry.counter(
                &format!("{prefix}_republished_total"),
                "Per-router engine-bundle publishes triggered by churn",
            ),
            rebuild_us: registry.histogram(
                &format!("{prefix}_rebuild_us"),
                "Per-router engine-bundle rebuild latency in microseconds",
                &REBUILD_US_BOUNDS,
            ),
            staleness_epochs: registry.histogram(
                &format!("{prefix}_staleness_epochs"),
                "Epochs behind the writer per routed hop during churn (0 = current)",
                &STALENESS_BOUNDS,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_counts() {
        let t = FleetTelemetry::detached();
        t.routers.set(1024.0);
        t.flows_total.add(500);
        t.link_hits_total.add(400);
        t.link_problematic_total.add(20);
        t.clue_refs_total.add(900);
        t.baseline_refs_total.add(4000);
        t.savings_ratio.set(1.0 - 900.0 / 4000.0);
        t.link_hit_rate_pct.observe(92);
        t.staleness_epochs.observe(1);
        assert_eq!(t.routers.get(), 1024.0);
        assert_eq!(t.flows_total.get(), 500);
        assert_eq!(t.link_hit_rate_pct.snapshot().count, 1);
        assert!(t.savings_ratio.get() > 0.7);
    }

    #[test]
    fn registered_uses_the_naming_convention() {
        let registry = Registry::new();
        let t = FleetTelemetry::registered(&registry, "clue_fleet");
        t.flows_total.add(1);
        for name in [
            "clue_fleet_routers",
            "clue_fleet_links",
            "clue_fleet_flows_total",
            "clue_fleet_packets_total",
            "clue_fleet_hops_total",
            "clue_fleet_clue_hops_total",
            "clue_fleet_delivered_total",
            "clue_fleet_link_hits_total",
            "clue_fleet_link_problematic_total",
            "clue_fleet_link_misses_total",
            "clue_fleet_link_clueless_total",
            "clue_fleet_clue_refs_total",
            "clue_fleet_baseline_refs_total",
            "clue_fleet_savings_ratio",
            "clue_fleet_link_hit_rate_pct",
            "clue_fleet_churn_events_total",
            "clue_fleet_republished_total",
            "clue_fleet_rebuild_us",
            "clue_fleet_staleness_epochs",
        ] {
            assert!(registry.contains(name), "{name} registered");
        }
        assert_eq!(t.flows_total.get(), 1);
    }
}
