//! Exporters: Prometheus text-exposition format and JSON, plus a small
//! exposition-format parser used to round-trip-test the scrape server.
//!
//! Both writers are hand-rolled (the build environment cannot pull
//! serde), deterministic — metrics render in sorted name order — and
//! defensive about floats: a non-finite gauge renders as `NaN`/`+Inf`
//! in Prometheus (which allows them) and as `null` in JSON (which does
//! not). Histograms additionally export interpolated p50/p90/p99
//! estimates (see [`crate::HistogramSnapshot::quantile`]) as untyped
//! `{name}_p50`… samples in Prometheus and as `"p50"`… fields in JSON.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::registry::{Registry, Snapshot};

fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf".to_owned() } else { "-Inf".to_owned() }
    } else {
        format!("{v}")
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Escapes a `# HELP` text per the exposition format: backslash and
/// newline only (`# HELP` text is not quoted, so `"` stays literal).
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unescape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Escapes a label *value* per the exposition format: backslash,
/// double-quote and newline. The workspace's only generated labels are
/// numeric `le` bounds, but the writer escapes unconditionally so a
/// future label can never corrupt the document.
fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Renders `registry` in Prometheus text-exposition format: `# HELP` /
/// `# TYPE` comments followed by samples; histograms expand into
/// cumulative `_bucket{le="…"}` series plus `_sum`, `_count` and
/// untyped interpolated `_p50`/`_p90`/`_p99` quantile estimates.
pub fn to_prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    for (name, help, snap) in registry.snapshot() {
        if !help.is_empty() {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&help));
        }
        match snap {
            Snapshot::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {v}");
            }
            Snapshot::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {}", prom_f64(v));
            }
            Snapshot::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for (bound, count) in h.bounds.iter().zip(&h.counts) {
                    cumulative += count;
                    let le = escape_label_value(&bound.to_string());
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                }
                cumulative += h.counts.last().copied().unwrap_or(0);
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                let _ = writeln!(out, "{name}_sum {}", h.sum);
                let _ = writeln!(out, "{name}_count {}", h.count);
                let _ = writeln!(out, "{name}_p50 {}", prom_f64(h.p50()));
                let _ = writeln!(out, "{name}_p90 {}", prom_f64(h.p90()));
                let _ = writeln!(out, "{name}_p99 {}", prom_f64(h.p99()));
            }
        }
    }
    out
}

/// Renders `registry` as one JSON object keyed by metric name:
///
/// ```json
/// {
///   "clue_core_lookups_total": {"type": "counter", "value": 12},
///   "clue_cache_hit_ratio": {"type": "gauge", "value": 0.9},
///   "clue_core_memory_references": {
///     "type": "histogram",
///     "buckets": [{"le": 1, "count": 10}, {"le": "+Inf", "count": 2}],
///     "sum": 34, "count": 12, "p50": 1, "p90": 1, "p99": 1
///   }
/// }
/// ```
pub fn to_json(registry: &Registry) -> String {
    let snapshot = registry.snapshot();
    let mut out = String::from("{\n");
    for (i, (name, _help, snap)) in snapshot.iter().enumerate() {
        let _ = write!(out, "  \"{name}\": ");
        match snap {
            Snapshot::Counter(v) => {
                let _ = write!(out, "{{\"type\": \"counter\", \"value\": {v}}}");
            }
            Snapshot::Gauge(v) => {
                let _ = write!(out, "{{\"type\": \"gauge\", \"value\": {}}}", json_f64(*v));
            }
            Snapshot::Histogram(h) => {
                let _ = write!(out, "{{\"type\": \"histogram\", \"buckets\": [");
                for (j, (bound, count)) in h.bounds.iter().zip(&h.counts).enumerate() {
                    if j > 0 {
                        let _ = write!(out, ", ");
                    }
                    let _ = write!(out, "{{\"le\": {bound}, \"count\": {count}}}");
                }
                let overflow = h.counts.last().copied().unwrap_or(0);
                if !h.bounds.is_empty() {
                    let _ = write!(out, ", ");
                }
                let _ = write!(out, "{{\"le\": \"+Inf\", \"count\": {overflow}}}");
                let _ = write!(
                    out,
                    "], \"sum\": {}, \"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                    h.sum,
                    h.count,
                    json_f64(h.p50()),
                    json_f64(h.p90()),
                    json_f64(h.p99())
                );
            }
        }
        if i + 1 < snapshot.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push('}');
    out.push('\n');
    out
}

/// A parsed Prometheus text-exposition document — the verification side
/// of the exporter, used to round-trip what the scrape server serves.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct PromDocument {
    /// `# HELP` texts by metric family name, unescaped.
    pub helps: BTreeMap<String, String>,
    /// `# TYPE` declarations by metric family name.
    pub types: BTreeMap<String, String>,
    /// Sample values keyed by full series id (`name` or
    /// `name{labels}`, labels verbatim as rendered).
    pub samples: BTreeMap<String, f64>,
}

impl PromDocument {
    /// The value of the series `id` (`name` or `name{labels}`).
    pub fn sample(&self, id: &str) -> Option<f64> {
        self.samples.get(id).copied()
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name.chars().skip(1).all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_prom_value(s: &str) -> Result<f64, String> {
    match s {
        "NaN" => Ok(f64::NAN),
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        other => other.parse::<f64>().map_err(|_| format!("bad sample value {other:?}")),
    }
}

/// Parses Prometheus text-exposition format into a [`PromDocument`],
/// validating enough structure for conformance tests: `# HELP` /
/// `# TYPE` comment grammar, metric-name syntax, balanced label braces
/// and numeric sample values (including `NaN` / `±Inf`).
pub fn parse_prometheus(text: &str) -> Result<PromDocument, String> {
    let mut doc = PromDocument::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("HELP ") {
                let (name, help) = rest
                    .split_once(' ')
                    .map(|(n, h)| (n, h.to_owned()))
                    .unwrap_or((rest, String::new()));
                if !valid_metric_name(name) {
                    return Err(err(format!("bad HELP metric name {name:?}")));
                }
                doc.helps.insert(name.to_owned(), unescape_help(&help));
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                let (name, kind) = rest
                    .split_once(' ')
                    .ok_or_else(|| err(format!("TYPE without a kind: {line:?}")))?;
                if !valid_metric_name(name) {
                    return Err(err(format!("bad TYPE metric name {name:?}")));
                }
                match kind {
                    "counter" | "gauge" | "histogram" | "summary" | "untyped" => {}
                    other => return Err(err(format!("unknown TYPE kind {other:?}"))),
                }
                doc.types.insert(name.to_owned(), kind.to_owned());
            }
            // Other comments are legal and ignored.
            continue;
        }
        // Sample line: `name value` or `name{labels} value`.
        let (series, value) = if let Some(brace) = line.find('{') {
            let close = line.rfind('}').ok_or_else(|| err("unbalanced label braces".into()))?;
            if close < brace {
                return Err(err("unbalanced label braces".into()));
            }
            let name = &line[..brace];
            if !valid_metric_name(name) {
                return Err(err(format!("bad metric name {name:?}")));
            }
            (&line[..=close], line[close + 1..].trim())
        } else {
            let (name, v) = line
                .split_once(' ')
                .ok_or_else(|| err(format!("sample without a value: {line:?}")))?;
            if !valid_metric_name(name) {
                return Err(err(format!("bad metric name {name:?}")));
            }
            (name, v.trim())
        };
        let value = parse_prom_value(value).map_err(err)?;
        doc.samples.insert(series.to_owned(), value);
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        let c = reg.counter("clue_core_lookups_total", "Total lookups");
        c.add(12);
        let g = reg.gauge("clue_cache_hit_ratio", "Cache hit ratio");
        g.set(0.75);
        let h = reg.histogram("clue_core_memory_references", "Accesses per lookup", &[1, 4]);
        h.observe(1);
        h.observe(1);
        h.observe(3);
        h.observe(9);
        reg
    }

    #[test]
    fn prometheus_golden() {
        let got = to_prometheus(&sample_registry());
        // Quantiles for counts [2, 1, 1] of 4: p50 lands in bucket
        // (0, 1] at full fraction → 1; p90/p99 land in the overflow,
        // which reports the highest finite bound → 4.
        let want = "\
# HELP clue_cache_hit_ratio Cache hit ratio
# TYPE clue_cache_hit_ratio gauge
clue_cache_hit_ratio 0.75
# HELP clue_core_lookups_total Total lookups
# TYPE clue_core_lookups_total counter
clue_core_lookups_total 12
# HELP clue_core_memory_references Accesses per lookup
# TYPE clue_core_memory_references histogram
clue_core_memory_references_bucket{le=\"1\"} 2
clue_core_memory_references_bucket{le=\"4\"} 3
clue_core_memory_references_bucket{le=\"+Inf\"} 4
clue_core_memory_references_sum 14
clue_core_memory_references_count 4
clue_core_memory_references_p50 1
clue_core_memory_references_p90 4
clue_core_memory_references_p99 4
";
        assert_eq!(got, want);
    }

    #[test]
    fn json_golden() {
        let got = to_json(&sample_registry());
        let want = "\
{
  \"clue_cache_hit_ratio\": {\"type\": \"gauge\", \"value\": 0.75},
  \"clue_core_lookups_total\": {\"type\": \"counter\", \"value\": 12},
  \"clue_core_memory_references\": {\"type\": \"histogram\", \"buckets\": [{\"le\": 1, \"count\": 2}, {\"le\": 4, \"count\": 1}, {\"le\": \"+Inf\", \"count\": 1}], \"sum\": 14, \"count\": 4, \"p50\": 1, \"p90\": 4, \"p99\": 4}
}
";
        assert_eq!(got, want);
    }

    #[test]
    fn non_finite_gauges_render_safely() {
        let reg = Registry::new();
        reg.gauge("clue_test_nan", "").set(f64::NAN);
        reg.gauge("clue_test_inf", "").set(f64::INFINITY);
        let prom = to_prometheus(&reg);
        assert!(prom.contains("clue_test_nan NaN"));
        assert!(prom.contains("clue_test_inf +Inf"));
        let json = to_json(&reg);
        assert!(json.contains("\"clue_test_nan\": {\"type\": \"gauge\", \"value\": null}"));
    }

    #[test]
    fn empty_registry_renders_empty_documents() {
        let reg = Registry::new();
        assert_eq!(to_prometheus(&reg), "");
        assert_eq!(to_json(&reg), "{\n}\n");
    }

    #[test]
    fn help_text_is_escaped() {
        let reg = Registry::new();
        reg.counter("clue_test_total", "line one\nback\\slash");
        let prom = to_prometheus(&reg);
        assert!(
            prom.contains("# HELP clue_test_total line one\\nback\\\\slash"),
            "HELP must escape newline and backslash, got:\n{prom}"
        );
        assert_eq!(prom.matches('\n').count(), 3, "escaped HELP stays on one line");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b\nc"), "a\\\\b\\nc");
    }

    #[test]
    fn help_escaping_round_trips() {
        for help in ["plain", "line one\nline two", "back\\slash", "\\n literal\n\\real"] {
            assert_eq!(unescape_help(&escape_help(help)), help);
        }
    }

    #[test]
    fn parser_round_trips_the_exporter() {
        let reg = sample_registry();
        let doc = parse_prometheus(&reg.to_prometheus()).expect("exporter output must parse");
        assert_eq!(doc.types["clue_core_lookups_total"], "counter");
        assert_eq!(doc.types["clue_cache_hit_ratio"], "gauge");
        assert_eq!(doc.types["clue_core_memory_references"], "histogram");
        assert_eq!(doc.helps["clue_core_lookups_total"], "Total lookups");
        assert_eq!(doc.sample("clue_core_lookups_total"), Some(12.0));
        assert_eq!(doc.sample("clue_cache_hit_ratio"), Some(0.75));
        assert_eq!(
            doc.sample("clue_core_memory_references_bucket{le=\"+Inf\"}"),
            Some(4.0),
            "cumulative +Inf bucket equals the count"
        );
        assert_eq!(doc.sample("clue_core_memory_references_count"), Some(4.0));
        assert_eq!(doc.sample("clue_core_memory_references_p99"), Some(4.0));
    }

    #[test]
    fn parser_accepts_non_finite_values() {
        let doc = parse_prometheus("m_nan NaN\nm_pos +Inf\nm_neg -Inf\n").unwrap();
        assert!(doc.sample("m_nan").unwrap().is_nan());
        assert_eq!(doc.sample("m_pos"), Some(f64::INFINITY));
        assert_eq!(doc.sample("m_neg"), Some(f64::NEG_INFINITY));
    }

    #[test]
    fn parser_unescapes_help() {
        let doc = parse_prometheus("# HELP m two\\nlines and a back\\\\slash\nm 1\n").unwrap();
        assert_eq!(doc.helps["m"], "two\nlines and a back\\slash");
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("3bad_name 1\n").is_err(), "bad metric name");
        assert!(parse_prometheus("m{le=\"1\" 2\n").is_err(), "unbalanced braces");
        assert!(parse_prometheus("m not_a_number\n").is_err(), "bad value");
        assert!(parse_prometheus("# TYPE m frobnicator\n").is_err(), "unknown type");
        assert!(parse_prometheus("lonely_name_no_value\n").is_err(), "missing value");
    }

    #[test]
    fn histogram_bucket_counts_are_cumulative_per_le_semantics() {
        let reg = Registry::new();
        let h = reg.histogram("clue_test_h", "", &[1, 2, 4]);
        for v in [1, 2, 2, 3, 5] {
            h.observe(v);
        }
        let doc = parse_prometheus(&reg.to_prometheus()).unwrap();
        assert_eq!(doc.sample("clue_test_h_bucket{le=\"1\"}"), Some(1.0));
        assert_eq!(doc.sample("clue_test_h_bucket{le=\"2\"}"), Some(3.0));
        assert_eq!(doc.sample("clue_test_h_bucket{le=\"4\"}"), Some(4.0));
        assert_eq!(doc.sample("clue_test_h_bucket{le=\"+Inf\"}"), Some(5.0));
        assert_eq!(doc.sample("clue_test_h_sum"), Some(13.0));
    }
}
