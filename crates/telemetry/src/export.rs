//! Exporters: Prometheus text-exposition format and JSON.
//!
//! Both writers are hand-rolled (the build environment cannot pull
//! serde), deterministic — metrics render in sorted name order — and
//! defensive about floats: a non-finite gauge renders as `NaN`/`+Inf`
//! in Prometheus (which allows them) and as `null` in JSON (which does
//! not).

use std::fmt::Write as _;

use crate::registry::{Registry, Snapshot};

fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf".to_owned() } else { "-Inf".to_owned() }
    } else {
        format!("{v}")
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Renders `registry` in Prometheus text-exposition format: `# HELP` /
/// `# TYPE` comments followed by samples; histograms expand into
/// cumulative `_bucket{le="…"}` series plus `_sum` and `_count`.
pub fn to_prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    for (name, help, snap) in registry.snapshot() {
        if !help.is_empty() {
            let _ = writeln!(out, "# HELP {name} {help}");
        }
        match snap {
            Snapshot::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {v}");
            }
            Snapshot::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {}", prom_f64(v));
            }
            Snapshot::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for (bound, count) in h.bounds.iter().zip(&h.counts) {
                    cumulative += count;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
                cumulative += h.counts.last().copied().unwrap_or(0);
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                let _ = writeln!(out, "{name}_sum {}", h.sum);
                let _ = writeln!(out, "{name}_count {}", h.count);
            }
        }
    }
    out
}

/// Renders `registry` as one JSON object keyed by metric name:
///
/// ```json
/// {
///   "clue_core_lookups_total": {"type": "counter", "value": 12},
///   "clue_cache_hit_ratio": {"type": "gauge", "value": 0.9},
///   "clue_core_memory_references": {
///     "type": "histogram",
///     "buckets": [{"le": 1, "count": 10}, {"le": "+Inf", "count": 2}],
///     "sum": 34, "count": 12
///   }
/// }
/// ```
pub fn to_json(registry: &Registry) -> String {
    let snapshot = registry.snapshot();
    let mut out = String::from("{\n");
    for (i, (name, _help, snap)) in snapshot.iter().enumerate() {
        let _ = write!(out, "  \"{name}\": ");
        match snap {
            Snapshot::Counter(v) => {
                let _ = write!(out, "{{\"type\": \"counter\", \"value\": {v}}}");
            }
            Snapshot::Gauge(v) => {
                let _ = write!(out, "{{\"type\": \"gauge\", \"value\": {}}}", json_f64(*v));
            }
            Snapshot::Histogram(h) => {
                let _ = write!(out, "{{\"type\": \"histogram\", \"buckets\": [");
                for (j, (bound, count)) in h.bounds.iter().zip(&h.counts).enumerate() {
                    if j > 0 {
                        let _ = write!(out, ", ");
                    }
                    let _ = write!(out, "{{\"le\": {bound}, \"count\": {count}}}");
                }
                let overflow = h.counts.last().copied().unwrap_or(0);
                if !h.bounds.is_empty() {
                    let _ = write!(out, ", ");
                }
                let _ = write!(out, "{{\"le\": \"+Inf\", \"count\": {overflow}}}");
                let _ = write!(out, "], \"sum\": {}, \"count\": {}}}", h.sum, h.count);
            }
        }
        if i + 1 < snapshot.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push('}');
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        let c = reg.counter("clue_core_lookups_total", "Total lookups");
        c.add(12);
        let g = reg.gauge("clue_cache_hit_ratio", "Cache hit ratio");
        g.set(0.75);
        let h = reg.histogram("clue_core_memory_references", "Accesses per lookup", &[1, 4]);
        h.observe(1);
        h.observe(1);
        h.observe(3);
        h.observe(9);
        reg
    }

    #[test]
    fn prometheus_golden() {
        let got = to_prometheus(&sample_registry());
        let want = "\
# HELP clue_cache_hit_ratio Cache hit ratio
# TYPE clue_cache_hit_ratio gauge
clue_cache_hit_ratio 0.75
# HELP clue_core_lookups_total Total lookups
# TYPE clue_core_lookups_total counter
clue_core_lookups_total 12
# HELP clue_core_memory_references Accesses per lookup
# TYPE clue_core_memory_references histogram
clue_core_memory_references_bucket{le=\"1\"} 2
clue_core_memory_references_bucket{le=\"4\"} 3
clue_core_memory_references_bucket{le=\"+Inf\"} 4
clue_core_memory_references_sum 14
clue_core_memory_references_count 4
";
        assert_eq!(got, want);
    }

    #[test]
    fn json_golden() {
        let got = to_json(&sample_registry());
        let want = "\
{
  \"clue_cache_hit_ratio\": {\"type\": \"gauge\", \"value\": 0.75},
  \"clue_core_lookups_total\": {\"type\": \"counter\", \"value\": 12},
  \"clue_core_memory_references\": {\"type\": \"histogram\", \"buckets\": [{\"le\": 1, \"count\": 2}, {\"le\": 4, \"count\": 1}, {\"le\": \"+Inf\", \"count\": 1}], \"sum\": 14, \"count\": 4}
}
";
        assert_eq!(got, want);
    }

    #[test]
    fn non_finite_gauges_render_safely() {
        let reg = Registry::new();
        reg.gauge("clue_test_nan", "").set(f64::NAN);
        reg.gauge("clue_test_inf", "").set(f64::INFINITY);
        let prom = to_prometheus(&reg);
        assert!(prom.contains("clue_test_nan NaN"));
        assert!(prom.contains("clue_test_inf +Inf"));
        let json = to_json(&reg);
        assert!(json.contains("\"clue_test_nan\": {\"type\": \"gauge\", \"value\": null}"));
    }

    #[test]
    fn empty_registry_renders_empty_documents() {
        let reg = Registry::new();
        assert_eq!(to_prometheus(&reg), "");
        assert_eq!(to_json(&reg), "{\n}\n");
    }
}
