//! # clue-telemetry
//!
//! The unified observability layer of the clue-routing workspace.
//!
//! The paper's central claims are *measurement* claims — a clue lookup
//! costs ~1 memory reference, and only 0.5–5 % of clues are problematic
//! — so the workspace needs one place where every component reports
//! what it did, in a form that can be aggregated, snapshotted and
//! exported. This crate provides it, with zero external dependencies:
//!
//! * [`Registry`] — named [`Counter`]s, [`Gauge`]s and fixed-bucket
//!   [`Histogram`]s over `AtomicU64` cells. Handles are cheap clones
//!   of shared atomics, so the hot path never takes a lock and a
//!   shared `&Registry` works from parallel workloads. Counters and
//!   histograms are **cacheline-sharded** per recording thread and
//!   merged only at scrape time, so parallel recording never bounces a
//!   cacheline between cores.
//! * [`ScrapeServer`] — a zero-dependency HTTP endpoint (std
//!   `TcpListener`) serving `/metrics` (Prometheus) and
//!   `/metrics.json` live while a workload runs.
//! * [`trace`] — structured per-lookup events ([`LookupEvent`]) with a
//!   pluggable [`Subscriber`]; the default [`RingBufferSubscriber`]
//!   keeps the last N events in bounded memory.
//! * [`export`] — renders any registry to Prometheus text-exposition
//!   format or to JSON (hand-rolled writer; no serde).
//! * [`LookupTelemetry`] / [`CacheTelemetry`] — pre-named metric
//!   bundles for the workspace's hot paths, following the
//!   `clue_<component>_<metric>` naming convention
//!   (`clue_core_lookups_total`, `clue_cache_hits_total`, …).
//!
//! Instrumentation is runtime-gated: components hold an
//! `Option<LookupTelemetry>` and skip all recording when detached, so
//! a disabled registry costs one predictable branch per lookup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod churn;
mod compressed;
mod export;
mod fault;
mod fleet;
mod lookup;
mod registry;
mod runtime;
mod server;
mod shard;
mod stride;
pub mod trace;

pub use adversary::{AdversaryTelemetry, ReputationTelemetry};
pub use churn::ChurnTelemetry;
pub use compressed::CompressedTelemetry;
pub use fault::DegradationTelemetry;
pub use export::{parse_prometheus, to_json, to_prometheus, PromDocument};
pub use fleet::FleetTelemetry;
pub use lookup::{CacheTelemetry, LookupTelemetry};
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, Metric, Registry, Snapshot};
pub use runtime::RuntimeTelemetry;
pub use server::ScrapeServer;
pub use stride::StrideTelemetry;
pub use trace::{LookupClass, LookupEvent, RingBufferSubscriber, Subscriber};

/// Default memory-reference histogram bounds: fine granularity around
/// the 1-access clue-hit ideal, coarser toward full-lookup costs.
pub const MEMORY_REFERENCE_BOUNDS: &[u64] = &[1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64];

/// Default search-depth histogram bounds (continued-walk lengths).
pub const SEARCH_DEPTH_BOUNDS: &[u64] = &[0, 1, 2, 4, 8, 16, 32];

/// Default clue/prefix-length histogram bounds (IPv4-centric, but the
/// overflow bucket absorbs IPv6 lengths).
pub const PREFIX_LENGTH_BOUNDS: &[u64] = &[8, 12, 16, 20, 24, 28, 32];

/// Default snapshot-rebuild latency bounds, in microseconds: a small
/// table re-freezes in well under a millisecond, a production-scale
/// one in the tens of milliseconds — the overflow bucket absorbs
/// pathological stalls.
pub const REBUILD_LATENCY_BOUNDS_US: &[u64] =
    &[50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000];

/// Default degraded-lookup cost-overhead bounds, in extra memory
/// references versus the clue-less baseline for the same destination.
/// A sound fault costs at most a wasted clue-table probe plus the full
/// fallback walk, so the interesting range is small; the overflow
/// bucket would indicate an unsound (and therefore buggy) degradation.
pub const DEGRADED_COST_BOUNDS: &[u64] = &[1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64];

/// Default per-lookup latency bounds, in nanoseconds: geometric from a
/// cache-resident clue hit (tens of ns) up past a cold full walk; the
/// overflow bucket absorbs scheduler preemptions. Used by the
/// `clue profile` percentile report.
pub const LOOKUP_NANOS_BOUNDS: &[u64] = &[
    25, 50, 100, 200, 400, 800, 1_600, 3_200, 6_400, 12_800, 25_600, 51_200, 102_400, 204_800,
];
