//! Metric bundle for the shared-nothing multi-core serving runtime.
//!
//! The runtime's hot loop is channels and per-core private state — no
//! shared registry cell is touched per packet. Workers accumulate
//! plain integers locally and flush them into this bundle once per
//! batch (counters are sharded cells, so even the flushes from
//! different cores do not contend on one cache line). The bundle
//! therefore answers the operator questions — how many cores ran, how
//! much they served, how often replicas were re-cloned after an epoch
//! publish, how stale the cores ran, and how often the feed backed up
//! — without taxing the loop it observes.

use crate::registry::{Counter, Gauge, Histogram, Registry};

/// Bucket bounds for replica-clone latency in microseconds.
const CLONE_US_BOUNDS: [u64; 8] = [50, 100, 250, 500, 1_000, 5_000, 20_000, 100_000];

/// Bucket bounds for per-batch epoch staleness (epochs behind the
/// writer at the moment a batch was served).
const STALENESS_BOUNDS: [u64; 6] = [0, 1, 2, 4, 8, 16];

/// Telemetry for the multi-core serving runtime (`clue_runtime_*`).
#[derive(Clone, Debug)]
pub struct RuntimeTelemetry {
    /// Worker cores in the most recent run.
    pub workers: Gauge,
    /// Packet batches pulled off the worker channels.
    pub batches_total: Counter,
    /// Packets served by worker cores.
    pub packets_total: Counter,
    /// Per-core replica re-clones triggered by an epoch publish.
    pub replica_clones_total: Counter,
    /// Replica clone latency (microseconds), priming and mid-run.
    pub replica_clone_us: Histogram,
    /// Epoch staleness observed per served batch (epochs behind the
    /// writer; 0 = current snapshot).
    pub staleness_epochs: Histogram,
    /// Send/receive attempts that found a channel full or empty and
    /// had to yield — the backpressure signal.
    pub backpressure_total: Counter,
}

impl Default for RuntimeTelemetry {
    fn default() -> Self {
        RuntimeTelemetry {
            workers: Gauge::new(),
            batches_total: Counter::new(),
            packets_total: Counter::new(),
            replica_clones_total: Counter::new(),
            replica_clone_us: Histogram::new(&CLONE_US_BOUNDS),
            staleness_epochs: Histogram::new(&STALENESS_BOUNDS),
            backpressure_total: Counter::new(),
        }
    }
}

impl RuntimeTelemetry {
    /// A detached bundle: live cells, no registry.
    pub fn detached() -> Self {
        Self::default()
    }

    /// A bundle registered into `registry` under `prefix` (e.g.
    /// `clue_runtime`), creating or sharing:
    ///
    /// * `{prefix}_workers`
    /// * `{prefix}_batches_total`
    /// * `{prefix}_packets_total`
    /// * `{prefix}_replica_clones_total`
    /// * `{prefix}_replica_clone_us`
    /// * `{prefix}_staleness_epochs`
    /// * `{prefix}_backpressure_total`
    pub fn registered(registry: &Registry, prefix: &str) -> Self {
        RuntimeTelemetry {
            workers: registry.gauge(
                &format!("{prefix}_workers"),
                "Worker cores in the most recent serving run",
            ),
            batches_total: registry.counter(
                &format!("{prefix}_batches_total"),
                "Packet batches pulled off the runtime worker channels",
            ),
            packets_total: registry.counter(
                &format!("{prefix}_packets_total"),
                "Packets served by runtime worker cores",
            ),
            replica_clones_total: registry.counter(
                &format!("{prefix}_replica_clones_total"),
                "Per-core engine replica clones (priming and epoch refresh)",
            ),
            replica_clone_us: registry.histogram(
                &format!("{prefix}_replica_clone_us"),
                "Replica clone latency in microseconds",
                &CLONE_US_BOUNDS,
            ),
            staleness_epochs: registry.histogram(
                &format!("{prefix}_staleness_epochs"),
                "Epochs behind the writer per served batch (0 = current)",
                &STALENESS_BOUNDS,
            ),
            backpressure_total: registry.counter(
                &format!("{prefix}_backpressure_total"),
                "Channel full/empty polls that made the runtime yield",
            ),
        }
    }

    /// Records one core's finished run: `packets` served in `batches`
    /// pulls, `clones` replica clones, `backpressure` yielding polls.
    #[inline]
    pub fn record_core(&self, packets: u64, batches: u64, clones: u64, backpressure: u64) {
        self.packets_total.add(packets);
        self.batches_total.add(batches);
        self.replica_clones_total.add(clones);
        self.backpressure_total.add(backpressure);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_counts() {
        let t = RuntimeTelemetry::detached();
        t.workers.set(4.0);
        t.record_core(1000, 2, 1, 3);
        t.record_core(500, 1, 0, 0);
        t.replica_clone_us.observe(120);
        t.staleness_epochs.observe(0);
        t.staleness_epochs.observe(2);
        assert_eq!(t.workers.get(), 4.0);
        assert_eq!(t.packets_total.get(), 1500);
        assert_eq!(t.batches_total.get(), 3);
        assert_eq!(t.replica_clones_total.get(), 1);
        assert_eq!(t.backpressure_total.get(), 3);
        assert_eq!(t.staleness_epochs.snapshot().count, 2);
    }

    #[test]
    fn registered_uses_the_naming_convention() {
        let registry = Registry::new();
        let t = RuntimeTelemetry::registered(&registry, "clue_runtime");
        t.record_core(5, 1, 1, 0);
        for name in [
            "clue_runtime_workers",
            "clue_runtime_batches_total",
            "clue_runtime_packets_total",
            "clue_runtime_replica_clones_total",
            "clue_runtime_replica_clone_us",
            "clue_runtime_staleness_epochs",
            "clue_runtime_backpressure_total",
        ] {
            assert!(registry.contains(name), "{name} registered");
        }
        assert_eq!(t.packets_total.get(), 5);
    }
}
