//! Telemetry for the adversarial-scenario layer.
//!
//! The chaos harness injects *random* faults; the adversary module
//! (`clue_netsim::adversary`) injects *systematic* hostility — lying
//! neighbors crafting deepest-mismatch clues, clue-flooding bursts,
//! oscillating liars — and the reputation layer
//! (`clue_core::reputation`) answers with quarantine. Two bundles name
//! what those scenarios observe, under the workspace
//! `clue_<component>_<metric>` convention:
//!
//! * [`AdversaryTelemetry`] (`clue_adversary_*`) — the attack side:
//!   hops attacked, clues crafted, malformed floods injected, and the
//!   measured per-packet overhead against the soundness bound.
//! * [`ReputationTelemetry`] (`clue_reputation_*`) — the defense side:
//!   batches scored, quarantine/probation/re-admission transitions,
//!   links currently quarantined, and the worst score in the book.

use crate::registry::{Counter, Gauge, Histogram, Registry};
use crate::DEGRADED_COST_BOUNDS;

/// Telemetry for attacker activity and its measured cost. Detached or
/// registered like every workspace bundle; clones share cells.
#[derive(Debug, Clone)]
pub struct AdversaryTelemetry {
    /// Link crossings where an adversary got to pick the clue.
    pub attacked_hops_total: Counter,
    /// Deepest-mismatch clues crafted against a victim's table.
    pub crafted_clues_total: Counter,
    /// Malformed / out-of-range clues injected by flooding bursts.
    pub flood_clues_total: Counter,
    /// Packets whose measured overhead exceeded the soundness bound
    /// (clue-less cost + 1 probe). Must stay 0 — anything else is an
    /// engine bug, not a successful attack.
    pub bound_violations_total: Counter,
    /// Worst per-packet overhead observed in the current run.
    pub worst_overhead: Gauge,
    /// Per-packet overhead versus the clue-less baseline on attacked
    /// hops (the soundness bound caps this at 1).
    pub attack_overhead: Histogram,
}

impl Default for AdversaryTelemetry {
    fn default() -> Self {
        Self::detached()
    }
}

impl AdversaryTelemetry {
    /// A detached bundle: live cells, nothing exported.
    pub fn detached() -> Self {
        AdversaryTelemetry {
            attacked_hops_total: Counter::new(),
            crafted_clues_total: Counter::new(),
            flood_clues_total: Counter::new(),
            bound_violations_total: Counter::new(),
            worst_overhead: Gauge::new(),
            attack_overhead: Histogram::new(DEGRADED_COST_BOUNDS),
        }
    }

    /// A bundle registered into `registry` under `prefix` (the
    /// workspace uses `clue_adversary`), creating or sharing:
    ///
    /// * `{prefix}_attacked_hops_total`
    /// * `{prefix}_crafted_clues_total`
    /// * `{prefix}_flood_clues_total`
    /// * `{prefix}_bound_violations_total`
    /// * `{prefix}_worst_overhead` (gauge)
    /// * `{prefix}_attack_overhead` (histogram)
    pub fn registered(registry: &Registry, prefix: &str) -> Self {
        AdversaryTelemetry {
            attacked_hops_total: registry.counter(
                &format!("{prefix}_attacked_hops_total"),
                "Link crossings where an adversary picked the clue",
            ),
            crafted_clues_total: registry.counter(
                &format!("{prefix}_crafted_clues_total"),
                "Deepest-mismatch clues crafted against a victim table",
            ),
            flood_clues_total: registry.counter(
                &format!("{prefix}_flood_clues_total"),
                "Malformed clues injected by flooding bursts",
            ),
            bound_violations_total: registry.counter(
                &format!("{prefix}_bound_violations_total"),
                "Packets exceeding the soundness bound (must stay 0)",
            ),
            worst_overhead: registry.gauge(
                &format!("{prefix}_worst_overhead"),
                "Worst per-packet overhead observed",
            ),
            attack_overhead: registry.histogram(
                &format!("{prefix}_attack_overhead"),
                "Per-packet overhead versus the clue-less baseline on attacked hops",
                DEGRADED_COST_BOUNDS,
            ),
        }
    }
}

/// Telemetry for the reputation / quarantine defense.
#[derive(Debug, Clone)]
pub struct ReputationTelemetry {
    /// Batches folded into the reputation book.
    pub batches_observed_total: Counter,
    /// Healthy/Probation → Quarantined transitions.
    pub quarantines_total: Counter,
    /// Quarantine hold-downs that expired into probation.
    pub probations_total: Counter,
    /// Probations that succeeded back to Healthy.
    pub readmissions_total: Counter,
    /// Links currently quarantined (clue-less serving).
    pub quarantined_links: Gauge,
    /// The lowest reputation score in the book (1.0 = pristine,
    /// 0.0 = fully collapsed).
    pub min_score: Gauge,
}

impl Default for ReputationTelemetry {
    fn default() -> Self {
        Self::detached()
    }
}

impl ReputationTelemetry {
    /// A detached bundle: live cells, nothing exported.
    pub fn detached() -> Self {
        ReputationTelemetry {
            batches_observed_total: Counter::new(),
            quarantines_total: Counter::new(),
            probations_total: Counter::new(),
            readmissions_total: Counter::new(),
            quarantined_links: Gauge::new(),
            min_score: Gauge::new(),
        }
    }

    /// A bundle registered into `registry` under `prefix` (the
    /// workspace uses `clue_reputation`), creating or sharing:
    ///
    /// * `{prefix}_batches_observed_total`
    /// * `{prefix}_quarantines_total`
    /// * `{prefix}_probations_total`
    /// * `{prefix}_readmissions_total`
    /// * `{prefix}_quarantined_links` (gauge)
    /// * `{prefix}_min_score` (gauge)
    pub fn registered(registry: &Registry, prefix: &str) -> Self {
        ReputationTelemetry {
            batches_observed_total: registry.counter(
                &format!("{prefix}_batches_observed_total"),
                "Batches folded into the reputation book",
            ),
            quarantines_total: registry.counter(
                &format!("{prefix}_quarantines_total"),
                "Transitions into quarantine",
            ),
            probations_total: registry.counter(
                &format!("{prefix}_probations_total"),
                "Quarantine hold-downs expired into probation",
            ),
            readmissions_total: registry.counter(
                &format!("{prefix}_readmissions_total"),
                "Probations succeeded back to Healthy",
            ),
            quarantined_links: registry.gauge(
                &format!("{prefix}_quarantined_links"),
                "Links currently serving clue-less under quarantine",
            ),
            min_score: registry.gauge(
                &format!("{prefix}_min_score"),
                "Lowest reputation score in the book",
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversary_names_follow_the_convention() {
        let registry = Registry::new();
        let t = AdversaryTelemetry::registered(&registry, "clue_adversary");
        for name in [
            "clue_adversary_attacked_hops_total",
            "clue_adversary_crafted_clues_total",
            "clue_adversary_flood_clues_total",
            "clue_adversary_bound_violations_total",
            "clue_adversary_worst_overhead",
            "clue_adversary_attack_overhead",
        ] {
            assert!(registry.contains(name), "missing {name}");
        }
        t.attacked_hops_total.add(5);
        t.attack_overhead.observe(1);
        let again = AdversaryTelemetry::registered(&registry, "clue_adversary");
        assert_eq!(again.attacked_hops_total.get(), 5, "registered handles share cells");
        assert_eq!(again.attack_overhead.count(), 1);
    }

    #[test]
    fn reputation_names_follow_the_convention() {
        let registry = Registry::new();
        let t = ReputationTelemetry::registered(&registry, "clue_reputation");
        for name in [
            "clue_reputation_batches_observed_total",
            "clue_reputation_quarantines_total",
            "clue_reputation_probations_total",
            "clue_reputation_readmissions_total",
            "clue_reputation_quarantined_links",
            "clue_reputation_min_score",
        ] {
            assert!(registry.contains(name), "missing {name}");
        }
        t.quarantines_total.inc();
        t.quarantined_links.set(2.0);
        t.min_score.set(0.412);
        let again = ReputationTelemetry::registered(&registry, "clue_reputation");
        assert_eq!(again.quarantines_total.get(), 1);
        assert_eq!(again.quarantined_links.get(), 2.0);
        assert_eq!(again.min_score.get(), 0.412);
    }

    #[test]
    fn detached_cells_are_live_and_shared_by_clones() {
        let t = AdversaryTelemetry::detached();
        t.crafted_clues_total.inc();
        let clone = t.clone();
        clone.crafted_clues_total.inc();
        assert_eq!(t.crafted_clues_total.get(), 2);

        let r = ReputationTelemetry::detached();
        r.batches_observed_total.add(3);
        let clone = r.clone();
        assert_eq!(clone.batches_observed_total.get(), 3);
    }
}
