//! Structured per-lookup tracing.
//!
//! Aggregate metrics answer "how many"; traces answer "what exactly
//! happened on this lookup". Components build a [`LookupEvent`] per
//! lookup and hand it to a pluggable [`Subscriber`]. The default
//! [`RingBufferSubscriber`] keeps the most recent N events in bounded
//! memory, which is enough for the CLI and tests to show recent
//! history without unbounded growth.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How a lookup resolved — the classification axis of the paper's
/// Tables 4–9 plus the failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LookupClass {
    /// No usable clue (first hop, or `Method::Common`): full lookup.
    Clueless,
    /// Clue-table hit with an empty `Ptr`: the FD was final.
    Final,
    /// Clue-table hit on a problematic clue: a continued search ran.
    Continued,
    /// Clue-table miss: unknown clue, full lookup (and maybe learning).
    Miss,
    /// The clue was not a prefix of the destination: ignored.
    Malformed,
}

impl LookupClass {
    /// All classes, in a stable order.
    pub fn all() -> [LookupClass; 5] {
        [
            LookupClass::Clueless,
            LookupClass::Final,
            LookupClass::Continued,
            LookupClass::Miss,
            LookupClass::Malformed,
        ]
    }

    /// The metric-name fragment for this class.
    pub fn label(&self) -> &'static str {
        match self {
            LookupClass::Clueless => "clueless",
            LookupClass::Final => "final",
            LookupClass::Continued => "continued",
            LookupClass::Miss => "miss",
            LookupClass::Malformed => "malformed",
        }
    }
}

/// One lookup, structurally described.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupEvent {
    /// Length of the clue carried by the packet, if any.
    pub clue_len: Option<u8>,
    /// How the lookup resolved.
    pub class: LookupClass,
    /// Structure nodes visited *beyond* the mandatory table consult
    /// (the continued-search depth; 0 for a final hit).
    pub search_depth: u64,
    /// Cache consult outcome: `Some(true)` hit, `Some(false)` miss,
    /// `None` when no cache is configured.
    pub cache_hit: Option<bool>,
    /// Total memory references the lookup performed.
    pub memory_references: u64,
}

impl LookupEvent {
    /// An event for a clue-less full lookup costing `memory_references`.
    pub fn clueless(memory_references: u64) -> Self {
        LookupEvent {
            clue_len: None,
            class: LookupClass::Clueless,
            search_depth: 0,
            cache_hit: None,
            memory_references,
        }
    }
}

/// A sink for lookup events. Implementations must be cheap: the hot
/// path calls [`Subscriber::record`] once per instrumented lookup.
pub trait Subscriber: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &LookupEvent);
}

/// The default subscriber: a bounded ring of the most recent events.
#[derive(Debug)]
pub struct RingBufferSubscriber {
    capacity: usize,
    ring: Mutex<VecDeque<LookupEvent>>,
    seen: AtomicU64,
}

impl RingBufferSubscriber {
    /// A ring holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingBufferSubscriber {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            seen: AtomicU64::new(0),
        }
    }

    /// Total events ever recorded (including evicted ones).
    pub fn seen(&self) -> u64 {
        self.seen.load(Ordering::Relaxed)
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<LookupEvent> {
        self.ring.lock().expect("ring poisoned").iter().copied().collect()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Subscriber for RingBufferSubscriber {
    fn record(&self, event: &LookupEvent) {
        self.seen.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().expect("ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(refs: u64) -> LookupEvent {
        LookupEvent {
            clue_len: Some(16),
            class: LookupClass::Final,
            search_depth: 0,
            cache_hit: None,
            memory_references: refs,
        }
    }

    #[test]
    fn ring_keeps_most_recent_events() {
        let ring = RingBufferSubscriber::new(3);
        for i in 0..5 {
            ring.record(&ev(i));
        }
        assert_eq!(ring.seen(), 5);
        let kept: Vec<u64> = ring.events().iter().map(|e| e.memory_references).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(ring.capacity(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        RingBufferSubscriber::new(0);
    }

    #[test]
    fn class_labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            LookupClass::all().iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 5);
    }
}
