//! Metric bundle for the stride-compiled batch path.
//!
//! The stride engine's per-packet walk is deliberately uninstrumented
//! (it inherits the ordinary [`crate::LookupTelemetry`] stream from
//! the engine it was compiled from); this bundle counts what is *new*
//! about the stride path — batch calls, interleave groups and issued
//! prefetches — so an operator can see whether the prefetched loop is
//! actually engaged and at what group size it runs.

use crate::registry::{Counter, Registry};

/// Telemetry for the stride engine's interleaved batch loop.
///
/// Counters are recorded once per batch (accumulated locally in the
/// hot loop), so attaching the bundle costs a handful of relaxed adds
/// per `lookup_batch`, not per packet.
#[derive(Clone, Debug, Default)]
pub struct StrideTelemetry {
    /// Batch calls served by the stride path.
    pub batches_total: Counter,
    /// Packets resolved by the stride path.
    pub packets_total: Counter,
    /// Interleave groups processed (one prefetch pass each).
    pub groups_total: Counter,
    /// Software prefetches issued (0 when interleaving is disabled or
    /// the target has no prefetch intrinsic wired up).
    pub prefetches_total: Counter,
}

impl StrideTelemetry {
    /// A detached bundle: live cells, no registry.
    pub fn detached() -> Self {
        Self::default()
    }

    /// A bundle registered into `registry` under `prefix` (e.g.
    /// `clue_stride`), creating or sharing:
    ///
    /// * `{prefix}_batches_total`
    /// * `{prefix}_packets_total`
    /// * `{prefix}_groups_total`
    /// * `{prefix}_prefetches_total`
    pub fn registered(registry: &Registry, prefix: &str) -> Self {
        StrideTelemetry {
            batches_total: registry.counter(
                &format!("{prefix}_batches_total"),
                "Batch calls served by the stride-compiled path",
            ),
            packets_total: registry.counter(
                &format!("{prefix}_packets_total"),
                "Packets resolved by the stride-compiled path",
            ),
            groups_total: registry.counter(
                &format!("{prefix}_groups_total"),
                "Interleave groups processed by the stride batch loop",
            ),
            prefetches_total: registry.counter(
                &format!("{prefix}_prefetches_total"),
                "Software prefetches issued by the stride batch loop",
            ),
        }
    }

    /// Records one batch: `packets` resolved across `groups` interleave
    /// groups with `prefetches` prefetch hints issued.
    #[inline]
    pub fn record_batch(&self, packets: u64, groups: u64, prefetches: u64) {
        self.batches_total.inc();
        self.packets_total.add(packets);
        self.groups_total.add(groups);
        self.prefetches_total.add(prefetches);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_counts() {
        let t = StrideTelemetry::detached();
        t.record_batch(64, 8, 64);
        t.record_batch(10, 2, 0);
        assert_eq!(t.batches_total.get(), 2);
        assert_eq!(t.packets_total.get(), 74);
        assert_eq!(t.groups_total.get(), 10);
        assert_eq!(t.prefetches_total.get(), 64);
    }

    #[test]
    fn registered_uses_the_naming_convention() {
        let registry = Registry::new();
        let t = StrideTelemetry::registered(&registry, "clue_stride");
        t.record_batch(5, 1, 5);
        for name in [
            "clue_stride_batches_total",
            "clue_stride_packets_total",
            "clue_stride_groups_total",
            "clue_stride_prefetches_total",
        ] {
            assert!(registry.contains(name), "{name} registered");
        }
        assert_eq!(t.packets_total.get(), 5);
    }
}
