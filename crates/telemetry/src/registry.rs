//! The metric registry: named counters, gauges and histograms over
//! lock-free `AtomicU64` cells.
//!
//! Registration takes a short mutex to update the name map; the handles
//! it returns are clones of `Arc<AtomicU64>` cells, so recording on the
//! hot path is a relaxed atomic add with no lock anywhere. A shared
//! `&Registry` (or a cloned handle) therefore works unchanged from
//! future parallel workloads.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A standalone counter (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Resets to zero (e.g. after a warm-up phase).
    pub fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

/// A gauge: an arbitrary value that can go up and down. Stored as the
/// bit pattern of an `f64` so fractions (hit rates, problematic
/// fractions) fit alongside sizes.
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge { bits: Arc::new(AtomicU64::new(0f64.to_bits())) }
    }
}

impl Gauge {
    /// A standalone gauge (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram with inclusive upper bounds and an overflow
/// bucket, plus running `sum` and `count`.
///
/// `observe(v)` increments the first bucket whose bound satisfies
/// `v <= bound`, or the overflow bucket when `v` exceeds every bound —
/// Prometheus `le` semantics.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Arc<Vec<u64>>,
    /// `bounds.len() + 1` cells; the last is the overflow (`+Inf`).
    buckets: Arc<Vec<AtomicU64>>,
    sum: Arc<AtomicU64>,
    count: Arc<AtomicU64>,
}

impl Histogram {
    /// A standalone histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: Arc::new(bounds.to_vec()),
            buckets: Arc::new((0..=bounds.len()).map(|_| AtomicU64::new(0)).collect()),
            sum: Arc::new(AtomicU64::new(0)),
            count: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// The configured inclusive upper bounds (without the overflow).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// A consistent-enough copy of the bucket counts (per-bucket counts
    /// including the final overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// A point-in-time snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.as_slice().to_vec(),
            counts: self.bucket_counts(),
            sum: self.sum(),
            count: self.count(),
        }
    }

    /// Resets every cell to zero.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds (without the overflow bucket).
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one longer than `bounds` (overflow last).
    pub counts: Vec<u64>,
    /// Sum of observations.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

/// One registered metric (as stored and snapshotted).
#[derive(Debug, Clone)]
pub enum Metric {
    /// See [`Counter`].
    Counter(Counter),
    /// See [`Gauge`].
    Gauge(Gauge),
    /// See [`Histogram`].
    Histogram(Histogram),
}

/// A point-in-time value of one metric.
#[derive(Debug, Clone)]
pub enum Snapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

#[derive(Debug)]
struct Entry {
    help: String,
    metric: Metric,
}

/// A named collection of metrics.
///
/// Names follow the Prometheus convention `[a-zA-Z_][a-zA-Z0-9_]*`; the
/// workspace uses `clue_<component>_<metric>` (see the crate docs).
/// Registration is idempotent: asking for an existing name returns a
/// handle to the same cells, so independently constructed components
/// can share metrics through a common registry.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

fn validate_name(name: &str) {
    let mut chars = name.chars();
    let ok_first = chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    let ok_rest = name.chars().skip(1).all(|c| c.is_ascii_alphanumeric() || c == '_');
    assert!(ok_first && ok_rest, "invalid metric name {name:?}");
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter `name`, creating it if absent.
    ///
    /// # Panics
    /// Panics if `name` is invalid or already registered as a
    /// different metric kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        validate_name(name);
        let mut entries = self.entries.lock().expect("registry poisoned");
        let entry = entries.entry(name.to_owned()).or_insert_with(|| Entry {
            help: help.to_owned(),
            metric: Metric::Counter(Counter::new()),
        });
        match &entry.metric {
            Metric::Counter(c) => c.clone(),
            other => panic!("{name} already registered as {}", kind(other)),
        }
    }

    /// Returns the gauge `name`, creating it if absent.
    ///
    /// # Panics
    /// Panics if `name` is invalid or registered as another kind.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        validate_name(name);
        let mut entries = self.entries.lock().expect("registry poisoned");
        let entry = entries.entry(name.to_owned()).or_insert_with(|| Entry {
            help: help.to_owned(),
            metric: Metric::Gauge(Gauge::new()),
        });
        match &entry.metric {
            Metric::Gauge(g) => g.clone(),
            other => panic!("{name} already registered as {}", kind(other)),
        }
    }

    /// Returns the histogram `name`, creating it with `bounds` if
    /// absent (existing histograms keep their original bounds).
    ///
    /// # Panics
    /// Panics if `name` is invalid, registered as another kind, or
    /// `bounds` is invalid.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Histogram {
        validate_name(name);
        let mut entries = self.entries.lock().expect("registry poisoned");
        let entry = entries.entry(name.to_owned()).or_insert_with(|| Entry {
            help: help.to_owned(),
            metric: Metric::Histogram(Histogram::new(bounds)),
        });
        match &entry.metric {
            Metric::Histogram(h) => h.clone(),
            other => panic!("{name} already registered as {}", kind(other)),
        }
    }

    /// Registers an existing metric handle under `name`, sharing its
    /// cells — how components mirror their private telemetry into a
    /// shared registry.
    ///
    /// # Panics
    /// Panics if `name` is invalid or already registered.
    pub fn register(&self, name: &str, help: &str, metric: Metric) {
        validate_name(name);
        let mut entries = self.entries.lock().expect("registry poisoned");
        let prior = entries.insert(
            name.to_owned(),
            Entry { help: help.to_owned(), metric },
        );
        assert!(prior.is_none(), "{name} registered twice");
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.lock().expect("registry poisoned").contains_key(name)
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("registry poisoned").len()
    }

    /// `true` iff nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sorted point-in-time snapshot of every metric:
    /// `(name, help, value)`.
    pub fn snapshot(&self) -> Vec<(String, String, Snapshot)> {
        let entries = self.entries.lock().expect("registry poisoned");
        entries
            .iter()
            .map(|(name, e)| {
                let snap = match &e.metric {
                    Metric::Counter(c) => Snapshot::Counter(c.get()),
                    Metric::Gauge(g) => Snapshot::Gauge(g.get()),
                    Metric::Histogram(h) => Snapshot::Histogram(h.snapshot()),
                };
                (name.clone(), e.help.clone(), snap)
            })
            .collect()
    }

    /// Renders the registry in Prometheus text-exposition format.
    pub fn to_prometheus(&self) -> String {
        crate::export::to_prometheus(self)
    }

    /// Renders the registry as a JSON object.
    pub fn to_json(&self) -> String {
        crate::export::to_json(self)
    }
}

fn kind(m: &Metric) -> &'static str {
    match m {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_cells_across_handles() {
        let reg = Registry::new();
        let a = reg.counter("clue_test_total", "test");
        let b = reg.counter("clue_test_total", "test");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(b.get(), 5);
        a.reset();
        assert_eq!(b.get(), 0);
    }

    #[test]
    fn gauges_hold_fractions() {
        let reg = Registry::new();
        let g = reg.gauge("clue_test_ratio", "test");
        g.set(0.375);
        assert_eq!(g.get(), 0.375);
        assert_eq!(reg.gauge("clue_test_ratio", "").get(), 0.375);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("clue_test_x", "");
        reg.gauge("clue_test_x", "");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_panic() {
        Registry::new().counter("3bad name", "");
    }

    #[test]
    fn histogram_buckets_follow_le_semantics() {
        let h = Histogram::new(&[1, 4, 16]);
        // On-edge values land in their own bucket (le semantics).
        h.observe(1);
        h.observe(4);
        h.observe(16);
        // Interior values.
        h.observe(2);
        // Overflow.
        h.observe(17);
        h.observe(1_000_000);
        assert_eq!(h.bucket_counts(), vec![1, 2, 1, 2]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1 + 4 + 16 + 2 + 17 + 1_000_000);
    }

    #[test]
    fn histogram_zero_lands_in_first_bucket() {
        let h = Histogram::new(&[0, 2]);
        h.observe(0);
        assert_eq!(h.bucket_counts(), vec![1, 0, 0]);
    }

    #[test]
    fn histogram_mean_and_reset() {
        let h = Histogram::new(&[10]);
        h.observe(4);
        h.observe(8);
        assert_eq!(h.mean(), 6.0);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.bucket_counts(), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        Histogram::new(&[4, 2]);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = Registry::new();
        reg.counter("clue_b_total", "b");
        reg.gauge("clue_a_value", "a");
        reg.histogram("clue_c_hist", "c", &[1]);
        let names: Vec<String> = reg.snapshot().into_iter().map(|(n, _, _)| n).collect();
        assert_eq!(names, vec!["clue_a_value", "clue_b_total", "clue_c_hist"]);
        assert_eq!(reg.len(), 3);
        assert!(!reg.is_empty());
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let reg = std::sync::Arc::new(Registry::new());
        let c = reg.counter("clue_threads_total", "");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}
